#!/usr/bin/env bash
# Builds the engine's concurrency tests, the fault-injection suite and
# the simulation-kernel equivalence suite under ThreadSanitizer and runs
# them (`ctest -L "(engine|fault|sim)"`). Part of the verify routine for
# any change that touches src/engine/, src/fault/, the simulator kernels
# or their thread-safety assumptions.
#
# Equivalent presets flow (CMake >= 3.21):
#   cmake --preset tsan && cmake --build --preset tsan -j \
#     && ctest --preset engine-tsan
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
cmake -B "$BUILD_DIR" -S . \
  -DIMPATIENCE_SANITIZE=thread \
  -DIMPATIENCE_BUILD_BENCH=OFF \
  -DIMPATIENCE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  engine_seeding_test engine_thread_pool_test engine_runner_test \
  engine_artifacts_test engine_sim_parallel_test engine_retry_test \
  fault_plan_test fault_sim_test core_kernel_equivalence_test
ctest --test-dir "$BUILD_DIR" -L "(engine|fault|sim)" --output-on-failure \
  -j"$(nproc)"
echo "engine + fault + sim tests clean under ThreadSanitizer"
