#!/usr/bin/env bash
# Builds the engine's concurrency tests, the fault-injection suite, the
# simulation-kernel equivalence suite (including the fault-active
# event-kernel tests), the incremental-oracle suite and the replicationd
# service suite under ThreadSanitizer and runs them
# (`ctest -L "(engine|fault|sim|perf|service)"` plus the simulator and
# daemon gtest groups). Part of the verify routine for any change that
# touches src/engine/, src/fault/, src/service/, the simulator kernels
# or their thread-safety assumptions — the lazy-refresh MarginalOracle
# and the welfare-probe listeners run inside engine-parallel trials, and
# the daemon's ingest/monitor/snapshot threads share the versioned state
# store, so they belong in this sweep too. core_meeting_parallel_test's
# dense-slot stress is the dedicated TSan target for the intra-run
# parallel meeting path (plan waves on the pool, commits on the main
# thread; docs/perf.md §5). trace_streaming_test drives that parallel
# walk from streaming EventSources (the bounded look-ahead window), and
# core_mean_field_test rides along under the same `sim` label.
#
# Equivalent presets flow (CMake >= 3.21):
#   cmake --preset tsan && cmake --build --preset tsan -j \
#     && ctest --preset engine-tsan
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
cmake -B "$BUILD_DIR" -S . \
  -DIMPATIENCE_SANITIZE=thread \
  -DIMPATIENCE_BUILD_BENCH=OFF \
  -DIMPATIENCE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  engine_seeding_test engine_thread_pool_test engine_runner_test \
  engine_artifacts_test engine_sim_parallel_test engine_retry_test \
  fault_plan_test fault_sim_test core_kernel_equivalence_test \
  core_meeting_parallel_test core_mean_field_test trace_streaming_test \
  alloc_oracle_test utility_cached_transform_test core_simulator_test \
  service_protocol_test service_state_store_test service_daemon_test \
  service_feeder_test service_ingest_fuzz_test \
  service_sharded_store_test service_snapshot_delta_test \
  replicationd replfeed
ctest --test-dir "$BUILD_DIR" -L "(engine|fault|sim|perf|service)" \
  --output-on-failure -j"$(nproc)"
# core_simulator_test carries no label; select its gtest group by name
# (alias-init sampling, welfare-probe listeners, event-kernel entry).
# Replicationd.* re-runs the daemon suite so its ingest/monitor/snapshot
# thread interleavings get a second look under TSan; Replfeed.* covers
# the feeder's run-thread vs snapshot_report() reader plus the in-process
# chaos identity lock, and ReplicationdFuzz.* the byte-level ingest
# fuzzing (feeder thread vs daemon ingest thread).
ctest --test-dir "$BUILD_DIR" -R "^(Simulator|Replicationd|Replfeed|ReplicationdFuzz)\." \
  --output-on-failure -j"$(nproc)"
echo "engine + fault + sim + oracle + service tests clean under ThreadSanitizer"
