#!/usr/bin/env bash
# End-to-end chaos drill for replicationd + replfeed (registered as ctest
# `replicationd_chaos`, label `service`; docs/robustness.md §7):
#
#   A replfeed with network chaos enabled (seeded connection resets,
#   mid-frame partial writes, garbage bursts) streams an event file to the
#   daemon while this script SIGKILLs the daemon on a seeded schedule and
#   restarts it with --restore. The feeder's H/S handshake re-seeks after
#   every kill; when it reports completion, the daemon's final snapshot
#   must be byte-identical (cmp) to a clean single-process run over the
#   same stream — crashes and chaos must leave no trace in the state.
#
# Environment:
#   REPLICATIOND / REPLFEED — binaries (ctest sets them; default build/apps)
#   CHAOS_EVENTS            — stream length (default 3000; ctest smoke 1200)
#   CHAOS_KILLS             — SIGKILL cycles (default 3; ctest smoke 2)
#   CHAOS_SEED              — seed of the kill schedule + chaos shim
set -euo pipefail

DAEMON_BIN="${REPLICATIOND:-build/apps/replicationd}"
FEEDER_BIN="${REPLFEED:-build/apps/replfeed}"
for bin in "$DAEMON_BIN" "$FEEDER_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "replicationd_chaos: binary not found: $bin" >&2
    exit 1
  fi
done

EVENTS="${CHAOS_EVENTS:-3000}"
KILLS="${CHAOS_KILLS:-3}"
SEED="${CHAOS_SEED:-4242}"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/replicationd_chaos.XXXXXX")"
DAEMON_PID=""
FEEDER_PID=""
cleanup() {
  [[ -n "$FEEDER_PID" ]] && kill -KILL "$FEEDER_PID" 2>/dev/null || true
  [[ -n "$DAEMON_PID" ]] && kill -KILL "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SCENARIO=(--nodes 20 --items 20 --capacity 4 --seed 11)

# Deterministic workload including K (crash) frames; no Q — the feeder
# confirms completion via the handshake instead.
"$DAEMON_BIN" --gen-stream "$EVENTS" "${SCENARIO[@]}" --seed 11 \
    --crash-fraction 0.01 --quit false --out "$WORK/stream.txt"
TOTAL_FRAMES="$(grep -cv '^\s*\(#\|$\)' "$WORK/stream.txt")"

echo "== reference: clean single-process run ($TOTAL_FRAMES frames) =="
"$DAEMON_BIN" "${SCENARIO[@]}" --input "$WORK/stream.txt" --port -1 \
    --snapshot "$WORK/reference.snap" 2> "$WORK/reference.log"

start_daemon() {
  local restore_flag="$1"
  "$DAEMON_BIN" "${SCENARIO[@]}" \
      --socket "$WORK/repl.sock" --port -1 \
      --snapshot "$WORK/chaos.snap" --snapshot-every 101 \
      $restore_flag 2>> "$WORK/daemon.log" &
  DAEMON_PID=$!
  for _ in $(seq 100); do
    [[ -S "$WORK/repl.sock" ]] && break
    sleep 0.1
  done
}

echo "== chaos run: replfeed with faults, $KILLS seeded SIGKILL cycles =="
start_daemon ""

"$FEEDER_BIN" --socket "$WORK/repl.sock" --input "$WORK/stream.txt" \
    --seed "$SEED" --chaos-seed "$SEED" \
    --chaos-reset 0.005 --chaos-partial 0.005 --chaos-garbage 0.003 \
    --backoff-base 5ms --backoff-max 100ms --reply-timeout 5s \
    2> "$WORK/feeder.log" &
FEEDER_PID=$!

# Seeded kill schedule: derive the dwell time before each SIGKILL from
# (SEED, cycle) so reruns are reproducible.
for cycle in $(seq "$KILLS"); do
  DWELL_MS=$(( 150 + (SEED * 2654435761 + cycle * 40503) % 350 ))
  sleep "$(awk -v ms="$DWELL_MS" 'BEGIN { printf "%.3f", ms / 1000 }')"
  kill -0 "$FEEDER_PID" 2>/dev/null || break  # feeder already done
  kill -KILL "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
  echo "cycle $cycle: SIGKILL after ${DWELL_MS}ms; restarting with --restore"
  start_daemon "--restore"
done

# The feeder retries through every kill; it exits 0 only when the daemon
# acked all frames.
FEEDER_STATUS=0
wait "$FEEDER_PID" || FEEDER_STATUS=$?
FEEDER_PID=""
if [[ "$FEEDER_STATUS" -ne 0 ]]; then
  echo "FAIL: replfeed exited $FEEDER_STATUS" >&2
  cat "$WORK/feeder.log" >&2
  exit 1
fi
grep -q "complete" "$WORK/feeder.log" \
  || { echo "FAIL: feeder did not report completion"; cat "$WORK/feeder.log"; exit 1; }

# Close the harness race: a SIGKILL can land between the feeder's final
# completion ack and its exit, restoring the replacement daemon from a
# stale periodic snapshot that nobody re-feeds. A chaos-free top-up pass
# re-handshakes and resends whatever the live daemon is missing — a
# no-op (zero frames sent) when it is already current.
"$FEEDER_BIN" --socket "$WORK/repl.sock" --input "$WORK/stream.txt" \
    --seed "$SEED" --backoff-base 5ms --backoff-max 100ms \
    --reply-timeout 5s 2>> "$WORK/feeder.log" \
  || { echo "FAIL: top-up feeder pass failed"; cat "$WORK/feeder.log"; exit 1; }

# Graceful stop writes the final snapshot.
kill -TERM "$DAEMON_PID"
for _ in $(seq 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.1
done
wait "$DAEMON_PID" || { echo "FAIL: daemon SIGTERM exit status $?"; exit 1; }
DAEMON_PID=""

cmp "$WORK/reference.snap" "$WORK/chaos.snap" \
  || { echo "FAIL: chaos run diverged from the clean reference"; exit 1; }

echo "replicationd_chaos: $TOTAL_FRAMES frames through $KILLS kills + chaos,"
echo "final snapshot byte-identical to the clean run"
grep -E "^replfeed: (complete|INCOMPLETE)" "$WORK/feeder.log" || true
