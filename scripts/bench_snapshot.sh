#!/usr/bin/env bash
# Perf snapshot for the greedy/simulator hot paths (see docs/perf.md).
#
# Runs the oracle-vs-naive micro-benchmarks — marginal-gain evaluation,
# the fig5-like end-to-end greedy (98 nodes, 500 items) and the transform
# memo — and writes the google-benchmark JSON to BENCH_PR2.json so the
# perf trajectory is tracked in-repo. The naive benches ARE the "before"
# numbers: they run the pre-oracle evaluation paths on the same instance.
#
# Usage:
#   scripts/bench_snapshot.sh                 # full snapshot -> BENCH_PR2.json
#   scripts/bench_snapshot.sh --check         # ~2 s smoke, no JSON written
#   scripts/bench_snapshot.sh --bin PATH      # use an existing binary
#   scripts/bench_snapshot.sh --out FILE      # JSON destination
#
# Without --bin the script configures and builds a Release tree in
# build-bench/ (benchmarks from unoptimized trees are not comparable).
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN=""
OUT="$ROOT/BENCH_PR2.json"
CHECK=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) CHECK=1 ;;
    --bin) BIN="$2"; shift ;;
    --out) OUT="$2"; shift ;;
    *) echo "bench_snapshot.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BIN" ]]; then
  cmake -S "$ROOT" -B "$ROOT/build-bench" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-bench" --target micro_benchmarks -j
  BIN="$ROOT/build-bench/bench/micro_benchmarks"
fi

FILTER='BM_(MarginalGainNaive|MarginalOracle|LazyGreedyFig5Oracle|LazyGreedyFig5Naive|LossTransformTabulated|LossTransformCached)$'

if [[ "$CHECK" == 1 ]]; then
  # Smoke subset: skip the end-to-end greedy benches (the naive baseline
  # alone takes ~1 s per iteration) and cap the per-bench time so the
  # whole run stays around two seconds. Exercises the shared fig5
  # instance setup, both marginal paths and the placement identity check
  # is covered by ctest -L perf instead.
  exec "$BIN" \
    --benchmark_filter='BM_(MarginalGainNaive|MarginalOracle|LossTransformTabulated|LossTransformCached)$' \
    --benchmark_min_time=0.05
fi

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true
echo "wrote $OUT"
