#!/usr/bin/env bash
# Perf snapshot for the greedy/simulator hot paths (see docs/perf.md).
#
# Runs the before/after micro-benchmark pairs — marginal-gain evaluation,
# the fig5-like end-to-end greedy (98 nodes, 500 items), the transform
# memo, demand sampling (linear scan vs alias tables) and the fig6-like
# simulation kernels (slot-stepped vs event-driven) — and writes the
# google-benchmark JSON to BENCH_PR<current>.json so the perf trajectory
# accrues in-repo. The *Naive/*Linear/*Slot benches ARE the "before"
# numbers: they run the reference paths on the same instances.
#
# The PR number defaults to the highest "PR N" entry in CHANGES.md plus
# one (i.e. the PR currently being built); a fresh checkout therefore
# never silently overwrites an older PR's committed snapshot.
#
# Usage:
#   scripts/bench_snapshot.sh                 # full snapshot -> BENCH_PR<current>.json
#   scripts/bench_snapshot.sh --check         # ~2 s smoke, no JSON written
#   scripts/bench_snapshot.sh --pr N          # snapshot for a specific PR number
#   scripts/bench_snapshot.sh --bin PATH      # use an existing binary
#   scripts/bench_snapshot.sh --out FILE      # JSON destination (overrides --pr)
#
# Without --bin the script configures and builds a Release tree in
# build-bench/ (benchmarks from unoptimized trees are not comparable).
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN=""
OUT=""
PR=""
CHECK=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) CHECK=1 ;;
    --bin) BIN="$2"; shift ;;
    --out) OUT="$2"; shift ;;
    --pr) PR="$2"; shift ;;
    *) echo "bench_snapshot.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$PR" ]]; then
  LAST=$(grep -oE '^PR [0-9]+' "$ROOT/CHANGES.md" 2>/dev/null |
         awk '{print $2}' | sort -n | tail -1)
  PR=$(( ${LAST:-1} + 1 ))
fi
if [[ -z "$OUT" ]]; then
  OUT="$ROOT/BENCH_PR${PR}.json"
fi

if [[ -z "$BIN" ]]; then
  cmake -S "$ROOT" -B "$ROOT/build-bench" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-bench" --target micro_benchmarks -j
  BIN="$ROOT/build-bench/bench/micro_benchmarks"
fi

FILTER='BM_(MarginalGainNaive|MarginalOracle|LazyGreedyFig5Oracle|LazyGreedyFig5Naive|LossTransformTabulated|LossTransformCached|DemandSampleLinear|DemandSampleAlias|SimulateFig6Slot|SimulateFig6Event)'

if [[ "$CHECK" == 1 ]]; then
  # Smoke subset: skip the end-to-end greedy benches (the naive baseline
  # alone takes ~1 s per iteration) and the fig6 kernel benches (their
  # shared instance builds a week-long trace), and cap the per-bench time
  # so the whole run stays around two seconds. Exercises the shared fig5
  # instance setup, both marginal paths and both demand samplers; the
  # placement identity check is covered by ctest -L perf and the kernel
  # equivalence by ctest -L sim instead.
  exec "$BIN" \
    --benchmark_filter='BM_(MarginalGainNaive|MarginalOracle|LossTransformTabulated|LossTransformCached|DemandSampleLinear|DemandSampleAlias)' \
    --benchmark_min_time=0.05
fi

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true
echo "wrote $OUT"
