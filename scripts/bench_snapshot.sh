#!/usr/bin/env bash
# Perf snapshot for the greedy/simulator hot paths (see docs/perf.md).
#
# Runs the before/after micro-benchmark pairs — marginal-gain evaluation,
# the fig5-like end-to-end greedy (98 nodes, 500 items), the transform
# memo, demand sampling (linear scan vs alias tables), the fig6-like
# simulation kernels (slot-stepped vs event-driven), the fig3-like faulty
# kernels and the QCR welfare probe (from-scratch vs incremental) — and
# writes the google-benchmark JSON to BENCH_PR<current>.json so the perf
# trajectory accrues in-repo. The *Naive/*Linear/*Slot/*Scratch benches
# ARE the "before" numbers: they run the reference paths on the same
# instances.
#
# Snapshots refuse to run unless the binary reports
# impatience_build_type == Release (the custom context micro_benchmarks
# registers; google-benchmark's own library_build_type describes the
# distro benchmark library, which is always debug). BENCH_PR4.json was
# captured from an unoptimized binary because only library_build_type was
# checked by eye — --allow-debug keeps that mistake possible but loud.
#
# The PR number defaults to the highest "PR N" entry in CHANGES.md plus
# one (i.e. the PR currently being built); a fresh checkout therefore
# never silently overwrites an older PR's committed snapshot.
#
# Usage:
#   scripts/bench_snapshot.sh                 # full snapshot -> BENCH_PR<current>.json
#   scripts/bench_snapshot.sh --check         # ~2 s smoke + regression diff, no JSON
#   scripts/bench_snapshot.sh --pr N          # snapshot for a specific PR number
#   scripts/bench_snapshot.sh --bin PATH      # use an existing binary
#   scripts/bench_snapshot.sh --out FILE      # JSON destination (overrides --pr)
#   scripts/bench_snapshot.sh --allow-debug   # snapshot a non-Release binary anyway
#
# --check also diffs the two newest committed BENCH_PR*.json: shared
# *_mean entries that regressed by more than 20% fail the check. The two
# snapshots are only comparable when both were captured from Release
# binaries; otherwise the diff is skipped with a note.
#
# Without --bin the script configures and builds a Release tree in
# build-bench/ (benchmarks from unoptimized trees are not comparable).
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN=""
OUT=""
PR=""
CHECK=0
ALLOW_DEBUG=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) CHECK=1 ;;
    --bin) BIN="$2"; shift ;;
    --out) OUT="$2"; shift ;;
    --pr) PR="$2"; shift ;;
    --allow-debug) ALLOW_DEBUG=1 ;;
    *) echo "bench_snapshot.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$PR" ]]; then
  LAST=$(grep -oE '^PR [0-9]+' "$ROOT/CHANGES.md" 2>/dev/null |
         awk '{print $2}' | sort -n | tail -1)
  PR=$(( ${LAST:-1} + 1 ))
fi
if [[ -z "$OUT" ]]; then
  OUT="$ROOT/BENCH_PR${PR}.json"
fi

if [[ -z "$BIN" ]]; then
  cmake -S "$ROOT" -B "$ROOT/build-bench" -DCMAKE_BUILD_TYPE=Release
  # fig4_homogeneous feeds the peak-RSS context of full snapshots.
  cmake --build "$ROOT/build-bench" --target micro_benchmarks \
        fig4_homogeneous -j
  BIN="$ROOT/build-bench/bench/micro_benchmarks"
fi

# Build type of the binary itself, from the custom benchmark context (a
# sub-millisecond run of the cheapest benchmark prints the context block).
bin_build_type() {
  "$1" --benchmark_filter='^BM_RngUniform$' --benchmark_min_time=0.001 \
       --benchmark_format=json 2>/dev/null |
    python3 -c 'import json, sys
print(json.load(sys.stdin)["context"].get("impatience_build_type", "unknown"))'
}

FILTER='BM_(MarginalGainNaive|MarginalOracle|LazyGreedyFig5Oracle|LazyGreedyFig5Naive|LossTransformTabulated|LossTransformCached|DemandSampleLinear|DemandSampleAlias|SimulateFig6Slot|SimulateFig6Event|SimulateFig3FaultySlot|SimulateFig3FaultyEvent|SimulateFig5Intra1|SimulateFig5Intra4|SimulateFig5Intra8|PartitionSlot|QcrWelfareProbeScratch|QcrWelfareProbeIncremental|SimulateFig4Event500|MeanFieldFig4|MaterializedTrace|StreamingTrace|ServiceThroughput|ServiceSnapshot|SnapshotDelta|ServiceMetricsScrape|FeederThroughput)'

if [[ "$CHECK" == 1 ]]; then
  # Smoke subset: skip the end-to-end greedy benches (the naive baseline
  # alone takes ~1 s per iteration) and the fig6/fig3 kernel benches
  # (their shared instances build week-long traces), and cap the
  # per-bench time so the whole run stays around two seconds. Exercises
  # the shared fig5 instance setup, both marginal paths, both demand
  # samplers, both welfare-probe paths and the small service-throughput
  # instance; the placement identity check is covered by ctest -L perf
  # and the kernel equivalence by ctest -L sim instead.
  "$BIN" \
    --benchmark_filter='BM_(MarginalGainNaive|MarginalOracle|LossTransformTabulated|LossTransformCached|DemandSampleLinear|DemandSampleAlias|QcrWelfareProbeScratch|QcrWelfareProbeIncremental|ServiceThroughput/50$)' \
    --benchmark_min_time=0.05

  # Regression diff of the two newest committed snapshots: shared
  # *_median entries must not be >20% slower in the newer one AND stand
  # out from the pair's own noise distribution (robust z > 3 on
  # log-ratios). The second condition is what makes the gate usable on
  # this container: the host's clock phase and per-binary code layout
  # shift 10 ns microbenches by +-25% between captures, in BOTH
  # directions at once, so an absolute threshold alone flags drift as
  # regression. A real code-caused slowdown hits one entry while the
  # other ~25 stay put, which is exactly what an outlier test detects.
  python3 - "$ROOT" <<'EOF'
import glob, json, math, os, re, statistics, sys

root = sys.argv[1]
snaps = []
for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
    m = re.match(r"BENCH_PR(\d+)\.json$", os.path.basename(path))
    if m:
        snaps.append((int(m.group(1)), path))
snaps.sort()

# Two files that parse to the same PR number (BENCH_PR9.json next to
# BENCH_PR09.json) make "the two newest snapshots" ambiguous — there is
# no right answer for which is the baseline, so refuse loudly instead of
# diffing against an arbitrary one.
by_pr = {}
for pr, path in snaps:
    by_pr.setdefault(pr, []).append(os.path.basename(path))
ties = {pr: paths for pr, paths in by_pr.items() if len(paths) > 1}
if ties:
    for pr, paths in sorted(ties.items()):
        print(f"bench check: ERROR: PR{pr} has {len(paths)} snapshot "
              f"files ({', '.join(sorted(paths))}); remove all but one")
    sys.exit(1)

if len(snaps) < 2:
    print("bench check: <2 committed snapshots, regression diff skipped")
    sys.exit(0)

(old_pr, old_path), (new_pr, new_path) = snaps[-2], snaps[-1]
print(f"bench check: rolling baseline is "
      f"{os.path.basename(old_path)} (newest snapshot: "
      f"{os.path.basename(new_path)})")
with open(old_path) as f:
    old = json.load(f)
with open(new_path) as f:
    new = json.load(f)

def build_type(snapshot):
    return snapshot["context"].get("impatience_build_type", "unknown")

if build_type(old) != "Release" or build_type(new) != "Release":
    print(f"bench check: PR{old_pr} ({build_type(old)}) vs PR{new_pr} "
          f"({build_type(new)}) are not both Release snapshots, "
          "regression diff skipped")
    sys.exit(0)

# Medians, not means: the capture container's throughput swings by tens
# of percent between repetitions (single shared CPU; see the num_cpus:1
# caveat in docs/perf.md §5), and one slow repetition drags a mean past
# any sane threshold while the median shrugs it off.
def medians(snapshot):
    return {b["name"]: b["real_time"] for b in snapshot["benchmarks"]
            if b["name"].endswith("_median")}

old_med, new_med = medians(old), medians(new)
shared = sorted(set(old_med) & set(new_med))

# Noise envelope of this snapshot pair: robust sigma (1.4826 * MAD) of
# the log-ratios across all shared entries. With fewer than 8 shared
# entries the estimate is meaningless — fall back to the absolute rule.
log_ratios = {n: math.log(new_med[n] / old_med[n]) for n in shared}
center = statistics.median(log_ratios.values()) if shared else 0.0
mad = (statistics.median(abs(v - center) for v in log_ratios.values())
       if shared else 0.0)
sigma = 1.4826 * mad
use_z = len(shared) >= 8 and sigma > 1e-9

regressions = []
for name in shared:
    ratio = new_med[name] / old_med[name]
    if ratio <= 1.20:
        continue
    z = (log_ratios[name] - center) / sigma if use_z else float("inf")
    if z > 3.0:
        regressions.append(f"  {name}: {old_med[name]:.1f} -> "
                           f"{new_med[name]:.1f} ns ({ratio:.2f}x, "
                           f"z={z:.1f})")
    else:
        print(f"bench check: {name} {ratio:.2f}x is within host noise "
              f"(z={z:.1f} <= 3.0), not flagged")
print(f"bench check: PR{new_pr} vs PR{old_pr}, "
      f"{len(shared)} shared *_median entries, "
      f"drift center {math.exp(center):.3f}x, sigma {sigma:.3f}")
if regressions:
    print(f"bench check: regressions vs BENCH_PR{old_pr}.json "
          "(>20% and robust z > 3):")
    print("\n".join(regressions))
    sys.exit(1)
print("bench check: no regressions outside the noise envelope")
EOF
  exit 0
fi

BUILD_TYPE=$(bin_build_type "$BIN")
if [[ "$BUILD_TYPE" != "Release" && "$ALLOW_DEBUG" != 1 ]]; then
  echo "bench_snapshot.sh: refusing to snapshot a '$BUILD_TYPE' binary;" >&2
  echo "  build with -DCMAKE_BUILD_TYPE=Release or pass --allow-debug" >&2
  exit 3
fi

# Best-of-N capture: the container's effective CPU speed drifts by tens
# of percent over minutes (shared host), and a slow phase poisons every
# repetition of whichever benchmarks run inside it. Running the whole
# suite BENCH_RUNS times and keeping, per benchmark, the aggregates from
# its fastest run (lowest median) estimates unloaded speed — the only
# number comparable across snapshots taken on different days.
RUNS="${BENCH_RUNS:-3}"

# Peak-RSS context (docs/perf.md §6): one million-node mean-field fig4
# run records the no-trace path's memory high-water mark alongside the
# timing snapshot. The harness binary prints "[mem] peak_rss_kb=..."
# (getrusage) on stdout; skipped with a note when it is not built next
# to $BIN.
FIG4="$(dirname "$BIN")/fig4_homogeneous"
FIG4_ARGS="--eval mf --nodes 1000000 --items 50 --slots 5000"
RSS_KB=""
if [[ -x "$FIG4" ]]; then
  RSS_KB=$("$FIG4" $FIG4_ARGS | sed -n 's/^\[mem\] peak_rss_kb=//p')
  echo "fig4 mean-field N=10^6 peak RSS: ${RSS_KB:-unknown} KiB"
else
  echo "bench_snapshot.sh: $FIG4 not found; peak-RSS context skipped" >&2
fi

for r in $(seq "$RUNS"); do
  "$BIN" \
    --benchmark_filter="$FILTER" \
    --benchmark_out="$OUT.run$r" \
    --benchmark_out_format=json \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true
done
python3 - "$OUT" "$RUNS" "$RSS_KB" "$FIG4_ARGS" <<'EOF'
import json, sys

out, runs = sys.argv[1], int(sys.argv[2])
rss_kb, fig4_args = sys.argv[3], sys.argv[4]
snaps = [json.load(open(f"{out}.run{r}")) for r in range(1, runs + 1)]

def family_median(snapshot):
    return {b["run_name"]: b["real_time"] for b in snapshot["benchmarks"]
            if b["name"].endswith("_median")}

medians = [family_median(s) for s in snaps]
merged = dict(snaps[0])
merged["benchmarks"] = []
for bench in snaps[0]["benchmarks"]:
    family = bench["run_name"]
    best = min(range(runs), key=lambda r: medians[r].get(family,
                                                        float("inf")))
    for candidate in snaps[best]["benchmarks"]:
        if (candidate["run_name"] == family and
                candidate["name"] == bench["name"]):
            merged["benchmarks"].append(candidate)
            break
if rss_kb:
    merged["context"]["fig4_mf_args"] = fig4_args
    merged["context"]["fig4_mf_peak_rss_kb"] = int(rss_kb)
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
print(f"merged best-of-{runs} aggregates into {out}")
EOF
rm -f "$OUT".run*
echo "wrote $OUT"
