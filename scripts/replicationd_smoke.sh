#!/usr/bin/env bash
# End-to-end replicationd smoke (registered as ctest `replicationd_smoke`,
# label `service`):
#
#   Phase 1 — boot the daemon on a Unix socket with an ephemeral metrics
#   port, stream 1k+ events through the socket, scrape /metrics, and shut
#   down via SIGTERM (graceful: exit 0, final snapshot written).
#
#   Phase 2 — crash-safety + warm restart: run with --snapshot-every, kill
#   the daemon with SIGKILL mid-stream, restart with --restore, feed the
#   tail of the stream, and require the final snapshot to be byte-identical
#   to an uninterrupted reference run (docs/service.md).
#
#   Phase 3 — the PR 10 surfaces end to end: TCP ingest, the sharded
#   parallel apply pipeline, and the incremental delta chain. Boot with
#   --tcp/--shards/--snapshot-deltas, SIGKILL mid-run at a delta
#   checkpoint, --restore from the base+delta chain, feed the tail, and
#   require the finalized base to be byte-identical to the same
#   uninterrupted reference run as phase 2.
#
# Environment: REPLICATIOND points at the built binary (the ctest wrapper
# sets it); defaults to build/apps/replicationd for manual runs.
set -euo pipefail

BIN="${REPLICATIOND:-build/apps/replicationd}"
if [[ ! -x "$BIN" ]]; then
  echo "replicationd_smoke: binary not found: $BIN" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/replicationd_smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  [[ -n "$DAEMON_PID" ]] && kill -KILL "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SCENARIO=(--nodes 20 --items 20 --capacity 4 --seed 7)

wait_for_file() {
  local path="$1"
  for _ in $(seq 100); do
    [[ -s "$path" ]] && return 0
    sleep 0.1
  done
  echo "replicationd_smoke: timed out waiting for $path" >&2
  return 1
}

wait_for_exit() {
  local pid="$1"
  for _ in $(seq 100); do
    kill -0 "$pid" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "replicationd_smoke: pid $pid did not exit" >&2
  return 1
}

# Deterministic workload, shared by both phases. The generator emits a
# trailing Q frame; phases that must keep the daemon alive strip it.
"$BIN" --gen-stream 1000 "${SCENARIO[@]}" --out "$WORK/stream.txt"
grep -v '^Q$' "$WORK/stream.txt" > "$WORK/stream_noquit.txt"

feed_socket() {
  local socket="$1" file="$2"
  python3 - "$socket" "$file" <<'PY'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
with open(sys.argv[2], "rb") as f:
    s.sendall(f.read())
s.close()
PY
}

feed_tcp() {
  local port="$1" file="$2"
  python3 - "$port" "$file" <<'PY'
import socket, sys
s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
s.connect(("127.0.0.1", int(sys.argv[1])))
with open(sys.argv[2], "rb") as f:
    s.sendall(f.read())
s.close()
PY
}

http_get() {
  local port="$1" path="$2"
  python3 - "$port" "$path" <<'PY'
import sys, urllib.request
url = f"http://127.0.0.1:{sys.argv[1]}{sys.argv[2]}"
with urllib.request.urlopen(url, timeout=10) as r:
    sys.stdout.write(r.read().decode())
PY
}

metric() {  # metric <file> <key>
  awk -v key="$2" '$1 == key { print $2 }' "$1"
}

echo "== phase 1: boot, stream via socket, scrape /metrics, SIGTERM =="
"$BIN" "${SCENARIO[@]}" \
    --socket "$WORK/repl.sock" --port 0 --announce "$WORK/announce.txt" \
    --snapshot "$WORK/phase1.snap" \
    2> "$WORK/phase1.log" &
DAEMON_PID=$!
wait_for_file "$WORK/announce.txt"
PORT="$(metric "$WORK/announce.txt" http_port)"

feed_socket "$WORK/repl.sock" "$WORK/stream_noquit.txt"

# Wait until every frame of the stream has been applied, then scrape.
TOTAL_FRAMES="$(grep -cv '^\s*\(#\|$\)' "$WORK/stream_noquit.txt")"
for _ in $(seq 100); do
  http_get "$PORT" /metrics > "$WORK/metrics.txt" || true
  [[ "$(metric "$WORK/metrics.txt" replicationd_events_total)" == "$TOTAL_FRAMES" ]] && break
  sleep 0.1
done

[[ "$(metric "$WORK/metrics.txt" replicationd_events_total)" == "$TOTAL_FRAMES" ]] \
  || { echo "FAIL: /metrics events_total != $TOTAL_FRAMES"; cat "$WORK/metrics.txt"; exit 1; }
[[ "$(metric "$WORK/metrics.txt" replicationd_mandate_conservation_ok)" == "1" ]] \
  || { echo "FAIL: mandate conservation violated"; exit 1; }
SERVED="$(metric "$WORK/metrics.txt" replicationd_requests_served_total)"
[[ "$SERVED" -gt 0 ]] || { echo "FAIL: no requests served"; exit 1; }
[[ "$(http_get "$PORT" /healthz)" == "ok" ]] || { echo "FAIL: /healthz"; exit 1; }

kill -TERM "$DAEMON_PID"
wait_for_exit "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: SIGTERM exit status $?"; exit 1; }
DAEMON_PID=""
[[ -s "$WORK/phase1.snap" ]] || { echo "FAIL: no final snapshot"; exit 1; }
echo "phase 1 OK: $TOTAL_FRAMES events, $SERVED served, graceful SIGTERM"

echo "== phase 2: SIGKILL mid-run, --restore warm-restart equivalence =="
# Reference: uninterrupted run over the whole stream.
"$BIN" "${SCENARIO[@]}" --input "$WORK/stream.txt" --port -1 \
    --snapshot "$WORK/reference.snap" 2> "$WORK/reference.log"

# Interrupted run: snapshot every 200 events, SIGKILL after the snapshot
# at seq 600 exists, restore, feed exactly the not-yet-applied tail.
split -l 700 "$WORK/stream_noquit.txt" "$WORK/part_"
"$BIN" "${SCENARIO[@]}" \
    --socket "$WORK/repl2.sock" --port -1 \
    --snapshot "$WORK/phase2.snap" --snapshot-every 200 \
    2> "$WORK/phase2.log" &
DAEMON_PID=$!
for _ in $(seq 100); do
  [[ -S "$WORK/repl2.sock" ]] && break
  sleep 0.1
done
feed_socket "$WORK/repl2.sock" "$WORK/part_aa"
wait_for_file "$WORK/phase2.snap"
# Let it reach the last multiple-of-200 snapshot covered by part_aa.
for _ in $(seq 100); do
  SEQ="$(awk '/^state /{ print $3 }' "$WORK/phase2.snap" 2>/dev/null || true)"
  [[ "${SEQ:-0}" -ge 600 ]] && break
  sleep 0.1
done
kill -KILL "$DAEMON_PID"   # no graceful path: the snapshot is all we keep
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

SEQ="$(awk '/^state /{ print $3 }' "$WORK/phase2.snap")"
[[ "$SEQ" -ge 200 ]] || { echo "FAIL: no usable snapshot (seq=$SEQ)"; exit 1; }
echo "killed at snapshot seq=$SEQ; restoring and replaying the tail"

# Feed exactly the frames the snapshot has not seen (frames are applied in
# order, so the snapshot's seq is a cursor into the noise-free stream).
grep -v '^\s*\(#\|$\)' "$WORK/stream_noquit.txt" | tail -n "+$((SEQ + 1))" \
  > "$WORK/tail.txt"
"$BIN" "${SCENARIO[@]}" --input "$WORK/tail.txt" --port -1 \
    --snapshot "$WORK/phase2.snap" --restore 2> "$WORK/restore.log"
grep -q "(restored)" "$WORK/restore.log" \
  || { echo "FAIL: daemon did not restore"; cat "$WORK/restore.log"; exit 1; }

cmp "$WORK/reference.snap" "$WORK/phase2.snap" \
  || { echo "FAIL: warm restart diverged from uninterrupted run"; exit 1; }
echo "phase 2 OK: SIGKILL + --restore is byte-identical to the reference"

echo "== phase 3: TCP + sharded apply + delta chain, SIGKILL, --restore =="
chain_seq() {  # seq the committed manifest's last element ends at
  awk '$1 == "base" || $1 == "delta" { seq = $4 } END { print seq + 0 }' \
      "$WORK/phase3.snap.manifest" 2>/dev/null || echo 0
}
"$BIN" "${SCENARIO[@]}" \
    --tcp 0 --port -1 --announce "$WORK/announce3.txt" \
    --shards 8 --apply-threads 2 --apply-window 64 \
    --snapshot "$WORK/phase3.snap" --snapshot-every 200 \
    --snapshot-deltas true --snapshot-delta-limit 16 \
    2> "$WORK/phase3.log" &
DAEMON_PID=$!
wait_for_file "$WORK/announce3.txt"
TCP_PORT="$(metric "$WORK/announce3.txt" tcp_port)"
[[ -n "$TCP_PORT" ]] || { echo "FAIL: no tcp_port announced"; exit 1; }

feed_tcp "$TCP_PORT" "$WORK/part_aa"
wait_for_file "$WORK/phase3.snap.manifest"
# Let the chain reach the last multiple-of-200 checkpoint in part_aa:
# base at seq 200, deltas at 400 and 600.
for _ in $(seq 100); do
  [[ "$(chain_seq)" -ge 600 ]] && break
  sleep 0.1
done
kill -KILL "$DAEMON_PID"   # the committed chain is all we keep
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

SEQ="$(chain_seq)"
[[ "$SEQ" -ge 200 ]] || { echo "FAIL: no usable chain (seq=$SEQ)"; exit 1; }
DELTA_COUNT="$(awk '$1 == "delta"' "$WORK/phase3.snap.manifest" | wc -l)"
[[ "$DELTA_COUNT" -ge 1 ]] \
  || { echo "FAIL: chain has no deltas (the phase must exercise them)"; exit 1; }
echo "killed at chain seq=$SEQ ($DELTA_COUNT deltas); restoring from the chain"

grep -v '^\s*\(#\|$\)' "$WORK/stream_noquit.txt" | tail -n "+$((SEQ + 1))" \
  > "$WORK/tail3.txt"
"$BIN" "${SCENARIO[@]}" --input "$WORK/tail3.txt" --port -1 \
    --shards 8 --apply-threads 2 --apply-window 64 \
    --snapshot "$WORK/phase3.snap" --snapshot-deltas true --restore \
    2> "$WORK/restore3.log"
grep -q "(restored)" "$WORK/restore3.log" \
  || { echo "FAIL: daemon did not restore from the chain"; cat "$WORK/restore3.log"; exit 1; }

# Graceful exit finalizes the chain into a single full base; that base
# must be byte-identical to the plain uninterrupted reference snapshot.
FINAL_SEQ="$(chain_seq)"
FINAL_DELTAS="$(awk '$1 == "delta"' "$WORK/phase3.snap.manifest" | wc -l)"
[[ "$FINAL_DELTAS" -eq 0 ]] \
  || { echo "FAIL: finalize left $FINAL_DELTAS deltas in the chain"; exit 1; }
cmp "$WORK/reference.snap" "$WORK/phase3.snap.base.$FINAL_SEQ" \
  || { echo "FAIL: chain restore diverged from uninterrupted run"; exit 1; }
echo "phase 3 OK: TCP + shards + delta chain is byte-identical to the reference"

echo "replicationd_smoke: all phases passed"
