// replicationd — long-running replication service for opportunistic
// networks (docs/service.md).
//
// Serve mode (default): own the live QCR cache state, ingest protocol
// frames from a Unix socket / file / stdin, expose /metrics, persist
// crash-safe snapshots, support warm restart:
//
//   replicationd --nodes 50 --items 50 --capacity 5 \
//       --socket /tmp/repl.sock --port 0 --announce /tmp/repl.announce \
//       --snapshot /tmp/repl.snap --snapshot-interval 30s --seed 7
//   replicationd ... --restore          # warm restart from the snapshot
//
// Generator mode: emit a deterministic synthetic stream for tests and
// load drivers, then exit:
//
//   replicationd --gen-stream 1000 --nodes 50 --items 50 --seed 7 --out -
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "impatience/engine/watchdog.hpp"
#include "impatience/service/daemon.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/util/flags.hpp"

namespace {

using namespace impatience;

// Signal handling: handlers may only touch lock-free atomics, so SIGTERM
// and SIGINT cancel the daemon's token with `shutdown`; the ingest loop's
// token watcher notices within a poll tick and unwinds gracefully.
util::CancellationToken* g_token = nullptr;

void handle_signal(int) {
  if (g_token) g_token->cancel(util::CancelReason::shutdown);
}

int run_generator(const util::Flags& flags) {
  service::StreamConfig config;
  config.events =
      static_cast<std::uint64_t>(flags.get_long("gen-stream", 1000));
  config.num_nodes =
      static_cast<service::NodeId>(flags.get_int("nodes", 50));
  config.num_items =
      static_cast<service::ItemId>(flags.get_int("items", 50));
  config.zipf = flags.get_double("zipf", 1.0);
  config.request_fraction = flags.get_double("request-fraction", 0.5);
  config.crash_fraction = flags.get_double("crash-fraction", 0.0);
  config.slots_per_event = flags.get_double("slots-per-event", 0.5);
  config.quit = flags.get_bool("quit", true);
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 1));
  const auto events = service::generate_stream(config, seed);

  const std::string out_path = flags.get_string("out", "-");
  if (out_path == "-") {
    service::write_stream(std::cout, events);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "replicationd: cannot write " << out_path << '\n';
      return 1;
    }
    service::write_stream(out, events);
  }
  return 0;
}

int run_daemon(const util::Flags& flags) {
  service::DaemonConfig config;
  config.store.num_nodes =
      static_cast<service::NodeId>(flags.get_int("nodes", 50));
  config.store.num_items =
      static_cast<service::ItemId>(flags.get_int("items", 50));
  config.store.cache_capacity = flags.get_int("capacity", 5);
  config.store.sticky_replicas = flags.get_bool("sticky", true);
  config.store.utility_spec = flags.get_string("utility", "step:tau=10");
  config.store.mu = flags.get_double("mu", 0.05);
  config.store.reaction_scale = flags.get_double("scale", 1.0);
  config.store.mandate_routing = flags.get_bool("mandate-routing", true);
  config.seed = static_cast<std::uint64_t>(flags.get_long("seed", 1));
  config.socket_path = flags.get_string("socket", "");
  config.tcp_port = flags.get_int("tcp", -1);
  config.input_path = flags.get_string("input", "-");
  config.follow = flags.get_bool("follow", false);
  config.follow_poll_s = flags.get_duration("follow-poll", 0.05);
  config.ingest_buffer_bytes = static_cast<std::size_t>(
      flags.get_long("ingest-buffer", 256 * 1024));
  config.http_port = flags.get_int("port", 0);
  config.snapshot_path = flags.get_string("snapshot", "");
  config.snapshot_interval_s = flags.get_duration("snapshot-interval", 0.0);
  config.snapshot_every =
      static_cast<std::uint64_t>(flags.get_long("snapshot-every", 0));
  config.restore = flags.get_bool("restore", false);
  config.snapshot_deltas = flags.get_bool("snapshot-deltas", false);
  config.snapshot_delta_limit = static_cast<std::size_t>(
      flags.get_long("snapshot-delta-limit", 16));
  config.apply.shards =
      static_cast<unsigned>(flags.get_int("shards", 1));
  config.apply.threads =
      static_cast<unsigned>(flags.get_int("apply-threads", 1));
  config.apply.window = static_cast<std::size_t>(
      flags.get_long("apply-window", 256));
  config.announce_path = flags.get_string("announce", "");
  const double deadline_s = flags.get_duration("deadline", 0.0);

  service::ReplicationDaemon daemon(config);

  util::CancellationToken token;
  g_token = &token;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // --deadline rides on the engine's watchdog; its expiry cancels with
  // `deadline`, which run() converts into a CancelledError whose reason
  // the engine manifests as error_kind "timeout" — distinguishable from
  // the SIGTERM path above ("shutdown").
  std::unique_ptr<engine::DeadlineWatchdog> watchdog;
  if (deadline_s > 0.0) {
    watchdog = std::make_unique<engine::DeadlineWatchdog>(deadline_s);
    watchdog->arm(&token);
  }

  std::cerr << "replicationd: serving"
            << (daemon.restored() ? " (restored)" : "") << ", nodes="
            << config.store.num_nodes << " items=" << config.store.num_items
            << (daemon.http_port() != 0
                    ? " http=127.0.0.1:" + std::to_string(daemon.http_port())
                    : "")
            << (config.socket_path.empty() ? "" : " socket=" +
                                                      config.socket_path)
            << (daemon.tcp_port() != 0
                    ? " tcp=127.0.0.1:" + std::to_string(daemon.tcp_port())
                    : "")
            << '\n';

  int status = 0;
  try {
    daemon.run(&token);
  } catch (const util::CancelledError& e) {
    std::cerr << "replicationd: " << e.what() << " (reason "
              << util::to_string(e.reason()) << ")\n";
    status = 3;
  }
  g_token = nullptr;

  const auto counters = daemon.store().counters();
  std::cerr << "replicationd: stopped after " << counters.events_applied
            << " events, " << counters.requests_served()
            << " requests served, version " << daemon.store().version()
            << '\n';
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::cout <<
        "replicationd [mode] [flags]\n"
        "\n"
        "Scenario:   --nodes N --items N --capacity N --utility SPEC\n"
        "            --mu X --scale X --sticky BOOL --mandate-routing BOOL\n"
        "            --seed N\n"
        "Ingest:     --socket PATH | --tcp PORT | --input FILE|- [--follow]\n"
        "            --follow-poll DUR (EOF poll period, default 50ms)\n"
        "            --ingest-buffer BYTES (socket buffer cap)\n"
        "Apply:      --shards N --apply-threads N --apply-window N\n"
        "            (sharded parallel pipeline; byte-identical output)\n"
        "Monitor:    --port N (0 = ephemeral, -1 = off) --announce FILE\n"
        "Snapshots:  --snapshot FILE --snapshot-interval DUR\n"
        "            --snapshot-every N --restore\n"
        "            --snapshot-deltas BOOL --snapshot-delta-limit N\n"
        "Lifecycle:  --deadline DUR (cancel reason: deadline)\n"
        "Generator:  --gen-stream N --out FILE|- [--zipf X]\n"
        "            [--request-fraction X] [--crash-fraction X]\n"
        "            [--slots-per-event X] [--quit BOOL]\n";
    return 0;
  }
  try {
    if (flags.has("gen-stream")) return run_generator(flags);
    return run_daemon(flags);
  } catch (const std::exception& e) {
    std::cerr << "replicationd: " << e.what() << '\n';
    return 1;
  }
}
