// replfeed — resilient stream feeder for replicationd
// (docs/robustness.md §7).
//
// Streams an event file to the daemon's Unix-domain socket with the
// H/S seq-cursor handshake: on any disconnect it backs off (seeded
// exponential + jitter), reconnects, asks the daemon where it stopped,
// and resumes from there — so the run completes with every frame applied
// exactly once no matter how often the connection (or the daemon) dies.
//
//   replfeed --socket /tmp/repl.sock --input events.txt --seed 7
//   replfeed ... --chaos-reset 0.01 --chaos-partial 0.01
//       --chaos-garbage 0.005 --chaos-stall 0.02 --chaos-seed 42
//
// The --chaos-* flags drive the deterministic network-fault shim; its
// injection counters are printed at exit and served at GET /metrics when
// --port is given.
#include <csignal>
#include <iostream>
#include <memory>
#include <string>

#include "impatience/service/feeder.hpp"
#include "impatience/service/http.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/util/flags.hpp"

namespace {

using namespace impatience;

util::CancellationToken* g_token = nullptr;

void handle_signal(int) {
  if (g_token) g_token->cancel(util::CancelReason::shutdown);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::cout <<
        "replfeed (--socket PATH | --tcp PORT [--tcp-host H]) --input FILE\n"
        "\n"
        "Retry:      --seed N --backoff-base DUR --backoff-max DUR\n"
        "            --max-attempts N (0 = retry forever)\n"
        "            --reply-timeout DUR --quit BOOL\n"
        "Chaos:      --chaos-reset P --chaos-partial P --chaos-garbage P\n"
        "            --chaos-stall P --chaos-stall-max DUR\n"
        "            --chaos-garbage-max BYTES --chaos-seed N\n"
        "Monitor:    --port N (0 = ephemeral, -1 = off; serves /metrics)\n";
    return 0;
  }

  try {
    service::FeederConfig config;
    config.socket_path = flags.get_string("socket", "");
    config.tcp_port = flags.get_int("tcp", -1);
    config.tcp_host = flags.get_string("tcp-host", "127.0.0.1");
    config.input_path = flags.get_string("input", "");
    if ((config.socket_path.empty() && config.tcp_port < 0) ||
        config.input_path.empty()) {
      std::cerr << "replfeed: --socket or --tcp, and --input, are required\n";
      return 2;
    }
    config.seed = static_cast<std::uint64_t>(flags.get_long("seed", 1));
    config.backoff.base_seconds = flags.get_duration("backoff-base", 0.05);
    config.backoff.max_seconds = flags.get_duration("backoff-max", 2.0);
    config.max_attempts = flags.get_int("max-attempts", 0);
    config.reply_timeout_s = flags.get_duration("reply-timeout", 10.0);
    config.send_quit = flags.get_bool("quit", false);
    config.chaos.p_reset = flags.get_double("chaos-reset", 0.0);
    config.chaos.p_partial = flags.get_double("chaos-partial", 0.0);
    config.chaos.p_garbage = flags.get_double("chaos-garbage", 0.0);
    config.chaos.p_stall = flags.get_double("chaos-stall", 0.0);
    config.chaos.stall_max_seconds =
        flags.get_duration("chaos-stall-max", 0.005);
    config.chaos.garbage_max_bytes = static_cast<std::size_t>(
        flags.get_long("chaos-garbage-max", 64));
    config.chaos.seed =
        static_cast<std::uint64_t>(flags.get_long("chaos-seed", 1));
    const int port = flags.get_int("port", -1);

    service::StreamFeeder feeder(config);

    util::CancellationToken token;
    g_token = &token;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::unique_ptr<service::HttpServer> http;
    if (port >= 0) {
      http = std::make_unique<service::HttpServer>(
          [&feeder](const std::string& path) -> service::HttpResponse {
            if (path == "/metrics") {
              return {200, "text/plain; charset=utf-8",
                      render_feeder_metrics(feeder.snapshot_report())};
            }
            if (path == "/healthz") {
              return {200, "text/plain; charset=utf-8", "ok\n"};
            }
            return {404, "text/plain; charset=utf-8", "not found\n"};
          },
          static_cast<std::uint16_t>(port));
      std::cerr << "replfeed: http=127.0.0.1:" << http->port() << '\n';
    }

    std::cerr << "replfeed: streaming " << feeder.frames_total()
              << " frames to "
              << (config.socket_path.empty()
                      ? config.tcp_host + ":" +
                            std::to_string(config.tcp_port)
                      : config.socket_path)
              << (config.chaos.any() ? " (chaos on)" : "") << '\n';

    const service::FeederReport report = feeder.run(&token);
    g_token = nullptr;
    if (http) http->stop();

    std::cerr << "replfeed: " << (report.complete ? "complete" : "INCOMPLETE")
              << ", sent " << report.frames_sent << "/"
              << report.frames_total << " frames over "
              << report.connections << " connections, "
              << report.handshakes << " handshakes, "
              << report.reconnect_backoffs << " backoffs; chaos: "
              << report.chaos.resets << " resets, "
              << report.chaos.partial_writes << " partial, "
              << report.chaos.garbage_bursts << " garbage, "
              << report.chaos.stalls << " stalls\n";
    return report.complete ? 0 : 4;
  } catch (const std::exception& e) {
    std::cerr << "replfeed: " << e.what() << '\n';
    return 1;
  }
}
