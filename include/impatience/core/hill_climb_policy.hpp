// The full-knowledge hill climber sketched in Section 4.1: "starting from
// a cache allocation, a hill climbing algorithm with full knowledge can
// reach the optimal cache allocation only from local manipulation of
// cache between nodes that are currently meeting." At every meeting each
// of the two nodes may replace one cached replica by a replica of another
// item whenever the swap increases the closed-form homogeneous welfare of
// the global allocation; by concavity (Theorem 2), such local
// improvements converge to the optimum.
//
// This is an oracle baseline (it knows the demand vector, the utility and
// the global replica counts), positioned between the frozen OPT preset
// and the purely local QCR.
#pragma once

#include <vector>

#include "impatience/alloc/welfare.hpp"
#include "impatience/core/policy.hpp"

namespace impatience::core {

class HillClimbPolicy final : public ReplicationPolicy {
 public:
  /// @param demand d_i per item
  /// @param utility shared delay-utility (per-item sets work through the
  ///        UtilitySet constructor)
  /// @param model homogeneous closed-form parameters used for welfare
  HillClimbPolicy(std::vector<double> demand,
                  const utility::DelayUtility& utility,
                  alloc::HomogeneousModel model);
  HillClimbPolicy(std::vector<double> demand,
                  utility::UtilitySet utilities,
                  alloc::HomogeneousModel model);

  std::string name() const override { return "HILL"; }

  void on_initialized(std::span<const int> item_counts) override;
  void on_fulfillment(Node&, Node&, ItemId, long, util::Rng&) override {}
  void on_meeting_complete(Node& a, Node& b, util::Rng& rng) override;

  /// Number of replica swaps performed so far.
  long swaps() const noexcept { return swaps_; }

  /// Welfare of the currently tracked global allocation.
  double tracked_welfare() const;

 private:
  /// Applies the single best improving swap at this node, if any.
  /// Returns true if a swap happened.
  bool improve_node(Node& node, util::Rng& rng);

  /// Welfare change of adding one replica of `item` to the tracked
  /// allocation (demand-weighted marginal).
  double add_delta(ItemId item) const;
  /// Welfare change of removing one replica of `item`.
  double remove_delta(ItemId item) const;

  std::vector<double> demand_;
  utility::UtilitySet utilities_;
  alloc::HomogeneousModel model_;
  std::vector<int> counts_;
  bool initialized_ = false;
  long swaps_ = 0;
};

}  // namespace impatience::core
