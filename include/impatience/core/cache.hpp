// A server node's local cache: rho equal-size item slots, random
// replacement, and optionally one immortal "sticky" replica (Section 6.1:
// the initial seeder keeps its copy so no item can be lost to stochastic
// eviction).
#pragma once

#include <optional>
#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::core {

class Cache {
 public:
  explicit Cache(int capacity);

  int capacity() const noexcept { return capacity_; }
  int size() const noexcept { return static_cast<int>(items_.size()); }
  bool full() const noexcept { return size() >= capacity_; }
  bool contains(ItemId item) const noexcept;
  const std::vector<ItemId>& items() const noexcept { return items_; }

  /// Pins `item` as this cache's sticky replica (inserting it if absent).
  /// Throws std::logic_error if a different sticky item is already pinned
  /// or the cache is full of other sticky content.
  void pin_sticky(ItemId item);
  std::optional<ItemId> sticky() const noexcept { return sticky_; }

  /// True if an insert can succeed: a free slot exists or some cached
  /// item is evictable (non-sticky).
  bool can_insert() const noexcept {
    return !full() || size() > (sticky_ ? 1 : 0);
  }

  /// Inserts a replica. If the cache is full, overwrites a uniformly
  /// random non-sticky slot and returns the evicted item. Returns
  /// std::nullopt when no eviction happened. Throws std::logic_error if
  /// the item is already present, or if the cache is full and every slot
  /// is sticky.
  std::optional<ItemId> insert_random_replace(ItemId item, util::Rng& rng);

  /// Removes a (non-sticky) replica; throws std::logic_error if absent or
  /// sticky.
  void erase(ItemId item);

  /// Fault-injection support (node crash without persisted storage):
  /// drops every non-sticky replica, notifying the change listener per
  /// item, and returns how many were lost. The sticky replica — the
  /// paper's immortal origin copy — survives, so no item can go extinct
  /// even under churn.
  int crash_clear();

  /// Called with (item, +1) after every successful insert (including the
  /// pin_sticky insert path) and (item, -1) after every erase/eviction.
  /// Lets the simulator maintain global replica counts incrementally
  /// instead of rescanning every cache per sample. A non-owning function
  /// pointer + context rather than a std::function: the notify sits on
  /// every cache mutation in the simulator hot loop, and the raw pointer
  /// guarantees a direct call with no type-erasure dispatch or capture
  /// allocation. At most one listener; it must not re-enter the cache,
  /// and `context` must outlive the cache (or be reset to nullptr).
  using ChangeListener = void (*)(void* context, ItemId item, int delta);
  void set_change_listener(ChangeListener listener,
                           void* context) noexcept {
    listener_ = listener;
    listener_context_ = context;
  }

 private:
  void notify(ItemId item, int delta) const {
    if (listener_) listener_(listener_context_, item, delta);
  }

  int capacity_;
  std::vector<ItemId> items_;
  std::optional<ItemId> sticky_;
  ChangeListener listener_ = nullptr;
  void* listener_context_ = nullptr;
};

}  // namespace impatience::core
