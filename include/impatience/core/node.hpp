// A participant in the P2P caching system. Depending on the scenario a
// node is a server (carries a cache), a client (creates requests), or
// both (the pure P2P case, Section 3.1). Every node can carry replication
// mandates regardless of role.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "impatience/core/cache.hpp"
#include "impatience/core/mandate.hpp"
#include "impatience/trace/contact.hpp"

namespace impatience::core {

using trace::NodeId;
using trace::Slot;

class SimulationState;

/// An outstanding request with its query counter (Section 5.1): the
/// counter increments on every meeting with a server while the request
/// is unfulfilled, including the meeting that fulfils it, so its
/// expectation is |S|/x_i. Stored as a snapshot of the owning node's
/// running server-meeting count at creation: the live counter value is
/// `node.server_meetings() - queries_at_creation`, which makes the
/// per-meeting update O(1) for the whole pending list instead of a walk
/// (the values produced are identical, so the slot-stepped kernel stays
/// bit-locked).
struct PendingRequest {
  ItemId item;
  Slot created;
  long queries_at_creation = 0;
};

class Node {
 public:
  /// cache_capacity is ignored unless is_server. This standalone form
  /// owns its hot counters on a private heap backing (move-stable).
  Node(NodeId id, ItemId num_items, int cache_capacity, bool is_server,
       bool is_client);

  /// Structure-of-arrays form: the per-item pending counters and the
  /// query-counter clock are raw views into `state`'s flat arrays
  /// (sim_state.hpp), which must outlive the node. The simulator builds
  /// its population this way so hot-path walks touch contiguous rows.
  Node(SimulationState& state, NodeId id, ItemId num_items,
       int cache_capacity, bool is_server, bool is_client);

  NodeId id() const noexcept { return id_; }
  bool is_server() const noexcept { return cache_.has_value(); }
  bool is_client() const noexcept { return is_client_; }

  /// Server cache; throws std::logic_error for non-servers.
  Cache& cache();
  const Cache& cache() const;

  MandateBag& mandates() noexcept { return mandates_; }
  const MandateBag& mandates() const noexcept { return mandates_; }

  std::vector<PendingRequest>& pending() noexcept { return pending_; }
  const std::vector<PendingRequest>& pending() const noexcept {
    return pending_;
  }

  /// Registers a new request. Throws std::logic_error for non-clients.
  void create_request(ItemId item, Slot now);

  /// True if at least one pending request targets `item`. O(1) via a
  /// per-item counter maintained by create_request/note_fulfilled; lets
  /// the meeting protocol skip the fulfilment scan when the provider's
  /// cache holds nothing this node is waiting for.
  bool has_pending(ItemId item) const noexcept {
    return pending_count_[item] != 0;
  }

  /// Records that one pending request for `item` left the pending list
  /// (fulfilled). Must be called once per removed request.
  void note_fulfilled(ItemId item) noexcept { --pending_count_[item]; }

  /// Records a meeting with a server (the query-counter clock). Called by
  /// the meeting protocol before fulfilment, so the fulfilling meeting is
  /// included in every fulfilled request's counter.
  void note_server_meeting() noexcept { ++*server_meetings_; }
  /// Running count of this node's meetings with servers.
  long server_meetings() const noexcept { return *server_meetings_; }
  /// Warm-restart support (service::StateStore): sets the query-counter
  /// clock directly when rebuilding a node from a persisted snapshot.
  /// Must run before the pending list is restored, since create_request
  /// snapshots the clock.
  void restore_server_meetings(long meetings) noexcept {
    *server_meetings_ = meetings;
  }

  /// True if this node holds a replica of the item (servers only).
  bool holds(ItemId item) const noexcept {
    return cache_ && cache_->contains(item);
  }

  /// What a crash wiped out, for the fault accounting in
  /// SimulationResult::faults.
  struct CrashLosses {
    std::uint64_t replicas = 0;
    long mandates = 0;
    std::uint64_t requests = 0;
  };

  /// Fault-injection support: the node crashes, losing its in-flight
  /// mandates and pending requests. Unless `persist_cache`, a server's
  /// cache (sticky pin included) is wiped too, notifying the cache's
  /// change listener so global replica counts stay exact.
  CrashLosses crash(bool persist_cache);

 private:
  /// Heap home of the hot counters when the node is NOT bound to a
  /// SimulationState. Heap rather than members so the raw view pointers
  /// below survive vector<Node> reallocation (moves transfer the
  /// backing; the pointed-to storage never relocates).
  struct Backing {
    std::vector<std::uint32_t> pending_count;
    long server_meetings = 0;
  };

  NodeId id_;
  ItemId num_items_;
  bool is_client_;
  std::optional<Cache> cache_;
  MandateBag mandates_;
  std::vector<PendingRequest> pending_;
  std::unique_ptr<Backing> own_;  // null when bound to a SimulationState
  /// Views: either into own_ or into the SimulationState's flat arrays.
  std::uint32_t* pending_count_ = nullptr;  // outstanding requests per item
  long* server_meetings_ = nullptr;  // query-counter clock (PendingRequest)
};

}  // namespace impatience::core
