// The discrete-time, discrete-event simulator of Section 6.1: given any
// contact trace, it drives demand arrival, request fulfilment at node
// meetings, and the replication policy, recording observed gains.
#pragma once

#include <functional>
#include <optional>
#include <span>

#include "impatience/alloc/allocation.hpp"
#include "impatience/alloc/welfare.hpp"
#include "impatience/core/demand.hpp"
#include "impatience/core/metrics.hpp"
#include "impatience/core/policy.hpp"
#include "impatience/fault/fault.hpp"
#include "impatience/trace/contact.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/utility/delay_utility.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::core {

/// Node roles. Defaults to pure P2P: every trace node is both server and
/// client. For the dedicated case pass disjoint server/client lists.
struct Population {
  std::vector<NodeId> servers;
  std::vector<NodeId> clients;

  static Population pure_p2p(NodeId num_nodes);
  static Population dedicated(NodeId num_servers, NodeId num_clients);
};

/// Which time-advance loop drives the run.
enum class SimKernel {
  /// Step every slot of the trace (the reference loop of Section 6.1).
  /// Bit-locked: identical seeds give identical results release to
  /// release, and it is the only kernel the fault model is defined on.
  slot_stepped,
  /// Classical next-event time advance: jump between "interesting" slots
  /// (meetings, metrics sample ticks, demand_schedule switches) and batch
  /// the demand of each empty gap as one Poisson(gap * rate) draw with
  /// alias-sampled (item, node) pairs and uniform creation slots.
  /// Distribution-identical to slot_stepped (empty-slot requests only age
  /// until the next meeting) but a different use of the RNG stream, so
  /// results match statistically, not bit for bit. Fault-active runs
  /// (`faults.engaged()`) fall back to slot_stepped, because the fault
  /// model (per-slot crash hazards, per-meeting decisions) is defined on
  /// the per-slot loop.
  event_driven,
};

/// Display name ("slot" / "event"), e.g. for manifests and --kernel.
const char* kernel_name(SimKernel kernel) noexcept;

struct SimOptions {
  int cache_capacity = 5;  ///< rho
  /// Time-advance kernel; see SimKernel. The slot-stepped loop stays the
  /// default and the bit-locked reference (the repo's *_naive tradition).
  SimKernel kernel = SimKernel::slot_stepped;
  /// Pin one immortal replica of item i on server (i mod |S|) — the
  /// paper's anti-absorption measure, used by replication policies.
  bool sticky_replicas = true;
  /// Initial cache contents (server index -> items). Items beyond the
  /// placement (e.g. the sticky pins) are inserted on top. When absent,
  /// caches are filled with distinct uniformly random items.
  std::optional<alloc::Placement> initial_placement;
  MetricsConfig metrics{};
  /// Evaluated on sampled per-item replica counts to produce the
  /// expected-welfare series (Fig. 3a); leave empty to skip.
  std::function<double(std::span<const int>)> expected_welfare;
  /// Requests still pending when the trace ends contribute h(final age)
  /// to total_gain ("censoring"); without this, allocations that starve
  /// an item (e.g. DOM under a cost utility) would look spuriously good.
  bool censor_pending_at_end = true;
  /// Mid-run popularity changes (the dynamic-demand setting of the
  /// paper's Section 7): at each listed slot the demand process switches
  /// to the given catalog. Catalogs must have the same item count as the
  /// main one; entries must be sorted by slot. Reactive policies adapt on
  /// the fly; fixed allocations do not.
  std::vector<std::pair<Slot, Catalog>> demand_schedule;
  /// Per-item node-popularity profile pi_{i,n} (Section 3.3): pi[i][n]
  /// weighs client index n's share of item i's demand (rows normalized
  /// internally). Absent = uniform, pi_{i,n} = 1/|C|. Applies across
  /// demand_schedule changes.
  std::optional<alloc::PopularityProfile> popularity;
  /// Invoked on every fulfilment with (item, client, delay in slots,
  /// recorded gain); immediate own-cache hits report delay 0. This is
  /// the hook the Section-7 feedback loop hangs off (see
  /// utility::fit_delay_utility and examples/learn_impatience).
  std::function<void(ItemId, NodeId, double, double)> on_fulfillment;
  /// Deterministic fault injection (docs/robustness.md). Inert by
  /// default. All fault decisions draw from the plan's own stream
  /// (faults.seed), never from the simulation RNG, so an all-zero config
  /// is bit-identical to a run with no fault plan at all, and a seeded
  /// faulty run is bit-identical across engine thread counts.
  fault::FaultConfig faults{};
  /// Cooperative cancellation: checked once per slot in the event loop.
  /// When cancelled, simulate() throws util::CancelledError — the
  /// engine's deadline watchdog maps it to ErrorKind::timeout.
  const util::CancellationToken* cancel = nullptr;
};

/// Runs one simulation trial with per-item delay-utilities h_i. The delay
/// fed to the utility is (fulfilment slot - creation slot + 1): the
/// discrete-time contact model charges at least one slot per
/// meeting-based fulfilment (Lemma 1). Immediate own-cache hits at
/// request creation gain h_i(0+).
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng);

/// Single shared delay-utility for all items.
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng);

/// Pure-P2P convenience overloads covering all trace nodes.
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng);
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng);

}  // namespace impatience::core
