// The discrete-time, discrete-event simulator of Section 6.1: given any
// contact trace, it drives demand arrival, request fulfilment at node
// meetings, and the replication policy, recording observed gains.
#pragma once

#include <functional>
#include <optional>
#include <span>

#include "impatience/alloc/allocation.hpp"
#include "impatience/alloc/oracle.hpp"
#include "impatience/alloc/welfare.hpp"
#include "impatience/core/demand.hpp"
#include "impatience/core/metrics.hpp"
#include "impatience/core/policy.hpp"
#include "impatience/fault/fault.hpp"
#include "impatience/trace/contact.hpp"
#include "impatience/trace/event_source.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/utility/delay_utility.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::core {

/// Node roles. Defaults to pure P2P: every trace node is both server and
/// client. For the dedicated case pass disjoint server/client lists.
struct Population {
  std::vector<NodeId> servers;
  std::vector<NodeId> clients;

  static Population pure_p2p(NodeId num_nodes);
  static Population dedicated(NodeId num_servers, NodeId num_clients);
};

/// Which time-advance loop drives the run.
enum class SimKernel {
  /// Step every slot of the trace (the reference loop of Section 6.1).
  /// Bit-locked: identical seeds give identical results release to
  /// release; the fault model's per-slot formulation is defined on it.
  slot_stepped,
  /// Classical next-event time advance: jump between "interesting" slots
  /// (meetings, metrics sample ticks, demand_schedule switches, scheduled
  /// node crashes) and batch the demand of each empty gap as one
  /// Poisson(gap * rate) draw with alias-sampled (item, node) pairs and
  /// uniform creation slots. Fault-active runs ride the same jump loop:
  /// per-slot crash hazards become per-node geometric-skip draws
  /// (fault::FaultPlan::next_node_crash) and per-meeting fault decisions
  /// are only drawn at slots that actually have meetings, which is all
  /// the slot-stepped loop does anyway. Distribution-identical to
  /// slot_stepped (empty-slot requests only age until the next meeting;
  /// the geometric gap is exactly the waiting time of the per-slot
  /// Bernoulli hazard) but a different use of the RNG streams, so
  /// results match statistically, not bit for bit.
  event_driven,
};

/// Display name ("slot" / "event"), e.g. for manifests and --kernel.
const char* kernel_name(SimKernel kernel) noexcept;

/// How sticky seeding and the random cache fill draw items when no
/// initial placement is given.
enum class InitSampling {
  /// Draw a uniform item, retry on duplicates (and a uniform eviction
  /// victim for sticky seeding). The bit-locked reference: the golden
  /// locks pin this stream use.
  rejection,
  /// Draw from util::AliasTable tables over the eligible items — the
  /// remaining absent items for the fill (no retries, so the per-slot
  /// cost no longer decays with cache occupancy), the cached items for
  /// the sticky eviction victim. Same uniform law as `rejection`, but a
  /// different use of the RNG stream, so runs are not bit-comparable
  /// across the two modes.
  alias,
};

struct SimOptions {
  int cache_capacity = 5;  ///< rho
  /// Time-advance kernel; see SimKernel. The slot-stepped loop stays the
  /// default and the bit-locked reference (the repo's *_naive tradition).
  SimKernel kernel = SimKernel::slot_stepped;
  /// Pin one immortal replica of item i on server (i mod |S|) — the
  /// paper's anti-absorption measure, used by replication policies.
  bool sticky_replicas = true;
  /// Initial cache contents (server index -> items). Items beyond the
  /// placement (e.g. the sticky pins) are inserted on top. When absent,
  /// caches are filled with distinct uniformly random items.
  std::optional<alloc::Placement> initial_placement;
  /// Item-draw scheme for sticky seeding and the random fill; the
  /// rejection default is the bit-locked reference.
  InitSampling init_sampling = InitSampling::rejection;
  MetricsConfig metrics{};
  /// Evaluated on sampled per-item replica counts to produce the
  /// expected-welfare series (Fig. 3a); leave empty to skip.
  std::function<double(std::span<const int>)> expected_welfare;
  /// Incremental expected-welfare probe (Section 5.1 / Fig. 3a under
  /// heterogeneous rates): when set, the simulator clears the oracle's
  /// tracked placement, feeds it every cache change through the change
  /// listeners, and samples oracle->welfare_cached() into
  /// expected_series at each metrics tick — O(changed rows) per tick
  /// instead of the O(items x clients) from-scratch recompute an
  /// `expected_welfare` functor pays. The oracle must be built over this
  /// run's servers and clients (same order, e.g. via
  /// core::WelfareProbe) and the scenario's item count; it must outlive
  /// the call and is left tracking the final cache state. Mutually
  /// exclusive with expected_welfare.
  alloc::MarginalOracle* welfare_probe = nullptr;
  /// Requests still pending when the trace ends contribute h(final age)
  /// to total_gain ("censoring"); without this, allocations that starve
  /// an item (e.g. DOM under a cost utility) would look spuriously good.
  bool censor_pending_at_end = true;
  /// Mid-run popularity changes (the dynamic-demand setting of the
  /// paper's Section 7): at each listed slot the demand process switches
  /// to the given catalog. Catalogs must have the same item count as the
  /// main one; entries must be sorted by slot. Reactive policies adapt on
  /// the fly; fixed allocations do not.
  std::vector<std::pair<Slot, Catalog>> demand_schedule;
  /// Per-item node-popularity profile pi_{i,n} (Section 3.3): pi[i][n]
  /// weighs client index n's share of item i's demand (rows normalized
  /// internally). Absent = uniform, pi_{i,n} = 1/|C|. Applies across
  /// demand_schedule changes.
  std::optional<alloc::PopularityProfile> popularity;
  /// Invoked on every fulfilment with (item, client, delay in slots,
  /// recorded gain); immediate own-cache hits report delay 0. This is
  /// the hook the Section-7 feedback loop hangs off (see
  /// utility::fit_delay_utility and examples/learn_impatience).
  std::function<void(ItemId, NodeId, double, double)> on_fulfillment;
  /// Deterministic fault injection (docs/robustness.md). Inert by
  /// default. All fault decisions draw from the plan's own stream
  /// (faults.seed), never from the simulation RNG, so an all-zero config
  /// is bit-identical to a run with no fault plan at all, and a seeded
  /// faulty run is bit-identical across engine thread counts.
  fault::FaultConfig faults{};
  /// Cooperative cancellation: checked once per slot in the event loop.
  /// When cancelled, simulate() throws util::CancelledError — the
  /// engine's deadline watchdog maps it to ErrorKind::timeout.
  const util::CancellationToken* cancel = nullptr;
  /// Intra-run meeting-level parallelism (docs/perf.md §5). 0 (default):
  /// off — the meetings of a slot run through the fused sequential walk,
  /// the bit-locked reference. N >= 1: each slot's meeting batch is
  /// conflict-scheduled into node-disjoint antichain waves interleaved
  /// with trace-order commit runs (trace/partition.hpp); each wave's
  /// read-only fulfilment scans are planned on N threads (N - 1 fork-
  /// join workers plus the caller), then the commit run executes
  /// sequentially in exact trace order, so results are bit-identical to
  /// 0 for every N. -1:
  /// auto — engine::resolve_intra_threads against hardware_concurrency
  /// (callers already fanning out trials should resolve it themselves
  /// against their outer pool and pass a concrete N; bench/common.hpp
  /// --intra-threads does). Identity contract: guaranteed for the
  /// built-in policies; a custom policy whose on_fulfillment hook
  /// mutates caches (none of the built-ins do — they only touch
  /// mandates) would invalidate the precomputed match sets.
  int meeting_parallelism = 0;
};

/// Runs one simulation trial with per-item delay-utilities h_i. The delay
/// fed to the utility is (fulfilment slot - creation slot + 1): the
/// discrete-time contact model charges at least one slot per
/// meeting-based fulfilment (Lemma 1). Immediate own-cache hits at
/// request creation gain h_i(0+).
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng);

/// Single shared delay-utility for all items.
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng);

/// Pure-P2P convenience overloads covering all trace nodes.
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng);
SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng);

/// Streaming overloads: drive the run from a trace::EventSource instead
/// of a materialized ContactTrace. Both kernels consume the feed one
/// slot batch at a time, so peak memory is O(largest slot batch) rather
/// than O(total events). The source is single-pass and is left drained.
/// Bit-identity: a GeneratedSource seeded like the generator run (or a
/// MaterializedSource over the generated trace, or a PagedTraceReader
/// over its file) produces results bit-identical to the materialized
/// overloads for the same simulation rng, kernel, fault config and
/// meeting_parallelism.
SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng);

SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng);

/// Pure-P2P convenience overloads covering all source nodes.
SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng);
SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng);

}  // namespace impatience::core
