// Measurement configuration and results of a simulation run.
#pragma once

#include <string>
#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/fault/fault.hpp"
#include "impatience/stats/timeseries.hpp"
#include "impatience/trace/contact.hpp"

namespace impatience::core {

using trace::Slot;

struct MetricsConfig {
  /// Slots per bin of the observed-utility series (Fig. 3b / Fig. 5a).
  double bin_width = 60.0;
  /// Sampling period (slots) for expected welfare and replica counts.
  Slot sample_every = 50;
  /// Items whose replica-count series is recorded (Fig. 3c/3d).
  std::vector<ItemId> tracked_items;
};

struct SimulationResult {
  std::string policy;
  Slot duration = 0;

  /// Sum of delay-utility gains over all fulfilments (plus the censored
  /// gains of requests still pending at the end, evaluated at the final
  /// age — see SimOptions::censor_pending_at_end).
  double total_gain = 0.0;
  /// total_gain per slot: the empirical counterpart of U(x).
  double observed_utility() const {
    return duration > 0 ? total_gain / static_cast<double>(duration) : 0.0;
  }

  /// Observed gain rate per time bin.
  std::vector<stats::SeriesPoint> observed_series;
  /// Expected welfare of the live allocation, sampled periodically
  /// (empty unless an evaluator was supplied).
  std::vector<stats::SeriesPoint> expected_series;
  /// Replica-count series per tracked item (same order as
  /// MetricsConfig::tracked_items).
  std::vector<std::vector<stats::SeriesPoint>> replica_series;

  std::uint64_t requests_created = 0;
  std::uint64_t fulfillments = 0;            ///< meeting fulfilments
  std::uint64_t immediate_fulfillments = 0;  ///< own-cache hits at creation
  std::uint64_t censored_requests = 0;       ///< still pending at the end
  double mean_delay = 0.0;                   ///< slots, meeting fulfilments
  double mean_query_count = 0.0;             ///< final counter values

  /// Replicas per item at the end of the run.
  std::vector<int> final_counts;
  long outstanding_mandates = 0;
  long mandates_created = 0;
  long replicas_written = 0;

  /// Injected faults and their cost (all zero without a fault plan).
  /// Mandate conservation degrades gracefully under churn:
  ///   mandates_created == replicas_written + outstanding_mandates
  ///                       + faults.mandates_lost
  fault::FaultCounters faults;
};

}  // namespace impatience::core
