// The content catalog: items and their demand rates d_i (Section 3.3).
#pragma once

#include <vector>

#include "impatience/alloc/allocation.hpp"

namespace impatience::core {

using alloc::ItemId;

class Catalog {
 public:
  /// demand[i] = d_i, the system-wide request rate for item i per slot.
  explicit Catalog(std::vector<double> demand);

  /// Pareto popularity (the paper's simulations use omega = 1):
  /// d_i proportional to (i+1)^{-omega}, scaled so the rates sum to
  /// total_rate requests per slot.
  static Catalog pareto(ItemId num_items, double omega, double total_rate);

  ItemId num_items() const noexcept {
    return static_cast<ItemId>(demand_.size());
  }
  double demand(ItemId item) const;
  const std::vector<double>& demands() const noexcept { return demand_; }
  double total_demand() const noexcept { return total_; }

  /// Items sorted by decreasing demand (ties by id).
  std::vector<ItemId> by_popularity() const;

 private:
  std::vector<double> demand_;
  double total_;
};

}  // namespace impatience::core
