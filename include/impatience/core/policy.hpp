// Replication policies: what happens at node meetings beyond request
// fulfilment. QCR (Section 5) creates psi(query-count) mandates per
// fulfilment and executes/routes them opportunistically; the static
// policy does nothing (used for the fixed-allocation competitors, which
// have their caches preset and frozen).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "impatience/core/node.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::core {

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  virtual std::string name() const = 0;

  /// Invoked once by the simulator after initial cache setup with the
  /// per-item global replica counts. Policies that track global state
  /// (e.g. the full-knowledge hill climber) seed themselves here.
  virtual void on_initialized(std::span<const int> /*item_counts*/) {}

  /// Invoked when `requester`'s request for `item` has just been fulfilled
  /// by `provider`, with the final query-counter value (>= 1).
  virtual void on_fulfillment(Node& requester, Node& provider, ItemId item,
                              long query_count, util::Rng& rng) = 0;

  /// Invoked once per meeting after all fulfilments of both nodes.
  virtual void on_meeting_complete(Node& a, Node& b, util::Rng& rng) = 0;
};

/// No replication: caches stay exactly as initialized.
class StaticPolicy final : public ReplicationPolicy {
 public:
  std::string name() const override { return "STATIC"; }
  void on_fulfillment(Node&, Node&, ItemId, long, util::Rng&) override {}
  void on_meeting_complete(Node&, Node&, util::Rng&) override {}
};

/// Query Counting Replication (Sections 5.1-5.3).
///
/// On fulfilment with counter y the requester gains reaction(y) mandates
/// for the item (stochastically rounded to an integer). At every meeting,
/// for each item at most one mandate executes (a replica is copied to a
/// server lacking the item — "no rewriting": nothing happens if both or
/// neither side holds it), then mandates are routed: towards the replica
/// holder, split evenly if both (or neither) hold the item, with the
/// item's sticky seeder preferred at a 2/3 share (Section 6.1).
class QcrPolicy final : public ReplicationPolicy {
 public:
  enum class MandateRouting { kOff, kOn };

  /// Section 5.1's two implementations: without rewriting, meeting a node
  /// that already holds the item is simply ignored (the paper's simulation
  /// choice); with rewriting, such a meeting consumes one mandate even
  /// though no new copy can be made (the variant the paper's Eq. (7)
  /// analysis focuses on).
  enum class Rewriting { kDisallowed, kAllowed };

  /// psi as a function of (item, query-counter value) — per-item
  /// delay-utilities get per-item reactions.
  using ItemReaction = std::function<double(ItemId, double)>;

  /// @param reaction psi; maps the query-counter value to the (real-
  ///        valued) number of replicas to create.
  /// @param per_item_mandate_cap saturation bound on a node's mandate
  ///        backlog per item. Steep reactions (e.g. power alpha << 0,
  ///        psi ~ y^{1-alpha}) can enter a runaway regime on starved
  ///        items — counters grow, each fulfilment emits a huge burst,
  ///        the burst evicts other items, which starves them further. A
  ///        backlog beyond the global cache size can never be useful, so
  ///        callers should pass about rho * |S| (run_qcr does).
  QcrPolicy(std::string name, ItemReaction reaction, MandateRouting routing,
            long per_item_mandate_cap = kDefaultMandateCap,
            Rewriting rewriting = Rewriting::kDisallowed);

  /// Item-independent reaction convenience constructor.
  QcrPolicy(std::string name, std::function<double(double)> reaction,
            MandateRouting routing,
            long per_item_mandate_cap = kDefaultMandateCap,
            Rewriting rewriting = Rewriting::kDisallowed);

  static constexpr long kDefaultMandateCap = 1'000'000;

  std::string name() const override { return name_; }
  void on_fulfillment(Node& requester, Node& provider, ItemId item,
                      long query_count, util::Rng& rng) override;
  void on_meeting_complete(Node& a, Node& b, util::Rng& rng) override;

  /// Cumulative count of mandates created (diagnostics).
  long mandates_created() const noexcept { return mandates_created_; }
  /// Cumulative count of mandate executions, i.e. replicas written.
  long replicas_written() const noexcept { return replicas_written_; }
  /// Mandates consumed without a write (rewriting mode only).
  long mandates_rewritten() const noexcept { return mandates_rewritten_; }

 private:
  void execute_mandates(Node& a, Node& b, util::Rng& rng);
  void route_mandates(Node& a, Node& b, util::Rng& rng);

  std::string name_;
  ItemReaction reaction_;
  MandateRouting routing_;
  long mandate_cap_;
  Rewriting rewriting_;
  std::vector<ItemId> items_scratch_;  // per-meeting union, reused
  long mandates_created_ = 0;
  long replicas_written_ = 0;
  long mandates_rewritten_ = 0;
};

/// Passive replication: a fixed number of replicas per fulfilment
/// (equilibrium: allocation proportional to demand; the dynamic analogue
/// of PROP, as deployed e.g. by Podnet-style systems).
std::unique_ptr<QcrPolicy> make_passive_policy(
    double replicas_per_fulfillment = 1.0,
    QcrPolicy::MandateRouting routing = QcrPolicy::MandateRouting::kOn);

/// Classic path replication (Cohen & Shenker): psi(y) proportional to y
/// (equilibrium: square-root allocation, the dynamic analogue of SQRT).
std::unique_ptr<QcrPolicy> make_path_replication_policy(
    double scale = 1.0,
    QcrPolicy::MandateRouting routing = QcrPolicy::MandateRouting::kOn);

}  // namespace impatience::core
