// Replication mandates (Section 5.3): lightweight "make one more replica
// of item i" instructions that wait at nodes for an execution opportunity
// and are routed towards replica holders to avoid the divergence
// pathology described in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "impatience/core/catalog.hpp"

namespace impatience::core {

/// A multiset of mandates per item, stored densely (the item universe is
/// known and small relative to node count), plus an incrementally
/// maintained list of the items with a non-zero count: the QCR meeting
/// hooks enumerate active items 4x per meeting (execute + route, both
/// sides), and most bags are sparse, so an O(active) enumeration beats
/// the former O(num_items) scan on the simulator's commit path.
class MandateBag {
 public:
  explicit MandateBag(ItemId num_items);

  long count(ItemId item) const;
  long total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  void add(ItemId item, long n);
  /// Removes up to n mandates for the item; returns how many were taken.
  long take(ItemId item, long n);
  /// Drops every mandate (node crash); returns how many were lost.
  long drain();

  /// Items with at least one mandate, in ascending item order.
  std::vector<ItemId> active_items() const;

  /// Appends the active items to `out` in unspecified order — the
  /// allocation-free form for callers that merge and sort anyway
  /// (QcrPolicy's per-meeting item unions).
  void append_active_items(std::vector<ItemId>& out) const {
    out.insert(out.end(), active_.begin(), active_.end());
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  void activate(ItemId item);
  void deactivate(ItemId item);

  std::vector<long> count_;
  std::vector<ItemId> active_;        // items with count > 0, unordered
  std::vector<std::uint32_t> pos_;    // item -> index in active_, or kAbsent
  long total_ = 0;
};

}  // namespace impatience::core
