// Replication mandates (Section 5.3): lightweight "make one more replica
// of item i" instructions that wait at nodes for an execution opportunity
// and are routed towards replica holders to avoid the divergence
// pathology described in the paper.
#pragma once

#include <vector>

#include "impatience/core/catalog.hpp"

namespace impatience::core {

/// A multiset of mandates per item, stored densely (the item universe is
/// known and small relative to node count).
class MandateBag {
 public:
  explicit MandateBag(ItemId num_items);

  long count(ItemId item) const;
  long total() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  void add(ItemId item, long n);
  /// Removes up to n mandates for the item; returns how many were taken.
  long take(ItemId item, long n);
  /// Drops every mandate (node crash); returns how many were lost.
  long drain();

  /// Items with at least one mandate.
  std::vector<ItemId> active_items() const;

 private:
  std::vector<long> count_;
  long total_ = 0;
};

}  // namespace impatience::core
