// The client request process: node n creates requests for item i at rate
// d_i * pi_{i,n} per slot (Section 3.3). The default profile is uniform,
// pi_{i,n} = 1/|C|.
#pragma once

#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/trace/contact.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::core {

using trace::NodeId;
using trace::Slot;

/// A request freshly created in a slot.
struct NewRequest {
  ItemId item;
  NodeId node;
};

class DemandProcess {
 public:
  /// Uniform popularity profile across the given clients.
  DemandProcess(const Catalog& catalog, std::vector<NodeId> clients);

  /// Per-item node-weight profile: weight w[i][n] (indexing the clients
  /// vector) proportional to pi_{i,n}. Rows are normalized internally.
  DemandProcess(const Catalog& catalog, std::vector<NodeId> clients,
                std::vector<std::vector<double>> weights);

  /// Samples the requests created during one slot: their count is
  /// Poisson(total demand), each is an independent (item, node) draw.
  std::vector<NewRequest> sample_slot(util::Rng& rng) const;

  /// Same draw into a caller-owned buffer (cleared first). The simulator
  /// reuses one buffer across slots so the per-slot allocation of the
  /// returning overload disappears from the hot loop.
  void sample_slot(util::Rng& rng, std::vector<NewRequest>& out) const;

  double total_rate() const noexcept { return total_rate_; }
  const std::vector<NodeId>& clients() const noexcept { return clients_; }

 private:
  std::vector<NodeId> clients_;
  std::vector<double> item_weights_;  // d_i
  std::vector<std::vector<double>> node_weights_;  // per item, or empty
  double total_rate_;
};

}  // namespace impatience::core
