// The client request process: node n creates requests for item i at rate
// d_i * pi_{i,n} per slot (Section 3.3). The default profile is uniform,
// pi_{i,n} = 1/|C|.
#pragma once

#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/trace/contact.hpp"
#include "impatience/util/alias.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::core {

using trace::NodeId;
using trace::Slot;

/// A request freshly created in a slot.
struct NewRequest {
  ItemId item;
  NodeId node;
};

/// A request created somewhere inside a batched empty gap of the
/// event-driven kernel, tagged with its creation slot.
struct BatchedRequest {
  ItemId item;
  NodeId node;
  Slot slot;
};

class DemandProcess {
 public:
  /// Uniform popularity profile across the given clients.
  DemandProcess(const Catalog& catalog, std::vector<NodeId> clients);

  /// Per-item node-weight profile: weight w[i][n] (indexing the clients
  /// vector) proportional to pi_{i,n}. Rows are normalized internally.
  DemandProcess(const Catalog& catalog, std::vector<NodeId> clients,
                std::vector<std::vector<double>> weights);

  /// Samples the requests created during one slot: their count is
  /// Poisson(total demand), each is an independent (item, node) draw.
  std::vector<NewRequest> sample_slot(util::Rng& rng) const;

  /// Same draw into a caller-owned buffer (cleared first). The simulator
  /// reuses one buffer across slots so the per-slot allocation of the
  /// returning overload disappears from the hot loop.
  ///
  /// This is the slot-stepped kernel's sampler and is bit-locked: it
  /// draws via the linear Rng::weighted_index scan in the exact pre-alias
  /// order (item, then node), so slot-stepped runs stay bit-identical
  /// across releases. New callers should prefer the O(1) alias samplers.
  void sample_slot(util::Rng& rng, std::vector<NewRequest>& out) const;

  /// One (item, node) draw through the Vose alias tables: O(1) per
  /// request instead of the O(|items|) linear scan. Draw order is item,
  /// then node. Statistically identical to sample_request_linear but a
  /// different mapping of the RNG stream, so not bit-compatible with it.
  NewRequest sample_request(util::Rng& rng) const;

  /// The legacy linear draw (the reference the alias path is tested
  /// against, and the one sample_slot uses).
  NewRequest sample_request_linear(util::Rng& rng) const;

  /// Batches the demand of `num_slots` consecutive slots starting at
  /// `first_slot` for the event-driven kernel: draws
  /// Poisson(num_slots * total_rate) arrivals, assigns each a uniform
  /// slot in the gap and an alias-sampled (item, node), and sorts the
  /// batch by slot (stable, so intra-slot draw order is preserved).
  /// Distribution-identical to sampling each slot independently, by
  /// Poisson superposition/thinning. Clears `out` first.
  void sample_gap(util::Rng& rng, Slot first_slot, Slot num_slots,
                  std::vector<BatchedRequest>& out) const;

  double total_rate() const noexcept { return total_rate_; }
  const std::vector<NodeId>& clients() const noexcept { return clients_; }

 private:
  std::vector<NodeId> clients_;
  std::vector<double> item_weights_;  // d_i
  std::vector<std::vector<double>> node_weights_;  // per item, or empty
  double total_rate_;
  // O(1) samplers mirroring the weight vectors above. Rebuilt whenever a
  // demand_schedule switch constructs a fresh DemandProcess.
  util::AliasTable item_alias_;
  std::vector<util::AliasTable> node_alias_;  // per item, empty if uniform
};

}  // namespace impatience::core
