// Structure-of-arrays home of the simulator's per-node hot state.
//
// One run's mutable counters — per-(node, item) pending-request counts,
// the Section-5.1 query-counter clocks, and the global per-item replica
// counts — live here as flat contiguous arrays; `Node` binds raw views
// into the rows it owns (node.hpp). The layout serves the intra-run
// parallel meeting path (docs/perf.md §5): the negotiation phase of a
// node-disjoint wave reads disjoint rows of one contiguous block
// instead of chasing per-Node heap vectors, and the replica-count array
// is the span handed to ReplicationPolicy::on_initialized, the
// expected-welfare functor and the MarginalOracle welfare fold.
//
// Nodes constructed without a SimulationState (tests, the service
// StateStore) fall back to a private heap backing, so the public Node
// API is unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/trace/contact.hpp"

namespace impatience::core {

using trace::NodeId;

class SimulationState {
 public:
  SimulationState(NodeId num_nodes, ItemId num_items);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  ItemId num_items() const noexcept { return num_items_; }

  /// Row of per-item pending-request counters owned by `node`.
  std::uint32_t* pending_counts(NodeId node) noexcept {
    return pending_counts_.data() +
           static_cast<std::size_t>(node) * num_items_;
  }

  /// The node's server-meeting clock (see PendingRequest).
  long* query_clock(NodeId node) noexcept {
    return query_clocks_.data() + node;
  }

  /// Global replicas per item, maintained by the simulator's cache
  /// change listeners.
  std::span<const int> replica_counts() const noexcept {
    return replica_counts_;
  }
  std::vector<int>& replica_counts() noexcept { return replica_counts_; }

 private:
  NodeId num_nodes_;
  ItemId num_items_;
  std::vector<std::uint32_t> pending_counts_;  // [node * num_items + item]
  std::vector<long> query_clocks_;             // [node]
  std::vector<int> replica_counts_;            // [item]
};

}  // namespace impatience::core
