// High-level experiment drivers shared by the benchmark harness and the
// examples: build the Section-6.1 competitor set (OPT / UNI / SQRT / PROP
// / DOM), run QCR, and compare in the paper's normalized-loss units.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "impatience/alloc/heuristics.hpp"
#include "impatience/alloc/rounding.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/core/simulator.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/trace/stats.hpp"
#include "impatience/utility/reaction.hpp"

namespace impatience::core {

/// A fully-specified evaluation setting: contact trace + catalog + cache
/// capacity. `mu` is the homogeneous-equivalent mean pair rate used to
/// tune QCR's reaction function and the homogeneous OPT.
struct Scenario {
  trace::ContactTrace trace;
  Catalog catalog;
  int capacity = 5;  ///< rho
  double mu = 0.05;  ///< mean per-pair contact rate (per slot)

  NodeId num_nodes() const { return trace.num_nodes(); }
};

/// Builds a pure-P2P scenario from a trace, measuring mu from it.
Scenario make_scenario(trace::ContactTrace trace, Catalog catalog,
                       int capacity);

/// How the OPT competitor is computed.
enum class OptMode {
  kHomogeneous,  ///< Theorem-2 greedy with the scenario's mu (exact there)
  kEstimated,    ///< Lemma-1 lazy greedy on trace-estimated pair rates
};

/// A named fixed allocation (competitor).
struct NamedPlacement {
  std::string name;
  alloc::Placement placement;
};

/// The paper's competitor set, in order: OPT, UNI, SQRT, PROP, DOM.
/// All receive the perfect control channel: exact cache presets.
std::vector<NamedPlacement> build_competitors(
    const Scenario& scenario, const utility::DelayUtility& utility,
    OptMode opt_mode, util::Rng& rng);

/// Per-item delay-utilities h_i (only OPT depends on the utility).
std::vector<NamedPlacement> build_competitors(
    const Scenario& scenario, const utility::UtilitySet& utilities,
    OptMode opt_mode, util::Rng& rng);

/// Runs a frozen-cache (STATIC) trial of the given placement.
SimulationResult run_fixed(const Scenario& scenario,
                           const utility::DelayUtility& utility,
                           const std::string& name,
                           const alloc::Placement& placement,
                           const SimOptions& base_options, util::Rng& rng);

SimulationResult run_fixed(const Scenario& scenario,
                           const utility::UtilitySet& utilities,
                           const std::string& name,
                           const alloc::Placement& placement,
                           const SimOptions& base_options, util::Rng& rng);

struct QcrOptions {
  bool mandate_routing = true;
  /// Section 5.1's "replication with rewriting": meeting a node that
  /// already holds the item consumes a mandate without copying. Off by
  /// default (the paper's simulation choice).
  bool rewriting = false;
  /// Multiplier on the (auto-normalized) reaction function.
  double reaction_scale = 1.0;
  /// Property 2 fixes psi only up to a positive constant; the raw Table-1
  /// forms can emit tens of replicas per fulfilment, which thrashes a
  /// small global cache (the mean-field analysis assumes gentle flows).
  /// When true (default), psi is rescaled so that a fulfilment at the
  /// *uniform* allocation creates about `target_replicas_per_fulfillment`
  /// replicas; the fixed point is scale-invariant, so this only affects
  /// convergence speed vs steady-state noise.
  bool auto_normalize_scale = true;
  double target_replicas_per_fulfillment = 0.25;
  /// Upper bound on replicas created by one fulfilment (0 = auto, the
  /// per-node cache size rho). Steep reactions (power alpha << 0 have
  /// psi ~ y^{1-alpha}) otherwise emit cache-sized bursts whenever an
  /// item's counter spikes, which destabilizes small systems; the cap
  /// binds only during such excursions, so the fixed point (Property 2)
  /// is unchanged.
  double max_replicas_per_fulfillment = 0.0;
  /// Clamp the query counter fed to psi at |S|: with sticky seed copies
  /// every item has x >= 1, so counter values beyond |S| carry no extra
  /// information about the allocation (the implied estimate S/y would be
  /// below the guaranteed floor of one replica).
  bool clamp_counter_at_servers = true;
};

/// Runs a QCR trial (random initial fill + sticky seeds, reaction tuned
/// to the scenario's utility/mu per Table 1).
SimulationResult run_qcr(const Scenario& scenario,
                         const utility::DelayUtility& utility,
                         const QcrOptions& qcr_options,
                         const SimOptions& base_options, util::Rng& rng);

/// Per-item delay-utilities: each item gets its own Table-1 reaction.
SimulationResult run_qcr(const Scenario& scenario,
                         const utility::UtilitySet& utilities,
                         const QcrOptions& qcr_options,
                         const SimOptions& base_options, util::Rng& rng);

/// The paper's comparison metric: 100 * (U - U_opt) / |U_opt|, in percent
/// (<= 0 when OPT wins; can be positive on real traces, Section 6.3).
double normalized_loss_percent(double utility_value, double opt_value);

/// Expected-welfare probe for SimOptions::expected_welfare under
/// homogeneous contacts (Fig. 3a): evaluates Eq. (4)/(5) on live counts.
std::function<double(std::span<const int>)> homogeneous_welfare_probe(
    Catalog catalog, const utility::DelayUtility& utility,
    alloc::HomogeneousModel model);

/// Owns the inputs of the *incremental* expected-welfare probe
/// (SimOptions::welfare_probe): a trace-estimated rate matrix plus a
/// MarginalOracle over the scenario's pure-P2P population, fed by the
/// simulator's cache change listeners and sampled via welfare_cached().
/// The scenario and utilities must outlive this object (the oracle
/// references the catalog's demand vector and the utilities).
class WelfareProbe {
 public:
  WelfareProbe(const Scenario& scenario, const utility::UtilitySet& utilities);

  /// Pass this as SimOptions::welfare_probe.
  alloc::MarginalOracle* oracle() noexcept { return oracle_.get(); }

 private:
  trace::RateMatrix rates_;
  std::unique_ptr<alloc::MarginalOracle> oracle_;
};

}  // namespace impatience::core
