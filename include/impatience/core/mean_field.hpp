// Mean-field (fluid-limit) evaluator: closed-form welfare and replica
// dynamics in replica-count space, replacing O(N^2 T) event simulation
// with O(I) algebra per evaluation — the million-node fast path of
// docs/perf.md §6.
//
// Two fidelities share one interface:
//  - kDiscrete evaluates the exact finite-horizon slot model
//    (alloc/discrete_gain.hpp): for FROZEN placements the prediction is
//    the exact expectation of SimulationResult::observed_utility() over
//    traces, not an asymptotic limit.
//  - kContinuous evaluates item_gain()'s infinite-horizon continuous
//    closed forms (the paper's analytical model, exact as mu -> 0).
//
// On top of the evaluator:
//  - mean_field_greedy / mean_field_competitors mirror the simulator
//    benches' OPT/UNI/SQRT/PROP/DOM construction in count space, so the
//    fig4 normalized-loss sweep can run at N = 10^6 without a trace.
//  - mean_field_qcr integrates the replica-fraction ODE of the QCR
//    reaction dynamics (dx_i/dt = inflow from fulfilment reactions -
//    proportional cache eviction) with an adaptive step-doubling RK4,
//    mirroring run_qcr()'s reaction construction constant for constant.
//    This one is an approximation (the stochastic counter y = N/x is
//    replaced by its mean), validated against the event kernel in
//    tests/core/mean_field_test.cpp.
//  - MeanFieldClassModel evaluates class-based (community) contact
//    rates: hazard q_c = 1 - prod_c' (1 - mu_{c,c'})^{x_{c'}}.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "impatience/alloc/allocation.hpp"
#include "impatience/alloc/discrete_gain.hpp"
#include "impatience/core/experiment.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/delay_utility.hpp"

namespace impatience::core {

enum class MeanFieldFidelity {
  kDiscrete,    ///< exact finite-horizon slot model (needs horizon > 0)
  kContinuous,  ///< item_gain() closed forms, infinite horizon
  kAutomatic,   ///< discrete when horizon > 0, else continuous
};

struct MeanFieldModel {
  double mu = 0.05;            ///< per-pair meeting probability per slot
  double num_nodes = 50;       ///< N (pure P2P)
  trace::Slot horizon = 5000;  ///< T; <= 0 forces the continuous fidelity
  MeanFieldFidelity fidelity = MeanFieldFidelity::kAutomatic;
  double tail_epsilon = 1e-16;  ///< discrete-sum truncation threshold

  bool discrete() const noexcept {
    return fidelity == MeanFieldFidelity::kDiscrete ||
           (fidelity == MeanFieldFidelity::kAutomatic && horizon > 0);
  }
};

/// Precomputes the per-request gain curve g(x) once (a table over
/// integer x for the discrete fidelity), then answers welfare queries in
/// O(I) and marginals in O(1).
class MeanFieldEvaluator {
 public:
  MeanFieldEvaluator(const utility::DelayUtility& u, const MeanFieldModel& m);

  /// Expected gain of one request for an item with x replicas.
  double item_gain(double x) const;

  /// sum_i d_i g(x_i): welfare per slot, the mean-field prediction of
  /// SimulationResult::observed_utility().
  double welfare_rate(const alloc::ItemCounts& counts,
                      const std::vector<double>& demand) const;

  /// g(x + 1) - g(x) on the integer grid (greedy's exchange currency).
  double marginal(long x) const;

  const MeanFieldModel& model() const noexcept { return model_; }

 private:
  MeanFieldModel model_;
  std::optional<alloc::DiscreteGainTable> table_;  // discrete fidelity
  const utility::DelayUtility* utility_;           // continuous fidelity
};

/// Welfare rate of an allocation without keeping the evaluator.
double mean_field_welfare(const alloc::ItemCounts& counts,
                          const std::vector<double>& demand,
                          const utility::DelayUtility& u,
                          const MeanFieldModel& m);

/// Greedy marginal-gain allocation of `capacity` total replicas in count
/// space (integer x_i in [0, N]); the mean-field OPT. Discrete fidelity
/// runs a max-heap greedy over table marginals; continuous delegates to
/// alloc::homogeneous_greedy.
alloc::ItemCounts mean_field_greedy(const std::vector<double>& demand,
                                    const utility::DelayUtility& u,
                                    const MeanFieldModel& m, long capacity);

struct NamedCounts {
  std::string name;
  alloc::ItemCounts counts;
};

/// OPT/UNI/SQRT/PROP/DOM in count space, built exactly like the
/// simulator competitors (same heuristics, same round_counts pipeline,
/// per-item cap N), with capacity = cache_capacity * N total replicas.
std::vector<NamedCounts> mean_field_competitors(
    const std::vector<double>& demand, const utility::DelayUtility& u,
    const MeanFieldModel& m, int cache_capacity);

/// Adaptive-RK controls for mean_field_qcr.
struct MeanFieldOdeOptions {
  double rel_tol = 1e-6;
  double abs_tol = 1e-9;
  double initial_step = 1.0;  ///< slots
  double max_step = 0.0;      ///< 0 = horizon / 16
  long max_steps = 200000;
};

struct MeanFieldQcrResult {
  alloc::ItemCounts final_counts;  ///< x_i(T)
  double mean_welfare_rate = 0.0;  ///< time-average of sum_i d_i g(x_i(t))
  double final_welfare_rate = 0.0;
  long steps = 0;          ///< accepted RK steps
  long rejected_steps = 0; ///< halved-and-retried steps
};

/// Integrates the QCR replica-fraction ODE from the uniform initial fill
/// x_i(0) = rho N / I to t = horizon:
///
///   dx_i/dt = d_i (1 - x_i/N) R_i(N/x_i)  -  W (x_i - 1) / sum_j (x_j - 1)
///
/// where R_i is run_qcr()'s reaction (utility::ReactionFunction with the
/// same auto-normalization, counter clamp and burst cap as
/// build_reactions / run_qcr_impl) and W is total inflow, so total
/// replicas are conserved at rho N (caches stay full; eviction hits a
/// uniformly random non-sticky replica). The sticky floor x_i >= 1 is an
/// invariant of the field: outflow of item i vanishes as x_i -> 1.
MeanFieldQcrResult mean_field_qcr(const std::vector<double>& demand,
                                  const utility::DelayUtility& u,
                                  const MeanFieldModel& m, int cache_capacity,
                                  const QcrOptions& qcr = {},
                                  const MeanFieldOdeOptions& ode = {});

/// Class-based (community) contact structure: node classes c with sizes
/// N_c and symmetric per-pair meeting probabilities rates[c][c'] per
/// slot (diagonal = intra-class).
struct MeanFieldClassModel {
  std::vector<double> class_sizes;
  std::vector<std::vector<double>> rates;
  trace::Slot horizon = 5000;
  double tail_epsilon = 1e-16;

  double num_nodes() const;
};

/// Welfare rate for per-class replica counts x[c].x[i]: a class-c
/// request sees hazard q_{i,c} = 1 - prod_c' (1 - mu_{c,c'})^{x_{c'}}
/// and immediate-hit probability x_c / N_c; classes are weighted by
/// N_c / N (uniform demand over all nodes). Exact in expectation for
/// frozen placements, like the homogeneous discrete fidelity.
double mean_field_welfare_classes(
    const std::vector<alloc::ItemCounts>& counts_by_class,
    const std::vector<double>& demand, const utility::DelayUtility& u,
    const MeanFieldClassModel& m);

/// The class model matching trace::generate_community_trace(params):
/// equal-size classes via community_of, intra rate within, inter across.
MeanFieldClassModel community_class_model(
    const trace::CommunityTraceParams& params);

/// Splits a placement into per-class replica counts using
/// trace::community_of on the server index (pure P2P: server index ==
/// node id), for feeding mean_field_welfare_classes.
std::vector<alloc::ItemCounts> counts_by_community(
    const alloc::Placement& placement, int num_communities);

}  // namespace impatience::core
