// Machine-readable run manifests: one JSON document per sweep capturing
// the root seed, the exact configuration, per-job outcomes and wall
// times, wall-time percentiles, and per-(policy, x) utility bands — so a
// run can be re-derived, audited, and its throughput tracked over time.
// Schema: docs/engine.md ("impatience.run_manifest/1").
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "impatience/engine/runner.hpp"

namespace impatience::engine {

/// Crash-safe file write: streams `writer` into `path + ".tmp"`, fsyncs,
/// then atomically renames over `path`. A crash or write failure at any
/// point leaves the previous contents of `path` intact (the temp file is
/// removed on failure). Throws util::IoError on any I/O failure.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters; non-ASCII bytes pass through).
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number (round-trip precision); non-finite
/// values become null, which JSON cannot represent as numbers.
std::string json_number(double v);

/// Run-level metadata the report itself does not know.
struct ManifestInfo {
  std::string generator;  ///< producing program, e.g. argv[0]
  /// Flag/value pairs describing the configuration (git-describable:
  /// enough to re-run the sweep), serialized in the given order.
  std::vector<std::pair<std::string, std::string>> config;
};

/// Writes the manifest JSON for a (possibly merged) report.
void write_manifest(std::ostream& out, const RunReport& report,
                    const ManifestInfo& info);

/// File variant: crash-safe via atomic_write_file (temp + fsync +
/// rename), so an interrupted run never leaves a torn manifest behind —
/// the previous manifest, if any, survives. Throws util::IoError when
/// the file cannot be written.
void write_manifest_file(const std::string& path, const RunReport& report,
                         const ManifestInfo& info);

}  // namespace impatience::engine
