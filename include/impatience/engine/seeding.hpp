// Deterministic child-seed derivation for parallel experiments.
//
// Every job in a sweep draws from its own RNG stream whose seed is a pure
// function of (root seed, stream tag, indices) — never of execution order,
// thread count, or which other jobs exist. Adding or removing a competitor
// therefore cannot perturb the streams of the remaining ones, and a sweep
// is bit-identical whether it runs on 1 thread or 64.
//
// The scheme chains SplitMix64 finalization rounds over the components,
// folding string tags in via FNV-1a. Both primitives are fixed published
// constants, so seeds are stable across platforms and releases.
#pragma once

#include <cstdint>
#include <string_view>

namespace impatience::engine {

/// 64-bit FNV-1a over bytes. Stable across platforms; used to fold string
/// stream tags (e.g. an algorithm name) into a seed chain.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// SplitMix64 finalizer: a fixed bijective mixing round. Good avalanche,
/// so consecutive indices yield statistically independent outputs.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Child seed for stream `tag` with up to two integer coordinates
/// (e.g. tag = algorithm name, a = trial, b = sweep-point index).
/// Pure function of its arguments; collisions are ~2^-64 per pair.
std::uint64_t child_seed(std::uint64_t root, std::string_view tag,
                         std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

}  // namespace impatience::engine
