// Manifest-based resume: a crashed or interrupted sweep re-runs with its
// previous manifest as a skip list, executing only the jobs that never
// completed. Completed jobs keep their recorded values (determinism makes
// the recorded value identical to a re-execution), marked "resumed".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "impatience/engine/job.hpp"

namespace impatience::engine {

/// The set of jobs a prior run already completed, keyed by the full job
/// identity (scenario, policy, trial, x bit pattern, seed) — a changed
/// seed or sweep coordinate is a different job and re-runs.
class ResumeSet {
 public:
  void add(std::string_view scenario, std::string_view policy, int trial,
           double x, std::uint64_t seed, double value);

  /// Recorded outcome of the identical job, or nullptr if it must run.
  const double* find(const JobSpec& spec) const;

  std::size_t size() const noexcept { return done_.size(); }
  bool empty() const noexcept { return done_.empty(); }

 private:
  static std::string key(std::string_view scenario, std::string_view policy,
                         int trial, double x, std::uint64_t seed);

  std::unordered_map<std::string, double> done_;
};

/// Parses a run manifest previously written by write_manifest and returns
/// its successfully completed jobs ("ok": true). Tolerant of additive
/// schema fields; throws util::IoError when the file cannot be read.
ResumeSet load_resume_set(const std::string& manifest_path);

}  // namespace impatience::engine
