// Typed failure taxonomy for the experiment engine. Replaces the
// stringly-typed JobResult::error as the machine-readable channel: the
// message stays for humans, the kind drives retry/quarantine decisions
// and survives the manifest round trip ("error_kind").
#pragma once

#include <exception>
#include <string_view>

namespace impatience::engine {

enum class ErrorKind {
  none = 0,               ///< job succeeded
  job_exception,          ///< the closure threw an ordinary exception
  timeout,                ///< deadline watchdog cancelled the attempt
  fault_budget_exceeded,  ///< fault plan blew its max_fault_events budget
  io,                     ///< artifact/manifest filesystem failure
};

/// Stable wire name of a kind (what the manifest stores).
const char* to_string(ErrorKind kind) noexcept;

/// Inverse of to_string. Unknown names (e.g. a manifest written by a
/// newer schema) conservatively map to job_exception.
ErrorKind error_kind_from_string(std::string_view name) noexcept;

/// Maps a caught exception to its kind via the typed errors in
/// util/errors.hpp (the engine never sees core/fault types directly).
ErrorKind classify_exception(const std::exception& e) noexcept;

}  // namespace impatience::engine
