// Typed failure taxonomy for the experiment engine. Replaces the
// stringly-typed JobResult::error as the machine-readable channel: the
// message stays for humans, the kind drives retry/quarantine decisions
// and survives the manifest round trip ("error_kind").
#pragma once

#include <exception>
#include <string_view>

#include "impatience/util/errors.hpp"

namespace impatience::engine {

enum class ErrorKind {
  none = 0,               ///< job succeeded
  job_exception,          ///< the closure threw an ordinary exception
  timeout,                ///< deadline watchdog cancelled the attempt
  fault_budget_exceeded,  ///< fault plan blew its max_fault_events budget
  io,                     ///< artifact/manifest filesystem failure
  shutdown,               ///< graceful stop cancelled a service-mode job
};

/// Stable wire name of a kind (what the manifest stores).
const char* to_string(ErrorKind kind) noexcept;

/// Inverse of to_string. Unknown names (e.g. a manifest written by a
/// newer schema) conservatively map to job_exception.
ErrorKind error_kind_from_string(std::string_view name) noexcept;

/// Maps a caught exception to its kind via the typed errors in
/// util/errors.hpp (the engine never sees core/fault types directly).
/// A CancelledError carries its CancelReason: deadline cancellations
/// (the watchdog) classify as `timeout`, graceful service-mode stops as
/// `shutdown` — so a manifest distinguishes an operator-requested stop
/// from a blown budget.
ErrorKind classify_exception(const std::exception& e) noexcept;

/// ErrorKind of a fired cancellation reason (deadline -> timeout,
/// shutdown -> shutdown). `none` maps to timeout: a cancellation whose
/// reason was never recorded keeps the historical watchdog semantics.
ErrorKind error_kind_from_cancel(util::CancelReason reason) noexcept;

}  // namespace impatience::engine
