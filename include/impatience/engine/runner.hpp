// The experiment runner: fans a batch of jobs out over a thread pool,
// isolates per-job failures, and merges outcomes deterministically.
//
// Determinism contract: each job's RNG is seeded from JobSpec::seed alone
// (reseeded on every retry attempt, so a retried success is bit-identical
// to a first-try success), results land in a pre-sized slot per job (no
// shared mutable state while running), and aggregation happens after the
// join, in submission order. Hence the report — including the
// TrialAggregator contents — is bit-identical for any thread count.
//
// Hardening (docs/robustness.md): a per-job deadline watchdog cancels
// overrunning jobs cooperatively, failed jobs retry with seeded
// exponential backoff, jobs that exhaust their attempts are quarantined,
// and a ResumeSet skips jobs a prior manifest already completed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "impatience/engine/job.hpp"
#include "impatience/engine/resume.hpp"
#include "impatience/stats/trials.hpp"

namespace impatience::engine {

struct RunnerOptions {
  /// Worker threads; values < 1 mean hardware concurrency.
  int threads = 0;
  /// Progress + ETA lines on stderr while jobs run.
  bool progress = false;
  /// Seconds between progress updates.
  double progress_interval_seconds = 1.0;
  /// Per-job wall-clock deadline (seconds); <= 0 disables the watchdog.
  /// On expiry the job's CancellationToken fires; cooperative closures
  /// unwind with util::CancelledError, recorded as ErrorKind::timeout.
  /// An attempt whose deadline fired counts as a timeout even if the
  /// closure limped home with a value.
  double job_deadline_seconds = 0.0;
  /// Attempts per job before quarantine; values < 1 mean 1 (no retry).
  int max_attempts = 1;
  /// Base delay of the seeded exponential backoff between attempts
  /// (seconds, doubled per retry, +/-50% deterministic jitter drawn from
  /// the job seed); <= 0 retries immediately.
  double backoff_base_seconds = 0.01;
  /// Cap on a single backoff delay (seconds).
  double backoff_max_seconds = 1.0;
};

/// Everything a batch produced: per-job records in submission order plus
/// the (policy, x) -> outcome samples aggregate. Mergeable across batches
/// so a multi-point sweep can accumulate one report for its manifest.
struct RunReport {
  std::uint64_t root_seed = 0;  ///< as passed to Runner::run
  int threads = 1;              ///< resolved worker count
  double wall_seconds = 0.0;    ///< wall time of the whole batch
  std::size_t failed = 0;       ///< jobs that failed every attempt
  std::size_t quarantined = 0;  ///< jobs that exhausted max_attempts
  std::size_t resumed = 0;      ///< jobs recovered from a prior manifest
  std::vector<JobRecord> jobs;  ///< submission order
  /// Successful outcomes keyed by (policy, x); failed jobs are excluded.
  stats::TrialAggregator aggregate;

  /// Appends another batch (jobs, failures, samples, wall time). An
  /// empty report adopts other's root seed and thread count; afterwards
  /// they stick — callers merge batches of one sweep, which share both.
  void merge(RunReport&& other);
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Executes every job and returns the merged report. A job that throws
  /// is retried up to max_attempts, then recorded as failed/quarantined
  /// (with message + ErrorKind) while its siblings complete. `root_seed`
  /// is carried into the report/manifest only — job seeds must already be
  /// derived (engine::child_seed). When `resume` is given, jobs it
  /// contains are not executed: their recorded values are replayed into
  /// the report (marked resumed) so the manifest stays complete.
  RunReport run(std::vector<JobSpec> jobs, std::uint64_t root_seed = 0,
                const ResumeSet* resume = nullptr) const;

  int threads() const noexcept { return static_cast<int>(threads_); }

 private:
  RunnerOptions options_;
  unsigned threads_;
};

}  // namespace impatience::engine
