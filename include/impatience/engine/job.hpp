// The engine's unit of work: one (scenario, policy, trial) simulation.
//
// A job owns everything it needs to run — a derived child seed and a
// closure mapping an Rng to a scalar outcome — so the runner can execute
// jobs in any order on any thread without changing results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "impatience/engine/error.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::engine {

/// One schedulable unit of work.
struct JobSpec {
  std::string scenario;  ///< sweep/scenario label, e.g. "fig4-power"
  std::string policy;    ///< series the outcome belongs to, e.g. "QCR"
  int trial = 0;         ///< trial index within (scenario, policy, x)
  double x = 0.0;        ///< swept-parameter coordinate of the point
  std::uint64_t seed = 0;  ///< child seed (engine::child_seed) for the Rng
  /// The work itself. Receives an Rng freshly seeded with `seed`; returns
  /// the scalar outcome (typically an observed utility). May throw — the
  /// runner records the failure without killing the sweep.
  std::function<double(util::Rng&)> run;
  /// Cancellable variant, preferred by the runner when set: the token is
  /// armed by the per-job deadline watchdog; the closure should poll it
  /// (e.g. via SimOptions::cancel) and unwind with util::CancelledError.
  std::function<double(util::Rng&, const util::CancellationToken&)>
      run_cancellable;
};

/// Outcome of one executed job.
struct JobResult {
  bool ok = false;
  double value = 0.0;        ///< the closure's return value when ok
  double wall_seconds = 0.0; ///< wall time across all attempts
  std::string error;         ///< last exception message when !ok
  /// Typed counterpart of `error` (manifest "error_kind"); none when ok.
  ErrorKind error_kind = ErrorKind::none;
  int attempts = 0;          ///< attempts consumed (>= 1 once executed)
  bool quarantined = false;  ///< failed every allowed attempt
  bool resumed = false;      ///< value recovered from a prior manifest
};

/// Spec coordinates plus result, in submission order (no closure).
struct JobRecord {
  std::string scenario;
  std::string policy;
  int trial = 0;
  double x = 0.0;
  std::uint64_t seed = 0;
  JobResult result;
};

}  // namespace impatience::engine
