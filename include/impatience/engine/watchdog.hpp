// One background thread arming per-attempt deadlines: a worker arms a
// slot before running an attempt and disarms it after; expired slots get
// their CancellationToken fired. Slots are recycled, so the concurrent
// worker count bounds the slot vector for a whole batch.
//
// Shared by the experiment runner (per-job deadlines, the classic use)
// and service mode (replicationd arms one slot for its whole lifetime to
// implement `--deadline`). The reason a fired slot cancels with is
// configurable per arm: the runner keeps the default `deadline` (manifest
// error_kind "timeout"); a service-mode supervisor that wants an expiry
// to read as a graceful stop arms with `shutdown`.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "impatience/util/errors.hpp"

namespace impatience::engine {

class DeadlineWatchdog {
 public:
  /// Starts the watch thread. `deadline_seconds` is the default deadline
  /// applied by arm() calls that do not override it; must be > 0.
  explicit DeadlineWatchdog(double deadline_seconds);
  /// Stops and joins the watch thread; armed slots are forgotten
  /// (their tokens are NOT fired).
  ~DeadlineWatchdog();

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

  /// Arms a deadline on `token`: after the given (or default) number of
  /// seconds the token is cancelled with `reason`, once. Returns the slot
  /// handle to pass to disarm(). The token must outlive the slot's armed
  /// window.
  std::size_t arm(util::CancellationToken* token,
                  util::CancelReason reason = util::CancelReason::deadline);
  std::size_t arm(util::CancellationToken* token, double deadline_seconds,
                  util::CancelReason reason = util::CancelReason::deadline);

  /// Releases a slot returned by arm(). Safe whether or not the slot has
  /// already fired.
  void disarm(std::size_t slot);

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    util::CancellationToken* token = nullptr;
    Clock::time_point expires{};
    util::CancelReason reason = util::CancelReason::deadline;
  };

  std::size_t arm_locked(util::CancellationToken* token,
                         Clock::duration deadline, util::CancelReason reason);
  void watch();

  Clock::duration default_deadline_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace impatience::engine
