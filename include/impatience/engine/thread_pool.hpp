// Fixed-size thread pool: a mutex/condvar task queue drained by N worker
// threads. No work stealing — jobs are coarse (whole simulation trials),
// so a single shared queue is contention-free in practice and keeps each
// worker's cache hot on its own simulation state.
//
// ForkJoinTeam is the fine-grained sibling: a fixed team that runs the
// same job on every member with spin-then-park synchronization, for
// microsecond-scale waves where the task queue's condvar roundtrip
// (tens of microseconds of thread wakeups per batch) would cost more
// than the work being fanned out.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace impatience::engine {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks. Tasks must not throw (wrap work that
  /// can throw — the runner does).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. The pool
  /// stays usable afterwards.
  void wait_idle();

  /// Like wait_idle but gives up after `timeout`; returns true when idle.
  bool wait_idle_for(std::chrono::milliseconds timeout);

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Resolves a --threads request: values < 1 mean "use all hardware
  /// threads" (hardware_concurrency, itself falling back to 1).
  static unsigned resolve_threads(int requested) noexcept;

 private:
  void worker_loop();
  bool idle_locked() const { return queue_.empty() && busy_ == 0; }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or stop
  std::condition_variable idle_cv_;   ///< signals waiters: pool drained
  std::size_t busy_ = 0;              ///< workers currently running a task
  bool stop_ = false;
};

/// Fork-join team for microsecond-scale parallel sections. run(job)
/// executes job(tid) on every member — tid 0 on the calling thread,
/// tids 1..num_workers on the team's threads — and returns once all
/// have finished. Workers spin briefly between runs before parking on a
/// condvar, so back-to-back waves (the simulator's per-slot plan
/// phases) synchronize in under a microsecond while idle stretches
/// (request generation, metrics, non-meeting slots) cost no CPU.
///
/// The job must not throw (wrap work that can throw — the simulator's
/// meeting runner captures into an exception slot and rethrows on the
/// caller). All writes made by job(i) are visible to the caller when
/// run() returns.
class ForkJoinTeam {
 public:
  /// Spawns `num_workers` team threads (callers with a team of 0 should
  /// just run the job inline; the constructor requires >= 1).
  explicit ForkJoinTeam(unsigned num_workers);
  ~ForkJoinTeam();

  ForkJoinTeam(const ForkJoinTeam&) = delete;
  ForkJoinTeam& operator=(const ForkJoinTeam&) = delete;

  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs job(0) on this thread and job(1..num_workers) on the team,
  /// then blocks until every member has returned.
  void run(const std::function<void(unsigned)>& job);

 private:
  void worker_loop(unsigned tid);

  std::vector<std::thread> workers_;
  const std::function<void(unsigned)>* job_ = nullptr;  // set before epoch_
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped to publish a run
  std::atomic<unsigned> done_{0};        ///< workers finished this run
  std::atomic<bool> stop_{false};
  std::mutex mu_;               ///< guards parking only
  std::condition_variable cv_;  ///< wakes parked workers
};

/// Resolves a SimOptions::meeting_parallelism request against the number
/// of threads already fanned out at the trial level (`outer_threads`,
/// e.g. the Runner's pool size). Intra-run parallelism only pays when
/// cores are left over, so `auto` (< 0) yields 1 — i.e. the sequential
/// plan/commit walk, no pool — whenever the outer fan-out already covers
/// the machine, and hardware_concurrency / outer_threads otherwise.
/// 0 stays 0 (intra parallelism off); explicit requests pass through.
unsigned resolve_intra_threads(int requested, unsigned outer_threads) noexcept;

}  // namespace impatience::engine
