// Fixed-size thread pool: a mutex/condvar task queue drained by N worker
// threads. No work stealing — jobs are coarse (whole simulation trials),
// so a single shared queue is contention-free in practice and keeps each
// worker's cache hot on its own simulation state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace impatience::engine {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks. Tasks must not throw (wrap work that
  /// can throw — the runner does).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. The pool
  /// stays usable afterwards.
  void wait_idle();

  /// Like wait_idle but gives up after `timeout`; returns true when idle.
  bool wait_idle_for(std::chrono::milliseconds timeout);

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Resolves a --threads request: values < 1 mean "use all hardware
  /// threads" (hardware_concurrency, itself falling back to 1).
  static unsigned resolve_threads(int requested) noexcept;

 private:
  void worker_loop();
  bool idle_locked() const { return queue_.empty() && busy_ == 0; }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or stop
  std::condition_variable idle_cv_;   ///< signals waiters: pool drained
  std::size_t busy_ = 0;              ///< workers currently running a task
  bool stop_ = false;
};

}  // namespace impatience::engine
