// Delay-utility functions h(t) (Section 3.2 of the paper) and the two
// Laplace-type transforms of the differential c(t) = -h'(t) that the whole
// theory runs on:
//
//   L(M) = \int_0^inf e^{-M t} c(t) dt      "loss transform"
//   T(M) = \int_0^inf t e^{-M t} c(t) dt    "time-weighted transform"
//
// With fulfilment time Y ~ Exp(M) (continuous-time contact model, M =
// sum of holder meeting rates), the expected gain of a request is
//
//   E[h(Y)] = h(0+) - L(M)                          (Lemma 1)
//
// and the balance function of Property 1 is phi(x) = mu * T(mu x), while
// the QCR reaction function of Property 2 is psi(y) = (S/y) * phi(S/y).
//
// Families with closed forms (Table 1) override the transforms; any other
// monotone-decreasing utility gets numerically-integrated defaults, which
// is the executable version of the paper's "for any delay-utility
// function" claim.
#pragma once

#include <memory>
#include <string>

namespace impatience::utility {

class DelayUtility {
 public:
  virtual ~DelayUtility() = default;

  /// h(t) for t > 0. Must be monotonically non-increasing.
  virtual double value(double t) const = 0;

  /// h(0+). May be +infinity (inverse-power, neg-log families); such
  /// utilities are restricted to the dedicated-node case in the paper.
  virtual double value_at_zero() const = 0;

  /// Limit of h(t) as t -> infinity. May be -infinity (cost families).
  virtual double value_at_inf() const = 0;

  /// Density part of c(t) = -h'(t) at t > 0. For utilities whose
  /// derivative has atoms (the step function's Dirac at tau) this returns
  /// only the absolutely-continuous part; such families must override the
  /// transforms, which the built-in ones do.
  virtual double differential(double t) const = 0;

  /// L(M) = int_0^inf e^{-Mt} c(t) dt for M > 0.
  /// Default: numeric quadrature of differential().
  virtual double loss_transform(double M) const;

  /// T(M) = int_0^inf t e^{-Mt} c(t) dt for M > 0 (equals -L'(M)).
  /// Default: numeric quadrature of differential().
  virtual double time_weighted_transform(double M) const;

  /// E[h(Y)] for Y ~ Exp(M), M > 0. Default: value_at_zero() - L(M);
  /// families with h(0+) = +inf override with the direct closed form.
  virtual double expected_gain(double M) const;

  /// True if h(0+) is finite (the paper's standing assumption outside the
  /// dedicated-node case).
  bool bounded_at_zero() const;

  /// Short machine-readable identifier, e.g. "step(tau=1)". Meant for
  /// diagnostics and labels; it need not be injective (TabulatedUtility
  /// reports only its point count). Use fingerprint() for identity.
  virtual std::string name() const = 0;

  /// Behavioural-identity key: two utilities with equal fingerprints must
  /// compute identical values and transforms for every input, because
  /// UtilitySet::duplicate_of() merges them into one shared transform
  /// cache. The parametric families encode every parameter in their name
  /// at round-trip precision, so the default returns name(); families
  /// whose name abbreviates state (tabulated samples, mixture components)
  /// override with a full serialization.
  virtual std::string fingerprint() const;

  virtual std::unique_ptr<DelayUtility> clone() const = 0;
};

namespace detail {

/// Shortest decimal string that round-trips to exactly `x` (std::to_chars),
/// so name()/fingerprint() never merge parameters that differ below the
/// fixed 6-decimal precision of std::to_string.
std::string format_param(double x);

}  // namespace detail

/// phi(x) of Property 1: phi(x) = mu * T(mu * x); strictly decreasing in x.
/// The relaxed optimum satisfies d_i * phi(x_i) = const across items.
double phi(const DelayUtility& u, double mu, double x);

/// psi(y) of Property 2 (up to the free positive constant): the number of
/// replicas QCR creates when a request is fulfilled with query-counter
/// value y, given |S| servers and homogeneous meeting rate mu:
/// psi(y) = (S/y) * phi(S/y).
double psi(const DelayUtility& u, double mu, double num_servers, double y);

}  // namespace impatience::utility
