// Construction of delay utilities from spec strings, e.g. for CLI flags:
//   "step:tau=1"  "exp:nu=0.1"  "power:alpha=0"  "neglog"
#pragma once

#include <memory>
#include <string>

#include "impatience/utility/delay_utility.hpp"

namespace impatience::utility {

/// Parses a utility spec string. Grammar:
///   spec   := family [":" param ("," param)*]
///   param  := key "=" number
/// Families and parameters:
///   step    tau (default 1)
///   exp     nu  (default 1)
///   power   alpha (default 0)
///   neglog  (no parameters)
/// Throws std::invalid_argument on unknown family/parameter or bad number.
std::unique_ptr<DelayUtility> make_utility(const std::string& spec);

}  // namespace impatience::utility
