// The delay-utility families of Table 1, with closed-form transforms.
#pragma once

#include <memory>
#include <vector>

#include "impatience/utility/delay_utility.hpp"

namespace impatience::utility {

/// Step function h(t) = 1{t <= tau} ("advertising revenue", all users give
/// up after the same deadline). c is a Dirac at tau, so the transforms are
/// overridden: L(M) = e^{-M tau}, T(M) = tau e^{-M tau}.
class StepUtility final : public DelayUtility {
 public:
  explicit StepUtility(double tau);

  double value(double t) const override;
  double value_at_zero() const override { return 1.0; }
  double value_at_inf() const override { return 0.0; }
  double differential(double) const override { return 0.0; }
  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  std::string name() const override;
  std::unique_ptr<DelayUtility> clone() const override;

  double tau() const noexcept { return tau_; }

 private:
  double tau_;
};

/// Exponential decay h(t) = e^{-nu t} (a constant fraction of users loses
/// interest per unit time). L(M) = nu/(nu+M), T(M) = nu/(nu+M)^2.
class ExponentialUtility final : public DelayUtility {
 public:
  explicit ExponentialUtility(double nu);

  double value(double t) const override;
  double value_at_zero() const override { return 1.0; }
  double value_at_inf() const override { return 0.0; }
  double differential(double t) const override;
  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  std::string name() const override;
  std::unique_ptr<DelayUtility> clone() const override;

  double nu() const noexcept { return nu_; }

 private:
  double nu_;
};

/// Power family h(t) = t^{1-alpha} / (alpha - 1), alpha < 2, alpha != 1.
///   1 < alpha < 2 : inverse power, time-critical information, h(0+) = inf
///   alpha < 1     : negative power, waiting cost, h(0+) = 0, h -> -inf
/// c(t) = t^{-alpha};  T(M) = Gamma(2-alpha) M^{alpha-2};
/// E[h(Y)] = Gamma(2-alpha)/(alpha-1) * M^{alpha-1} (both regimes).
class PowerUtility final : public DelayUtility {
 public:
  explicit PowerUtility(double alpha);

  double value(double t) const override;
  double value_at_zero() const override;
  double value_at_inf() const override;
  double differential(double t) const override;
  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  double expected_gain(double M) const override;
  std::string name() const override;
  std::unique_ptr<DelayUtility> clone() const override;

  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
};

/// Negative logarithm h(t) = -ln t, the alpha -> 1 limit of the power
/// family. c(t) = 1/t, T(M) = 1/M (so phi(x) = 1/x and the optimal
/// allocation is proportional to demand), E[h(Y)] = ln M + gamma.
class NegLogUtility final : public DelayUtility {
 public:
  NegLogUtility() = default;

  double value(double t) const override;
  double value_at_zero() const override;
  double value_at_inf() const override;
  double differential(double t) const override;
  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  double expected_gain(double M) const override;
  std::string name() const override;
  std::unique_ptr<DelayUtility> clone() const override;
};

/// Piecewise-linear utility interpolating user-supplied (t, h) samples —
/// e.g. an impatience curve measured from user feedback (the paper's §7
/// future work). Beyond the last sample h stays constant. Transforms use
/// the exact per-segment closed form (c is piecewise constant).
class TabulatedUtility final : public DelayUtility {
 public:
  struct Sample {
    double t;
    double h;
  };

  /// Requires at least two samples, strictly increasing t >= 0 and
  /// non-increasing h. Throws std::invalid_argument otherwise.
  explicit TabulatedUtility(std::vector<Sample> samples);

  double value(double t) const override;
  double value_at_zero() const override;
  double value_at_inf() const override;
  double differential(double t) const override;
  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  std::string name() const override;
  /// Full (t, h) serialization at round-trip precision — name() only
  /// reports the point count, which is not identity.
  std::string fingerprint() const override;
  std::unique_ptr<DelayUtility> clone() const override;

 private:
  std::vector<Sample> samples_;
};

/// Convex combination sum_k w_k h_k(t) of utilities (w_k > 0): models a
/// user population mixing several impatience behaviours. Transforms are
/// the same weighted sums.
class MixtureUtility final : public DelayUtility {
 public:
  struct Component {
    double weight;
    std::unique_ptr<DelayUtility> utility;
  };

  /// Requires a non-empty component list with positive weights.
  explicit MixtureUtility(std::vector<Component> components);
  MixtureUtility(const MixtureUtility& other);

  double value(double t) const override;
  double value_at_zero() const override;
  double value_at_inf() const override;
  double differential(double t) const override;
  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  double expected_gain(double M) const override;
  std::string name() const override;
  /// Weights plus component *fingerprints* (a component may itself have a
  /// non-identifying name, e.g. a tabulated curve).
  std::string fingerprint() const override;
  std::unique_ptr<DelayUtility> clone() const override;

 private:
  std::vector<Component> components_;
};

}  // namespace impatience::utility
