// Estimating the delay-utility from user feedback — the paper's Section 7
// closes with: "how to estimate the delay-utility function implicitly
// from user feedback, instead of assuming that it is known."
//
// Feedback arrives as (delay, realized gain) pairs, e.g. gain = 1 when a
// user watched the episode delivered after `delay` minutes and 0 when she
// had lost interest. The fit bins the delays, averages the gains, and
// enforces the model's monotonicity with isotonic regression (pool
// adjacent violators), yielding a TabulatedUtility whose closed-form
// transforms plug straight into the optimizers and QCR's reaction.
#pragma once

#include <vector>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

struct FeedbackSample {
  double delay;  ///< waiting time until fulfilment, > 0
  double gain;   ///< realized utility (e.g. 1 = consumed, 0 = discarded)
};

struct FitOptions {
  /// Number of equal-count delay bins (clamped to the sample count).
  int bins = 12;
};

/// Fits a monotone non-increasing delay-utility to feedback samples.
/// Requires at least two samples with distinct delays; throws
/// std::invalid_argument otherwise.
TabulatedUtility fit_delay_utility(std::vector<FeedbackSample> samples,
                                   const FitOptions& options = {});

/// Isotonic regression (non-increasing) by pool-adjacent-violators:
/// returns the least-squares monotone fit of `values` with the given
/// positive weights. Exposed for testing and reuse.
std::vector<double> isotonic_decreasing(const std::vector<double>& values,
                                        const std::vector<double>& weights);

}  // namespace impatience::utility
