// The discrete-time contact model of Section 3.4 / Lemma 1: time advances
// in slots of length delta and a pending request is fulfilled in each slot
// independently with probability p, so the fulfilment delay is
// delta * Geometric(p). The paper states (and its simulations rely on)
// the discrete model approaching the continuous one as delta -> 0 with
// p = M * delta; these helpers make that statement executable.
#pragma once

#include "impatience/utility/delay_utility.hpp"

namespace impatience::utility {

/// E[h(delta * K)] with K ~ Geometric(p) on {1, 2, ...}:
///   sum_{k >= 1} p (1-p)^{k-1} h(k delta)
/// (the discrete Lemma 1 via Abel summation). Requires 0 < p <= 1.
/// The series is summed until both the remaining probability mass and its
/// utility-weighted bound fall below `tol`; utilities unbounded below
/// (cost families) converge because (1-p)^k decays geometrically while
/// |h| grows polynomially.
double discrete_expected_gain(const DelayUtility& u, double p,
                              double delta = 1.0, double tol = 1e-12);

/// The discrete differential delay-utility of Section 3.5:
///   dc(k delta) = h(k delta) - h((k+1) delta)
double discrete_differential(const DelayUtility& u, long k,
                             double delta = 1.0);

/// Discrete analogue of the loss transform: the expected total loss
///   sum_{k >= 1} (1-p)^k dc(k delta)
/// so that discrete_expected_gain == h(delta) - discrete_loss (Lemma 1).
double discrete_loss(const DelayUtility& u, double p, double delta = 1.0,
                     double tol = 1e-12);

}  // namespace impatience::utility
