// Transform memoization: a DelayUtility wrapper that tabulates the
// Laplace-type transforms L(M), T(M) and the expected gain E[h(Y)] on a
// log-spaced, error-refined grid of M and answers queries by monotone
// piecewise-linear interpolation in log M.
//
// The transforms are the single hot kernel of the heterogeneous welfare
// machinery: every marginal-gain evaluation costs two of them, and for
// families without closed forms (tabulated impatience curves, mixtures,
// anything user-defined via differential()) each call is an adaptive
// Simpson quadrature. Tabulating trades a one-off build for O(log P)
// lookups with a configurable absolute-error bound.
//
// Outside the grid range — M below m_min, above m_max, non-finite — the
// wrapper falls back to the base utility's exact (Simpson or closed-form)
// transform, so accuracy never degrades silently at the extremes. A
// column whose exact evaluation throws or produces non-finite values
// anywhere on the grid (e.g. the divergent L(M) of unbounded-at-zero
// power utilities) is not cached at all and always delegates.
#pragma once

#include <cstddef>
#include <memory>

#include "impatience/utility/delay_utility.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::utility {

namespace detail {
struct TransformTable;
}

struct CachedTransformOptions {
  double m_min = 1e-6;     ///< lower edge of the cached M range
  double m_max = 1e6;      ///< upper edge of the cached M range
  double abs_error = 1e-9; ///< max absolute interpolation error on the range
  int initial_points = 65; ///< log-spaced seed grid per column (>= 2)
  int max_refine_depth = 24; ///< per-interval bisection cap
};

/// Decorates a DelayUtility with tabulated transforms. Point evaluations
/// (value, value_at_zero, differential, ...) delegate unchanged; only the
/// integral transforms are memoized. clone() and the copy constructor
/// share the immutable table, so a UtilitySet of clones costs one build.
class CachedTransform final : public DelayUtility {
 public:
  explicit CachedTransform(const DelayUtility& base,
                           const CachedTransformOptions& options = {});
  CachedTransform(const CachedTransform& other);
  ~CachedTransform() override;

  double value(double t) const override;
  double value_at_zero() const override;
  double value_at_inf() const override;
  double differential(double t) const override;

  double loss_transform(double M) const override;
  double time_weighted_transform(double M) const override;
  double expected_gain(double M) const override;

  /// "cached(<base name>)" — distinct bases stay distinct under
  /// UtilitySet::duplicate_of, so wrapped sets dedup like unwrapped ones.
  std::string name() const override;
  /// Base fingerprint plus the table-shaping options: the grid build is
  /// deterministic given (base, options), so equal fingerprints imply
  /// bit-identical interpolated transforms.
  std::string fingerprint() const override;
  std::unique_ptr<DelayUtility> clone() const override;

  const DelayUtility& base() const noexcept { return *base_; }

  /// Total tabulated points across the cached columns (diagnostics).
  std::size_t table_points() const noexcept;

 private:
  std::unique_ptr<DelayUtility> base_;
  CachedTransformOptions options_;
  std::shared_ptr<const detail::TransformTable> table_;
};

/// Wrap every item of a UtilitySet in a CachedTransform, building one
/// table per *distinct* utility (UtilitySet::duplicate_of, keyed on
/// fingerprint()) and sharing it across duplicates — a 1000-item catalog
/// with one impatience profile builds a single table.
UtilitySet make_cached(const UtilitySet& utilities,
                       const CachedTransformOptions& options = {});

}  // namespace impatience::utility
