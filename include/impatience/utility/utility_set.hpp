// Per-item delay-utilities: the paper's model gives every content item i
// its own h_i (Section 3.2) — different content types have different
// impatience profiles (ads vs emergency bulletins vs software patches).
// A UtilitySet maps item index -> DelayUtility; the welfare evaluators,
// solvers, simulator and QCR all accept one (Theorem 1 holds for
// non-homogeneous delay-utilities).
#pragma once

#include <memory>
#include <vector>

#include "impatience/utility/delay_utility.hpp"

namespace impatience::utility {

class UtilitySet {
 public:
  /// One utility per item; all entries must be non-null.
  explicit UtilitySet(std::vector<std::unique_ptr<DelayUtility>> utilities);

  /// Every item shares clones of the same utility.
  UtilitySet(const DelayUtility& utility, std::size_t num_items);

  UtilitySet(const UtilitySet& other);
  UtilitySet& operator=(const UtilitySet& other);
  UtilitySet(UtilitySet&&) noexcept = default;
  UtilitySet& operator=(UtilitySet&&) noexcept = default;

  std::size_t size() const noexcept { return utilities_.size(); }

  const DelayUtility& at(std::size_t item) const;
  const DelayUtility& operator[](std::size_t item) const {
    return *utilities_[item];
  }

  /// True if every item's utility has finite h(0+).
  bool all_bounded_at_zero() const;

  /// duplicate_of()[i] is the index of the first item whose utility is
  /// behaviourally identical to item i's, keyed on fingerprint() — a full
  /// round-trip serialization of the utility's state (name() alone is not
  /// identity: e.g. tabulated curves only report their point count). Items
  /// mapping to the same index can share transform caches (MarginalOracle
  /// memos, the CachedTransform tables of make_cached), so a large catalog
  /// with one shared impatience profile builds one table.
  std::vector<std::size_t> duplicate_of() const;

 private:
  std::vector<std::unique_ptr<DelayUtility>> utilities_;
};

}  // namespace impatience::utility
