// The QCR reaction function psi (Property 2): how many replicas to create
// when a request is fulfilled after its query counter reached y.
#pragma once

#include <memory>

#include "impatience/util/rng.hpp"
#include "impatience/utility/delay_utility.hpp"

namespace impatience::utility {

/// Wraps psi(y) = scale * (S/y) * phi(S/y) for a fixed utility, meeting
/// rate mu and server count |S|. Property 2 determines psi only up to a
/// positive constant (the equilibrium is scale-invariant), exposed here as
/// `scale`: larger values converge faster at the price of more replication
/// churn.
class ReactionFunction {
 public:
  ReactionFunction(const DelayUtility& utility, double mu, double num_servers,
                   double scale = 1.0);

  ReactionFunction(const ReactionFunction& other);
  ReactionFunction& operator=(const ReactionFunction& other);
  ReactionFunction(ReactionFunction&&) noexcept = default;
  ReactionFunction& operator=(ReactionFunction&&) noexcept = default;

  /// psi evaluated at a (real-valued) query count y >= 1.
  double operator()(double y) const;

  /// Integer replica count: psi(y) rounded stochastically so that the
  /// expectation is exact.
  std::int64_t replicas(double y, util::Rng& rng) const;

  double mu() const noexcept { return mu_; }
  double num_servers() const noexcept { return num_servers_; }
  double scale() const noexcept { return scale_; }
  const DelayUtility& utility() const noexcept { return *utility_; }

 private:
  std::unique_ptr<DelayUtility> utility_;
  double mu_;
  double num_servers_;
  double scale_;
};

}  // namespace impatience::utility
