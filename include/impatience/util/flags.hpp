// Tiny command-line flag parser for benches and examples.
//
//   Flags flags(argc, argv);
//   int trials = flags.get_int("trials", 5);
//   double mu  = flags.get_double("mu", 0.05);
//   bool fast  = flags.get_bool("fast", false);
//   double dl  = flags.get_duration("deadline", 0.0);  // "90", "250ms", "5m"
//
// Accepts --key=value, --key value, and bare --key (boolean true).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace impatience::util {

/// Parses a human-friendly duration into seconds. Grammar:
///   duration := number [unit]
///   unit     := "ms" | "s" | "m" | "h" | "d"
/// A bare number means seconds (back-compatible with the old
/// integer-seconds flags). The number may be fractional ("1.5m" = 90 s)
/// but must be finite and non-negative. Returns std::nullopt on anything
/// else ("", "abc", "10x", "-3s").
std::optional<double> parse_duration(const std::string& text);

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  long get_long(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Duration flag in seconds via parse_duration ("30s", "5m", "250ms";
  /// a bare number is seconds). `fallback` is returned when the flag is
  /// absent; a present-but-unparsable value throws std::invalid_argument
  /// naming the flag.
  double get_duration(const std::string& key, double fallback) const;

  /// Non-flag positional arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace impatience::util
