// Deterministic exponential backoff, shared by the experiment engine's
// retry loop (engine::Runner) and the service-layer stream feeder
// (service::StreamFeeder). One idiom, one implementation:
//
//   delay(attempt) = min(base * 2^(attempt-1), max) * (0.5 + u)
//
// where u in [0,1) is drawn from a stream seeded purely by
// (seed, attempt). The +/-50% jitter decorrelates concurrent retriers
// without wall-clock randomness: the whole schedule replays identically
// from the seed, which is what lets the feeder tests assert a reconnect
// schedule bit-for-bit (docs/robustness.md).
#pragma once

#include <cstdint>

namespace impatience::util {

/// Base/cap pair of one exponential-backoff schedule (seconds).
struct BackoffPolicy {
  /// Delay before retry 1; doubled per further retry. <= 0 disables
  /// backoff entirely (every delay is 0).
  double base_seconds = 0.01;
  /// Cap on a single delay.
  double max_seconds = 1.0;
};

/// Deterministic delay in seconds before retry `attempt` (1-based):
/// base * 2^(attempt-1) capped at max, with +/-50% jitter drawn from a
/// (seed, attempt) stream. Pure function of its arguments; the exponent
/// saturates at 2^20 so huge attempt counts cannot overflow.
double backoff_delay(const BackoffPolicy& policy, std::uint64_t seed,
                     int attempt) noexcept;

}  // namespace impatience::util
