// Leveled logging to stderr. Default level is Warn so library code is
// silent in tests and benches unless something is wrong; experiments can
// raise verbosity with set_level(Level::Info).
#pragma once

#include <sstream>
#include <string>

namespace impatience::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a single log line (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Ts>
void log_fmt(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << parts);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  detail::log_fmt(LogLevel::Debug, parts...);
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  detail::log_fmt(LogLevel::Info, parts...);
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  detail::log_fmt(LogLevel::Warn, parts...);
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  detail::log_fmt(LogLevel::Error, parts...);
}

}  // namespace impatience::util
