// Numerical helpers: quadrature on [a,b] and [0,inf), root finding,
// and small conveniences used by the delay-utility transforms.
#pragma once

#include <functional>

namespace impatience::util {

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
/// The integrand must be finite on (a, b); endpoint singularities should be
/// handled by the caller (substitution).
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10, int max_depth = 48);

/// Integral of f over [0, inf) via the substitution t = u / (1 - u).
/// Suitable for integrands decaying at infinity (e.g., e^{-Mt} * c(t)).
double integrate_to_inf(const std::function<double(double)>& f,
                        double tol = 1e-10);

/// Bisection root finding: returns x in [lo, hi] with f(x) ~= 0.
/// Requires sign(f(lo)) != sign(f(hi)). Tolerance is on the interval width.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double xtol = 1e-12, int max_iter = 200);

/// Find x such that g(x) = target for strictly decreasing g on [lo, hi],
/// clamping to the interval if target is outside g's range there.
double invert_decreasing(const std::function<double(double)>& g, double target,
                         double lo, double hi, double xtol = 1e-12);

/// Gamma function Gamma(x) for x > 0 (thin wrapper; asserts the domain).
double gamma_fn(double x);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

/// Euler-Mascheroni constant.
inline constexpr double kEulerGamma = 0.57721566490153286060651209;

}  // namespace impatience::util
