// Numerical helpers: quadrature on [a,b] and [0,inf), root finding,
// and small conveniences used by the delay-utility transforms.
#pragma once

#include <cmath>
#include <functional>
#include <type_traits>

namespace impatience::util {

namespace detail {

inline double simpson_rule(double fa, double fm, double fb, double a,
                           double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

template <typename F>
double simpson_adaptive(F& f, double a, double b, double fa, double fm,
                        double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson_rule(fa, flm, fm, a, m);
  const double right = simpson_rule(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return simpson_adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         simpson_adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

template <typename F>
double integrate_impl(F& f, double a, double b, double tol, int max_depth) {
  if (a == b) return 0.0;
  if (a > b) return -integrate_impl(f, b, a, tol, max_depth);
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = simpson_rule(fa, fm, fb, a, b);
  return simpson_adaptive(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

template <typename F>
double integrate_to_inf_impl(F& f, double tol) {
  // t = u/(1-u), dt = du/(1-u)^2, u in (0,1). Sample strictly inside to
  // avoid the endpoint singularities of the substitution.
  auto g = [&f](double u) {
    const double one_minus = 1.0 - u;
    const double t = u / one_minus;
    return f(t) / (one_minus * one_minus);
  };
  constexpr double kEps = 1e-12;
  return integrate_impl(g, kEps, 1.0 - kEps, tol, 48);
}

}  // namespace detail

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
/// The integrand must be finite on (a, b); endpoint singularities should be
/// handled by the caller (substitution).
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10, int max_depth = 48);

/// Templated overload: quadrature without std::function dispatch. Inner
/// loops (the delay-utility transform defaults, the CachedTransform table
/// builder) call this with a concrete lambda so the integrand inlines.
template <typename F,
          typename = std::enable_if_t<!std::is_same_v<
              std::remove_cvref_t<F>, std::function<double(double)>>>>
double integrate(F&& f, double a, double b, double tol = 1e-10,
                 int max_depth = 48) {
  return detail::integrate_impl(f, a, b, tol, max_depth);
}

/// Integral of f over [0, inf) via the substitution t = u / (1 - u).
/// Suitable for integrands decaying at infinity (e.g., e^{-Mt} * c(t)).
double integrate_to_inf(const std::function<double(double)>& f,
                        double tol = 1e-10);

/// Templated overload, same contract without std::function dispatch.
template <typename F,
          typename = std::enable_if_t<!std::is_same_v<
              std::remove_cvref_t<F>, std::function<double(double)>>>>
double integrate_to_inf(F&& f, double tol = 1e-10) {
  return detail::integrate_to_inf_impl(f, tol);
}

/// Bisection root finding: returns x in [lo, hi] with f(x) ~= 0.
/// Requires sign(f(lo)) != sign(f(hi)). Tolerance is on the interval width.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double xtol = 1e-12, int max_iter = 200);

/// Find x such that g(x) = target for strictly decreasing g on [lo, hi],
/// clamping to the interval if target is outside g's range there.
double invert_decreasing(const std::function<double(double)>& g, double target,
                         double lo, double hi, double xtol = 1e-12);

/// Gamma function Gamma(x) for x > 0 (thin wrapper; asserts the domain).
double gamma_fn(double x);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

/// Euler-Mascheroni constant.
inline constexpr double kEulerGamma = 0.57721566490153286060651209;

}  // namespace impatience::util
