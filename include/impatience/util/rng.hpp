// Deterministic, portable pseudo-random number generation.
//
// The simulator must produce identical runs for identical seeds on every
// platform, so we avoid std::<distribution> (whose algorithms are
// implementation-defined) and ship xoshiro256++ plus the handful of
// distributions the library needs.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace impatience::util {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential variate with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Poisson variate with mean lambda >= 0.
  std::uint64_t poisson(double lambda) noexcept;

  /// Standard normal variate (polar Marsaglia).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal variate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Stochastic rounding: returns floor(x) or ceil(x) with expectation x.
  std::int64_t stochastic_round(double x) noexcept;

  /// Derive an independent child RNG (e.g., one per trial).
  Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  // Cached second variate for the polar normal method.
  double normal_spare_ = 0.0;
  bool has_normal_spare_ = false;
};

}  // namespace impatience::util
