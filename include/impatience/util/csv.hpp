// Minimal CSV emission for experiment outputs.
#pragma once

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace impatience::util {

/// Streams rows of a CSV table. Values containing separators/quotes/newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to an existing stream (not owned).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Opens (and owns) a file stream. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& names) { row_strings(names); }

  /// Writes one row; accepts any streamable value types.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    row_strings(cells);
  }

  void row_strings(const std::vector<std::string>& cells);

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return v;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os.precision(12);
      os << v;
      return os.str();
    }
  }

  static std::string escape(const std::string& s);

  std::ofstream owned_;
  std::ostream* out_;
};

}  // namespace impatience::util
