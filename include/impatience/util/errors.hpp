// Typed error conditions and cooperative cancellation, shared across the
// layering: the simulator (core) throws them, the experiment engine
// classifies them into engine::ErrorKind without depending on core, and
// the artifact writer reports I/O failures with the right type.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace impatience::util {

/// Why a CancellationToken fired. The engine's deadline watchdog cancels
/// with `deadline` (manifest error_kind "timeout"); a service-mode
/// graceful stop (SIGTERM, `GET /quit`-style admin action) cancels with
/// `shutdown` (manifest error_kind "shutdown") so an operator-requested
/// stop is distinguishable from a blown budget.
enum class CancelReason { none = 0, deadline, shutdown };

/// Stable wire name of a reason ("none", "deadline", "shutdown").
const char* to_string(CancelReason reason) noexcept;

/// A one-way flag for cooperative cancellation. The engine's deadline
/// watchdog sets it; long-running loops (the simulator checks once per
/// slot) poll `cancelled()` and unwind with CancelledError. Relaxed
/// atomics suffice — the flag carries no data beyond the reason, only
/// "stop soon"; the first cancel's reason wins.
class CancellationToken {
 public:
  void cancel(CancelReason reason = CancelReason::deadline) noexcept {
    int expected = static_cast<int>(CancelReason::none);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    flag_.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  /// Reason of the first cancel(); none while not cancelled.
  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<int> reason_{static_cast<int>(CancelReason::none)};
};

/// Thrown by cooperative code when its CancellationToken fires; the
/// engine maps it to ErrorKind::timeout (deadline) or ErrorKind::shutdown
/// (graceful stop), keyed on the carried reason.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what,
                          CancelReason reason = CancelReason::deadline)
      : std::runtime_error(what), reason_(reason) {}
  explicit CancelledError(const char* what,
                          CancelReason reason = CancelReason::deadline)
      : std::runtime_error(what), reason_(reason) {}

  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// CancelledError carrying the token's reason, for cooperative loops:
///   if (cancel && cancel->cancelled()) throw cancelled_error(*cancel, "...");
CancelledError cancelled_error(const CancellationToken& token,
                               const std::string& what);

/// Filesystem/stream failure (manifest writes, resume reads); the engine
/// maps it to ErrorKind::io.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A fault-injection plan exceeded its configured event budget
/// (fault::FaultConfig::max_fault_events); the engine maps it to
/// ErrorKind::fault_budget_exceeded.
class FaultBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace impatience::util
