// Typed error conditions and cooperative cancellation, shared across the
// layering: the simulator (core) throws them, the experiment engine
// classifies them into engine::ErrorKind without depending on core, and
// the artifact writer reports I/O failures with the right type.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace impatience::util {

/// A one-way flag for cooperative cancellation. The engine's deadline
/// watchdog sets it; long-running loops (the simulator checks once per
/// slot) poll `cancelled()` and unwind with CancelledError. Relaxed
/// atomics suffice — the flag carries no data, only "stop soon".
class CancellationToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Thrown by cooperative code when its CancellationToken fires; the
/// engine maps it to ErrorKind::timeout.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Filesystem/stream failure (manifest writes, resume reads); the engine
/// maps it to ErrorKind::io.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A fault-injection plan exceeded its configured event budget
/// (fault::FaultConfig::max_fault_events); the engine maps it to
/// ErrorKind::fault_budget_exceeded.
class FaultBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace impatience::util
