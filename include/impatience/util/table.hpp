// Fixed-width console table printing for bench/experiment output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace impatience::util {

/// Accumulates rows of strings and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; accepts streamable values, formatted with `precision`
  /// significant digits for floating-point types.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format_cell(values)), ...);
    add_row(std::move(cells));
  }

  void add_row(std::vector<std::string> cells);

  /// Number of significant digits used for floating-point cells (default 5).
  void set_precision(int digits) { precision_ = digits; }

  void print(std::ostream& out) const;

 private:
  template <typename T>
  std::string format_cell(const T& v) const {
    if constexpr (std::is_floating_point_v<T>) {
      return format_double(static_cast<double>(v), precision_);
    } else if constexpr (std::is_same_v<T, std::string>) {
      return v;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  static std::string format_double(double v, int precision);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 5;
};

}  // namespace impatience::util
