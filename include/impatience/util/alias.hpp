// Walker/Vose alias tables: O(1) sampling from a fixed discrete
// distribution, built in O(n) from unnormalized weights.
//
// The event-driven simulation kernel draws every request's item (and,
// under a non-uniform popularity profile, its node) from alias tables
// instead of the O(n) linear scan of Rng::weighted_index; at fig5/fig6
// scale (500 items) that turns the per-request cost from ~n/2 weight
// comparisons into one uniform index plus one coin flip.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "impatience/util/rng.hpp"

namespace impatience::util {

class AliasTable {
 public:
  /// Empty table; sample() is invalid until a non-empty rebuild().
  AliasTable() = default;

  /// Builds the table from unnormalized weights. Negative weights are
  /// treated as zero; throws std::invalid_argument when the weights are
  /// empty or sum to zero.
  explicit AliasTable(std::span<const double> weights) { rebuild(weights); }

  /// Rebuilds in place (Vose's stable O(n) construction).
  void rebuild(std::span<const double> weights);

  /// Draws an index with probability proportional to its weight: one
  /// uniform column pick plus one biased coin.
  std::size_t sample(Rng& rng) const noexcept {
    const std::size_t column = rng.uniform_index(prob_.size());
    return rng.uniform() < prob_[column] ? column
                                         : static_cast<std::size_t>(
                                               alias_[column]);
  }

  std::size_t size() const noexcept { return prob_.size(); }
  bool empty() const noexcept { return prob_.empty(); }

  /// Exact acceptance probability of a column (for tests).
  double prob(std::size_t column) const { return prob_.at(column); }
  /// Alias target of a column (for tests).
  std::size_t alias(std::size_t column) const { return alias_.at(column); }

 private:
  std::vector<double> prob_;          // acceptance probability per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
};

}  // namespace impatience::util
