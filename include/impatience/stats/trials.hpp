// Aggregation across independent simulation trials: mean plus the 5%/95%
// percentile band the paper uses for its confidence intervals (Section 6.1).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace impatience::stats {

/// Mean and percentile band of one metric across trials.
struct TrialBand {
  double mean = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  std::size_t trials = 0;
};

/// Collects per-trial scalar outcomes keyed by (series, x) and reports
/// mean with 5%/95% bands — matching the paper's plotting convention.
class TrialAggregator {
 public:
  void add(const std::string& series, double x, double value);

  /// Band for a given (series, x); throws std::out_of_range if absent.
  TrialBand band(const std::string& series, double x) const;

  /// Sorted x values seen for a series.
  std::vector<double> xs(const std::string& series) const;

  /// All series names in insertion-independent (sorted) order.
  std::vector<std::string> series_names() const;

  /// Raw per-trial samples for (series, x), in insertion order; throws
  /// std::out_of_range if absent.
  const std::vector<double>& samples(const std::string& series,
                                     double x) const;

  /// Appends every sample of `other` (series/x-wise). Deterministic:
  /// other's samples keep their insertion order and land after ours.
  void merge(const TrialAggregator& other);

 private:
  std::map<std::string, std::map<double, std::vector<double>>> data_;
};

}  // namespace impatience::stats
