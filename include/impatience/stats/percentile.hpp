// Percentiles and empirical CDF helpers.
#pragma once

#include <vector>

namespace impatience::stats {

/// p-th percentile (p in [0,1]) of the samples, linear interpolation
/// between order statistics. Throws std::invalid_argument on empty input
/// or p outside [0,1]. Does not modify the input.
double percentile(std::vector<double> samples, double p);

/// Several percentiles in one sort pass.
std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& ps);

/// Empirical CDF evaluated at the given points: fraction of samples <= x.
std::vector<double> empirical_cdf(std::vector<double> samples,
                                  const std::vector<double>& at);

/// Median absolute deviation (robust spread).
double median_abs_deviation(std::vector<double> samples);

}  // namespace impatience::stats
