// Streaming summary statistics (Welford).
#pragma once

#include <cstddef>
#include <limits>

namespace impatience::stats {

/// Accumulates count / mean / variance / min / max in one pass.
class Summary {
 public:
  void add(double x) noexcept;

  /// Merge another summary into this one (parallel Welford).
  void merge(const Summary& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace impatience::stats
