// Time-series accumulation: (time, value) events binned into fixed-width
// windows, e.g. hourly-averaged observed utility as in the paper's Fig. 5.
#pragma once

#include <cstdint>
#include <vector>

namespace impatience::stats {

/// One output point of a binned series.
struct SeriesPoint {
  double time;   ///< bin midpoint
  double value;  ///< bin aggregate
};

/// Accumulates point events (gains at timestamps) and reports either the
/// per-bin sum-rate (sum of values / bin width) or the per-bin mean.
class BinnedSeries {
 public:
  /// @param bin_width width of each bin in time units (> 0)
  /// @param horizon   total duration covered (events beyond it are clamped
  ///                  into the last bin)
  BinnedSeries(double bin_width, double horizon);

  void add(double time, double value) noexcept;

  /// Index of the bin add(time, ...) would hit (clamped at both ends).
  std::size_t bin_index(double time) const noexcept;

  /// Folds a pre-aggregated batch (the sum of `count` values that all
  /// fall into `bin`) into the series. Equivalent to `count` add() calls
  /// up to the floating-point association of the batch sum.
  void add_batch(std::size_t bin, double sum, std::uint64_t count) noexcept {
    sums_[bin] += sum;
    counts_[bin] += count;
    total_ += sum;
  }

  /// Accumulates a run of events that mostly share a bin and folds each
  /// completed bin into the series with one add_batch. The event-driven
  /// simulation kernel records per-fulfilment gains through a Batcher so
  /// a demand gap costs one flush per bin touched instead of three
  /// read-modify-writes per request (docs/perf.md §3). Events may arrive
  /// in any time order; a bin change just costs one extra flush. Call
  /// flush() before reading the series.
  class Batcher {
   public:
    explicit Batcher(BinnedSeries& series) noexcept : series_(&series) {}

    void add(double time, double value) noexcept {
      const std::size_t bin = series_->bin_index(time);
      if (count_ > 0 && bin == bin_) {
        sum_ += value;
        ++count_;
        return;
      }
      flush();
      bin_ = bin;
      sum_ = value;
      count_ = 1;
    }

    /// Folds the open batch (if any) into the series.
    void flush() noexcept {
      if (count_ == 0) return;
      series_->add_batch(bin_, sum_, count_);
      sum_ = 0.0;
      count_ = 0;
    }

   private:
    BinnedSeries* series_;
    std::size_t bin_ = 0;
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
  };

  std::size_t bin_count() const noexcept { return sums_.size(); }
  double bin_width() const noexcept { return bin_width_; }

  /// Sum of values per bin divided by bin width (a rate: utility/time).
  std::vector<SeriesPoint> rate_series() const;

  /// Mean of values per bin (empty bins report 0).
  std::vector<SeriesPoint> mean_series() const;

  /// Total of all accumulated values.
  double total() const noexcept { return total_; }

 private:
  double bin_width_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
  double total_ = 0.0;
};

}  // namespace impatience::stats
