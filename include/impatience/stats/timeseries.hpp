// Time-series accumulation: (time, value) events binned into fixed-width
// windows, e.g. hourly-averaged observed utility as in the paper's Fig. 5.
#pragma once

#include <cstdint>
#include <vector>

namespace impatience::stats {

/// One output point of a binned series.
struct SeriesPoint {
  double time;   ///< bin midpoint
  double value;  ///< bin aggregate
};

/// Accumulates point events (gains at timestamps) and reports either the
/// per-bin sum-rate (sum of values / bin width) or the per-bin mean.
class BinnedSeries {
 public:
  /// @param bin_width width of each bin in time units (> 0)
  /// @param horizon   total duration covered (events beyond it are clamped
  ///                  into the last bin)
  BinnedSeries(double bin_width, double horizon);

  void add(double time, double value) noexcept;

  std::size_t bin_count() const noexcept { return sums_.size(); }
  double bin_width() const noexcept { return bin_width_; }

  /// Sum of values per bin divided by bin width (a rate: utility/time).
  std::vector<SeriesPoint> rate_series() const;

  /// Mean of values per bin (empty bins report 0).
  std::vector<SeriesPoint> mean_series() const;

  /// Total of all accumulated values.
  double total() const noexcept { return total_; }

 private:
  double bin_width_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
  double total_ = 0.0;
};

}  // namespace impatience::stats
