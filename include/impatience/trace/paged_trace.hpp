// Delta-encoded paged trace files: the on-disk streaming counterpart of
// GeneratedSource for parsed real-world contact logs (GPS / Bluetooth
// sightings preprocessed into slot-sorted ContactEvents).
//
// Layout (little-endian):
//   header   magic "IPTRACE1", u32 version, u32 num_nodes, i64 duration,
//            u64 num_events, u64 events_per_page, u64 num_pages
//   index    per page: u64 byte offset into the data section,
//            i64 first slot, u64 event count
//   data     pages of LEB128-varint event triples:
//              slot_delta = slot - prev_slot   (prev = page first slot,
//                                               so the first delta is 0)
//              a
//              gap = b - a - 1                 (canonical a < b)
//
// Slot deltas make long sparse traces a few bytes per event instead of
// 16; per-page slot anchors keep pages independently decodable, and the
// reader holds exactly one decoded page (plus the current slot's batch,
// which may span pages) in memory.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "impatience/trace/contact.hpp"
#include "impatience/trace/event_source.hpp"

namespace impatience::trace {

/// Writes `trace` to `path` in the paged format above. Events are taken
/// in the trace's canonical (slot, a, b) order. Throws std::runtime_error
/// on I/O failure, std::invalid_argument for a bad page size.
void write_paged_trace(const ContactTrace& trace, const std::string& path,
                       std::size_t events_per_page = 4096);

/// How PagedTraceReader touches the data section. kMmap maps the file
/// and decodes pages in place (no per-page seek+read+copy); kStdio is
/// the portable ifstream path. kAuto tries mmap and silently falls back
/// to stdio where mapping is unavailable. The decoded event stream is
/// bit-identical across modes (the tests lock this).
enum class TraceIo { kAuto, kMmap, kStdio };

/// Streams a paged trace file slot by slot. Keeps one decoded page in
/// memory; a slot whose events span pages is assembled across page loads
/// before being handed out, so batches still cover whole slots.
class PagedTraceReader final : public EventSource {
 public:
  explicit PagedTraceReader(const std::string& path,
                            TraceIo io = TraceIo::kAuto);
  ~PagedTraceReader() override;

  NodeId num_nodes() const override { return num_nodes_; }
  Slot duration() const override { return duration_; }
  Slot next_slot() override;
  std::span<const ContactEvent> take_batch() override;

  std::size_t total_events() const noexcept { return num_events_; }
  std::size_t num_pages() const noexcept { return page_index_.size(); }
  /// Resolved I/O mode: kMmap or kStdio (never kAuto).
  TraceIo io_mode() const noexcept { return mode_; }

 private:
  struct PageInfo {
    std::uint64_t offset;
    Slot first_slot;
    std::uint64_t count;
  };

  void load_next_page();          // decodes one page into buffer_
  bool ensure_buffered();         // true when buffer_ has unserved events

  std::ifstream file_;
  std::string path_;
  TraceIo mode_ = TraceIo::kStdio;
  int fd_ = -1;                    // mmap mode: open file descriptor
  const char* map_ = nullptr;      // mmap mode: whole-file mapping
  std::size_t map_size_ = 0;
  NodeId num_nodes_ = 0;
  Slot duration_ = 0;
  std::size_t num_events_ = 0;
  std::vector<PageInfo> page_index_;
  std::uint64_t data_begin_ = 0;  // file offset of the data section
  std::size_t next_page_ = 0;
  std::vector<ContactEvent> buffer_;  // decoded, not yet consumed
  std::size_t head_ = 0;              // first unconsumed index in buffer_
  std::vector<ContactEvent> batch_;   // current slot's assembled batch
};

/// Convenience: materialize a paged file back into a ContactTrace (test
/// and tooling helper; experiments should stream via PagedTraceReader).
ContactTrace read_paged_trace(const std::string& path);

}  // namespace impatience::trace
