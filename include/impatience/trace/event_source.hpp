// Streaming contact feeds: the pull interface the simulation kernels
// consume instead of a fully materialized ContactTrace.
//
// An EventSource hands out meeting batches one slot at a time, in slot
// order. The kernels only ever need the current slot's batch (a bounded
// look-ahead window of one nonempty slot), so a source backed by a
// generator or an on-disk pager keeps O(window) events in memory where
// the materialized path keeps O(trace).
//
// Contract shared by every implementation:
//  * next_slot() is idempotent: it reports the slot of the next pending
//    (not yet taken) batch, generating ahead as needed, and
//    kNoMoreEvents once the source is drained.
//  * take_batch() returns the batch at next_slot() — nonempty, slot-
//    sorted with canonical a < b within the slot — and advances the
//    source. The span is valid until the next call on the source.
//  * Batches are exactly the nonempty slot_events() runs of the
//    equivalent materialized trace, in the same order: a kernel driven
//    from a GeneratedSource seeded like the generator run is
//    bit-identical to one driven from the generated ContactTrace.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "impatience/trace/contact.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/trace/stats.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::trace {

class EventSource {
 public:
  /// Sentinel returned by next_slot() on a drained source. Matches the
  /// event kernel's "no more meetings" slot so the kernel can use the
  /// value directly in its next-wakeup minimum.
  static constexpr Slot kNoMoreEvents = std::numeric_limits<Slot>::max();

  virtual ~EventSource() = default;

  virtual NodeId num_nodes() const = 0;
  /// Number of slots; batches have slots in [0, duration()).
  virtual Slot duration() const = 0;

  /// Slot of the next pending batch, kNoMoreEvents when drained.
  virtual Slot next_slot() = 0;

  /// The pending batch (all events of next_slot()). Must not be called
  /// on a drained source. Invalidated by the next call on the source.
  virtual std::span<const ContactEvent> take_batch() = 0;

  /// Upper bound on any batch size when cheaply known, 0 for "unknown".
  /// The fault path uses it to pre-reserve its per-slot staging buffer;
  /// sources that cannot know cheaply return 0 and the buffer grows on
  /// demand instead.
  virtual std::size_t max_slot_events_hint() const { return 0; }
};

/// Adapter exposing an existing ContactTrace as a stream. Non-owning:
/// the trace must outlive the source.
class MaterializedSource final : public EventSource {
 public:
  explicit MaterializedSource(const ContactTrace& trace) noexcept
      : trace_(&trace) {}

  NodeId num_nodes() const override { return trace_->num_nodes(); }
  Slot duration() const override { return trace_->duration(); }
  Slot next_slot() override;
  std::span<const ContactEvent> take_batch() override;
  std::size_t max_slot_events_hint() const override {
    return trace_->max_slot_events();
  }

 private:
  const ContactTrace* trace_;
  std::size_t cursor_ = 0;
};

/// Lazy memoryless generator: draws the same Bernoulli sequence as
/// generate_heterogeneous / generate_poisson / generate_community_trace
/// but one slot at a time, buffering only the current nonempty slot.
/// Seed it with a copy of the Rng the materializing call would consume
/// and the emitted batches — and any simulation driven from them — are
/// bit-identical to the materialized run.
class GeneratedSource final : public EventSource {
 public:
  /// Heterogeneous rates, mirroring generate_heterogeneous (pair list in
  /// (a, b) order, zero-rate pairs draw nothing). O(pairs) memory.
  GeneratedSource(const RateMatrix& rates, Slot duration, util::Rng rng);

  /// Homogeneous contacts, mirroring generate_poisson. O(1) memory: the
  /// implicit all-pairs list is iterated, never stored, so this is the
  /// constructor for million-node streaming.
  GeneratedSource(const PoissonTraceParams& params, util::Rng rng);

  /// Community-structured contacts, mirroring generate_community_trace.
  static GeneratedSource community(const CommunityTraceParams& params,
                                   util::Rng rng);

  NodeId num_nodes() const override { return num_nodes_; }
  Slot duration() const override { return duration_; }
  Slot next_slot() override;
  std::span<const ContactEvent> take_batch() override;

 private:
  GeneratedSource(NodeId num_nodes, Slot duration, double homogeneous_mu,
                  util::Rng rng);
  void generate_slot(Slot slot);  // fills batch_ with slot's events

  struct Pair {
    NodeId a, b;
    double p;
  };
  std::vector<Pair> pairs_;      // empty in the homogeneous fast path
  double homogeneous_mu_ = -1.0; // >= 0 selects the pair-free fast path
  NodeId num_nodes_;
  Slot duration_;
  util::Rng rng_;
  Slot generated_to_ = 0;  // slots [0, generated_to_) have been drawn
  Slot buffered_slot_ = kNoMoreEvents;
  bool buffer_pending_ = false;
  std::vector<ContactEvent> batch_;
};

}  // namespace impatience::trace
