// Parsers for external contact/mobility data, plus the library's native
// trace format. Real traces (Infocom'06 via CRAWDAD, Cabspotting) are not
// redistributable with this repository; these parsers let them drop in,
// while the generators in generators.hpp provide statistically comparable
// synthetic stand-ins (see DESIGN.md, "Substitutions").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "impatience/trace/contact.hpp"

namespace impatience::trace {

/// How a contact interval [start, end] maps onto discrete meeting slots.
enum class ContactExpansion {
  kOnsetOnly,      ///< one meeting event at the start slot (paper model)
  kEverySlot,      ///< one event in every slot the contact spans
};

/// What a lenient parse skipped (see ParseOptions::report).
struct ParseReport {
  /// Malformed or absurd records dropped instead of aborting the parse.
  std::uint64_t malformed_lines = 0;
};

/// Record-level error handling, shared by all external-trace parsers.
struct ParseOptions {
  /// Lenient mode: a malformed record is skipped (counted, with one
  /// summary warning) instead of aborting the parse, so one corrupt line
  /// in a multi-GB trace capture does not kill a sweep. Records with
  /// non-finite values or timestamps outside +/-1e7 seconds (~115 days —
  /// far beyond any real capture) are treated as malformed too, bounding
  /// the memory a corrupt timestamp could demand. A parse in which no
  /// valid record survives yields a minimal inert trace (1 node, 1 slot,
  /// no events) rather than throwing. Option-level errors (e.g. a
  /// non-positive slot_seconds) still throw: those are caller bugs, not
  /// data corruption.
  bool lenient = false;
  /// When set, receives the skip counts of a lenient parse.
  ParseReport* report = nullptr;
};

struct CrawdadOptions {
  /// Real seconds per simulation slot (the paper uses 60 = one minute).
  double slot_seconds = 60.0;
  ContactExpansion expansion = ContactExpansion::kOnsetOnly;
  ParseOptions parse{};
};

/// Parses CRAWDAD-style pairwise contact records. Accepted line formats
/// (whitespace separated, '#' starts a comment):
///   node_a node_b start_seconds end_seconds    (4 columns)
///   time_seconds node_a node_b                 (3 columns)
/// Node ids may be arbitrary non-negative integers; they are remapped to a
/// dense [0, N) range in first-appearance order. Throws
/// std::runtime_error on malformed input (unless ParseOptions::lenient).
ContactTrace parse_crawdad(std::istream& in, const CrawdadOptions& options);
ContactTrace parse_crawdad_file(const std::string& path,
                                const CrawdadOptions& options);

struct GpsOptions {
  double slot_seconds = 60.0;
  /// Contact radius in the same distance unit as the coordinates (the
  /// paper uses 200 m for Cabspotting).
  double contact_range = 200.0;
  /// Position fixes further apart than this are not interpolated across
  /// (the vehicle was off-duty); no contacts are produced in the gap.
  double max_gap_seconds = 600.0;
  /// Treat coordinates as (latitude, longitude) degrees and project them
  /// to meters (equirectangular around the data centroid).
  bool coordinates_are_latlon = false;
  ContactExpansion expansion = ContactExpansion::kOnsetOnly;
  ParseOptions parse{};
};

/// Parses GPS position logs ("node_id time_seconds x y" per line, '#'
/// comments) and derives a contact trace: nodes are in contact in a slot
/// when their interpolated positions are within contact_range.
ContactTrace parse_gps(std::istream& in, const GpsOptions& options);
ContactTrace parse_gps_file(const std::string& path,
                            const GpsOptions& options);

struct OneOptions {
  /// Real seconds per simulation slot.
  double slot_seconds = 60.0;
  ContactExpansion expansion = ContactExpansion::kOnsetOnly;
  ParseOptions parse{};
};

/// Parses the ONE simulator's StandardEventsReader connection logs:
///   <time> CONN <node_a> <node_b> up
///   <time> CONN <node_a> <node_b> down
/// Other event types (M/C/S/DE/...) are ignored. Connections still "up"
/// at the end of the log are closed at the last timestamp. Node ids may
/// be arbitrary non-negative integers (dense-remapped in first-appearance
/// order). Throws std::runtime_error on malformed input (unless
/// ParseOptions::lenient).
ContactTrace parse_one_events(std::istream& in, const OneOptions& options);
ContactTrace parse_one_events_file(const std::string& path,
                                   const OneOptions& options);

/// Native trace format:
///   # impatience-trace v1
///   nodes <N> duration <D>
///   <slot> <a> <b>        (one event per line)
void write_native(const ContactTrace& trace, std::ostream& out);
void write_native_file(const ContactTrace& trace, const std::string& path);
ContactTrace read_native(std::istream& in);
ContactTrace read_native_file(const std::string& path);

}  // namespace impatience::trace
