// Random-waypoint mobility with optional hotspot attraction, used to
// synthesize a Cabspotting-like vehicular contact trace (see DESIGN.md:
// the real GPS trace is not redistributable; simulated mobility reproduces
// the heavy-tailed contact statistics the paper's Section 6.3 relies on).
#pragma once

#include <vector>

#include "impatience/trace/contact.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::trace {

struct Position {
  double x;
  double y;
};

struct RandomWaypointParams {
  NodeId num_nodes = 50;
  double area_size = 10000.0;    ///< square side, meters
  double speed_min = 5.0;        ///< m/s
  double speed_max = 15.0;       ///< m/s
  double pause_mean_s = 120.0;   ///< mean pause at each waypoint
  double slot_seconds = 60.0;    ///< simulated seconds per slot
  int num_hotspots = 5;          ///< 0 disables hotspot attraction
  double hotspot_prob = 0.7;     ///< probability a waypoint is a hotspot
  double hotspot_sigma = 300.0;  ///< spread around a hotspot, meters
  /// Duty cycle: vehicles alternate on-duty (moving, contactable) and
  /// off-duty (parked, no contacts) periods with these exponential mean
  /// durations. Off-duty gaps lengthen the inter-contact tail the way
  /// real taxi shifts do. Default off (duty_off_mean_s = 0: always on):
  /// long parked periods shift delays into a regime no cache allocation
  /// can influence, which mostly measures censoring, not replication.
  double duty_on_mean_s = 6.0 * 3600.0;
  double duty_off_mean_s = 0.0;
};

/// Steps node positions one slot at a time.
class RandomWaypointModel {
 public:
  RandomWaypointModel(const RandomWaypointParams& params, util::Rng& rng);

  /// Advances all nodes by one slot.
  void step();

  const std::vector<Position>& positions() const noexcept {
    return positions_;
  }
  const std::vector<Position>& hotspots() const noexcept { return hotspots_; }

 private:
  void pick_waypoint(std::size_t node);

  RandomWaypointParams params_;
  util::Rng* rng_;
  std::vector<Position> positions_;
  std::vector<Position> waypoints_;
  std::vector<double> speeds_;        // m/s towards waypoint
  std::vector<double> pause_left_s_;  // remaining pause at waypoint
  std::vector<Position> hotspots_;
};

/// Runs the mobility model for `duration` slots and extracts contacts at
/// the given range (contact-onset events, as in the paper's model).
ContactTrace generate_mobility_trace(const RandomWaypointParams& params,
                                     Slot duration, double contact_range,
                                     util::Rng& rng);

}  // namespace impatience::trace
