// Synthetic contact-trace generators: the homogeneous Poisson setting of
// the paper's Section 6.2, a heterogeneous rate-matrix generator, and the
// Infocom'06- and Cabspotting-like stand-ins for the real traces of
// Section 6.3 (see DESIGN.md "Substitutions").
#pragma once

#include "impatience/trace/contact.hpp"
#include "impatience/trace/mobility.hpp"
#include "impatience/trace/stats.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::trace {

/// Homogeneous discrete-time contacts: every pair meets independently in
/// every slot with probability mu (the paper uses mu = 0.05, 50 nodes).
struct PoissonTraceParams {
  NodeId num_nodes = 50;
  Slot duration = 5000;
  double mu = 0.05;  ///< per-pair contact probability per slot, in [0,1]
};
ContactTrace generate_poisson(const PoissonTraceParams& params,
                              util::Rng& rng);

/// Heterogeneous memoryless contacts: pair (a,b) meets in each slot with
/// probability min(rates.at(a,b), 1).
ContactTrace generate_heterogeneous(const RateMatrix& rates, Slot duration,
                                    util::Rng& rng);

/// Conference-style trace: heterogeneous lognormal pair rates, a diurnal
/// activity envelope (day / evening / night) and per-pair ON/OFF burst
/// modulation. Contacts happen only while a pair's burst state is ON, with
/// probability scaled so the pair's *mean* rate stays rate * envelope —
/// i.e. burstiness is added without changing average contact volume.
struct InfocomLikeParams {
  NodeId num_nodes = 50;
  int days = 3;
  Slot slots_per_day = 1440;          ///< 1-minute slots
  double mean_pair_rate = 0.006;      ///< daytime mean contacts/slot/pair
  double rate_lognormal_sigma = 1.0;  ///< pair-rate heterogeneity
  double day_activity = 1.0;          ///< envelope, 08:00-18:00
  double evening_activity = 0.3;      ///< envelope, 18:00-24:00
  double night_activity = 0.03;       ///< envelope, 00:00-08:00
  double burst_on_prob = 0.01;        ///< P(OFF -> ON) per slot
  double burst_off_prob = 0.12;       ///< P(ON -> OFF) per slot
};
ContactTrace generate_infocom_like(const InfocomLikeParams& params,
                                   util::Rng& rng);

/// Vehicular trace: random-waypoint taxis with hotspot attraction on a
/// square city, contacts at 200 m range (paper Section 6.3). One simulated
/// day of 1-minute slots by default.
struct CabspottingLikeParams {
  RandomWaypointParams mobility{};  ///< defaults: 50 nodes, 10 km box
  Slot duration = 1440;
  double contact_range = 200.0;
};
ContactTrace generate_cabspotting_like(const CabspottingLikeParams& params,
                                       util::Rng& rng);

/// The paper's Fig. 5(c) construction: a synthetic trace with the same
/// per-pair mean rates as `original` but memoryless (Poisson) timing.
ContactTrace memoryless_equivalent(const ContactTrace& original,
                                   util::Rng& rng);

/// Community-structured contacts (the paper's Section 7 points to
/// clustered peers as the next systematic study): nodes are split into
/// `num_communities` round-robin groups; intra-community pairs meet at
/// `intra_rate`, inter-community pairs at `inter_rate` per slot.
struct CommunityTraceParams {
  NodeId num_nodes = 50;
  Slot duration = 5000;
  int num_communities = 5;
  double intra_rate = 0.2;    ///< contacts/slot within a community
  double inter_rate = 0.005;  ///< contacts/slot across communities
};
ContactTrace generate_community_trace(const CommunityTraceParams& params,
                                      util::Rng& rng);

/// Community id of a node under the round-robin split above.
int community_of(NodeId node, int num_communities);

}  // namespace impatience::trace
