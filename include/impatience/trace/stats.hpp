// Descriptive statistics of contact traces: the empirical per-pair rate
// matrix (the memoryless approximation OPT is computed from), inter-contact
// time samples, and activity series.
#pragma once

#include <vector>

#include "impatience/trace/contact.hpp"

namespace impatience::trace {

/// Symmetric per-pair contact-rate matrix (contacts per slot).
class RateMatrix {
 public:
  explicit RateMatrix(NodeId num_nodes, double fill = 0.0);

  NodeId num_nodes() const noexcept { return n_; }

  double at(NodeId a, NodeId b) const;
  void set(NodeId a, NodeId b, double rate);

  /// Sum of rates towards `node` from every other node.
  double node_rate(NodeId node) const;

  /// Mean off-diagonal rate.
  double mean_rate() const;

  /// A homogeneous matrix with every off-diagonal entry = mu.
  static RateMatrix homogeneous(NodeId num_nodes, double mu);

 private:
  NodeId n_;
  std::vector<double> rates_;  // row-major n*n, symmetric, zero diagonal
};

/// Empirical rate matrix: pair contact counts divided by trace duration.
RateMatrix estimate_rates(const ContactTrace& trace);

/// Inter-contact time samples (in slots) pooled over all pairs that meet
/// at least twice.
std::vector<double> inter_contact_times(const ContactTrace& trace);

/// Coefficient of variation (stddev/mean) of the pooled inter-contact
/// times; ~1 for memoryless contacts, > 1 for bursty traces.
/// Returns 0 if there are fewer than two samples.
double inter_contact_cv(const ContactTrace& trace);

/// Number of contacts in each slot.
std::vector<std::size_t> contacts_per_slot(const ContactTrace& trace);

/// The paper's Infocom preprocessing (Section 6.3): keep only the k
/// best-connected nodes ("to remove bias from poorly connected nodes")
/// and remap them to dense ids in order of decreasing contact count.
/// Contacts involving dropped nodes are discarded. Requires
/// 2 <= k <= num_nodes.
ContactTrace select_most_active_nodes(const ContactTrace& trace,
                                      NodeId k);

}  // namespace impatience::trace
