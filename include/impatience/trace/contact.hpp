// Contact traces: the substrate every experiment runs on.
//
// Time is discrete (slots of fixed real duration, 1 minute in the paper's
// experiments); a ContactEvent says "nodes a and b met during this slot and
// could complete a full protocol exchange" (the paper ignores meeting
// durations, Section 6.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace impatience::trace {

using NodeId = std::uint32_t;
using Slot = std::int64_t;

/// One meeting opportunity. Canonical form has a < b (undirected).
struct ContactEvent {
  Slot slot;
  NodeId a;
  NodeId b;

  friend bool operator==(const ContactEvent&, const ContactEvent&) = default;
};

/// Aggregate contact total of one unordered node pair (canonical a < b).
struct PairContacts {
  NodeId a;
  NodeId b;
  std::size_t count;

  friend bool operator==(const PairContacts&, const PairContacts&) = default;
};

struct SlotConflictStats;

/// An immutable, slot-sorted contact trace over nodes [0, num_nodes).
class ContactTrace {
 public:
  /// Takes ownership of the events; sorts by (slot, a, b), canonicalizes
  /// a < b, drops self-contacts and exact duplicates. Throws
  /// std::invalid_argument for events outside [0, duration) or node ids
  /// outside [0, num_nodes).
  ContactTrace(NodeId num_nodes, Slot duration,
               std::vector<ContactEvent> events);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  /// Number of slots; valid slots are [0, duration).
  Slot duration() const noexcept { return duration_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  const std::vector<ContactEvent>& events() const noexcept { return events_; }

  /// Events of one slot (contiguous range; empty if none).
  std::span<const ContactEvent> slot_events(Slot slot) const;

  /// Index into events() of the first event at or after `slot`
  /// (== size() when none). O(1) through the slot index; the event-driven
  /// simulation kernel uses it to seed its meeting cursor.
  std::size_t first_event_at_or_after(Slot slot) const;

  /// Largest number of events sharing one slot (0 for an empty trace).
  /// Precomputed at construction; bounds per-slot staging buffers (the
  /// fault path's delivery vector) so they reserve once instead of
  /// growing inside the loop.
  std::size_t max_slot_events() const noexcept { return max_slot_events_; }

  /// Sub-trace covering slots [from, to) re-based to start at slot 0.
  ContactTrace slice(Slot from, Slot to) const;

  /// Per-pair contact totals, sorted by (a, b); pairs that never meet are
  /// absent. Built in a single pass at construction, so rate estimation
  /// and pair queries need not rescan the event list.
  const std::vector<PairContacts>& pair_counts() const noexcept {
    return pair_counts_;
  }

  /// Total contacts between the given (unordered) pair. O(log P) lookup
  /// in the pair_counts() index.
  std::size_t pair_count(NodeId a, NodeId b) const;

  /// Available intra-slot parallelism: per-slot meeting counts, distinct
  /// nodes, and the wave depth of the greedy node-disjoint prefix
  /// partition the parallel meeting path uses (trace/partition.hpp).
  /// One O(events) pass; benches report it per trace family so manifest
  /// readers can tell where SimOptions::meeting_parallelism pays off.
  SlotConflictStats slot_conflict_stats() const;

 private:
  NodeId num_nodes_;
  Slot duration_;
  std::vector<ContactEvent> events_;
  /// slot_begin_[s] = index of the first event with slot >= s.
  std::vector<std::size_t> slot_begin_;
  std::vector<PairContacts> pair_counts_;
  std::size_t max_slot_events_ = 0;
};

}  // namespace impatience::trace
