// Conflict scheduling of meeting batches: assign each meeting of a
// slot's (or an event-gap's) contact sequence to a *wave* such that no
// node appears twice within a wave, and interleave the waves with
// *commit runs* that walk the batch in exact trace order. The schedule
// is the whole bit-identity argument of core::simulate's parallel
// meeting path (docs/perf.md §5):
//
//   plan wave 0   (parallel, read-only)
//   commit run 0  (sequential, trace order: [0, commit_ends[0]))
//   plan wave 1
//   commit run 1  ([commit_ends[0], commit_ends[1]))
//   ...
//
// A meeting is assigned to the first wave whose preceding commit runs
// cover *all of its earlier conflicting meetings* — so when its plan
// executes, every meeting that could have changed its two nodes' state
// has already committed, and the plan reads exactly the state the
// sequential fused walk would have seen. Commits perform every RNG draw
// in trace order, so the draws land in the sequential order too.
//
// Unlike a contiguous-prefix partition, waves here are *antichains*: a
// wave may reach far past the commit cursor and pick up every meeting
// whose conflicts are already committed. That matters because
// ContactTrace sorts each slot's events by node id, which makes a
// node's meetings adjacent — contiguous prefix waves degenerate to
// width ~2 on dense slots, while antichain waves stay as wide as the
// slot's conflict graph allows (its maximal independent prefix sets).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "impatience/trace/contact.hpp"

namespace impatience::trace {

/// Reusable conflict scheduler. Scratch (one epoch stamp plus a last-
/// seen index per node, and the per-meeting wave numbers) lives across
/// calls, so per-batch cost is O(batch) with no allocation after the
/// first schedule of comparable size.
class WavePartitioner {
 public:
  explicit WavePartitioner(NodeId num_nodes);

  /// Computes the wave/commit schedule of `events` (all outputs cleared
  /// first):
  ///   - `order` is a permutation of [0, events.size()): the meetings
  ///     grouped by wave, ascending within each wave;
  ///   - wave k is order[k == 0 ? 0 : wave_ends[k-1], wave_ends[k]),
  ///     and is node-disjoint;
  ///   - commit run k is the trace-order index range
  ///     [k == 0 ? 0 : commit_ends[k-1], commit_ends[k]); runs are
  ///     non-empty and commit_ends.back() == events.size().
  /// The schedule contract: every meeting of wave k has all of its
  /// earlier conflicting meetings inside commit runs < k, and every
  /// meeting of commit run k is in a wave <= k. Deterministic: the wave
  /// of a meeting is exactly one more than the commit run of its latest
  /// earlier conflicting meeting (wave 0 if it has none).
  void schedule(std::span<const ContactEvent> events,
                std::vector<std::uint32_t>& order,
                std::vector<std::size_t>& wave_ends,
                std::vector<std::size_t>& commit_ends);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(stamp_.size());
  }

 private:
  std::vector<std::uint32_t> stamp_;       // epoch a node was last seen in
  std::vector<std::uint32_t> last_index_;  // last meeting index, if stamped
  std::vector<std::uint32_t> wave_of_;     // per-meeting wave number
  std::vector<std::uint32_t> run_of_;      // running max of wave_of_
  std::vector<std::size_t> bucket_;        // counting-sort scratch
  std::uint32_t epoch_ = 0;
};

/// Available intra-slot parallelism of a trace, measured with the same
/// antichain schedule the simulator's parallel meeting path uses
/// (ContactTrace::slot_conflict_stats). All "per slot" figures are over
/// *active* slots (slots with at least one meeting).
struct SlotConflictStats {
  std::size_t active_slots = 0;       ///< slots with >= 1 meeting
  std::size_t max_slot_meetings = 0;  ///< densest slot's meeting count
  double mean_slot_meetings = 0.0;    ///< meetings per active slot
  std::size_t max_distinct_nodes = 0; ///< most distinct nodes in one slot
  std::size_t max_wave_depth = 0;     ///< most waves needed by one slot
  double mean_wave_depth = 0.0;       ///< waves per active slot
  double mean_wave_width = 0.0;       ///< meetings per wave (all slots)
};

}  // namespace impatience::trace
