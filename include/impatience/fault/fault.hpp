// Deterministic fault injection for the simulator (docs/robustness.md).
//
// The paper's claim is that QCR + mandate routing stays near the relaxed
// optimum in sluggish, unreliable opportunistic settings; the baseline
// simulator models every contact as a perfect, instantaneous exchange. A
// FaultPlan degrades that ideal channel — dropped and duplicated
// meetings, reordered delivery, truncated exchanges, node churn — while
// keeping every run bit-reproducible: all fault decisions draw from the
// plan's own RNG stream (seeded from the job's SplitMix64 child seed),
// never from the simulation RNG. Hence a plan whose probabilities are all
// zero produces output bit-identical to a run with no plan at all, and a
// seeded faulty run is bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "impatience/trace/contact.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::fault {

using trace::Slot;

/// Per-run fault probabilities and the fault stream seed. Inert by
/// default; `simulate` engages the fault machinery iff `engaged()`.
struct FaultConfig {
  // -- contact-level faults -------------------------------------------
  /// A meeting silently never happens (radio loss, missed beacon).
  double p_drop = 0.0;
  /// A meeting's exchange is cut off after a random prefix of the
  /// negotiated items; the rest stay pending (partial transfer).
  double p_truncate = 0.0;
  /// A meeting is delivered twice in its slot (link-layer duplicate).
  double p_duplicate = 0.0;
  /// A slot's surviving meetings are delivered in shuffled order.
  double p_reorder = 0.0;

  // -- node-level faults ----------------------------------------------
  /// Per-node per-slot crash hazard. A crashed node loses its in-flight
  /// mandates and pending requests, goes down for a seeded downtime, and
  /// loses its cache too unless the crash is a cold restart (below).
  double p_crash = 0.0;
  /// Mean downtime in slots after a crash (geometric-like, >= 1 slot).
  double mean_downtime = 10.0;
  /// Probability that a crash is a cold restart with persisted cache:
  /// the node still loses mandates and pending requests, but its cache
  /// (sticky pin included) survives the downtime.
  double p_persist_cache = 0.0;

  // -- plumbing ---------------------------------------------------------
  /// Seed of the fault decision stream. Derive it per job with
  /// engine::child_seed so 1-thread and 8-thread sweeps stay identical.
  std::uint64_t seed = 0;
  /// Upper bound on injected fault events (drops, duplicates, reorders,
  /// truncations, crashes); 0 = unlimited. Exceeding it throws
  /// util::FaultBudgetError (engine: ErrorKind::fault_budget_exceeded).
  std::uint64_t max_fault_events = 0;
  /// Keep the fault machinery engaged even when every probability is
  /// zero: decisions are still drawn from the fault stream but no fault
  /// ever fires. The determinism suite uses this to lock the zero-
  /// probability path to the no-fault baseline bit-for-bit.
  bool engage_when_zero = false;

  /// True if any fault can actually fire.
  bool any() const noexcept;
  /// True if `simulate` should run the fault code path.
  bool engaged() const noexcept { return any() || engage_when_zero; }
  /// Throws std::invalid_argument on out-of-range probabilities.
  void validate() const;
};

/// What the plan injected and what it cost, reported as the `faults`
/// block of core::SimulationResult. With these, mandate conservation
/// degrades gracefully instead of silently skewing replica counts:
///   mandates_created == replicas_written + outstanding + mandates_lost
/// (+ mandates_rewritten when rewriting is enabled).
struct FaultCounters {
  std::uint64_t meetings_dropped = 0;
  std::uint64_t meetings_duplicated = 0;
  std::uint64_t meetings_skipped_down = 0;  ///< partner was crashed
  std::uint64_t slots_reordered = 0;
  std::uint64_t exchanges_truncated = 0;
  std::uint64_t fulfilments_deferred = 0;  ///< matches cut off by truncation
  std::uint64_t crashes = 0;
  std::uint64_t cold_restarts = 0;   ///< crashes that kept their cache
  std::uint64_t replicas_lost = 0;   ///< cache entries wiped by crashes
  long mandates_lost = 0;            ///< in-flight mandates wiped by crashes
  std::uint64_t requests_lost = 0;   ///< pending requests wiped by crashes
  std::uint64_t requests_suppressed = 0;  ///< demand at down nodes

  /// Injected fault events, the quantity the budget bounds.
  std::uint64_t injected_events() const noexcept {
    return meetings_dropped + meetings_duplicated + slots_reordered +
           exchanges_truncated + crashes;
  }
  bool any() const noexcept;
};

/// One run's fault decisions, in deterministic (slot, event) order. The
/// simulator owns one plan per trial; every decision consumes only the
/// plan's private stream, so the simulation RNG sees the exact same draw
/// sequence as a fault-free run.
class FaultPlan {
 public:
  /// Inert plan: active() == false, no decision ever fires.
  FaultPlan() = default;
  /// Validates the config; the plan is active iff config.engaged().
  explicit FaultPlan(const FaultConfig& config);

  bool active() const noexcept { return active_; }

  // Contact-level decisions, one call per meeting/slot.
  bool drop_meeting();
  bool duplicate_meeting();
  bool should_truncate();
  /// Prefix length for a truncated exchange with `negotiated` matched
  /// items (requires negotiated > 0): uniform in [0, negotiated).
  long truncation_prefix(long negotiated);
  bool reorder_slot();
  /// Seeded shuffle of a slot's delivery order (reorder fault).
  void shuffle_delivery(std::vector<trace::ContactEvent>& events);

  // Node-level decisions, one crash check per (slot, alive node).
  bool crash_now();
  /// Given a crash: does the node keep its persisted cache?
  bool crash_persists_cache();
  /// Seeded downtime in slots, >= 1.
  Slot downtime();

  // -- event-kernel support: geometric-skip crash scheduling -----------
  //
  // The slot-stepped loop above flips one Bernoulli(p_crash) coin per
  // (slot, alive node) from the shared plan stream; that formulation
  // stays the bit-locked reference. The event-driven kernel instead
  // samples each node's *next* crash slot directly: the gap to the next
  // success of an i.i.d. Bernoulli(p) hazard is Geometric,
  //   P(G = k) = (1 - p)^k p,  k >= 0,  G = floor(ln(1-U) / ln(1-p)),
  // so one inverse-CDF draw replaces the per-slot coins. Each node draws
  // from its own private stream (seeded from the fault seed and the node
  // id), making the schedule independent of processing order. The two
  // formulations are identical in distribution — per-slot coins are
  // independent across nodes and slots, so splitting them into per-node
  // geometric renewal processes changes nothing — but they use the
  // stream differently, so they are not bit-identical to each other
  // (docs/robustness.md §"Faults on the event kernel").

  /// Sentinel "never crashes" slot.
  static constexpr Slot kNoCrash = std::numeric_limits<Slot>::max();

  /// One scheduled crash, fully drawn from the node's private stream.
  struct NodeCrash {
    Slot slot = kNoCrash;  ///< crash slot; kNoCrash when p_crash == 0
    bool persist_cache = false;
    Slot downtime = 1;  ///< node is down during [slot + 1, slot + 1 + downtime)
  };

  /// Seeds one private crash stream per node; required before
  /// next_node_crash. Idempotent per plan (re-seeds from scratch).
  void prepare_node_streams(trace::NodeId num_nodes);

  /// Next crash of node `n` at or after slot `from` via geometric skip
  /// (see above), with the crash's persist/downtime decisions drawn from
  /// the same node stream. Returns slot == kNoCrash when p_crash == 0 or
  /// the geometric gap saturates.
  NodeCrash next_node_crash(trace::NodeId n, Slot from);

  /// Counter/budget bookkeeping for a scheduled crash that actually
  /// fired (the slot-stepped path counts inside crash_now() instead).
  void record_crash();

  FaultCounters& counters() noexcept { return counters_; }
  const FaultCounters& counters() const noexcept { return counters_; }

 private:
  /// Budget check after recording an injected event.
  void charge_budget() const;
  /// Shared downtime law of both crash formulations.
  static Slot downtime_from(util::Rng& rng, double mean_downtime);

  bool active_ = false;
  FaultConfig config_{};
  util::Rng rng_{0};
  std::vector<util::Rng> node_rng_;  // geometric-skip crash streams
  FaultCounters counters_{};
};

}  // namespace impatience::fault
