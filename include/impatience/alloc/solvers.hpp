// Optimal-allocation solvers.
//
//  * homogeneous_greedy — Theorem 2: exact integer optimum under
//    homogeneous contacts (welfare is concave in the replica counts).
//  * relaxed_optimum    — Property 1: real-valued optimum via the balance
//    condition d_i phi(x_i) = lambda, solved by dual bisection.
//  * lazy_greedy_placement — Theorem 1: greedy placement for heterogeneous
//    rate matrices (submodular welfare; the paper's OPT competitor).
#pragma once

#include <vector>

#include "impatience/alloc/welfare.hpp"

namespace impatience::alloc {

/// Exact integer optimum under homogeneous contacts: maximizes
/// welfare_homogeneous subject to sum_i x_i <= capacity and
/// 0 <= x_i <= |S|. Runs the greedy of Theorem 2 with a max-heap
/// (O(capacity log I)); exact by concavity / diminishing returns.
/// Infinite first-copy marginals (cost-type utilities) are ordered by
/// demand, which preserves optimality within the infinite tier.
ItemCounts homogeneous_greedy(const std::vector<double>& demand,
                              const utility::DelayUtility& u,
                              const HomogeneousModel& model, int capacity);

/// Per-item delay-utilities h_i.
ItemCounts homogeneous_greedy(const std::vector<double>& demand,
                              const utility::UtilitySet& utilities,
                              const HomogeneousModel& model, int capacity);

/// Relaxed optimum (Property 1): real-valued x maximizing the dedicated-
/// node welfare with sum x_i = capacity, 0 <= x_i <= |S|. Solved by
/// bisection on the Lagrange multiplier of the capacity constraint; each
/// inner solve inverts the strictly decreasing d_i * phi(x).
ItemCounts relaxed_optimum(const std::vector<double>& demand,
                           const utility::DelayUtility& u, double mu,
                           double num_servers, double capacity);

/// Per-item delay-utilities: the balance condition becomes
/// d_i phi_i(x_i) = lambda with each item's own phi_i.
ItemCounts relaxed_optimum(const std::vector<double>& demand,
                           const utility::UtilitySet& utilities, double mu,
                           double num_servers, double capacity);

struct GradientOptions {
  int max_iterations = 5000;
  double step = 0.5;        ///< initial step size (backtracked)
  double tolerance = 1e-9;  ///< stop when the projected step is this small
};

/// The gradient-descent solver Theorem 2 mentions for the relaxed
/// problem: projected gradient ascent of the dedicated-node welfare on
/// the simplex-with-box {0 <= x_i <= |S|, sum x_i = capacity}, using
/// dU/dx_i = d_i * phi_i(x_i) and Euclidean projection. Converges to the
/// same point as relaxed_optimum (the objective is concave); exposed both
/// as a cross-check and because it generalizes to constraints the dual
/// bisection cannot handle.
ItemCounts relaxed_gradient(const std::vector<double>& demand,
                            const utility::DelayUtility& u, double mu,
                            double num_servers, double capacity,
                            const GradientOptions& options = {});

ItemCounts relaxed_gradient(const std::vector<double>& demand,
                            const utility::UtilitySet& utilities, double mu,
                            double num_servers, double capacity,
                            const GradientOptions& options = {});

/// Greedy placement maximizing the heterogeneous welfare of Lemma 1
/// under per-server capacity rho (a partition-matroid constraint).
/// Uses lazy marginal evaluation (valid by submodularity, Theorem 1).
/// This is the paper's OPT competitor on contact traces: exactly optimal
/// in the homogeneous case, approximately so otherwise.
Placement lazy_greedy_placement(const trace::RateMatrix& rates,
                                const std::vector<double>& demand,
                                const utility::DelayUtility& u,
                                const std::vector<NodeId>& servers,
                                const std::vector<NodeId>& clients,
                                ItemId num_items, int capacity_per_server,
                                const std::optional<PopularityProfile>&
                                    popularity = std::nullopt);

/// Per-item delay-utilities h_i (Theorem 1 covers this case).
Placement lazy_greedy_placement(const trace::RateMatrix& rates,
                                const std::vector<double>& demand,
                                const utility::UtilitySet& utilities,
                                const std::vector<NodeId>& servers,
                                const std::vector<NodeId>& clients,
                                ItemId num_items, int capacity_per_server,
                                const std::optional<PopularityProfile>&
                                    popularity = std::nullopt);

/// Reference implementation of lazy_greedy_placement evaluating every
/// marginal through the naive alloc::marginal_gain (full revalidation +
/// holder rescan per call). Returns a bit-identical placement; kept for
/// the oracle-equivalence tests and the micro-benchmarks that measure
/// the incremental oracle's speedup. Do not use in experiment drivers.
Placement lazy_greedy_placement_naive(const trace::RateMatrix& rates,
                                      const std::vector<double>& demand,
                                      const utility::DelayUtility& u,
                                      const std::vector<NodeId>& servers,
                                      const std::vector<NodeId>& clients,
                                      ItemId num_items,
                                      int capacity_per_server,
                                      const std::optional<PopularityProfile>&
                                          popularity = std::nullopt);

Placement lazy_greedy_placement_naive(const trace::RateMatrix& rates,
                                      const std::vector<double>& demand,
                                      const utility::UtilitySet& utilities,
                                      const std::vector<NodeId>& servers,
                                      const std::vector<NodeId>& clients,
                                      ItemId num_items,
                                      int capacity_per_server,
                                      const std::optional<PopularityProfile>&
                                          popularity = std::nullopt);

/// Convenience: pure-P2P lazy greedy over all nodes of the rate matrix.
Placement lazy_greedy_pure_p2p(const trace::RateMatrix& rates,
                               const std::vector<double>& demand,
                               const utility::DelayUtility& u,
                               ItemId num_items, int capacity_per_server);

}  // namespace impatience::alloc
