// Global-cache allocation representations: per-item replica counts (the
// x_i of the paper's homogeneous analysis) and the explicit item-by-server
// placement matrix (the x_{i,m} of the general model).
#pragma once

#include <cstdint>
#include <vector>

#include "impatience/trace/contact.hpp"

namespace impatience::alloc {

using ItemId = std::uint32_t;
using trace::NodeId;

/// Real- or integer-valued replica counts per item.
struct ItemCounts {
  std::vector<double> x;

  double total() const noexcept;
  std::size_t num_items() const noexcept { return x.size(); }
};

/// Binary placement matrix x_{i,m}: which server holds which item.
/// Capacity bookkeeping only; protocol-level caches live in core::Cache.
class Placement {
 public:
  Placement(ItemId num_items, NodeId num_servers, int capacity_per_server);

  ItemId num_items() const noexcept { return num_items_; }
  NodeId num_servers() const noexcept { return num_servers_; }
  int capacity_per_server() const noexcept { return capacity_; }

  bool has(ItemId item, NodeId server) const;
  /// Adds a replica. Throws std::logic_error if already present or the
  /// server is full.
  void add(ItemId item, NodeId server);
  /// Removes a replica. Throws std::logic_error if absent.
  void remove(ItemId item, NodeId server);

  int server_load(NodeId server) const;
  bool server_full(NodeId server) const {
    return server_load(server) >= capacity_;
  }

  /// Number of replicas of one item.
  int count(ItemId item) const;
  /// All per-item replica counts.
  ItemCounts counts() const;

  /// Servers currently holding the item.
  std::vector<NodeId> holders(ItemId item) const;

 private:
  std::size_t index(ItemId item, NodeId server) const {
    return static_cast<std::size_t>(item) * num_servers_ + server;
  }

  ItemId num_items_;
  NodeId num_servers_;
  int capacity_;
  std::vector<std::uint8_t> has_;
  std::vector<int> load_;
  std::vector<int> count_;
};

}  // namespace impatience::alloc
