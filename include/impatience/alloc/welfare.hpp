// Social-welfare evaluation (Eq. 1 and Lemma 1 of the paper).
//
// Homogeneous contacts: closed forms Eqs. (2)-(5); welfare depends on the
// allocation only through the per-item replica counts x_i.
//
// Heterogeneous contacts: the general Lemma 1 expression over an explicit
// placement and a per-pair rate matrix (the memoryless approximation the
// paper's OPT competitor is computed from).
#pragma once

#include <optional>
#include <vector>

#include "impatience/alloc/allocation.hpp"
#include "impatience/trace/stats.hpp"
#include "impatience/utility/delay_utility.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::alloc {

/// Dedicated nodes: C and S disjoint. Pure P2P: every node is both.
enum class SystemMode { kDedicated, kPureP2P };

/// Parameters of the homogeneous-contact closed forms.
struct HomogeneousModel {
  double mu = 0.05;        ///< per-pair meeting rate
  NodeId num_servers = 50; ///< |S|
  NodeId num_clients = 50; ///< N = |C|
  SystemMode mode = SystemMode::kPureP2P;
};

/// Expected gain of one request for an item with x replicas (continuous-
/// time contact model):
///   dedicated : E[h(Y)],   Y ~ Exp(mu * x)
///   pure P2P  : h(0+) - (1 - x/N) L(mu * x)
/// x <= 0 returns h(inf) (the request is never fulfilled). Pure P2P with
/// an unbounded-at-zero utility throws std::domain_error (the paper
/// restricts those to the dedicated case).
double item_gain(const utility::DelayUtility& u, const HomogeneousModel& m,
                 double x);

/// Social welfare U(x) = sum_i d_i * item_gain(x_i) (Eqs. 2-5).
double welfare_homogeneous(const ItemCounts& counts,
                           const std::vector<double>& demand,
                           const utility::DelayUtility& u,
                           const HomogeneousModel& m);

/// Per-item delay-utilities h_i (the paper's general model).
double welfare_homogeneous(const ItemCounts& counts,
                           const std::vector<double>& demand,
                           const utility::UtilitySet& utilities,
                           const HomogeneousModel& m);

/// Per-item demand-popularity profile pi_{i,n} over clients; uniform
/// (pi = 1/|C|) when not supplied.
struct PopularityProfile {
  /// pi[i][n] with n indexing the `clients` vector; rows must sum to 1.
  std::vector<std::vector<double>> pi;
};

/// Heterogeneous-contact welfare (Lemma 1, continuous time):
///   U = sum_i d_i sum_n pi_{i,n} [ h(0+) - (1 - x_{i,n}) L(M_{i,n}) ]
/// with M_{i,n} = sum_m x_{i,m} mu_{m,n}.
///
/// `servers[s]` / `clients[n]` map placement/client indices to node ids in
/// `rates`. For pure P2P pass the same node list for both. If a client
/// node is also a server holding the item, the request fulfils
/// immediately (the (1 - x_{i,n}) factor).
///
/// Built on alloc::MarginalOracle, which shares the old direct
/// evaluator's contract: an empty client list throws invalid_argument
/// (as before), and empty catalogs / empty server lists cannot arise
/// because Placement rejects zero-item and zero-server dimensions at
/// construction. Node ids must be in range of `rates`; the oracle's
/// validation errors carry a "MarginalOracle:" prefix.
double welfare_heterogeneous(
    const Placement& placement, const trace::RateMatrix& rates,
    const std::vector<double>& demand, const utility::DelayUtility& u,
    const std::vector<NodeId>& servers, const std::vector<NodeId>& clients,
    const std::optional<PopularityProfile>& popularity = std::nullopt);

/// Per-item delay-utilities h_i; Theorem 1 (submodularity) still holds.
double welfare_heterogeneous(
    const Placement& placement, const trace::RateMatrix& rates,
    const std::vector<double>& demand, const utility::UtilitySet& utilities,
    const std::vector<NodeId>& servers, const std::vector<NodeId>& clients,
    const std::optional<PopularityProfile>& popularity = std::nullopt);

/// Convenience: pure P2P over all nodes of the rate matrix.
double welfare_pure_p2p(const Placement& placement,
                        const trace::RateMatrix& rates,
                        const std::vector<double>& demand,
                        const utility::DelayUtility& u);

/// Marginal welfare of adding a replica of `item` at `server` (must match
/// welfare_heterogeneous differences). This is the naive reference
/// implementation — it revalidates the context and rescans the holder
/// list per call; the solvers evaluate marginals through the incremental
/// alloc::MarginalOracle (oracle.hpp), which returns identical bits.
double marginal_gain(const Placement& placement,
                     const trace::RateMatrix& rates,
                     const std::vector<double>& demand,
                     const utility::DelayUtility& u,
                     const std::vector<NodeId>& servers,
                     const std::vector<NodeId>& clients, ItemId item,
                     NodeId server,
                     const std::optional<PopularityProfile>& popularity =
                         std::nullopt);

double marginal_gain(const Placement& placement,
                     const trace::RateMatrix& rates,
                     const std::vector<double>& demand,
                     const utility::UtilitySet& utilities,
                     const std::vector<NodeId>& servers,
                     const std::vector<NodeId>& clients, ItemId item,
                     NodeId server,
                     const std::optional<PopularityProfile>& popularity =
                         std::nullopt);

}  // namespace impatience::alloc
