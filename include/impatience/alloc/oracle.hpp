// Incremental marginal-gain oracle for the heterogeneous welfare of
// Lemma 1 — the hot path of the paper's GREEDY (Theorem 1).
//
// The naive alloc::marginal_gain revalidates the whole context, rescans
// the item's holder list per client and re-evaluates both utility
// transforms on every call. The oracle validates once at construction
// and maintains, per (item, client),
//
//   M[i][n]     = sum over holders m of item i of mu_{m,n}   (self excluded)
//   holds[i][n] = number of holders of i co-located with client n
//
// refreshed lazily: add/remove just update the holder list and mark the
// item's row dirty (O(log |holders|)), and the first read after a change
// pays the O(|holders| * |clients|) exact recompute. Placements are rare
// next to marginal evaluations, which become two utility lookups per
// client with no holder loop; conversely a burst of cache-listener
// deltas between two welfare probes costs one row refresh per *changed*
// item, not per delta. The "before" gain per (item, client) is cached
// and refreshed lazily on the first evaluation after the item's holder
// set changes, and transform evaluations are memoized exactly (keyed on
// the bit pattern of M, shared across items with identical utilities),
// in the spirit of CELF-style lazy submodular maximization (Leskovec et
// al., see PAPERS.md).
//
// Bit-identity: M rows are refreshed by folding holder rates in ascending
// server order — the exact summation order of Placement::holders() — and
// the gain kernel is shared with welfare.cpp, so marginal() returns the
// same bits as alloc::marginal_gain and welfare() the same bits as
// welfare_heterogeneous on the tracked placement.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "impatience/alloc/welfare.hpp"

namespace impatience::alloc {

class MarginalOracle {
 public:
  /// Every item shares one delay-utility. The referenced rate matrix,
  /// demand vector, utility and popularity profile must outlive the
  /// oracle (node lists are only read during construction).
  MarginalOracle(const trace::RateMatrix& rates,
                 const std::vector<double>& demand,
                 const utility::DelayUtility& u,
                 const std::vector<NodeId>& servers,
                 const std::vector<NodeId>& clients, ItemId num_items,
                 const std::optional<PopularityProfile>& popularity =
                     std::nullopt);

  /// Per-item delay-utilities; item count is utilities.size(). Items with
  /// behaviourally identical utilities (UtilitySet::duplicate_of) share
  /// one transform memo.
  MarginalOracle(const trace::RateMatrix& rates,
                 const std::vector<double>& demand,
                 const utility::UtilitySet& utilities,
                 const std::vector<NodeId>& servers,
                 const std::vector<NodeId>& clients,
                 const std::optional<PopularityProfile>& popularity =
                     std::nullopt);

  ItemId num_items() const noexcept { return num_items_; }
  NodeId num_servers() const noexcept { return num_servers_; }
  std::size_t num_clients() const noexcept { return num_clients_; }

  /// True if (item, server) is in the tracked placement.
  bool has(ItemId item, NodeId server) const;

  /// Marginal welfare of adding (item, server); bit-identical to
  /// alloc::marginal_gain on the tracked placement. Throws
  /// std::logic_error if the replica is already present.
  double marginal(ItemId item, NodeId server) const;

  /// Registers / removes a replica: O(log |holders|) holder-list update
  /// plus a dirty mark; the exact O(|holders| * |clients|) row refresh is
  /// deferred to the next read of the item. Throws std::logic_error on
  /// duplicate add / absent remove.
  void add(ItemId item, NodeId server);
  void remove(ItemId item, NodeId server);

  /// Re-seeds the tracked placement from an explicit one (same item and
  /// server counts required).
  void reset(const Placement& placement);

  /// Welfare of the tracked placement, recomputed from scratch over all
  /// items; bit-identical to welfare_heterogeneous. The from-scratch
  /// reference for welfare_cached().
  double welfare() const;

  /// Welfare of the tracked placement from cached per-item contributions:
  /// only items whose holder set changed since the last call are
  /// recomputed, then all contributions are folded in ascending item
  /// order — the exact summation order of welfare(), with each recomputed
  /// term produced by the same inner loop, so the result is bitwise
  /// identical to welfare() (not merely within tolerance; the 1e-12
  /// bound in the tests is a safety net on top of an exact-equality
  /// check, see docs/perf.md). O(changed rows * |clients| + items) per
  /// call instead of O(items * |clients|) — this is the simulator's
  /// incremental expected-welfare probe (SimOptions::welfare_probe).
  double welfare_cached() const;

 private:
  void validate_and_index(const trace::RateMatrix& rates,
                          const std::vector<NodeId>& servers,
                          const std::vector<NodeId>& clients,
                          const std::optional<PopularityProfile>& popularity);
  void check_ids(ItemId item, NodeId server) const;
  void mark_dirty(ItemId item);
  void sync_item(ItemId item) const;  // refresh the M/holds row if dirty
  void refresh_row(ItemId item) const;
  void refresh_gain0(ItemId item) const;
  double item_welfare_term(ItemId item) const;
  double memoized_gain(std::size_t memo, const utility::DelayUtility& u,
                       double M) const;
  const double* pi_row(ItemId item) const {
    return pi_.empty() ? nullptr : pi_.data() + static_cast<std::size_t>(item) *
                                                    num_clients_;
  }

  ItemId num_items_ = 0;
  NodeId num_servers_ = 0;
  std::size_t num_clients_ = 0;

  const std::vector<double>* demand_ = nullptr;
  std::vector<const utility::DelayUtility*> utility_;  // per item
  std::vector<std::size_t> memo_index_;                // item -> memo slot

  // Dense server-by-client submatrix of the rate matrix, plus a
  // co-location flag (servers[s] == clients[n]).
  std::vector<double> rate_;        // [s * C + n]
  std::vector<std::uint8_t> self_;  // [s * C + n]

  // Popularity pi[i][n]; empty means uniform 1/|C|.
  std::vector<double> pi_;
  double uniform_pi_ = 0.0;

  // Tracked placement state. M/holds rows are refreshed lazily from the
  // holder lists (mutable: reads are logically const).
  std::vector<std::vector<NodeId>> holders_;  // per item, ascending
  mutable std::vector<double> M_;             // [i * C + n]
  mutable std::vector<std::uint16_t> holds_;  // [i * C + n]
  mutable std::vector<std::uint8_t> row_dirty_;  // per item

  // Cached "before" gains, refreshed lazily per item (mutable: marginal()
  // is logically const).
  mutable std::vector<double> gain0_;        // [i * C + n]
  mutable std::vector<std::uint8_t> gain0_dirty_;  // per item

  // Cached per-item welfare contributions for welfare_cached().
  mutable std::vector<double> item_welfare_;           // per item
  mutable std::vector<std::uint8_t> welfare_dirty_;    // per item

  // Exact transform memo: bit pattern of M -> request gain (holds=false).
  mutable std::vector<std::unordered_map<std::uint64_t, double>> memos_;

  // Fast path for items with no replicas under uniform popularity: the
  // client sum of marginal() then depends on the item only through its
  // memo slot, so the per-server delta (bit-identical to the generic
  // loop) is cached once per (memo slot, server). Depends only on the
  // rate submatrix and the utility, never invalidated by add/remove.
  double empty_delta(std::size_t memo, const utility::DelayUtility& u,
                     NodeId server) const;
  mutable std::vector<std::vector<double>> empty_delta_;
  mutable std::vector<std::vector<std::uint8_t>> empty_delta_valid_;
};

}  // namespace impatience::alloc
