// Turning real-valued allocations into feasible integer placements.
#pragma once

#include "impatience/alloc/allocation.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::alloc {

/// Largest-remainder rounding: integer counts with the same total as the
/// input (rounded to the nearest integer), each in [0, cap_per_item].
/// Throws std::invalid_argument if the input is infeasible.
ItemCounts round_counts(const ItemCounts& real_counts, int cap_per_item);

/// Materializes integer counts as a concrete placement: item copies go to
/// distinct servers, most-loaded-last (longest-processing-time style), so
/// per-server capacity rho is met whenever sum x_i <= rho |S| and
/// x_i <= |S|. Server choice among equals is randomized via rng.
Placement place_counts(const ItemCounts& int_counts, NodeId num_servers,
                       int capacity_per_server, util::Rng& rng);

}  // namespace impatience::alloc
