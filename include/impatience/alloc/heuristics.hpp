// The fixed-allocation competitors of Section 6.1: UNI, SQRT, PROP, DOM.
// (OPT lives in solvers.hpp.) All return real-valued ItemCounts with total
// capacity * |S| replicas; round_counts() turns them into integers.
#pragma once

#include <vector>

#include "impatience/alloc/allocation.hpp"

namespace impatience::alloc {

/// x_i proportional to weights[i], scaled so the total is `capacity`,
/// with each x_i clamped to [0, cap_per_item]; the clamped surplus is
/// redistributed over the unclamped items (water-filling).
ItemCounts proportional_with_cap(const std::vector<double>& weights,
                                 double capacity, double cap_per_item);

/// UNI: memory evenly allocated among all items.
ItemCounts uniform_allocation(std::size_t num_items, double capacity,
                              double cap_per_item);

/// SQRT: allocation proportional to the square root of demand.
ItemCounts sqrt_allocation(const std::vector<double>& demand, double capacity,
                           double cap_per_item);

/// PROP: allocation proportional to demand (the equilibrium of passive
/// one-replica-per-fulfilment replication).
ItemCounts prop_allocation(const std::vector<double>& demand, double capacity,
                           double cap_per_item);

/// DOM: every node caches the rho most popular items, i.e. the top-rho
/// items by demand get |S| replicas each and everything else gets none.
ItemCounts dom_allocation(const std::vector<double>& demand, int rho,
                          double num_servers);

}  // namespace impatience::alloc
