// Discrete-time, finite-horizon expected request gain — the exact
// counterpart of item_gain()'s continuous-time closed forms for the
// slot-based contact model the simulator actually runs.
//
// A request for an item with x integer replicas, born at slot t of a
// T-slot pure-P2P run with per-pair per-slot meeting probability mu,
// fulfils at its k-th opportunity (age k, gain h(k)) with probability
// (1-q)^(k-1) q where q = 1 - (1-mu)^x, and is censored at the horizon
// with gain h(T - t + 1) otherwise — exactly the simulator's accounting
// (delay = fulfilment slot - creation slot + 1; censor_pending_at_end).
// Averaging over a uniform creation slot (stationary Poisson demand) and
// the x/N chance the requester itself holds the item gives the expected
// per-request gain
//
//   g(x) = (x/N) h(0+) + (1 - x/N) S(q) / T
//   S(q) = sum_{k=1}^{T} (1-q)^(k-1) [ q (T-k+1) h(k) + (1-q) h(k+1) ]
//
// which is EXACT (not asymptotic) for frozen placements: requests never
// interact, so expected welfare is linear in the per-request gains even
// though they share one trace. The geometric tail is truncated once
// (1-q)^(k-1) drops below tail_epsilon, so the sum costs O(1/q) terms,
// and a full gain table over x = 0..N costs O(N + T) — the O(1)-in-N
// evaluation path behind core/mean_field.hpp.
//
// Relation to utility/discrete.hpp: discrete_expected_gain() is the
// infinite-horizon limit of S(q)/T as T -> inf (plain geometric
// E[h(K)], no censoring, no creation-slot averaging, no immediate
// hits); this module adds the three finite-horizon effects that make
// the simulator agreement exact.
#pragma once

#include <vector>

#include "impatience/alloc/allocation.hpp"
#include "impatience/utility/delay_utility.hpp"

namespace impatience::alloc {

/// Parameters of the discrete pure-P2P gain model.
struct DiscreteGainModel {
  double mu = 0.05;            ///< per-pair meeting probability per slot
  double num_nodes = 50;       ///< N: every node is server and client
  trace::Slot horizon = 5000;  ///< T, in slots; must be > 0
  /// Geometric-tail truncation: summation stops once (1-q)^(k-1) falls
  /// below this (the dropped tail is O(eps * T * |h|)).
  double tail_epsilon = 1e-16;
};

/// S(q)/T above: expected gain of one request that is NOT an immediate
/// own-cache hit, given per-slot fulfilment hazard q in [0, 1], averaged
/// over a uniformly random creation slot. The building block shared by
/// the homogeneous table below and the class-based evaluator in
/// core/mean_field.hpp (which feeds it class-dependent hazards).
double censored_geometric_gain(const utility::DelayUtility& u, double q,
                               trace::Slot horizon,
                               double tail_epsilon = 1e-16);

/// g(x) above for a single (real-valued, interpolated between integers)
/// replica count. Throws std::domain_error when h(0+) is unbounded (pure
/// P2P immediate hits are possible for any x > 0, as in the simulator).
double item_gain_discrete(const utility::DelayUtility& u,
                          const DiscreteGainModel& m, double x);

/// Precomputed g(x) for integer x in [0, max_replicas]: one pass at
/// construction, O(1) per query. Shares the h(k) evaluations across all
/// x, so building the full table at N = 10^6 costs about
/// O(N + T + (1/mu) log N) utility evaluations and flops.
class DiscreteGainTable {
 public:
  DiscreteGainTable(const utility::DelayUtility& u,
                    const DiscreteGainModel& m, long max_replicas);

  /// Per-request expected gain; linear interpolation between integers,
  /// clamped to [0, max_replicas].
  double gain(double x) const;

  /// gain(x + 1) - gain(x) for integer x in [0, max_replicas).
  double marginal(long x) const;

  long max_replicas() const noexcept {
    return static_cast<long>(gain_.size()) - 1;
  }

  /// Welfare rate sum_i d_i g(x_i) — gain per slot, the mean-field
  /// prediction of SimulationResult::observed_utility().
  double welfare_rate(const ItemCounts& counts,
                      const std::vector<double>& demand) const;

 private:
  std::vector<double> gain_;  // gain_[k] = g(k)
};

/// Convenience: welfare rate of integer-ish counts without keeping the
/// table around.
double welfare_homogeneous_discrete(const ItemCounts& counts,
                                    const std::vector<double>& demand,
                                    const utility::DelayUtility& u,
                                    const DiscreteGainModel& m);

}  // namespace impatience::alloc
