// replicationd's observability surface: wall-clock apply-latency tracking
// plus the plain-text rendering served at GET /metrics (docs/service.md
// for the schema). Key naming follows the Prometheus text-format
// conventions (snake_case, `_total` suffix on monotonic counters) without
// depending on any client library.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "impatience/service/state_store.hpp"

namespace impatience::service {

struct IngestCounters;  // daemon.hpp (metrics.hpp must not include it back)

/// Wall-clock monitor state owned by the daemon: apply-latency window and
/// snapshot bookkeeping. Thread-safe (own mutex; the ingest thread
/// records, the HTTP thread renders).
class ServiceMetrics {
 public:
  /// Records one event-apply wall latency (microseconds).
  void record_apply_latency(double us);
  /// Records a completed snapshot persisted at the given store version.
  void record_snapshot(std::uint64_t version);

  std::uint64_t snapshots_total() const;
  std::uint64_t snapshot_last_version() const;

  /// p-th percentile of the recent apply-latency window (us); 0 when
  /// empty.
  double apply_latency_percentile(double p) const;

 private:
  static constexpr std::size_t kWindow = 4096;

  mutable std::mutex mu_;
  std::vector<double> latencies_us_;  // chronological, <= kWindow
  std::uint64_t snapshots_ = 0;
  std::uint64_t snapshot_last_version_ = 0;
};

/// Renders the full /metrics document from a store + monitor state.
/// `uptime_seconds` and `versions_per_second` are computed by the caller
/// (the daemon owns the wall clock and the rate window). `ingest`, when
/// non-null, contributes the transport-side handshake/backpressure block.
std::string render_metrics(const StateStore& store,
                           const ServiceMetrics& metrics,
                           double uptime_seconds,
                           double versions_per_second,
                           const IngestCounters* ingest = nullptr);

}  // namespace impatience::service
