// A deliberately tiny HTTP/1.0 server for replicationd's observability
// endpoints. Scope: GET only, loopback only, one short-lived connection
// per request, plain-text responses — a scrape target, not a web server.
// No external dependency: plain POSIX sockets behind one accept thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace impatience::service {

/// Response of one handled request.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path (e.g. "/metrics") to a response. Invoked on the
/// server thread; must be thread-safe with respect to the daemon.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port, read back
  /// via port()) and starts the accept thread. Throws util::IoError when
  /// the socket cannot be bound.
  HttpServer(HttpHandler handler, std::uint16_t port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins the server thread. Idempotent.
  void stop();

 private:
  void serve();
  void handle_connection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Minimal HTTP GET against 127.0.0.1:`port` (test/bench client; also
/// documents the wire format the server speaks). Returns the response
/// body; throws util::IoError on connect/protocol failure or non-200.
std::string http_get(std::uint16_t port, const std::string& path);

}  // namespace impatience::service
