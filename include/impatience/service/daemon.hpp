// replicationd: the long-running replication service (docs/service.md).
//
// One daemon owns one StateStore and three concerns:
//  * ingest  — the calling thread (run()) tails a file, reads stdin, or
//              accepts feeders on a Unix-domain socket, applying protocol
//              frames to the store;
//  * monitor — an HttpServer thread serving GET /metrics, /healthz and
//              /snapshot on 127.0.0.1;
//  * persist — a background thread writing crash-safe snapshots every
//              --snapshot-interval, plus deterministic by-sequence
//              snapshots every --snapshot-every events (the replayable
//              kind the warm-restart tests pin down), plus one final
//              snapshot on graceful shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "impatience/service/metrics.hpp"
#include "impatience/service/state_store.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {

/// Ingest-side transport counters (docs/service.md "Handshake and
/// backpressure"). Atomics: the ingest thread writes, the monitor thread
/// renders. All are transport state, deliberately *not* persisted into
/// snapshots — a warm restart starts them at zero.
struct IngestCounters {
  /// Feeder connections accepted on the socket source.
  std::atomic<std::uint64_t> connections{0};
  /// H frames answered with an S reply.
  std::atomic<std::uint64_t> hellos{0};
  /// Disconnects that left an unterminated trailing line buffered.
  std::atomic<std::uint64_t> frames_partial{0};
  /// Held fragments discarded because the next connection opened with a
  /// hello (a resuming feeder re-sends the whole cut frame itself).
  std::atomic<std::uint64_t> frames_partial_discarded{0};
  /// Complete lines served while the ingest buffer sat at or above its
  /// cap — each one is an event the transport deferred reading more for.
  std::atomic<std::uint64_t> events_deferred{0};
  /// High-water mark of buffered ingest bytes.
  std::atomic<std::uint64_t> buffer_high_water{0};
};

/// A blocking source of protocol lines that honours a stop flag.
class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Next line, without its trailing newline. std::nullopt = end of
  /// stream or stop requested; callers distinguish via `stop`.
  virtual std::optional<std::string> next_line(
      const std::atomic<bool>& stop) = 0;
  /// Best-effort reply on the channel the last line arrived from (the
  /// hello handshake's S frame). Default: no channel, dropped. Must
  /// never block the ingest loop.
  virtual void reply(const std::string& /*line*/) {}
  /// True when another complete line can very likely be served without
  /// blocking — the ingest loop's batching hint (a batch flushes when
  /// the source runs dry, so idle streams never sit on latency). Must
  /// not block. Default: pessimistic.
  virtual bool has_buffered_line() { return false; }
};

/// Reads a file (or stdin for path "-"). With `follow`, EOF waits
/// `poll_seconds` for growth instead of ending the stream (tail -f
/// semantics); the wait polls `stop` so shutdown stays prompt.
std::unique_ptr<LineSource> make_file_source(const std::string& path,
                                             bool follow,
                                             double poll_seconds = 0.05);

/// Accepts feeders sequentially on a Unix-domain socket; each connection
/// streams frames until it closes, then the next feeder can connect.
/// Binds (and unlinks any stale socket file) at construction.
///
/// Framing across disconnects: an unterminated trailing line is *held*
/// (counted in `counters->frames_partial`) and completed by the next
/// connection's bytes — unless that connection opens with a hello frame,
/// which marks a new/resuming feeder that will re-send the cut frame
/// itself; then the fragment is discarded (`frames_partial_discarded`).
/// Ingest buffering is bounded at `buffer_bytes`: at or above the cap the
/// source serves buffered lines without reading more (the kernel socket
/// buffer then backpressures the feeder), counting `events_deferred`.
std::unique_ptr<LineSource> make_socket_source(const std::string& path,
                                               IngestCounters* counters,
                                               std::size_t buffer_bytes);

/// TCP twin of make_socket_source: listens on 127.0.0.1:`port` (0 =
/// ephemeral; the bound port is written to `*bound_port`) with identical
/// framing, handshake, fragment, and backpressure semantics — the
/// transport differs only in the listening socket's address family.
std::unique_ptr<LineSource> make_tcp_source(int port,
                                            IngestCounters* counters,
                                            std::size_t buffer_bytes,
                                            std::uint16_t* bound_port);

struct DaemonConfig {
  StoreConfig store;
  std::uint64_t seed = 1;

  /// Event source precedence: a Unix-domain socket path first, then a
  /// TCP listen port (`tcp_port` >= 0; 0 = ephemeral, read back via
  /// tcp_port()); otherwise `input_path` ("-" = stdin) is read, tailed
  /// when `follow`.
  std::string socket_path;
  int tcp_port = -1;
  std::string input_path = "-";
  bool follow = false;
  /// --follow EOF poll period in seconds (duration-suffixed flag
  /// --follow-poll); clamped to >= 1 ms.
  double follow_poll_s = 0.05;
  /// Ingest buffer cap in bytes for the socket source: at or above it
  /// the daemon stops reading and lets the kernel socket buffer
  /// backpressure the feeder (events_deferred counts lines served while
  /// capped). Clamped to >= 4096.
  std::size_t ingest_buffer_bytes = 256 * 1024;

  /// Metrics endpoint port (0 = ephemeral; read back via http_port()).
  /// -1 disables the endpoint.
  int http_port = 0;

  /// Snapshot file; empty disables persistence.
  std::string snapshot_path;
  /// Wall-clock snapshot period in seconds; 0 disables the timer.
  double snapshot_interval_s = 0.0;
  /// Deterministic snapshot cadence: persist after every N applied
  /// events; 0 disables. This is the cadence warm-restart equivalence
  /// tests rely on (by-sequence, so independent of wall time).
  std::uint64_t snapshot_every = 0;
  /// Warm restart: load snapshot_path before ingesting. A missing file
  /// degrades to a fresh start; a corrupt one throws util::IoError (a
  /// torn write never half-loads thanks to the checksummed format, and
  /// the previous consistent file survives thanks to atomic rename).
  bool restore = false;

  /// Apply-pipeline knobs (docs/service.md "Sharded parallel apply").
  /// The default is the sequential path; any setting is byte-identical.
  ApplyOptions apply;

  /// Persist incremental snapshot chains (base + delta files + manifest,
  /// docs/service.md "Delta snapshots") instead of rewriting the full
  /// image at `snapshot_path` on every checkpoint.
  bool snapshot_deltas = false;
  /// Deltas between full bases when snapshot_deltas is on.
  std::size_t snapshot_delta_limit = 16;

  /// When set, a small "key value" file announcing the bound HTTP port
  /// and socket path is written (crash-safely) once serving — how test
  /// harnesses discover an ephemeral port.
  std::string announce_path;
};

class ReplicationDaemon {
 public:
  /// Builds (or restores) the store and starts monitor + persist
  /// threads. Throws util::IoError / std::invalid_argument on bad
  /// config, unusable socket, or corrupt snapshot.
  explicit ReplicationDaemon(const DaemonConfig& config);
  ~ReplicationDaemon();

  ReplicationDaemon(const ReplicationDaemon&) = delete;
  ReplicationDaemon& operator=(const ReplicationDaemon&) = delete;

  /// Ingests until end of stream, a Q frame, stop(), or `token` fires.
  /// Runs on the calling thread. On graceful exit writes a final
  /// snapshot. Throws util::CancelledError when the token fired (reason
  /// preserved, so the engine classifies deadline vs shutdown).
  void run(const util::CancellationToken* token);

  /// Requests run() to unwind; safe from any thread / signal context
  /// consumers (only touches atomics and condition variables).
  void stop();

  /// True after a restore-mode construction actually loaded a snapshot.
  bool restored() const noexcept { return restored_; }

  /// Bound metrics port; 0 when the endpoint is disabled.
  std::uint16_t http_port() const noexcept;

  /// Bound ingest TCP port; 0 when the TCP transport is not in use.
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  const StateStore& store() const noexcept { return *store_; }
  StateStore& store() noexcept { return *store_; }
  const ServiceMetrics& metrics() const noexcept { return metrics_; }
  const IngestCounters& ingest() const noexcept { return ingest_; }

 private:
  void snapshot_now();
  void snapshot_loop();
  std::string render() const;
  void write_announce_file() const;

  DaemonConfig config_;
  std::unique_ptr<StateStore> store_;
  bool restored_ = false;
  ServiceMetrics metrics_;
  IngestCounters ingest_;
  std::unique_ptr<LineSource> source_;
  std::unique_ptr<class HttpServer> http_;
  std::unique_ptr<class SnapshotChain> chain_;  // snapshot_deltas mode
  std::uint16_t tcp_port_ = 0;

  std::atomic<bool> stop_{false};
  std::mutex snapshot_mu_;  // serializes snapshot writers (timer vs HTTP)
  std::condition_variable snapshot_cv_;
  std::thread snapshot_thread_;

  std::chrono::steady_clock::time_point start_time_;
  /// Rate window for versions/sec (guarded by rate_mu_).
  mutable std::mutex rate_mu_;
  mutable std::chrono::steady_clock::time_point rate_time_;
  mutable std::uint64_t rate_version_ = 0;
};

}  // namespace impatience::service
