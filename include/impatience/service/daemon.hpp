// replicationd: the long-running replication service (docs/service.md).
//
// One daemon owns one StateStore and three concerns:
//  * ingest  — the calling thread (run()) tails a file, reads stdin, or
//              accepts feeders on a Unix-domain socket, applying protocol
//              frames to the store;
//  * monitor — an HttpServer thread serving GET /metrics, /healthz and
//              /snapshot on 127.0.0.1;
//  * persist — a background thread writing crash-safe snapshots every
//              --snapshot-interval, plus deterministic by-sequence
//              snapshots every --snapshot-every events (the replayable
//              kind the warm-restart tests pin down), plus one final
//              snapshot on graceful shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "impatience/service/metrics.hpp"
#include "impatience/service/state_store.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {

/// A blocking source of protocol lines that honours a stop flag.
class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Next line, without its trailing newline. std::nullopt = end of
  /// stream or stop requested; callers distinguish via `stop`.
  virtual std::optional<std::string> next_line(
      const std::atomic<bool>& stop) = 0;
};

/// Reads a file (or stdin for path "-"). With `follow`, EOF waits for
/// growth instead of ending the stream (tail -f semantics).
std::unique_ptr<LineSource> make_file_source(const std::string& path,
                                             bool follow);

/// Accepts feeders sequentially on a Unix-domain socket; each connection
/// streams frames until it closes, then the next feeder can connect.
/// Binds (and unlinks any stale socket file) at construction.
std::unique_ptr<LineSource> make_socket_source(const std::string& path);

struct DaemonConfig {
  StoreConfig store;
  std::uint64_t seed = 1;

  /// Event source: a Unix-domain socket path takes precedence; otherwise
  /// `input_path` ("-" = stdin) is read, tailed when `follow`.
  std::string socket_path;
  std::string input_path = "-";
  bool follow = false;

  /// Metrics endpoint port (0 = ephemeral; read back via http_port()).
  /// -1 disables the endpoint.
  int http_port = 0;

  /// Snapshot file; empty disables persistence.
  std::string snapshot_path;
  /// Wall-clock snapshot period in seconds; 0 disables the timer.
  double snapshot_interval_s = 0.0;
  /// Deterministic snapshot cadence: persist after every N applied
  /// events; 0 disables. This is the cadence warm-restart equivalence
  /// tests rely on (by-sequence, so independent of wall time).
  std::uint64_t snapshot_every = 0;
  /// Warm restart: load snapshot_path before ingesting. A missing file
  /// degrades to a fresh start; a corrupt one throws util::IoError (a
  /// torn write never half-loads thanks to the checksummed format, and
  /// the previous consistent file survives thanks to atomic rename).
  bool restore = false;

  /// When set, a small "key value" file announcing the bound HTTP port
  /// and socket path is written (crash-safely) once serving — how test
  /// harnesses discover an ephemeral port.
  std::string announce_path;
};

class ReplicationDaemon {
 public:
  /// Builds (or restores) the store and starts monitor + persist
  /// threads. Throws util::IoError / std::invalid_argument on bad
  /// config, unusable socket, or corrupt snapshot.
  explicit ReplicationDaemon(const DaemonConfig& config);
  ~ReplicationDaemon();

  ReplicationDaemon(const ReplicationDaemon&) = delete;
  ReplicationDaemon& operator=(const ReplicationDaemon&) = delete;

  /// Ingests until end of stream, a Q frame, stop(), or `token` fires.
  /// Runs on the calling thread. On graceful exit writes a final
  /// snapshot. Throws util::CancelledError when the token fired (reason
  /// preserved, so the engine classifies deadline vs shutdown).
  void run(const util::CancellationToken* token);

  /// Requests run() to unwind; safe from any thread / signal context
  /// consumers (only touches atomics and condition variables).
  void stop();

  /// True after a restore-mode construction actually loaded a snapshot.
  bool restored() const noexcept { return restored_; }

  /// Bound metrics port; 0 when the endpoint is disabled.
  std::uint16_t http_port() const noexcept;

  const StateStore& store() const noexcept { return *store_; }
  StateStore& store() noexcept { return *store_; }
  const ServiceMetrics& metrics() const noexcept { return metrics_; }

 private:
  void snapshot_now();
  void snapshot_loop();
  std::string render() const;
  void write_announce_file() const;

  DaemonConfig config_;
  std::unique_ptr<StateStore> store_;
  bool restored_ = false;
  ServiceMetrics metrics_;
  std::unique_ptr<LineSource> source_;
  std::unique_ptr<class HttpServer> http_;

  std::atomic<bool> stop_{false};
  std::mutex snapshot_mu_;  // serializes snapshot writers (timer vs HTTP)
  std::condition_variable snapshot_cv_;
  std::thread snapshot_thread_;

  std::chrono::steady_clock::time_point start_time_;
  /// Rate window for versions/sec (guarded by rate_mu_).
  mutable std::mutex rate_mu_;
  mutable std::chrono::steady_clock::time_point rate_time_;
  mutable std::uint64_t rate_version_ = 0;
};

}  // namespace impatience::service
