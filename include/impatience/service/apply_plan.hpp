// Conflict-aware scheduling for replicationd's sharded apply pipeline
// (docs/service.md "Sharded parallel apply").
//
// The live store state is partitioned into `shards` contiguous node
// ranges; each shard is a conflict resource. A countable ingest line
// claims the shards of the nodes it can touch:
//
//   contact a b   -> { shard(a), shard(b) }   (one entry when equal)
//   request n i   -> { shard(n) }
//   crash n       -> { shard(n) }
//   clock / malformed / out-of-range / hello / quit -> {}  (commit-only)
//
// ShardWaveScheduler is the service twin of trace::WavePartitioner
// (PR 7), generalized from two-node meetings to 0/1/2-resource lines:
// it assigns every line of a window to the earliest *plan wave* whose
// predecessors cover all earlier conflicting lines, and derives the
// matching in-order *commit runs*. The apply pipeline plans wave k's
// lines concurrently (read-only against live state), then commits the
// window prefix run k covers in strict seq order — so shard-disjoint
// lines plan in parallel while the commit order, and therefore the
// Rng(child_seed(seed, "service-apply", seq)) randomness, is identical
// to the sequential single-mutex walk for every shard/thread count.
//
// Clock frames are deliberately *not* a resource: generated streams
// carry a T frame every ~2 events, and serializing on them would
// collapse every wave to depth one. Plans never read the clock (they
// record match indices only; delay and gain are computed at commit
// against the live clock), so a T frame committing between a line's
// plan and its commit cannot skew anything.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "impatience/service/protocol.hpp"

namespace impatience::service {

/// Knobs of the sharded parallel apply pipeline. The default (one
/// shard, one thread) is the sequential single-mutex path; any
/// combination produces byte-identical store state.
struct ApplyOptions {
  /// Contiguous node-range partitions acting as conflict resources.
  unsigned shards = 1;
  /// Plan-phase width: 1 = plan inline on the ingest thread; k > 1
  /// fans plan work across a ForkJoinTeam of k - 1 workers + caller.
  unsigned threads = 1;
  /// Countable lines planned ahead per window. Bounds both plan-phase
  /// memory and how long one apply_batch holds the store lock.
  std::size_t window = 256;

  /// True when the parallel pipeline engages (otherwise apply_batch
  /// degrades to the sequential per-line loop).
  bool parallel() const noexcept { return shards > 1 && threads > 1; }

  /// Throws std::invalid_argument on zero shards/threads/window.
  void validate() const;
};

/// One classified countable line of the ingest stream. Malformed lines
/// occupy a sequence slot (the seq-cursor contract) but carry no event.
struct IngestLine {
  bool malformed = false;
  Event event;
};

/// Wave/commit scheduler over shard resources. Epoch-stamped like
/// trace::WavePartitioner so per-shard arrays are not cleared between
/// windows; one instance serves one store (not thread-safe).
class ShardWaveScheduler {
 public:
  /// Partitions [0, num_nodes) into `shards` near-equal contiguous
  /// ranges. Shard counts above num_nodes are clamped.
  ShardWaveScheduler(NodeId num_nodes, unsigned shards);

  unsigned num_shards() const noexcept {
    return static_cast<unsigned>(stamp_.size());
  }

  /// Shard owning `node` (node must be < num_nodes).
  unsigned shard_of(NodeId node) const noexcept {
    return static_cast<unsigned>((static_cast<std::uint64_t>(node) *
                                  stamp_.size()) /
                                 num_nodes_);
  }

  /// Schedules one window. `order` lists line indices wave by wave
  /// (stable within a wave); `wave_ends[k]` is the end of wave k in
  /// `order`; `commit_ends[k]` is how far into the *original* window
  /// order commits may proceed once wave k's plans are done (run_of is
  /// a running maximum, so the committable prefix only grows).
  void schedule(std::span<const IngestLine> lines, NodeId num_nodes,
                std::vector<std::uint32_t>& order,
                std::vector<std::size_t>& wave_ends,
                std::vector<std::size_t>& commit_ends);

 private:
  std::uint64_t num_nodes_;
  std::vector<std::uint32_t> stamp_;       ///< per-shard epoch stamp
  std::vector<std::uint32_t> last_index_;  ///< latest line using the shard
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> wave_of_;
  std::vector<std::uint32_t> run_of_;
  std::vector<std::size_t> bucket_;
};

}  // namespace impatience::service
