// replicationd's versioned state store: the live global-cache state of a
// long-running QCR deployment, behind one mutex, with a monotonic version
// per mutation and copy-on-read snapshots.
//
// Design (docs/service.md):
//  * The store owns the core machinery — per-node `core::Cache` +
//    `core::MandateBag` + pending-request lists, driven online by a
//    `core::QcrPolicy` — and applies protocol events (contacts, requests,
//    crashes, clock advances) one at a time under the store mutex.
//  * `version()` increments on every state mutation (event application,
//    plus one tick per cache replica written or evicted, via the cache
//    change listeners). Monitors read it lock-free via the atomic
//    mirror, so "versions/sec" is a cheap liveness gauge.
//  * `image()` is the copy-on-read snapshot: a plain-data copy of the
//    entire logical state taken under the lock; serialization and disk
//    I/O then run outside it, so a snapshot never stalls ingest for
//    longer than the copy.
//  * Determinism contract: every event draws from an RNG seeded as
//    child_seed(seed, "service-apply", seq) — a pure function of the
//    store seed and the event's sequence number. Hence a run interrupted
//    at any point and resumed from a snapshot (which records seq) applies
//    the identical stream identically: warm restart is state-identical
//    to an uninterrupted run, byte for byte in the serialized image.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "impatience/core/node.hpp"
#include "impatience/core/policy.hpp"
#include "impatience/fault/fault.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/utility/delay_utility.hpp"

namespace impatience::service {

/// Scenario parameters of a store; persisted into snapshots and verified
/// on restore (a snapshot from a different scenario is refused).
struct StoreConfig {
  NodeId num_nodes = 50;
  ItemId num_items = 50;
  int cache_capacity = 5;
  /// Pin item i sticky on server i for i < min(nodes, items) — the
  /// paper's anti-absorption measure (Section 6.1).
  bool sticky_replicas = true;
  /// Delay-utility spec (utility::make_utility grammar), the basis of
  /// both the QCR reaction psi and the recorded gains.
  std::string utility_spec = "step:tau=10";
  /// Assumed per-pair meeting rate for psi (the paper's mu).
  double mu = 0.05;
  /// Reaction scale (Property 2 fixes psi up to a constant).
  double reaction_scale = 1.0;
  /// Route mandates toward replica holders (Section 5.3).
  bool mandate_routing = true;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Monotonic service counters (the logical part of /metrics). All derive
/// from applied events only, so they survive warm restart exactly.
struct StoreCounters {
  std::uint64_t events_applied = 0;      ///< seq
  std::uint64_t events_malformed = 0;    ///< skipped frames (ingest-side)
  std::uint64_t contacts = 0;
  std::uint64_t requests_created = 0;
  std::uint64_t immediate_fulfillments = 0;  ///< own-cache hits
  std::uint64_t fulfillments = 0;            ///< served at meetings
  std::uint64_t requests_pending = 0;        ///< open requests right now
  long mandates_created = 0;
  long replicas_written = 0;
  long mandates_outstanding = 0;
  double total_gain = 0.0;
  double delay_sum = 0.0;  ///< slots, over meeting fulfilments

  /// Requests served, the /metrics headline.
  std::uint64_t requests_served() const noexcept {
    return immediate_fulfillments + fulfillments;
  }
};

/// Copy-on-read snapshot of the full logical state. Plain data: taking
/// one never blocks on I/O, serializing one never needs the store lock.
struct StateImage {
  static constexpr std::uint32_t kFormatVersion = 1;

  StoreConfig config;
  std::uint64_t seed = 0;
  std::uint64_t version = 0;
  std::uint64_t seq = 0;
  Slot clock = 0;
  StoreCounters counters;
  fault::FaultCounters faults;

  struct NodeImage {
    long server_meetings = 0;
    /// Sticky item or -1.
    std::int64_t sticky = -1;
    /// Cache contents in slot order (order matters: random replacement
    /// picks victims by slot index).
    std::vector<ItemId> cache;
    /// (item, count) pairs with count > 0.
    std::vector<std::pair<ItemId, long>> mandates;
    std::vector<core::PendingRequest> pending;
  };
  std::vector<NodeImage> nodes;

  /// Recent fulfilment delays (slots), oldest first — the p50/p99 service
  /// latency window.
  std::vector<double> recent_delays;
};

/// Serializes an image as the versioned snapshot format
/// ("impatience.replicationd_snapshot/1", docs/service.md): ASCII lines,
/// deterministic float round-trip, FNV-1a checksum line, `end` trailer.
void write_image(std::ostream& out, const StateImage& image);

/// Parses a snapshot; throws util::IoError on syntax, checksum or
/// truncation damage (a torn file never half-loads).
StateImage read_image(std::istream& in);

/// Crash-safe snapshot write via engine::atomic_write_file: temp + fsync
/// + rename, so a crash mid-snapshot leaves the previous file intact.
void save_image(const std::string& path, const StateImage& image);

/// Loads a snapshot file; throws util::IoError when missing or damaged.
StateImage load_image(const std::string& path);

class StateStore {
 public:
  /// Fresh store: seeded sticky pins + random cache fill, version 0.
  StateStore(const StoreConfig& config, std::uint64_t seed);
  /// Warm restart: rebuilds the exact state of `image` (config must
  /// match `config`; throws std::invalid_argument otherwise).
  StateStore(const StoreConfig& config, std::uint64_t seed,
             const StateImage& image);
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  const StoreConfig& config() const noexcept { return config_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Lock-free monotonic version (mutation counter) — monitor-friendly.
  std::uint64_t version() const noexcept {
    return version_mirror_.load(std::memory_order_acquire);
  }

  /// Applies one protocol event. Kind::hello and Kind::quit are no-ops
  /// here (stream control is the ingest loop's business). Returns the
  /// store version after the event.
  std::uint64_t apply(const Event& event);

  /// Consumes one unparseable countable line: advances the seq cursor
  /// (a stream position must mean the same thing on every replay, so
  /// malformed lines occupy a sequence number too) and counts it in
  /// events_malformed. Returns the store version after the line.
  std::uint64_t apply_malformed();

  /// Copy-on-read snapshot of the whole logical state.
  StateImage image() const;
  /// image() + crash-safe write (engine::atomic_write_file).
  void save_snapshot(const std::string& path) const;

  StoreCounters counters() const;
  fault::FaultCounters faults() const;
  Slot clock() const;
  std::uint64_t seq() const;

  /// Per-item global replica counts (copy).
  std::vector<long> replica_counts() const;

  /// p-th percentile of the recent-fulfilment-delay window (slots);
  /// 0 when no fulfilment happened yet.
  double delay_percentile(double p) const;

  /// The conservation invariant, graceful under churn:
  ///   mandates_created == replicas_written + outstanding + lost
  bool mandate_conservation_ok() const;

  /// Builds a store from a snapshot file (load_image + restore).
  static std::unique_ptr<StateStore> restore(const StoreConfig& config,
                                             std::uint64_t seed,
                                             const std::string& path);

 private:
  void init_fresh();
  void init_from_image(const StateImage& image);
  void attach_listeners();
  void bump_locked(std::uint64_t n = 1);
  void apply_clock(Slot slot);
  void apply_contact(NodeId a, NodeId b, util::Rng& rng);
  void apply_request(NodeId node, ItemId item, util::Rng& rng);
  void apply_crash(NodeId node);
  void fulfil_from(core::Node& requester, core::Node& provider,
                   util::Rng& rng);
  void sync_policy_counters_locked();
  void record_delay_locked(double delay);

  static void cache_listener(void* context, ItemId item, int delta);

  const StoreConfig config_;
  const std::uint64_t seed_;
  std::unique_ptr<utility::DelayUtility> utility_;
  std::unique_ptr<core::QcrPolicy> policy_;

  mutable std::mutex mu_;
  std::vector<core::Node> nodes_;
  std::vector<long> replica_counts_;
  std::uint64_t version_ = 0;
  std::atomic<std::uint64_t> version_mirror_{0};
  std::uint64_t seq_ = 0;
  Slot clock_ = 0;
  StoreCounters counters_;
  fault::FaultCounters faults_;
  /// Offsets folding the (process-local, monotone) QcrPolicy counters
  /// into restart-surviving totals: total = base + policy.counter().
  long mandates_created_base_ = 0;
  long replicas_written_base_ = 0;

  /// Ring of recent fulfilment delays (slots) for p50/p99.
  static constexpr std::size_t kDelayWindow = 4096;
  std::vector<double> recent_delays_;  // chronological, <= kDelayWindow
};

}  // namespace impatience::service
