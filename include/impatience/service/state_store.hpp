// replicationd's versioned state store: the live global-cache state of a
// long-running QCR deployment, behind one mutex, with a monotonic version
// per mutation and copy-on-read snapshots.
//
// Design (docs/service.md):
//  * The store owns the core machinery — per-node `core::Cache` +
//    `core::MandateBag` + pending-request lists, driven online by a
//    `core::QcrPolicy` — and applies protocol events (contacts, requests,
//    crashes, clock advances) one at a time under the store mutex.
//  * `version()` increments on every state mutation (event application,
//    plus one tick per cache replica written or evicted, via the cache
//    change listeners). Monitors read it lock-free via the atomic
//    mirror, so "versions/sec" is a cheap liveness gauge.
//  * `image()` is the copy-on-read snapshot: a plain-data copy of the
//    entire logical state taken under the lock; serialization and disk
//    I/O then run outside it, so a snapshot never stalls ingest for
//    longer than the copy.
//  * Determinism contract: every event draws from an RNG seeded as
//    child_seed(seed, "service-apply", seq) — a pure function of the
//    store seed and the event's sequence number. Hence a run interrupted
//    at any point and resumed from a snapshot (which records seq) applies
//    the identical stream identically: warm restart is state-identical
//    to an uninterrupted run, byte for byte in the serialized image.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "impatience/core/node.hpp"
#include "impatience/core/policy.hpp"
#include "impatience/fault/fault.hpp"
#include "impatience/service/apply_plan.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/utility/delay_utility.hpp"

namespace impatience::engine {
class ForkJoinTeam;  // thread_pool.hpp
}

namespace impatience::service {

/// Scenario parameters of a store; persisted into snapshots and verified
/// on restore (a snapshot from a different scenario is refused).
struct StoreConfig {
  NodeId num_nodes = 50;
  ItemId num_items = 50;
  int cache_capacity = 5;
  /// Pin item i sticky on server i for i < min(nodes, items) — the
  /// paper's anti-absorption measure (Section 6.1).
  bool sticky_replicas = true;
  /// Delay-utility spec (utility::make_utility grammar), the basis of
  /// both the QCR reaction psi and the recorded gains.
  std::string utility_spec = "step:tau=10";
  /// Assumed per-pair meeting rate for psi (the paper's mu).
  double mu = 0.05;
  /// Reaction scale (Property 2 fixes psi up to a constant).
  double reaction_scale = 1.0;
  /// Route mandates toward replica holders (Section 5.3).
  bool mandate_routing = true;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Monotonic service counters (the logical part of /metrics). All derive
/// from applied events only, so they survive warm restart exactly.
struct StoreCounters {
  std::uint64_t events_applied = 0;      ///< seq
  std::uint64_t events_malformed = 0;    ///< skipped frames (ingest-side)
  std::uint64_t contacts = 0;
  std::uint64_t requests_created = 0;
  std::uint64_t immediate_fulfillments = 0;  ///< own-cache hits
  std::uint64_t fulfillments = 0;            ///< served at meetings
  std::uint64_t requests_pending = 0;        ///< open requests right now
  long mandates_created = 0;
  long replicas_written = 0;
  long mandates_outstanding = 0;
  double total_gain = 0.0;
  double delay_sum = 0.0;  ///< slots, over meeting fulfilments

  /// Requests served, the /metrics headline.
  std::uint64_t requests_served() const noexcept {
    return immediate_fulfillments + fulfillments;
  }
};

/// Copy-on-read snapshot of the full logical state. Plain data: taking
/// one never blocks on I/O, serializing one never needs the store lock.
struct StateImage {
  static constexpr std::uint32_t kFormatVersion = 1;

  StoreConfig config;
  std::uint64_t seed = 0;
  std::uint64_t version = 0;
  std::uint64_t seq = 0;
  Slot clock = 0;
  StoreCounters counters;
  fault::FaultCounters faults;

  struct NodeImage {
    long server_meetings = 0;
    /// Sticky item or -1.
    std::int64_t sticky = -1;
    /// Cache contents in slot order (order matters: random replacement
    /// picks victims by slot index).
    std::vector<ItemId> cache;
    /// (item, count) pairs with count > 0.
    std::vector<std::pair<ItemId, long>> mandates;
    std::vector<core::PendingRequest> pending;
  };
  std::vector<NodeImage> nodes;

  /// Recent fulfilment delays (slots), oldest first — the p50/p99 service
  /// latency window.
  std::vector<double> recent_delays;
};

/// Incremental snapshot (docs/service.md "Delta snapshots"): the store
/// scalars — version/seq/clock, counters, faults, the delay window —
/// plus full NodeImages of exactly the nodes dirtied since the previous
/// checkpoint. `parent_checksum` is the body checksum of the chain
/// element this delta extends (base snapshot or previous delta); the
/// restore path verifies the link before applying.
struct StateDelta {
  static constexpr std::uint32_t kFormatVersion = 1;

  StoreConfig config;
  std::uint64_t seed = 0;
  std::uint64_t parent_checksum = 0;  ///< filled in by the chain writer
  std::uint64_t version = 0;
  std::uint64_t seq = 0;
  Slot clock = 0;
  StoreCounters counters;
  fault::FaultCounters faults;
  /// (node id, full image) for each dirty node, ascending by id.
  std::vector<std::pair<NodeId, StateImage::NodeImage>> nodes;
  std::vector<double> recent_delays;
};

/// Serializes an image as the versioned snapshot format
/// ("impatience.replicationd_snapshot/1", docs/service.md): ASCII lines,
/// deterministic float round-trip, FNV-1a checksum line, `end` trailer.
/// Returns the body checksum (the chain manifest records it).
std::uint64_t write_image(std::ostream& out, const StateImage& image);

/// Parses a snapshot; throws util::IoError on syntax, checksum or
/// truncation damage (a torn file never half-loads). When `checksum` is
/// non-null it receives the verified body checksum.
StateImage read_image(std::istream& in, std::uint64_t* checksum = nullptr);

/// Crash-safe snapshot write via engine::atomic_write_file: temp + fsync
/// + rename, so a crash mid-snapshot leaves the previous file intact.
/// Returns the body checksum.
std::uint64_t save_image(const std::string& path, const StateImage& image);

/// Loads a snapshot file; throws util::IoError when missing or damaged.
StateImage load_image(const std::string& path,
                      std::uint64_t* checksum = nullptr);

/// Delta-file serialization ("impatience.replicationd_delta/1"): same
/// ASCII + checksum + trailer discipline as full snapshots. Returns the
/// body checksum (the next delta's parent link).
std::uint64_t write_delta(std::ostream& out, const StateDelta& delta);
StateDelta read_delta(std::istream& in, std::uint64_t* checksum = nullptr);
std::uint64_t save_delta(const std::string& path, const StateDelta& delta);
StateDelta load_delta(const std::string& path,
                      std::uint64_t* checksum = nullptr);

/// Replays `delta` on top of `image` in place: scalars are overwritten,
/// dirty nodes replaced. Throws util::IoError when the delta does not
/// extend this image (config/seed mismatch, seq regression, node id out
/// of range) — a spliced chain never half-applies.
void apply_delta(StateImage& image, const StateDelta& delta);

class StateStore {
 public:
  /// Fresh store: seeded sticky pins + random cache fill, version 0.
  /// `options` selects the apply pipeline (default: sequential).
  StateStore(const StoreConfig& config, std::uint64_t seed,
             const ApplyOptions& options = {});
  /// Warm restart: rebuilds the exact state of `image` (config must
  /// match `config`; throws std::invalid_argument otherwise).
  StateStore(const StoreConfig& config, std::uint64_t seed,
             const StateImage& image, const ApplyOptions& options = {});
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  const StoreConfig& config() const noexcept { return config_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Lock-free monotonic version (mutation counter) — monitor-friendly.
  std::uint64_t version() const noexcept {
    return version_mirror_.load(std::memory_order_acquire);
  }

  /// Applies one protocol event. Kind::hello and Kind::quit are no-ops
  /// here (stream control is the ingest loop's business). Returns the
  /// store version after the event.
  std::uint64_t apply(const Event& event);

  /// Consumes one unparseable countable line: advances the seq cursor
  /// (a stream position must mean the same thing on every replay, so
  /// malformed lines occupy a sequence number too) and counts it in
  /// events_malformed. Returns the store version after the line.
  std::uint64_t apply_malformed();

  /// Applies a window of countable lines through the conflict-aware
  /// pipeline (docs/service.md "Sharded parallel apply"): the window is
  /// scheduled into shard-disjoint plan waves, contact matches are
  /// planned concurrently across the ForkJoinTeam, and every line
  /// commits in strict seq order — byte-identical to calling apply /
  /// apply_malformed per line, for any shards/threads/window setting.
  /// Returns the store version after the last line.
  std::uint64_t apply_batch(std::span<const IngestLine> lines);

  const ApplyOptions& apply_options() const noexcept { return options_; }

  /// Copy-on-read snapshot of the whole logical state.
  StateImage image() const;
  /// image() + crash-safe write (engine::atomic_write_file).
  void save_snapshot(const std::string& path) const;

  /// Full image that also resets per-node dirty tracking, atomically —
  /// the snapshot chain's base checkpoints go through this so the next
  /// delta is relative to exactly this image.
  StateImage checkpoint_image();
  /// Dirty-node incremental image since the last checkpoint_image /
  /// take_delta (or construction); resets the dirty set. The caller
  /// must persist the delta or the change information is lost.
  StateDelta take_delta();
  /// Nodes currently dirty (monitoring/test hook).
  std::size_t dirty_node_count() const;

  StoreCounters counters() const;
  fault::FaultCounters faults() const;
  Slot clock() const;
  std::uint64_t seq() const;

  /// Per-item global replica counts (copy).
  std::vector<long> replica_counts() const;

  /// p-th percentile of the recent-fulfilment-delay window (slots);
  /// 0 when no fulfilment happened yet.
  double delay_percentile(double p) const;

  /// The conservation invariant, graceful under churn:
  ///   mandates_created == replicas_written + outstanding + lost
  bool mandate_conservation_ok() const;

  /// Builds a store from a snapshot file (load_image + restore).
  static std::unique_ptr<StateStore> restore(const StoreConfig& config,
                                             std::uint64_t seed,
                                             const std::string& path);

 private:
  /// Per-contact plan: matched pending indices for each fulfil
  /// direction, recorded read-only during the plan phase. Delay, gain
  /// and query counts are deliberately NOT planned — they depend on the
  /// live clock and meeting counters at commit time.
  struct ContactPlan {
    bool planned = false;
    std::vector<std::uint32_t> ab;  ///< a's pending indices b fulfils
    std::vector<std::uint32_t> ba;  ///< b's pending indices a fulfils
  };

  void init_fresh();
  void init_from_image(const StateImage& image);
  void attach_listeners();
  void bump_locked(std::uint64_t n = 1);
  void apply_line_locked(const IngestLine& line);
  void apply_event_locked(const Event& event, util::Rng& rng);
  void apply_window_locked(std::span<const IngestLine> lines);
  void plan_line(const IngestLine& line, ContactPlan& plan) const;
  void plan_direction(const core::Node& requester,
                      const core::Node& provider,
                      std::vector<std::uint32_t>& matches) const;
  void commit_line_locked(const IngestLine& line, const ContactPlan& plan);
  void apply_clock(Slot slot);
  void apply_contact(NodeId a, NodeId b, util::Rng& rng);
  void apply_request(NodeId node, ItemId item, util::Rng& rng);
  void apply_crash(NodeId node);
  void fulfil_from(core::Node& requester, core::Node& provider,
                   util::Rng& rng);
  void fulfil_planned(core::Node& requester, core::Node& provider,
                      const std::vector<std::uint32_t>& matches,
                      util::Rng& rng);
  void fulfil_one(core::Node& requester, core::Node& provider,
                  core::PendingRequest& req, util::Rng& rng);
  void sync_policy_counters_locked();
  void refresh_outstanding_locked() const;
  void record_delay_locked(double delay);
  void mark_dirty_locked(NodeId node);
  StateImage::NodeImage node_image_locked(NodeId node) const;

  static void cache_listener(void* context, ItemId item, int delta);

  const StoreConfig config_;
  const std::uint64_t seed_;
  const ApplyOptions options_;
  std::unique_ptr<utility::DelayUtility> utility_;
  std::unique_ptr<core::QcrPolicy> policy_;
  /// Plan-phase team (threads - 1 workers; job(0) runs on the ingest
  /// thread). Null when the pipeline is sequential.
  std::unique_ptr<engine::ForkJoinTeam> team_;
  std::unique_ptr<ShardWaveScheduler> scheduler_;

  mutable std::mutex mu_;
  std::vector<core::Node> nodes_;
  std::vector<long> replica_counts_;
  std::uint64_t version_ = 0;
  std::atomic<std::uint64_t> version_mirror_{0};
  std::uint64_t seq_ = 0;
  Slot clock_ = 0;
  /// counters_.mandates_outstanding is refreshed lazily (an O(nodes)
  /// sweep) on the read paths instead of per event — mutable so const
  /// getters can refresh under the lock they already hold.
  mutable StoreCounters counters_;
  fault::FaultCounters faults_;
  /// Offsets folding the (process-local, monotone) QcrPolicy counters
  /// into restart-surviving totals: total = base + policy.counter().
  long mandates_created_base_ = 0;
  long replicas_written_base_ = 0;

  /// Ring of recent fulfilment delays (slots) for p50/p99.
  static constexpr std::size_t kDelayWindow = 4096;
  std::vector<double> recent_delays_;  // chronological, <= kDelayWindow

  /// Dirty-since-last-checkpoint tracking for delta snapshots.
  std::vector<std::uint8_t> dirty_;
  std::vector<NodeId> dirty_list_;

  /// Scheduler/plan scratch reused across windows.
  std::vector<std::uint32_t> order_;
  std::vector<std::size_t> wave_ends_;
  std::vector<std::size_t> commit_ends_;
  std::vector<ContactPlan> plans_;
};

}  // namespace impatience::service
