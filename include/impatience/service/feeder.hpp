// The resilient replication feeder (docs/robustness.md §7): streams an
// event file to replicationd's Unix-domain socket and survives anything
// the network (or the daemon) does to it.
//
// Delivery contract:
//  * at-least-once on the wire — any send failure, disconnect or timeout
//    triggers seeded exponential backoff (util::backoff_delay, the
//    engine's retry idiom), reconnect, an H/S handshake, and a resume
//    from the acked seq cursor;
//  * exactly-once in the store — the daemon's seq counts every countable
//    line it applied, so seeking to frame index == acked seq re-sends
//    only what the daemon never counted. The final store state is
//    byte-identical to an unbroken run.
//
// The socket shim optionally injects deterministic network chaos
// (ChaosNetConfig): per-frame connection resets, mid-frame partial
// writes, newline-free garbage bursts and bounded stalls, drawn from the
// shim's own seeded RNG stream. Injected faults are *recoverable by
// construction*: garbage and partial writes never complete a countable
// line (no '\n') and are always followed by a reset, so the daemon holds
// them as a fragment and discards it at the next handshake — chaos can
// delay the stream but never corrupt it.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "impatience/util/backoff.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::service {

/// Deterministic network-fault plan for the feeder's socket shim.
/// Mirrors fault::FaultConfig's contract: all draws come from one RNG
/// stream seeded as child_seed(seed, "chaos-net"), so the same seed
/// yields the identical injection schedule and ChaosCounters; all-zero
/// probabilities draw nothing and the shim is bit-identical to no shim.
struct ChaosNetConfig {
  /// Per-frame probability of resetting the connection before the frame.
  double p_reset = 0.0;
  /// Per-frame probability of sending a strict prefix, then resetting.
  double p_partial = 0.0;
  /// Per-frame probability of a newline-free garbage burst, then a reset.
  double p_garbage = 0.0;
  /// Per-frame probability of a bounded stall before sending.
  double p_stall = 0.0;

  /// Stall duration is uniform in (0, stall_max_seconds].
  double stall_max_seconds = 0.005;
  /// Garbage burst length is uniform in [1, garbage_max_bytes].
  std::size_t garbage_max_bytes = 64;

  std::uint64_t seed = 1;
  /// Engage the shim even when every probability is zero (plumbing
  /// coverage: the pass-through path must be bit-identical to no shim).
  bool engage_when_zero = false;

  /// Any probability nonzero?
  bool any() const noexcept {
    return p_reset > 0.0 || p_partial > 0.0 || p_garbage > 0.0 ||
           p_stall > 0.0;
  }
  bool engaged() const noexcept { return any() || engage_when_zero; }
  /// Throws std::invalid_argument on probabilities outside [0, 1] or
  /// nonpositive bounds.
  void validate() const;
};

/// What the shim actually injected (exported via replfeed's /metrics).
struct ChaosCounters {
  std::uint64_t resets = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t garbage_bursts = 0;
  std::uint64_t stalls = 0;
  std::uint64_t bytes_garbage = 0;
};

struct FeederConfig {
  /// Daemon's Unix-domain socket path. When empty and `tcp_port` >= 0,
  /// the feeder connects over TCP instead — everything above the
  /// connect (handshake, resume, chaos shim) is transport-agnostic.
  std::string socket_path;
  /// Daemon's ingest TCP port (used when socket_path is empty).
  int tcp_port = -1;
  /// TCP connect address.
  std::string tcp_host = "127.0.0.1";
  /// Event file to stream. Noise lines (blank / '#') are dropped at load:
  /// only countable lines occupy frame slots, so frame index i
  /// corresponds exactly to the daemon's seq cursor value i.
  std::string input_path;

  /// Seed of the backoff jitter stream (frames carry no randomness).
  std::uint64_t seed = 1;
  /// Reconnect backoff: delay k is backoff_delay(backoff, seed, k) — a
  /// pure function of (policy, seed, attempt), no wall-clock randomness.
  util::BackoffPolicy backoff{0.05, 2.0};
  /// Give up after this many consecutive failed attempts; 0 = retry
  /// forever (until the token cancels).
  int max_attempts = 0;
  /// How long to wait for the daemon's S reply to an H frame.
  double reply_timeout_s = 10.0;
  /// Send a Q frame once the daemon has acked every frame.
  bool send_quit = false;

  ChaosNetConfig chaos;
};

/// Outcome of a feeder run; snapshot_report() serves it live.
struct FeederReport {
  /// Countable lines in the input file.
  std::uint64_t frames_total = 0;
  /// Wire sends, including re-sends (at-least-once: >= frames acked).
  std::uint64_t frames_sent = 0;
  std::uint64_t connections = 0;
  /// Successful H -> S round trips.
  std::uint64_t handshakes = 0;
  std::uint64_t reconnect_backoffs = 0;
  /// Last seq cursor the daemon acked.
  std::uint64_t last_acked_seq = 0;
  /// The daemon acked frames_total (every frame applied exactly once).
  bool complete = false;
  ChaosCounters chaos;
  /// Backoff delays in order (seconds) — the determinism lock: replays
  /// identically from (backoff policy, seed).
  std::vector<double> backoff_delays;
};

/// Renders a feeder report in the /metrics text format (replfeed_* keys).
std::string render_feeder_metrics(const FeederReport& report);

class StreamFeeder {
 public:
  /// Loads and indexes the input file (throws util::IoError when
  /// unreadable; std::invalid_argument on a bad chaos config).
  explicit StreamFeeder(const FeederConfig& config);

  /// Streams every frame until the daemon acks them all (complete), the
  /// attempt budget runs out, or `token` fires. Safe to call once.
  FeederReport run(const util::CancellationToken* token = nullptr);

  /// Thread-safe copy of the live report (replfeed's /metrics thread
  /// reads while run() streams).
  FeederReport snapshot_report() const;

  std::uint64_t frames_total() const noexcept { return frames_.size(); }

 private:
  bool connect_once();
  void disconnect();
  /// Sends H, waits for S; returns false on failure (caller reconnects).
  bool handshake(std::uint64_t* acked);
  /// Sends frame `index` through the chaos shim; false = connection must
  /// be considered dead.
  bool send_frame(std::size_t index);
  bool send_all(const char* data, std::size_t size);
  void backoff_wait(int attempt, const util::CancellationToken* token);

  FeederConfig config_;
  std::vector<std::string> frames_;  ///< countable lines, newline-less
  int fd_ = -1;
  util::Rng chaos_rng_;

  mutable std::mutex report_mu_;
  FeederReport report_;
};

}  // namespace impatience::service
