// Incremental snapshot chains for replicationd (docs/service.md "Delta
// snapshots"): a full base image plus a bounded run of delta files, with
// a manifest as the single atomic commit point.
//
// On-disk layout for a chain rooted at `<path>`:
//
//   <path>.manifest          the commit point (atomic_write_file)
//   <path>.base.<seq>        full image at seq (snapshot format)
//   <path>.delta.<seq>       dirty-node delta at seq (delta format)
//
// Write protocol: the data file (base or delta) is written first — also
// atomically — and only then is the manifest rewritten to reference it.
// A SIGKILL between the two leaves an orphaned data file and a manifest
// that still describes the previous, complete chain; a SIGKILL inside
// either atomic write leaves the previous file intact. Restore therefore
// always recovers exactly the chain the newest manifest commits to — the
// last complete prefix of the run.
//
// Link discipline: every delta records the body checksum of its parent
// (base or previous delta) inside its own checksummed body, and the
// manifest records every element's checksum. Restore verifies both, so
// a spliced, torn, or missing chain element is rejected loudly — never
// half-loaded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "impatience/service/state_store.hpp"

namespace impatience::service {

/// Writer side of a snapshot chain. One instance per daemon; not
/// thread-safe (the daemon's snapshot path is single-threaded).
class SnapshotChain {
 public:
  struct Options {
    /// Chain root: files are `<path>.manifest`, `<path>.base.<seq>`,
    /// `<path>.delta.<seq>` next to the classic full-snapshot path.
    std::string path;
    /// Deltas allowed between full bases; the next checkpoint past the
    /// limit collapses the chain into a fresh base.
    std::size_t delta_limit = 16;
  };

  explicit SnapshotChain(Options options);

  /// Periodic checkpoint: emits a delta of the nodes dirtied since the
  /// last checkpoint — or a full base when the chain is empty or
  /// delta_limit is reached — then commits the manifest. A checkpoint at
  /// an unchanged seq is skipped (nothing to persist). Returns the seq
  /// the chain now ends at.
  std::uint64_t snapshot(StateStore& store);

  /// Graceful-exit collapse: writes a fresh full base, commits a
  /// one-element manifest, and removes the superseded chain files.
  void finalize(StateStore& store);

  /// Elements (base + deltas) in the committed chain.
  std::size_t chain_length() const noexcept { return elements_.size(); }
  /// Deltas since the last full base.
  std::size_t deltas_since_base() const noexcept {
    return elements_.empty() ? 0 : elements_.size() - 1;
  }

  /// True when `<path>.manifest` exists (restore would use the chain
  /// rather than the plain `<path>` snapshot).
  static bool chain_available(const std::string& path);

  /// Restores the image a chain rooted at `path` commits to: loads the
  /// base, verifies and replays each delta. Falls back to plain
  /// load_image(path) when no manifest exists. Throws util::IoError on
  /// any checksum, link, or ordering damage.
  static StateImage restore_image(const std::string& path);

 private:
  struct Element {
    bool is_base = false;
    std::string file;  ///< basename, resolved against the chain dir
    std::uint64_t checksum = 0;
    std::uint64_t seq = 0;
  };

  void write_base(StateStore& store);
  void commit_manifest();
  void remove_stale(const std::vector<std::string>& old_files);
  std::string full_path(const std::string& basename) const;

  Options options_;
  std::string dir_;       ///< directory part of path (with trailing '/')
  std::string basename_;  ///< filename part of path
  std::vector<Element> elements_;
  std::uint64_t last_seq_ = 0;
  bool have_chain_ = false;
};

}  // namespace impatience::service
