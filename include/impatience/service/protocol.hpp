// replicationd's framed line protocol (docs/service.md): the event
// stream a running daemon ingests from a file tail or a Unix-domain
// socket. One frame = one LF-terminated ASCII line:
//
//   T <slot>          advance the logical clock (monotonic; stale ignored)
//   C <a> <b>         contact: nodes a and b meet at the current slot
//   R <node> <item>   request: node asks for item at the current slot
//   K <node>          crash: node churns out, losing volatile state
//   Q                 quit: graceful end of stream
//
// Blank lines and '#' comments are ignored; malformed lines are counted
// and skipped (same lenient discipline as the trace parsers — a live feed
// must never take the daemon down).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/trace/contact.hpp"

namespace impatience::service {

using core::ItemId;
using trace::NodeId;
using trace::Slot;

/// One protocol frame.
struct Event {
  enum class Kind { clock, contact, request, crash, quit };

  Kind kind = Kind::clock;
  Slot slot = 0;      ///< clock
  NodeId a = 0;       ///< contact: first node; request/crash: the node
  NodeId b = 0;       ///< contact: second node
  ItemId item = 0;    ///< request

  friend bool operator==(const Event&, const Event&) = default;
};

/// Parses one frame. Returns std::nullopt for blank/comment lines AND for
/// malformed ones — callers that care about the distinction check
/// is_noise_line first.
std::optional<Event> parse_event(std::string_view line);

/// True for lines the protocol defines as ignorable (blank / comment).
bool is_noise_line(std::string_view line);

/// Serializes a frame as its protocol line (no trailing newline).
std::string format_event(const Event& event);

/// Synthetic stream generation, shared by the bench harness, the tests
/// and `replicationd --gen-stream`.
struct StreamConfig {
  std::uint64_t events = 1000;  ///< frames to emit (excluding T frames)
  NodeId num_nodes = 50;
  ItemId num_items = 50;
  /// Zipf exponent of the request item law (1.0 = the paper's default).
  double zipf = 1.0;
  /// Fraction of frames that are requests (the rest are contacts).
  double request_fraction = 0.5;
  /// Per-frame probability of an extra crash frame (node churn).
  double crash_fraction = 0.0;
  /// Logical slots advanced per emitted frame (fractional OK): the clock
  /// frame cadence. 0.5 means one T frame every two events.
  double slots_per_event = 0.5;
  /// Append a final Q frame.
  bool quit = true;
};

/// Deterministic synthetic workload: same (config, seed) -> same frames.
std::vector<Event> generate_stream(const StreamConfig& config,
                                   std::uint64_t seed);

/// Writes frames as protocol lines, one per line.
void write_stream(std::ostream& out, const std::vector<Event>& events);

}  // namespace impatience::service
