// replicationd's framed line protocol (docs/service.md): the event
// stream a running daemon ingests from a file tail or a Unix-domain
// socket. One frame = one LF-terminated ASCII line:
//
//   T <slot>          advance the logical clock (monotonic; stale ignored)
//   C <a> <b>         contact: nodes a and b meet at the current slot
//   R <node> <item>   request: node asks for item at the current slot
//   K <node>          crash: node churns out, losing volatile state
//   H                 hello: feeder handshake; daemon replies "S <seq>"
//   Q                 quit: graceful end of stream
//
// Blank lines and '#' comments are ignored; malformed lines are counted
// and skipped (same lenient discipline as the trace parsers — a live feed
// must never take the daemon down).
//
// Seq-cursor contract (docs/service.md): every *countable* line — any
// non-noise line that is not an H/Q control frame, malformed lines
// included — advances the daemon's event sequence number by exactly one.
// The seq a hello reply carries is therefore an exact cursor into the
// countable lines of the source stream, which is what lets a
// reconnecting feeder resume at seq+1 with exactly-once application.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "impatience/core/catalog.hpp"
#include "impatience/trace/contact.hpp"

namespace impatience::service {

using core::ItemId;
using trace::NodeId;
using trace::Slot;

/// One protocol frame.
struct Event {
  enum class Kind { clock, contact, request, crash, hello, quit };

  Kind kind = Kind::clock;
  Slot slot = 0;      ///< clock
  NodeId a = 0;       ///< contact: first node; request/crash: the node
  NodeId b = 0;       ///< contact: second node
  ItemId item = 0;    ///< request

  friend bool operator==(const Event&, const Event&) = default;
};

/// Parses one frame. Returns std::nullopt for blank/comment lines AND for
/// malformed ones — callers that care about the distinction check
/// is_noise_line first.
std::optional<Event> parse_event(std::string_view line);

/// True for lines the protocol defines as ignorable (blank / comment).
bool is_noise_line(std::string_view line);

/// Serializes a frame as its protocol line (no trailing newline).
std::string format_event(const Event& event);

/// How one raw line counts against the seq cursor. `event` and
/// `malformed` are the countable classes; `noise`, `hello` and `quit`
/// never advance seq. The daemon's ingest loop and the feeder's source
/// indexer both classify through this function, so both sides of the
/// resume protocol agree on what a stream position means.
enum class LineClass { noise, hello, quit, event, malformed };

/// Classifies a raw line; when it is `event`, `*event` (if non-null)
/// receives the parsed frame.
LineClass classify_line(std::string_view line, Event* event = nullptr);

/// True when the class counts against the seq cursor.
constexpr bool is_countable(LineClass c) noexcept {
  return c == LineClass::event || c == LineClass::malformed;
}

/// The daemon's hello reply ("S <seq>", no trailing newline).
std::string format_seq_reply(std::uint64_t seq);

/// Parses an "S <seq>" reply line; std::nullopt on anything else.
std::optional<std::uint64_t> parse_seq_reply(std::string_view line);

/// Synthetic stream generation, shared by the bench harness, the tests
/// and `replicationd --gen-stream`.
struct StreamConfig {
  std::uint64_t events = 1000;  ///< frames to emit (excluding T frames)
  NodeId num_nodes = 50;
  ItemId num_items = 50;
  /// Zipf exponent of the request item law (1.0 = the paper's default).
  double zipf = 1.0;
  /// Fraction of frames that are requests (the rest are contacts).
  double request_fraction = 0.5;
  /// Per-frame probability of an extra crash frame (node churn).
  double crash_fraction = 0.0;
  /// Logical slots advanced per emitted frame (fractional OK): the clock
  /// frame cadence. 0.5 means one T frame every two events.
  double slots_per_event = 0.5;
  /// Append a final Q frame.
  bool quit = true;
};

/// Deterministic synthetic workload: same (config, seed) -> same frames.
std::vector<Event> generate_stream(const StreamConfig& config,
                                   std::uint64_t seed);

/// Writes frames as protocol lines, one per line.
void write_stream(std::ostream& out, const std::vector<Event>& events);

}  // namespace impatience::service
