file(REMOVE_RECURSE
  "CMakeFiles/learn_impatience.dir/learn_impatience.cpp.o"
  "CMakeFiles/learn_impatience.dir/learn_impatience.cpp.o.d"
  "learn_impatience"
  "learn_impatience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_impatience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
