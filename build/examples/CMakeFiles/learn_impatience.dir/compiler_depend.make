# Empty compiler generated dependencies file for learn_impatience.
# This may be replaced when dependencies are built.
