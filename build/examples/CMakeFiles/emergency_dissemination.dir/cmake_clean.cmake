file(REMOVE_RECURSE
  "CMakeFiles/emergency_dissemination.dir/emergency_dissemination.cpp.o"
  "CMakeFiles/emergency_dissemination.dir/emergency_dissemination.cpp.o.d"
  "emergency_dissemination"
  "emergency_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
