# Empty dependencies file for emergency_dissemination.
# This may be replaced when dependencies are built.
