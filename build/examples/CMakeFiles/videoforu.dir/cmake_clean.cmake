file(REMOVE_RECURSE
  "CMakeFiles/videoforu.dir/videoforu.cpp.o"
  "CMakeFiles/videoforu.dir/videoforu.cpp.o.d"
  "videoforu"
  "videoforu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/videoforu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
