# Empty dependencies file for videoforu.
# This may be replaced when dependencies are built.
