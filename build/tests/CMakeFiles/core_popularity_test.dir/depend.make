# Empty dependencies file for core_popularity_test.
# This may be replaced when dependencies are built.
