file(REMOVE_RECURSE
  "CMakeFiles/core_popularity_test.dir/core/popularity_test.cpp.o"
  "CMakeFiles/core_popularity_test.dir/core/popularity_test.cpp.o.d"
  "core_popularity_test"
  "core_popularity_test.pdb"
  "core_popularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_popularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
