file(REMOVE_RECURSE
  "CMakeFiles/alloc_relaxed_test.dir/alloc/relaxed_test.cpp.o"
  "CMakeFiles/alloc_relaxed_test.dir/alloc/relaxed_test.cpp.o.d"
  "alloc_relaxed_test"
  "alloc_relaxed_test.pdb"
  "alloc_relaxed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_relaxed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
