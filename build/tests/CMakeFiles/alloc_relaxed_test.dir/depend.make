# Empty dependencies file for alloc_relaxed_test.
# This may be replaced when dependencies are built.
