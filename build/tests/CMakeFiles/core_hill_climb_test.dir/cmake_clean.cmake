file(REMOVE_RECURSE
  "CMakeFiles/core_hill_climb_test.dir/core/hill_climb_test.cpp.o"
  "CMakeFiles/core_hill_climb_test.dir/core/hill_climb_test.cpp.o.d"
  "core_hill_climb_test"
  "core_hill_climb_test.pdb"
  "core_hill_climb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hill_climb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
