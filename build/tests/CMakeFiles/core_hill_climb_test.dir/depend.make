# Empty dependencies file for core_hill_climb_test.
# This may be replaced when dependencies are built.
