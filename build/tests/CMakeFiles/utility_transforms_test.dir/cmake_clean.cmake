file(REMOVE_RECURSE
  "CMakeFiles/utility_transforms_test.dir/utility/transforms_test.cpp.o"
  "CMakeFiles/utility_transforms_test.dir/utility/transforms_test.cpp.o.d"
  "utility_transforms_test"
  "utility_transforms_test.pdb"
  "utility_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
