file(REMOVE_RECURSE
  "CMakeFiles/core_demand_test.dir/core/demand_test.cpp.o"
  "CMakeFiles/core_demand_test.dir/core/demand_test.cpp.o.d"
  "core_demand_test"
  "core_demand_test.pdb"
  "core_demand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_demand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
