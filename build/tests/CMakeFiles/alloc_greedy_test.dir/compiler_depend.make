# Empty compiler generated dependencies file for alloc_greedy_test.
# This may be replaced when dependencies are built.
