file(REMOVE_RECURSE
  "CMakeFiles/alloc_greedy_test.dir/alloc/greedy_test.cpp.o"
  "CMakeFiles/alloc_greedy_test.dir/alloc/greedy_test.cpp.o.d"
  "alloc_greedy_test"
  "alloc_greedy_test.pdb"
  "alloc_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
