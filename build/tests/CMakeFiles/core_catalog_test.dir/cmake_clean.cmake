file(REMOVE_RECURSE
  "CMakeFiles/core_catalog_test.dir/core/catalog_test.cpp.o"
  "CMakeFiles/core_catalog_test.dir/core/catalog_test.cpp.o.d"
  "core_catalog_test"
  "core_catalog_test.pdb"
  "core_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
