# Empty dependencies file for core_catalog_test.
# This may be replaced when dependencies are built.
