file(REMOVE_RECURSE
  "CMakeFiles/trace_mobility_test.dir/trace/mobility_test.cpp.o"
  "CMakeFiles/trace_mobility_test.dir/trace/mobility_test.cpp.o.d"
  "trace_mobility_test"
  "trace_mobility_test.pdb"
  "trace_mobility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
