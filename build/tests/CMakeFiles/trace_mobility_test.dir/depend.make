# Empty dependencies file for trace_mobility_test.
# This may be replaced when dependencies are built.
