# Empty compiler generated dependencies file for trace_community_test.
# This may be replaced when dependencies are built.
