file(REMOVE_RECURSE
  "CMakeFiles/trace_community_test.dir/trace/community_test.cpp.o"
  "CMakeFiles/trace_community_test.dir/trace/community_test.cpp.o.d"
  "trace_community_test"
  "trace_community_test.pdb"
  "trace_community_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
