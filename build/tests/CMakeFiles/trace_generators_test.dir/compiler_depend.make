# Empty compiler generated dependencies file for trace_generators_test.
# This may be replaced when dependencies are built.
