file(REMOVE_RECURSE
  "CMakeFiles/trace_generators_test.dir/trace/generators_test.cpp.o"
  "CMakeFiles/trace_generators_test.dir/trace/generators_test.cpp.o.d"
  "trace_generators_test"
  "trace_generators_test.pdb"
  "trace_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
