# Empty compiler generated dependencies file for utility_discrete_test.
# This may be replaced when dependencies are built.
