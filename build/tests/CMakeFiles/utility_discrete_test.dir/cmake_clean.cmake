file(REMOVE_RECURSE
  "CMakeFiles/utility_discrete_test.dir/utility/discrete_test.cpp.o"
  "CMakeFiles/utility_discrete_test.dir/utility/discrete_test.cpp.o.d"
  "utility_discrete_test"
  "utility_discrete_test.pdb"
  "utility_discrete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_discrete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
