file(REMOVE_RECURSE
  "CMakeFiles/alloc_gradient_test.dir/alloc/gradient_test.cpp.o"
  "CMakeFiles/alloc_gradient_test.dir/alloc/gradient_test.cpp.o.d"
  "alloc_gradient_test"
  "alloc_gradient_test.pdb"
  "alloc_gradient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_gradient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
