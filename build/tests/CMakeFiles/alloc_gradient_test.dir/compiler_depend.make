# Empty compiler generated dependencies file for alloc_gradient_test.
# This may be replaced when dependencies are built.
