file(REMOVE_RECURSE
  "CMakeFiles/utility_fit_test.dir/utility/fit_test.cpp.o"
  "CMakeFiles/utility_fit_test.dir/utility/fit_test.cpp.o.d"
  "utility_fit_test"
  "utility_fit_test.pdb"
  "utility_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
