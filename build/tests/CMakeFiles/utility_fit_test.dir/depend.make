# Empty dependencies file for utility_fit_test.
# This may be replaced when dependencies are built.
