file(REMOVE_RECURSE
  "CMakeFiles/alloc_heuristics_test.dir/alloc/heuristics_test.cpp.o"
  "CMakeFiles/alloc_heuristics_test.dir/alloc/heuristics_test.cpp.o.d"
  "alloc_heuristics_test"
  "alloc_heuristics_test.pdb"
  "alloc_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
