# Empty dependencies file for alloc_heuristics_test.
# This may be replaced when dependencies are built.
