file(REMOVE_RECURSE
  "CMakeFiles/stats_trials_test.dir/stats/trials_test.cpp.o"
  "CMakeFiles/stats_trials_test.dir/stats/trials_test.cpp.o.d"
  "stats_trials_test"
  "stats_trials_test.pdb"
  "stats_trials_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_trials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
