# Empty dependencies file for stats_trials_test.
# This may be replaced when dependencies are built.
