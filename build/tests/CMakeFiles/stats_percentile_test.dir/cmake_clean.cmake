file(REMOVE_RECURSE
  "CMakeFiles/stats_percentile_test.dir/stats/percentile_test.cpp.o"
  "CMakeFiles/stats_percentile_test.dir/stats/percentile_test.cpp.o.d"
  "stats_percentile_test"
  "stats_percentile_test.pdb"
  "stats_percentile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_percentile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
