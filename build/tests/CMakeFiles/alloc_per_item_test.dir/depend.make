# Empty dependencies file for alloc_per_item_test.
# This may be replaced when dependencies are built.
