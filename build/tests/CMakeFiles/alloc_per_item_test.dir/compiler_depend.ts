# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for alloc_per_item_test.
