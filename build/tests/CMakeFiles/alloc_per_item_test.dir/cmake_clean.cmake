file(REMOVE_RECURSE
  "CMakeFiles/alloc_per_item_test.dir/alloc/per_item_utilities_test.cpp.o"
  "CMakeFiles/alloc_per_item_test.dir/alloc/per_item_utilities_test.cpp.o.d"
  "alloc_per_item_test"
  "alloc_per_item_test.pdb"
  "alloc_per_item_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_per_item_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
