file(REMOVE_RECURSE
  "CMakeFiles/alloc_solver_properties_test.dir/alloc/solver_properties_test.cpp.o"
  "CMakeFiles/alloc_solver_properties_test.dir/alloc/solver_properties_test.cpp.o.d"
  "alloc_solver_properties_test"
  "alloc_solver_properties_test.pdb"
  "alloc_solver_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_solver_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
