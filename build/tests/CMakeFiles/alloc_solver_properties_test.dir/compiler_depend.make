# Empty compiler generated dependencies file for alloc_solver_properties_test.
# This may be replaced when dependencies are built.
