# Empty dependencies file for utility_set_test.
# This may be replaced when dependencies are built.
