file(REMOVE_RECURSE
  "CMakeFiles/utility_set_test.dir/utility/utility_set_test.cpp.o"
  "CMakeFiles/utility_set_test.dir/utility/utility_set_test.cpp.o.d"
  "utility_set_test"
  "utility_set_test.pdb"
  "utility_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
