file(REMOVE_RECURSE
  "CMakeFiles/trace_contact_test.dir/trace/contact_trace_test.cpp.o"
  "CMakeFiles/trace_contact_test.dir/trace/contact_trace_test.cpp.o.d"
  "trace_contact_test"
  "trace_contact_test.pdb"
  "trace_contact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_contact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
