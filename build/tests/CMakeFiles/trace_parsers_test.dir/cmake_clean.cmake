file(REMOVE_RECURSE
  "CMakeFiles/trace_parsers_test.dir/trace/parsers_test.cpp.o"
  "CMakeFiles/trace_parsers_test.dir/trace/parsers_test.cpp.o.d"
  "trace_parsers_test"
  "trace_parsers_test.pdb"
  "trace_parsers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_parsers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
