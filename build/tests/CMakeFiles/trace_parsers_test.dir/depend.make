# Empty dependencies file for trace_parsers_test.
# This may be replaced when dependencies are built.
