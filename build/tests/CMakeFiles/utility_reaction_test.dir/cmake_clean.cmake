file(REMOVE_RECURSE
  "CMakeFiles/utility_reaction_test.dir/utility/reaction_test.cpp.o"
  "CMakeFiles/utility_reaction_test.dir/utility/reaction_test.cpp.o.d"
  "utility_reaction_test"
  "utility_reaction_test.pdb"
  "utility_reaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_reaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
