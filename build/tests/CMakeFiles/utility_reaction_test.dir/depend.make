# Empty dependencies file for utility_reaction_test.
# This may be replaced when dependencies are built.
