file(REMOVE_RECURSE
  "CMakeFiles/utility_families_test.dir/utility/families_test.cpp.o"
  "CMakeFiles/utility_families_test.dir/utility/families_test.cpp.o.d"
  "utility_families_test"
  "utility_families_test.pdb"
  "utility_families_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_families_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
