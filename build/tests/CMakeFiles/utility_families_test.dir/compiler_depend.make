# Empty compiler generated dependencies file for utility_families_test.
# This may be replaced when dependencies are built.
