file(REMOVE_RECURSE
  "CMakeFiles/core_per_item_test.dir/core/per_item_simulation_test.cpp.o"
  "CMakeFiles/core_per_item_test.dir/core/per_item_simulation_test.cpp.o.d"
  "core_per_item_test"
  "core_per_item_test.pdb"
  "core_per_item_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_per_item_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
