file(REMOVE_RECURSE
  "CMakeFiles/utility_table1_test.dir/utility/table1_test.cpp.o"
  "CMakeFiles/utility_table1_test.dir/utility/table1_test.cpp.o.d"
  "utility_table1_test"
  "utility_table1_test.pdb"
  "utility_table1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_table1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
