file(REMOVE_RECURSE
  "CMakeFiles/alloc_welfare_test.dir/alloc/welfare_test.cpp.o"
  "CMakeFiles/alloc_welfare_test.dir/alloc/welfare_test.cpp.o.d"
  "alloc_welfare_test"
  "alloc_welfare_test.pdb"
  "alloc_welfare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_welfare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
