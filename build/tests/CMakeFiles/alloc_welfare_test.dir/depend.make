# Empty dependencies file for alloc_welfare_test.
# This may be replaced when dependencies are built.
