file(REMOVE_RECURSE
  "CMakeFiles/alloc_rounding_test.dir/alloc/rounding_test.cpp.o"
  "CMakeFiles/alloc_rounding_test.dir/alloc/rounding_test.cpp.o.d"
  "alloc_rounding_test"
  "alloc_rounding_test.pdb"
  "alloc_rounding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_rounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
