# Empty dependencies file for trace_parser_fuzz_test.
# This may be replaced when dependencies are built.
