file(REMOVE_RECURSE
  "CMakeFiles/trace_parser_fuzz_test.dir/trace/parser_fuzz_test.cpp.o"
  "CMakeFiles/trace_parser_fuzz_test.dir/trace/parser_fuzz_test.cpp.o.d"
  "trace_parser_fuzz_test"
  "trace_parser_fuzz_test.pdb"
  "trace_parser_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_parser_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
