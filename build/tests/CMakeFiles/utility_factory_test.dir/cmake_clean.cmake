file(REMOVE_RECURSE
  "CMakeFiles/utility_factory_test.dir/utility/factory_test.cpp.o"
  "CMakeFiles/utility_factory_test.dir/utility/factory_test.cpp.o.d"
  "utility_factory_test"
  "utility_factory_test.pdb"
  "utility_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
