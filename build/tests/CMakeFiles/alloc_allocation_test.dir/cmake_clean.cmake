file(REMOVE_RECURSE
  "CMakeFiles/alloc_allocation_test.dir/alloc/allocation_test.cpp.o"
  "CMakeFiles/alloc_allocation_test.dir/alloc/allocation_test.cpp.o.d"
  "alloc_allocation_test"
  "alloc_allocation_test.pdb"
  "alloc_allocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
