# Empty dependencies file for alloc_allocation_test.
# This may be replaced when dependencies are built.
