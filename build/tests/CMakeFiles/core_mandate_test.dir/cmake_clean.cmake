file(REMOVE_RECURSE
  "CMakeFiles/core_mandate_test.dir/core/mandate_test.cpp.o"
  "CMakeFiles/core_mandate_test.dir/core/mandate_test.cpp.o.d"
  "core_mandate_test"
  "core_mandate_test.pdb"
  "core_mandate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mandate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
