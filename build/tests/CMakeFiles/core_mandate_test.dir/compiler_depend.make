# Empty compiler generated dependencies file for core_mandate_test.
# This may be replaced when dependencies are built.
