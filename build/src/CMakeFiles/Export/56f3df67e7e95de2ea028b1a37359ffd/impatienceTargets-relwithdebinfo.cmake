#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "impatience::impatience_core" for configuration "RelWithDebInfo"
set_property(TARGET impatience::impatience_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(impatience::impatience_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libimpatience_core.a"
  )

list(APPEND _cmake_import_check_targets impatience::impatience_core )
list(APPEND _cmake_import_check_files_for_impatience::impatience_core "${_IMPORT_PREFIX}/lib/libimpatience_core.a" )

# Import target "impatience::impatience_alloc" for configuration "RelWithDebInfo"
set_property(TARGET impatience::impatience_alloc APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(impatience::impatience_alloc PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libimpatience_alloc.a"
  )

list(APPEND _cmake_import_check_targets impatience::impatience_alloc )
list(APPEND _cmake_import_check_files_for_impatience::impatience_alloc "${_IMPORT_PREFIX}/lib/libimpatience_alloc.a" )

# Import target "impatience::impatience_trace" for configuration "RelWithDebInfo"
set_property(TARGET impatience::impatience_trace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(impatience::impatience_trace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libimpatience_trace.a"
  )

list(APPEND _cmake_import_check_targets impatience::impatience_trace )
list(APPEND _cmake_import_check_files_for_impatience::impatience_trace "${_IMPORT_PREFIX}/lib/libimpatience_trace.a" )

# Import target "impatience::impatience_utility" for configuration "RelWithDebInfo"
set_property(TARGET impatience::impatience_utility APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(impatience::impatience_utility PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libimpatience_utility.a"
  )

list(APPEND _cmake_import_check_targets impatience::impatience_utility )
list(APPEND _cmake_import_check_files_for_impatience::impatience_utility "${_IMPORT_PREFIX}/lib/libimpatience_utility.a" )

# Import target "impatience::impatience_stats" for configuration "RelWithDebInfo"
set_property(TARGET impatience::impatience_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(impatience::impatience_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libimpatience_stats.a"
  )

list(APPEND _cmake_import_check_targets impatience::impatience_stats )
list(APPEND _cmake_import_check_files_for_impatience::impatience_stats "${_IMPORT_PREFIX}/lib/libimpatience_stats.a" )

# Import target "impatience::impatience_util" for configuration "RelWithDebInfo"
set_property(TARGET impatience::impatience_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(impatience::impatience_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libimpatience_util.a"
  )

list(APPEND _cmake_import_check_targets impatience::impatience_util )
list(APPEND _cmake_import_check_files_for_impatience::impatience_util "${_IMPORT_PREFIX}/lib/libimpatience_util.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
