file(REMOVE_RECURSE
  "CMakeFiles/impatience_util.dir/util/csv.cpp.o"
  "CMakeFiles/impatience_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/impatience_util.dir/util/flags.cpp.o"
  "CMakeFiles/impatience_util.dir/util/flags.cpp.o.d"
  "CMakeFiles/impatience_util.dir/util/log.cpp.o"
  "CMakeFiles/impatience_util.dir/util/log.cpp.o.d"
  "CMakeFiles/impatience_util.dir/util/math.cpp.o"
  "CMakeFiles/impatience_util.dir/util/math.cpp.o.d"
  "CMakeFiles/impatience_util.dir/util/rng.cpp.o"
  "CMakeFiles/impatience_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/impatience_util.dir/util/table.cpp.o"
  "CMakeFiles/impatience_util.dir/util/table.cpp.o.d"
  "libimpatience_util.a"
  "libimpatience_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
