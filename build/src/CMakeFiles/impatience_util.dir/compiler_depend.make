# Empty compiler generated dependencies file for impatience_util.
# This may be replaced when dependencies are built.
