file(REMOVE_RECURSE
  "libimpatience_util.a"
)
