
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cpp" "src/CMakeFiles/impatience_core.dir/core/cache.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/cache.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/CMakeFiles/impatience_core.dir/core/catalog.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/catalog.cpp.o.d"
  "/root/repo/src/core/demand.cpp" "src/CMakeFiles/impatience_core.dir/core/demand.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/demand.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/impatience_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/hill_climb_policy.cpp" "src/CMakeFiles/impatience_core.dir/core/hill_climb_policy.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/hill_climb_policy.cpp.o.d"
  "/root/repo/src/core/mandate.cpp" "src/CMakeFiles/impatience_core.dir/core/mandate.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/mandate.cpp.o.d"
  "/root/repo/src/core/meeting.cpp" "src/CMakeFiles/impatience_core.dir/core/meeting.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/meeting.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/CMakeFiles/impatience_core.dir/core/node.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/node.cpp.o.d"
  "/root/repo/src/core/path_replication_policy.cpp" "src/CMakeFiles/impatience_core.dir/core/path_replication_policy.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/path_replication_policy.cpp.o.d"
  "/root/repo/src/core/qcr_policy.cpp" "src/CMakeFiles/impatience_core.dir/core/qcr_policy.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/qcr_policy.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/impatience_core.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/impatience_core.dir/core/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
