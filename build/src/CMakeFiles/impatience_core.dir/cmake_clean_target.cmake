file(REMOVE_RECURSE
  "libimpatience_core.a"
)
