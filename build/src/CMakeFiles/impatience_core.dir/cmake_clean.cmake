file(REMOVE_RECURSE
  "CMakeFiles/impatience_core.dir/core/cache.cpp.o"
  "CMakeFiles/impatience_core.dir/core/cache.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/catalog.cpp.o"
  "CMakeFiles/impatience_core.dir/core/catalog.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/demand.cpp.o"
  "CMakeFiles/impatience_core.dir/core/demand.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/experiment.cpp.o"
  "CMakeFiles/impatience_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/hill_climb_policy.cpp.o"
  "CMakeFiles/impatience_core.dir/core/hill_climb_policy.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/mandate.cpp.o"
  "CMakeFiles/impatience_core.dir/core/mandate.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/meeting.cpp.o"
  "CMakeFiles/impatience_core.dir/core/meeting.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/node.cpp.o"
  "CMakeFiles/impatience_core.dir/core/node.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/path_replication_policy.cpp.o"
  "CMakeFiles/impatience_core.dir/core/path_replication_policy.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/qcr_policy.cpp.o"
  "CMakeFiles/impatience_core.dir/core/qcr_policy.cpp.o.d"
  "CMakeFiles/impatience_core.dir/core/simulator.cpp.o"
  "CMakeFiles/impatience_core.dir/core/simulator.cpp.o.d"
  "libimpatience_core.a"
  "libimpatience_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
