# Empty compiler generated dependencies file for impatience_core.
# This may be replaced when dependencies are built.
