file(REMOVE_RECURSE
  "CMakeFiles/impatience_utility.dir/utility/delay_utility.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/delay_utility.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/discrete.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/discrete.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/exponential.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/exponential.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/factory.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/factory.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/fit.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/fit.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/mixture.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/mixture.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/neg_log.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/neg_log.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/power.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/power.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/reaction.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/reaction.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/step.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/step.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/tabulated.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/tabulated.cpp.o.d"
  "CMakeFiles/impatience_utility.dir/utility/utility_set.cpp.o"
  "CMakeFiles/impatience_utility.dir/utility/utility_set.cpp.o.d"
  "libimpatience_utility.a"
  "libimpatience_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
