file(REMOVE_RECURSE
  "libimpatience_utility.a"
)
