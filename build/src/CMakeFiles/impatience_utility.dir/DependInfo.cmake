
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/utility/delay_utility.cpp" "src/CMakeFiles/impatience_utility.dir/utility/delay_utility.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/delay_utility.cpp.o.d"
  "/root/repo/src/utility/discrete.cpp" "src/CMakeFiles/impatience_utility.dir/utility/discrete.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/discrete.cpp.o.d"
  "/root/repo/src/utility/exponential.cpp" "src/CMakeFiles/impatience_utility.dir/utility/exponential.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/exponential.cpp.o.d"
  "/root/repo/src/utility/factory.cpp" "src/CMakeFiles/impatience_utility.dir/utility/factory.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/factory.cpp.o.d"
  "/root/repo/src/utility/fit.cpp" "src/CMakeFiles/impatience_utility.dir/utility/fit.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/fit.cpp.o.d"
  "/root/repo/src/utility/mixture.cpp" "src/CMakeFiles/impatience_utility.dir/utility/mixture.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/mixture.cpp.o.d"
  "/root/repo/src/utility/neg_log.cpp" "src/CMakeFiles/impatience_utility.dir/utility/neg_log.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/neg_log.cpp.o.d"
  "/root/repo/src/utility/power.cpp" "src/CMakeFiles/impatience_utility.dir/utility/power.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/power.cpp.o.d"
  "/root/repo/src/utility/reaction.cpp" "src/CMakeFiles/impatience_utility.dir/utility/reaction.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/reaction.cpp.o.d"
  "/root/repo/src/utility/step.cpp" "src/CMakeFiles/impatience_utility.dir/utility/step.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/step.cpp.o.d"
  "/root/repo/src/utility/tabulated.cpp" "src/CMakeFiles/impatience_utility.dir/utility/tabulated.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/tabulated.cpp.o.d"
  "/root/repo/src/utility/utility_set.cpp" "src/CMakeFiles/impatience_utility.dir/utility/utility_set.cpp.o" "gcc" "src/CMakeFiles/impatience_utility.dir/utility/utility_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
