# Empty dependencies file for impatience_utility.
# This may be replaced when dependencies are built.
