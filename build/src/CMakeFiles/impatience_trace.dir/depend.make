# Empty dependencies file for impatience_trace.
# This may be replaced when dependencies are built.
