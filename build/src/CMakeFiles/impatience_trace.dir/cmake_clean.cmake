file(REMOVE_RECURSE
  "CMakeFiles/impatience_trace.dir/trace/cabspotting_like_generator.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/cabspotting_like_generator.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/cabspotting_parser.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/cabspotting_parser.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/community_generator.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/community_generator.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/contact_trace.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/contact_trace.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/crawdad_parser.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/crawdad_parser.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/heterogeneous_generator.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/heterogeneous_generator.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/infocom_like_generator.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/infocom_like_generator.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/memoryless.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/memoryless.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/mobility.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/mobility.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/one_parser.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/one_parser.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/poisson_generator.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/poisson_generator.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/trace_stats.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/trace_stats.cpp.o.d"
  "CMakeFiles/impatience_trace.dir/trace/trace_writer.cpp.o"
  "CMakeFiles/impatience_trace.dir/trace/trace_writer.cpp.o.d"
  "libimpatience_trace.a"
  "libimpatience_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
