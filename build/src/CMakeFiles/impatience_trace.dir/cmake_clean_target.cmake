file(REMOVE_RECURSE
  "libimpatience_trace.a"
)
