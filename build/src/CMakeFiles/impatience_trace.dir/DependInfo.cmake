
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/cabspotting_like_generator.cpp" "src/CMakeFiles/impatience_trace.dir/trace/cabspotting_like_generator.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/cabspotting_like_generator.cpp.o.d"
  "/root/repo/src/trace/cabspotting_parser.cpp" "src/CMakeFiles/impatience_trace.dir/trace/cabspotting_parser.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/cabspotting_parser.cpp.o.d"
  "/root/repo/src/trace/community_generator.cpp" "src/CMakeFiles/impatience_trace.dir/trace/community_generator.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/community_generator.cpp.o.d"
  "/root/repo/src/trace/contact_trace.cpp" "src/CMakeFiles/impatience_trace.dir/trace/contact_trace.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/contact_trace.cpp.o.d"
  "/root/repo/src/trace/crawdad_parser.cpp" "src/CMakeFiles/impatience_trace.dir/trace/crawdad_parser.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/crawdad_parser.cpp.o.d"
  "/root/repo/src/trace/heterogeneous_generator.cpp" "src/CMakeFiles/impatience_trace.dir/trace/heterogeneous_generator.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/heterogeneous_generator.cpp.o.d"
  "/root/repo/src/trace/infocom_like_generator.cpp" "src/CMakeFiles/impatience_trace.dir/trace/infocom_like_generator.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/infocom_like_generator.cpp.o.d"
  "/root/repo/src/trace/memoryless.cpp" "src/CMakeFiles/impatience_trace.dir/trace/memoryless.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/memoryless.cpp.o.d"
  "/root/repo/src/trace/mobility.cpp" "src/CMakeFiles/impatience_trace.dir/trace/mobility.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/mobility.cpp.o.d"
  "/root/repo/src/trace/one_parser.cpp" "src/CMakeFiles/impatience_trace.dir/trace/one_parser.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/one_parser.cpp.o.d"
  "/root/repo/src/trace/poisson_generator.cpp" "src/CMakeFiles/impatience_trace.dir/trace/poisson_generator.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/poisson_generator.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/CMakeFiles/impatience_trace.dir/trace/trace_stats.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/trace_stats.cpp.o.d"
  "/root/repo/src/trace/trace_writer.cpp" "src/CMakeFiles/impatience_trace.dir/trace/trace_writer.cpp.o" "gcc" "src/CMakeFiles/impatience_trace.dir/trace/trace_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
