file(REMOVE_RECURSE
  "libimpatience_stats.a"
)
