file(REMOVE_RECURSE
  "CMakeFiles/impatience_stats.dir/stats/percentile.cpp.o"
  "CMakeFiles/impatience_stats.dir/stats/percentile.cpp.o.d"
  "CMakeFiles/impatience_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/impatience_stats.dir/stats/summary.cpp.o.d"
  "CMakeFiles/impatience_stats.dir/stats/timeseries.cpp.o"
  "CMakeFiles/impatience_stats.dir/stats/timeseries.cpp.o.d"
  "CMakeFiles/impatience_stats.dir/stats/trials.cpp.o"
  "CMakeFiles/impatience_stats.dir/stats/trials.cpp.o.d"
  "libimpatience_stats.a"
  "libimpatience_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
