
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/percentile.cpp" "src/CMakeFiles/impatience_stats.dir/stats/percentile.cpp.o" "gcc" "src/CMakeFiles/impatience_stats.dir/stats/percentile.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/impatience_stats.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/impatience_stats.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/impatience_stats.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/impatience_stats.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/stats/trials.cpp" "src/CMakeFiles/impatience_stats.dir/stats/trials.cpp.o" "gcc" "src/CMakeFiles/impatience_stats.dir/stats/trials.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
