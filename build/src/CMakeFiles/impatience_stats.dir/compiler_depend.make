# Empty compiler generated dependencies file for impatience_stats.
# This may be replaced when dependencies are built.
