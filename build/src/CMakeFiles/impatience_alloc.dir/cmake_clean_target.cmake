file(REMOVE_RECURSE
  "libimpatience_alloc.a"
)
