
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocation.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/allocation.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/allocation.cpp.o.d"
  "/root/repo/src/alloc/gradient.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/gradient.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/gradient.cpp.o.d"
  "/root/repo/src/alloc/heuristics.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/heuristics.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/heuristics.cpp.o.d"
  "/root/repo/src/alloc/homogeneous_greedy.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/homogeneous_greedy.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/homogeneous_greedy.cpp.o.d"
  "/root/repo/src/alloc/lazy_greedy.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/lazy_greedy.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/lazy_greedy.cpp.o.d"
  "/root/repo/src/alloc/relaxed.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/relaxed.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/relaxed.cpp.o.d"
  "/root/repo/src/alloc/rounding.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/rounding.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/rounding.cpp.o.d"
  "/root/repo/src/alloc/welfare.cpp" "src/CMakeFiles/impatience_alloc.dir/alloc/welfare.cpp.o" "gcc" "src/CMakeFiles/impatience_alloc.dir/alloc/welfare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
