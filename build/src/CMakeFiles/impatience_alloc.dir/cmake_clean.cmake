file(REMOVE_RECURSE
  "CMakeFiles/impatience_alloc.dir/alloc/allocation.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/allocation.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/gradient.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/gradient.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/heuristics.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/heuristics.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/homogeneous_greedy.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/homogeneous_greedy.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/lazy_greedy.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/lazy_greedy.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/relaxed.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/relaxed.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/rounding.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/rounding.cpp.o.d"
  "CMakeFiles/impatience_alloc.dir/alloc/welfare.cpp.o"
  "CMakeFiles/impatience_alloc.dir/alloc/welfare.cpp.o.d"
  "libimpatience_alloc.a"
  "libimpatience_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impatience_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
