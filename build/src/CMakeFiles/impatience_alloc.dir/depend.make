# Empty dependencies file for impatience_alloc.
# This may be replaced when dependencies are built.
