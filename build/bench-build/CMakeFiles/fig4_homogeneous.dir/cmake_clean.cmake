file(REMOVE_RECURSE
  "../bench/fig4_homogeneous"
  "../bench/fig4_homogeneous.pdb"
  "CMakeFiles/fig4_homogeneous.dir/fig4_homogeneous.cpp.o"
  "CMakeFiles/fig4_homogeneous.dir/fig4_homogeneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
