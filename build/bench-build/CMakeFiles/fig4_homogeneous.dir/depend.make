# Empty dependencies file for fig4_homogeneous.
# This may be replaced when dependencies are built.
