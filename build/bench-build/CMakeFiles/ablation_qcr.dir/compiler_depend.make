# Empty compiler generated dependencies file for ablation_qcr.
# This may be replaced when dependencies are built.
