file(REMOVE_RECURSE
  "../bench/ablation_qcr"
  "../bench/ablation_qcr.pdb"
  "CMakeFiles/ablation_qcr.dir/ablation_qcr.cpp.o"
  "CMakeFiles/ablation_qcr.dir/ablation_qcr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
