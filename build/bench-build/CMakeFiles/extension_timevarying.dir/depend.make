# Empty dependencies file for extension_timevarying.
# This may be replaced when dependencies are built.
