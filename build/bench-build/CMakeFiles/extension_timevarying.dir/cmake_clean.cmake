file(REMOVE_RECURSE
  "../bench/extension_timevarying"
  "../bench/extension_timevarying.pdb"
  "CMakeFiles/extension_timevarying.dir/extension_timevarying.cpp.o"
  "CMakeFiles/extension_timevarying.dir/extension_timevarying.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_timevarying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
