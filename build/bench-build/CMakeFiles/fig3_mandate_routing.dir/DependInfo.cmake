
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_mandate_routing.cpp" "bench-build/CMakeFiles/fig3_mandate_routing.dir/fig3_mandate_routing.cpp.o" "gcc" "bench-build/CMakeFiles/fig3_mandate_routing.dir/fig3_mandate_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/impatience_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/impatience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
