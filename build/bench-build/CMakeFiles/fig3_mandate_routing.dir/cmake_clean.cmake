file(REMOVE_RECURSE
  "../bench/fig3_mandate_routing"
  "../bench/fig3_mandate_routing.pdb"
  "CMakeFiles/fig3_mandate_routing.dir/fig3_mandate_routing.cpp.o"
  "CMakeFiles/fig3_mandate_routing.dir/fig3_mandate_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mandate_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
