# Empty dependencies file for fig3_mandate_routing.
# This may be replaced when dependencies are built.
