# Empty compiler generated dependencies file for fig2_alloc_exponent.
# This may be replaced when dependencies are built.
