file(REMOVE_RECURSE
  "../bench/fig2_alloc_exponent"
  "../bench/fig2_alloc_exponent.pdb"
  "CMakeFiles/fig2_alloc_exponent.dir/fig2_alloc_exponent.cpp.o"
  "CMakeFiles/fig2_alloc_exponent.dir/fig2_alloc_exponent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_alloc_exponent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
