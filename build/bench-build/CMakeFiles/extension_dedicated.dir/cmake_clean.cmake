file(REMOVE_RECURSE
  "../bench/extension_dedicated"
  "../bench/extension_dedicated.pdb"
  "CMakeFiles/extension_dedicated.dir/extension_dedicated.cpp.o"
  "CMakeFiles/extension_dedicated.dir/extension_dedicated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
