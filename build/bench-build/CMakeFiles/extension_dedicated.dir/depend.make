# Empty dependencies file for extension_dedicated.
# This may be replaced when dependencies are built.
