# Empty compiler generated dependencies file for fig6_cabspotting.
# This may be replaced when dependencies are built.
