file(REMOVE_RECURSE
  "../bench/fig6_cabspotting"
  "../bench/fig6_cabspotting.pdb"
  "CMakeFiles/fig6_cabspotting.dir/fig6_cabspotting.cpp.o"
  "CMakeFiles/fig6_cabspotting.dir/fig6_cabspotting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cabspotting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
