# Empty compiler generated dependencies file for sweep_parameters.
# This may be replaced when dependencies are built.
