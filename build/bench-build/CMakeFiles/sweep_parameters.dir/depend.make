# Empty dependencies file for sweep_parameters.
# This may be replaced when dependencies are built.
