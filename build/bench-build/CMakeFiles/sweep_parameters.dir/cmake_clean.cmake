file(REMOVE_RECURSE
  "../bench/sweep_parameters"
  "../bench/sweep_parameters.pdb"
  "CMakeFiles/sweep_parameters.dir/sweep_parameters.cpp.o"
  "CMakeFiles/sweep_parameters.dir/sweep_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
