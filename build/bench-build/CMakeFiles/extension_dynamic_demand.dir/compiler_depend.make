# Empty compiler generated dependencies file for extension_dynamic_demand.
# This may be replaced when dependencies are built.
