file(REMOVE_RECURSE
  "../bench/extension_dynamic_demand"
  "../bench/extension_dynamic_demand.pdb"
  "CMakeFiles/extension_dynamic_demand.dir/extension_dynamic_demand.cpp.o"
  "CMakeFiles/extension_dynamic_demand.dir/extension_dynamic_demand.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dynamic_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
