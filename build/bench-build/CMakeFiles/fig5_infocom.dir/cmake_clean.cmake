file(REMOVE_RECURSE
  "../bench/fig5_infocom"
  "../bench/fig5_infocom.pdb"
  "CMakeFiles/fig5_infocom.dir/fig5_infocom.cpp.o"
  "CMakeFiles/fig5_infocom.dir/fig5_infocom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_infocom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
