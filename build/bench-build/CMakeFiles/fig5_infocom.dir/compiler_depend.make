# Empty compiler generated dependencies file for fig5_infocom.
# This may be replaced when dependencies are built.
