# Empty dependencies file for extension_communities.
# This may be replaced when dependencies are built.
