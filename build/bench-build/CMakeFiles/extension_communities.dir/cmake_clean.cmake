file(REMOVE_RECURSE
  "../bench/extension_communities"
  "../bench/extension_communities.pdb"
  "CMakeFiles/extension_communities.dir/extension_communities.cpp.o"
  "CMakeFiles/extension_communities.dir/extension_communities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
