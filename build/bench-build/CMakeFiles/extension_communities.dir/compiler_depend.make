# Empty compiler generated dependencies file for extension_communities.
# This may be replaced when dependencies are built.
