file(REMOVE_RECURSE
  "../bench/fig1_delay_utilities"
  "../bench/fig1_delay_utilities.pdb"
  "CMakeFiles/fig1_delay_utilities.dir/fig1_delay_utilities.cpp.o"
  "CMakeFiles/fig1_delay_utilities.dir/fig1_delay_utilities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_delay_utilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
