# Empty compiler generated dependencies file for fig1_delay_utilities.
# This may be replaced when dependencies are built.
