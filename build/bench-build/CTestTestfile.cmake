# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig1_selfcheck "/root/repo/build/bench/fig1_delay_utilities" "--samples" "6")
set_tests_properties(bench_fig1_selfcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig2_selfcheck "/root/repo/build/bench/fig2_alloc_exponent" "--items" "20" "--servers" "100" "--capacity" "120")
set_tests_properties(bench_fig2_selfcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table1_selfcheck "/root/repo/build/bench/table1_functions")
set_tests_properties(bench_table1_selfcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig3_smoke "/root/repo/build/bench/fig3_mandate_routing" "--nodes" "15" "--slots" "400")
set_tests_properties(bench_fig3_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig4_smoke "/root/repo/build/bench/fig4_homogeneous" "--nodes" "15" "--slots" "300" "--trials" "1")
set_tests_properties(bench_fig4_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig5_smoke "/root/repo/build/bench/fig5_infocom" "--nodes" "15" "--items" "15" "--days" "1" "--trials" "1")
set_tests_properties(bench_fig5_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig6_smoke "/root/repo/build/bench/fig6_cabspotting" "--nodes" "15" "--items" "15" "--slots" "300" "--trials" "1")
set_tests_properties(bench_fig6_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ablation_smoke "/root/repo/build/bench/ablation_qcr" "--nodes" "15" "--slots" "400" "--trials" "1")
set_tests_properties(bench_ablation_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;46;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_sweep_smoke "/root/repo/build/bench/sweep_parameters" "--nodes" "12" "--slots" "300" "--trials" "1")
set_tests_properties(bench_sweep_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;48;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_dedicated_smoke "/root/repo/build/bench/extension_dedicated" "--servers" "8" "--clients" "8" "--items" "8" "--slots" "400" "--trials" "1")
set_tests_properties(bench_dedicated_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;50;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_dynamic_smoke "/root/repo/build/bench/extension_dynamic_demand" "--nodes" "15" "--slots" "600")
set_tests_properties(bench_dynamic_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_communities_smoke "/root/repo/build/bench/extension_communities" "--nodes" "12" "--items" "12" "--slots" "500" "--trials" "1")
set_tests_properties(bench_communities_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;55;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_timevarying_smoke "/root/repo/build/bench/extension_timevarying" "--nodes" "15" "--items" "15" "--days" "1" "--trials" "1")
set_tests_properties(bench_timevarying_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;58;add_test;/root/repo/bench/CMakeLists.txt;0;")
