#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "impatience/core/catalog.hpp"

namespace impatience::core {

Catalog::Catalog(std::vector<double> demand) : demand_(std::move(demand)) {
  if (demand_.empty()) {
    throw std::invalid_argument("Catalog: need at least one item");
  }
  total_ = 0.0;
  for (double d : demand_) {
    if (!(d >= 0.0)) {
      throw std::invalid_argument("Catalog: demand must be non-negative");
    }
    total_ += d;
  }
  if (!(total_ > 0.0)) {
    throw std::invalid_argument("Catalog: total demand must be positive");
  }
}

Catalog Catalog::pareto(ItemId num_items, double omega, double total_rate) {
  if (num_items == 0 || !(total_rate > 0.0)) {
    throw std::invalid_argument("Catalog::pareto: bad parameters");
  }
  std::vector<double> demand(num_items);
  double sum = 0.0;
  for (ItemId i = 0; i < num_items; ++i) {
    demand[i] = std::pow(static_cast<double>(i) + 1.0, -omega);
    sum += demand[i];
  }
  for (double& d : demand) d *= total_rate / sum;
  return Catalog(std::move(demand));
}

double Catalog::demand(ItemId item) const {
  if (item >= num_items()) {
    throw std::out_of_range("Catalog::demand: bad item id");
  }
  return demand_[item];
}

std::vector<ItemId> Catalog::by_popularity() const {
  std::vector<ItemId> order(num_items());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](ItemId a, ItemId b) {
    return demand_[a] > demand_[b];
  });
  return order;
}

}  // namespace impatience::core
