#include <algorithm>
#include <stdexcept>

#include "impatience/core/policy.hpp"

namespace impatience::core {

QcrPolicy::QcrPolicy(std::string name, ItemReaction reaction,
                     MandateRouting routing, long per_item_mandate_cap,
                     Rewriting rewriting)
    : name_(std::move(name)), reaction_(std::move(reaction)),
      routing_(routing), mandate_cap_(per_item_mandate_cap),
      rewriting_(rewriting) {
  if (!reaction_) {
    throw std::invalid_argument("QcrPolicy: null reaction function");
  }
  if (mandate_cap_ <= 0) {
    throw std::invalid_argument("QcrPolicy: mandate cap must be > 0");
  }
}

QcrPolicy::QcrPolicy(std::string name,
                     std::function<double(double)> reaction,
                     MandateRouting routing, long per_item_mandate_cap,
                     Rewriting rewriting)
    : QcrPolicy(std::move(name),
                reaction ? ItemReaction([reaction](ItemId, double y) {
                  return reaction(y);
                })
                         : ItemReaction(),
                routing, per_item_mandate_cap, rewriting) {}

void QcrPolicy::on_fulfillment(Node& requester, Node& /*provider*/,
                               ItemId item, long query_count,
                               util::Rng& rng) {
  if (query_count <= 0) return;  // immediate self-fulfilment: no meeting
  // Clamp before rounding: steep reactions can return values beyond any
  // meaningful replication volume (see the cap rationale in the header).
  const double target =
      std::min(reaction_(item, static_cast<double>(query_count)),
               static_cast<double>(mandate_cap_));
  long replicas = std::max<long>(0, rng.stochastic_round(target));
  replicas =
      std::min(replicas, mandate_cap_ - requester.mandates().count(item));
  if (replicas > 0) {
    requester.mandates().add(item, replicas);
    mandates_created_ += replicas;
  }
}

void QcrPolicy::on_meeting_complete(Node& a, Node& b, util::Rng& rng) {
  // Both bags empty means both phases iterate an empty union and draw
  // nothing — skip the scratch work entirely (the common case: mandates
  // concentrate on few nodes).
  if (a.mandates().empty() && b.mandates().empty()) return;
  execute_mandates(a, b, rng);
  if (routing_ == MandateRouting::kOn) {
    route_mandates(a, b, rng);
  }
}

void QcrPolicy::execute_mandates(Node& a, Node& b, util::Rng& rng) {
  // Union of items with mandates on either side. Sorting keeps the
  // execution order (and hence the RNG draw order) identical to the
  // former sorted active_items() walk.
  auto& items = items_scratch_;
  items.clear();
  a.mandates().append_active_items(items);
  b.mandates().append_active_items(items);
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());

  for (ItemId item : items) {
    const bool a_has = a.holds(item);
    const bool b_has = b.holds(item);
    if (!a_has && !b_has) continue;  // no replica to copy from
    if (a_has && b_has) {
      // Both sides hold the item. Without rewriting the contact is
      // simply ignored; with rewriting one mandate is consumed even
      // though no new copy can be made (Section 5.1).
      if (rewriting_ == Rewriting::kAllowed) {
        long taken = a.mandates().take(item, 1);
        if (taken == 0) taken = b.mandates().take(item, 1);
        mandates_rewritten_ += taken;
      }
      continue;
    }
    // Exactly one side holds the item; the other must be a server that
    // can take the copy. The mandate must sit at the *holder* — a node
    // replicates its own copy. This is exactly why unrouted mandates
    // stall once the origin's replica is evicted (the Section 5.3
    // pathology).
    Node& holder = a_has ? a : b;
    Node& target = a_has ? b : a;
    if (!target.is_server() || !target.cache().can_insert()) continue;
    if (holder.mandates().take(item, 1) == 0) continue;
    target.cache().insert_random_replace(item, rng);
    ++replicas_written_;
  }
}

void QcrPolicy::route_mandates(Node& a, Node& b, util::Rng& rng) {
  auto& items = items_scratch_;
  items.clear();
  a.mandates().append_active_items(items);
  b.mandates().append_active_items(items);
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());

  for (ItemId item : items) {
    const long total =
        a.mandates().count(item) + b.mandates().count(item);
    if (total == 0) continue;
    const bool a_has = a.holds(item);
    const bool b_has = b.holds(item);
    const bool a_sticky =
        a.is_server() && a.cache().sticky() == std::optional<ItemId>(item);
    const bool b_sticky =
        b.is_server() && b.cache().sticky() == std::optional<ItemId>(item);

    long to_a = 0;
    if (a_sticky || b_sticky) {
      // The item's seeder is preferred: 2/3 of the mandates when the
      // partner also holds a copy, everything otherwise (Section 6.1).
      Node& sticky = a_sticky ? a : b;
      const bool other_has = a_sticky ? b_has : a_has;
      long to_sticky;
      if (other_has) {
        const double share = 2.0 * static_cast<double>(total) / 3.0;
        to_sticky = std::clamp<long>(rng.stochastic_round(share), 0, total);
      } else {
        to_sticky = total;
      }
      to_a = (&sticky == &a) ? to_sticky : total - to_sticky;
    } else if (a_has && !b_has) {
      to_a = total;
    } else if (b_has && !a_has) {
      to_a = 0;
    } else {
      // Both or neither hold the item: split evenly, odd one at random.
      to_a = total / 2;
      if (total % 2 != 0 && rng.bernoulli(0.5)) ++to_a;
    }

    // Apply the transfer.
    const long at_a = a.mandates().count(item);
    if (to_a > at_a) {
      b.mandates().take(item, to_a - at_a);
      a.mandates().add(item, to_a - at_a);
    } else if (to_a < at_a) {
      a.mandates().take(item, at_a - to_a);
      b.mandates().add(item, at_a - to_a);
    }
  }
}

}  // namespace impatience::core
