#include "impatience/core/mean_field.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "impatience/alloc/heuristics.hpp"
#include "impatience/alloc/rounding.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/alloc/welfare.hpp"
#include "impatience/utility/reaction.hpp"

namespace impatience::core {
namespace {

void validate_model(const MeanFieldModel& m) {
  if (!(m.mu >= 0.0) || !(m.mu <= 1.0)) {
    throw std::invalid_argument("MeanFieldModel: mu must be in [0, 1]");
  }
  if (!(m.num_nodes >= 1.0)) {
    throw std::invalid_argument("MeanFieldModel: num_nodes must be >= 1");
  }
  if (m.discrete() && m.horizon <= 0) {
    throw std::invalid_argument(
        "MeanFieldModel: the discrete fidelity needs horizon > 0");
  }
}

alloc::HomogeneousModel continuous_model(const MeanFieldModel& m) {
  alloc::HomogeneousModel hm;
  hm.mu = m.mu;
  hm.num_servers = static_cast<NodeId>(m.num_nodes);
  hm.num_clients = static_cast<NodeId>(m.num_nodes);
  hm.mode = alloc::SystemMode::kPureP2P;
  return hm;
}

long node_cap(const MeanFieldModel& m) {
  return static_cast<long>(std::llround(m.num_nodes));
}

}  // namespace

MeanFieldEvaluator::MeanFieldEvaluator(const utility::DelayUtility& u,
                                       const MeanFieldModel& m)
    : model_(m), utility_(&u) {
  validate_model(m);
  if (model_.discrete()) {
    alloc::DiscreteGainModel dm;
    dm.mu = m.mu;
    dm.num_nodes = m.num_nodes;
    dm.horizon = m.horizon;
    dm.tail_epsilon = m.tail_epsilon;
    table_.emplace(u, dm, node_cap(m));
  } else if (!u.bounded_at_zero()) {
    // Same unbounded-at-zero failure mode as the table path.
    throw std::domain_error(
        "MeanFieldEvaluator: pure P2P requires h(0+) bounded (utility '" +
        u.name() + "' diverges at zero)");
  }
}

double MeanFieldEvaluator::item_gain(double x) const {
  if (table_) return table_->gain(x);
  return alloc::item_gain(*utility_, continuous_model(model_), x);
}

double MeanFieldEvaluator::welfare_rate(
    const alloc::ItemCounts& counts, const std::vector<double>& demand) const {
  if (counts.x.size() != demand.size()) {
    throw std::invalid_argument(
        "MeanFieldEvaluator::welfare_rate: counts/demand size mismatch");
  }
  if (table_) return table_->welfare_rate(counts, demand);
  double total = 0.0;
  const alloc::HomogeneousModel hm = continuous_model(model_);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    total += demand[i] * alloc::item_gain(*utility_, hm, counts.x[i]);
  }
  return total;
}

double MeanFieldEvaluator::marginal(long x) const {
  if (table_) return table_->marginal(x);
  const alloc::HomogeneousModel hm = continuous_model(model_);
  return alloc::item_gain(*utility_, hm, static_cast<double>(x) + 1.0) -
         alloc::item_gain(*utility_, hm, static_cast<double>(x));
}

double mean_field_welfare(const alloc::ItemCounts& counts,
                          const std::vector<double>& demand,
                          const utility::DelayUtility& u,
                          const MeanFieldModel& m) {
  return MeanFieldEvaluator(u, m).welfare_rate(counts, demand);
}

alloc::ItemCounts mean_field_greedy(const std::vector<double>& demand,
                                    const utility::DelayUtility& u,
                                    const MeanFieldModel& m, long capacity) {
  validate_model(m);
  if (capacity < 0) {
    throw std::invalid_argument("mean_field_greedy: capacity must be >= 0");
  }
  const long cap_per_item = node_cap(m);
  const long num_items = static_cast<long>(demand.size());
  if (capacity > num_items * cap_per_item) {
    throw std::invalid_argument(
        "mean_field_greedy: capacity exceeds num_items * num_nodes");
  }
  if (!m.discrete()) {
    return alloc::homogeneous_greedy(demand, u, continuous_model(m),
                                     static_cast<int>(capacity));
  }

  MeanFieldEvaluator eval(u, m);
  alloc::ItemCounts counts;
  counts.x.assign(demand.size(), 0.0);
  std::vector<long> x(demand.size(), 0);

  // Max-heap greedy over weighted marginals, exact by concavity of g(x)
  // (the discrete hazard has diminishing returns). Entries carry the x
  // they were computed at; stale ones are refreshed and re-pushed.
  struct Entry {
    double gain;
    std::size_t item;
    long at;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.item > b.item;  // deterministic ties: lowest item first
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (cap_per_item > 0) heap.push({demand[i] * eval.marginal(0), i, 0});
  }
  long placed = 0;
  while (placed < capacity && !heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    if (top.at != x[top.item]) {
      heap.push({demand[top.item] * eval.marginal(x[top.item]), top.item,
                 x[top.item]});
      continue;
    }
    if (top.gain < 0.0) break;  // g is non-decreasing; numerical guard
    ++x[top.item];
    ++placed;
    if (x[top.item] < cap_per_item) {
      heap.push({demand[top.item] * eval.marginal(x[top.item]), top.item,
                 x[top.item]});
    }
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    counts.x[i] = static_cast<double>(x[i]);
  }
  return counts;
}

std::vector<NamedCounts> mean_field_competitors(
    const std::vector<double>& demand, const utility::DelayUtility& u,
    const MeanFieldModel& m, int cache_capacity) {
  validate_model(m);
  if (cache_capacity <= 0) {
    throw std::invalid_argument(
        "mean_field_competitors: cache_capacity must be > 0");
  }
  const double servers = m.num_nodes;
  const double capacity_total = cache_capacity * servers;
  const auto cap_int = static_cast<int>(node_cap(m));

  std::vector<NamedCounts> out;
  out.reserve(5);
  out.push_back({"OPT", mean_field_greedy(
                            demand, u, m,
                            static_cast<long>(std::llround(capacity_total)))});
  out.push_back(
      {"UNI", alloc::round_counts(alloc::uniform_allocation(
                                      demand.size(), capacity_total, servers),
                                  cap_int)});
  out.push_back(
      {"SQRT", alloc::round_counts(
                   alloc::sqrt_allocation(demand, capacity_total, servers),
                   cap_int)});
  out.push_back(
      {"PROP", alloc::round_counts(
                   alloc::prop_allocation(demand, capacity_total, servers),
                   cap_int)});
  out.push_back(
      {"DOM", alloc::dom_allocation(demand, cache_capacity, servers)});
  return out;
}

MeanFieldQcrResult mean_field_qcr(const std::vector<double>& demand,
                                  const utility::DelayUtility& u,
                                  const MeanFieldModel& m, int cache_capacity,
                                  const QcrOptions& qcr,
                                  const MeanFieldOdeOptions& ode) {
  validate_model(m);
  if (m.horizon <= 0) {
    throw std::invalid_argument("mean_field_qcr: horizon must be > 0");
  }
  const std::size_t num_items = demand.size();
  if (num_items == 0) {
    throw std::invalid_argument("mean_field_qcr: empty demand");
  }
  if (cache_capacity <= 0 ||
      static_cast<std::size_t>(cache_capacity) > num_items) {
    throw std::invalid_argument(
        "mean_field_qcr: cache_capacity must be in [1, num_items]");
  }
  const double N = m.num_nodes;
  const double total = cache_capacity * N;
  if (total < static_cast<double>(num_items)) {
    throw std::invalid_argument(
        "mean_field_qcr: capacity below one sticky replica per item");
  }

  // Reaction construction, mirroring run_qcr()'s build_reactions /
  // run_qcr_impl constant for constant (S = N in pure P2P).
  const double x_uniform =
      std::max(1.0, cache_capacity * N / static_cast<double>(num_items));
  double scale = qcr.reaction_scale;
  if (qcr.auto_normalize_scale) {
    const double psi_uniform = utility::psi(u, m.mu, N, N / x_uniform);
    if (psi_uniform > 0.0) {
      scale *= qcr.target_replicas_per_fulfillment / psi_uniform;
    }
  }
  const utility::ReactionFunction reaction(u, m.mu, N, scale);
  const double burst_cap = qcr.max_replicas_per_fulfillment > 0.0
                               ? qcr.max_replicas_per_fulfillment
                               : static_cast<double>(cache_capacity);
  const double counter_cap = qcr.clamp_counter_at_servers
                                 ? N
                                 : std::numeric_limits<double>::infinity();

  // dx_i/dt = d_i (1 - x_i/N) min(psi(min(N/x_i, cap)), burst) - eviction.
  // Each created replica evicts a uniformly random non-sticky replica
  // (caches stay full), so outflow_i = W (x_i - 1) / sum_j (x_j - 1)
  // with W the total inflow: the total is conserved at rho N and the
  // sticky floor x_i >= 1 is an invariant (outflow vanishes at the
  // floor).
  auto derivative = [&](const std::vector<double>& x,
                        std::vector<double>& dx) {
    double inflow_total = 0.0;
    double free_total = 0.0;
    for (std::size_t i = 0; i < num_items; ++i) {
      const double xi = std::clamp(x[i], 1.0, N);
      const double y = std::min(std::max(N / xi, 1.0), counter_cap);
      const double r = std::min(reaction(y), burst_cap);
      dx[i] = demand[i] * (1.0 - xi / N) * r;  // inflow, for now
      inflow_total += dx[i];
      free_total += xi - 1.0;
    }
    if (free_total > 0.0) {
      const double per_free = inflow_total / free_total;
      for (std::size_t i = 0; i < num_items; ++i) {
        dx[i] -= per_free * (std::clamp(x[i], 1.0, N) - 1.0);
      }
    }
  };

  std::vector<double> x(num_items, total / static_cast<double>(num_items));
  std::vector<double> k1(num_items), k2(num_items), k3(num_items),
      k4(num_items), tmp(num_items), half(num_items), full(num_items);
  auto rk4 = [&](const std::vector<double>& from, double h,
                 std::vector<double>& to) {
    derivative(from, k1);
    for (std::size_t i = 0; i < num_items; ++i)
      tmp[i] = from[i] + 0.5 * h * k1[i];
    derivative(tmp, k2);
    for (std::size_t i = 0; i < num_items; ++i)
      tmp[i] = from[i] + 0.5 * h * k2[i];
    derivative(tmp, k3);
    for (std::size_t i = 0; i < num_items; ++i) tmp[i] = from[i] + h * k3[i];
    derivative(tmp, k4);
    for (std::size_t i = 0; i < num_items; ++i) {
      to[i] =
          from[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
  };
  // Numerical safety between steps: pin the sticky floor / node cap and
  // restore the conserved total by rescaling the free mass.
  auto project = [&](std::vector<double>& v) {
    double free_sum = 0.0;
    for (std::size_t i = 0; i < num_items; ++i) {
      v[i] = std::clamp(v[i], 1.0, N);
      free_sum += v[i] - 1.0;
    }
    const double target_free = total - static_cast<double>(num_items);
    if (free_sum > 0.0 && target_free >= 0.0) {
      const double ratio = target_free / free_sum;
      for (std::size_t i = 0; i < num_items; ++i) {
        v[i] = 1.0 + (v[i] - 1.0) * ratio;
      }
    }
  };

  MeanFieldEvaluator eval(u, m);
  alloc::ItemCounts probe;
  probe.x = x;
  double w_prev = eval.welfare_rate(probe, demand);
  double integral = 0.0;

  const double T = static_cast<double>(m.horizon);
  const double max_step = ode.max_step > 0.0 ? ode.max_step : T / 16.0;
  double t = 0.0;
  double h = std::min(ode.initial_step, max_step);
  MeanFieldQcrResult result;
  // Step-doubling RK4: compare one h-step against two h/2-steps, accept
  // the finer solution when the componentwise error passes the mixed
  // absolute/relative tolerance, and rescale h by the usual 1/5-order
  // rule either way.
  while (t < T) {
    if (result.steps + result.rejected_steps >= ode.max_steps) {
      throw std::runtime_error("mean_field_qcr: max_steps exceeded");
    }
    h = std::min(h, T - t);
    rk4(x, h, full);
    rk4(x, 0.5 * h, half);
    std::vector<double>& second = tmp;
    rk4(half, 0.5 * h, second);
    double err = 0.0;
    for (std::size_t i = 0; i < num_items; ++i) {
      const double tol = ode.abs_tol +
                         ode.rel_tol * std::max(std::abs(x[i]),
                                                std::abs(second[i]));
      err = std::max(err, std::abs(full[i] - second[i]) / tol);
    }
    if (err <= 1.0) {
      std::swap(x, second);
      project(x);
      t += h;
      ++result.steps;
      probe.x = x;
      const double w = eval.welfare_rate(probe, demand);
      integral += 0.5 * (w_prev + w) * h;
      w_prev = w;
      const double grow =
          err > 0.0 ? std::clamp(0.9 * std::pow(err, -0.2), 1.0, 5.0) : 5.0;
      h = std::min(h * grow, max_step);
    } else {
      ++result.rejected_steps;
      h *= std::clamp(0.9 * std::pow(err, -0.2), 0.1, 0.5);
    }
  }

  result.final_counts.x = x;
  result.mean_welfare_rate = integral / T;
  result.final_welfare_rate = w_prev;
  return result;
}

double MeanFieldClassModel::num_nodes() const {
  double n = 0.0;
  for (double s : class_sizes) n += s;
  return n;
}

namespace {

void validate_class_model(const MeanFieldClassModel& m) {
  if (m.class_sizes.empty()) {
    throw std::invalid_argument("MeanFieldClassModel: no classes");
  }
  for (double s : m.class_sizes) {
    if (!(s >= 1.0)) {
      throw std::invalid_argument(
          "MeanFieldClassModel: class sizes must be >= 1");
    }
  }
  if (m.rates.size() != m.class_sizes.size()) {
    throw std::invalid_argument(
        "MeanFieldClassModel: rates must be classes x classes");
  }
  for (const auto& row : m.rates) {
    if (row.size() != m.class_sizes.size()) {
      throw std::invalid_argument(
          "MeanFieldClassModel: rates must be classes x classes");
    }
    for (double r : row) {
      if (!(r >= 0.0)) {
        throw std::invalid_argument("MeanFieldClassModel: rates must be >= 0");
      }
    }
  }
  if (m.horizon <= 0) {
    throw std::invalid_argument("MeanFieldClassModel: horizon must be > 0");
  }
}

}  // namespace

double mean_field_welfare_classes(
    const std::vector<alloc::ItemCounts>& counts_by_class,
    const std::vector<double>& demand, const utility::DelayUtility& u,
    const MeanFieldClassModel& m) {
  validate_class_model(m);
  const std::size_t num_classes = m.class_sizes.size();
  if (counts_by_class.size() != num_classes) {
    throw std::invalid_argument(
        "mean_field_welfare_classes: one ItemCounts per class expected");
  }
  for (const auto& c : counts_by_class) {
    if (c.x.size() != demand.size()) {
      throw std::invalid_argument(
          "mean_field_welfare_classes: counts/demand size mismatch");
    }
  }
  if (!u.bounded_at_zero()) {
    throw std::domain_error(
        "mean_field_welfare_classes: pure P2P requires h(0+) bounded");
  }
  const double h0 = u.value_at_zero();
  const double n_total = m.num_nodes();

  double welfare = 0.0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    double item_value = 0.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      // Per-slot miss probability of a class-c client against every
      // holder class; the generators clip per-pair rates at 1.
      double log_miss = 0.0;
      for (std::size_t cp = 0; cp < num_classes; ++cp) {
        const double rate = std::min(m.rates[c][cp], 1.0);
        const double xcp =
            std::clamp(counts_by_class[cp].x[i], 0.0, m.class_sizes[cp]);
        if (rate >= 1.0) {
          if (xcp > 0.0) log_miss = -std::numeric_limits<double>::infinity();
        } else {
          log_miss += xcp * std::log1p(-rate);
        }
      }
      const double q = 1.0 - std::exp(log_miss);
      const double xc =
          std::clamp(counts_by_class[c].x[i], 0.0, m.class_sizes[c]);
      const double immediate = xc / m.class_sizes[c];
      const double gain =
          immediate * h0 +
          (1.0 - immediate) * alloc::censored_geometric_gain(
                                  u, q, m.horizon, m.tail_epsilon);
      item_value += (m.class_sizes[c] / n_total) * gain;
    }
    welfare += demand[i] * item_value;
  }
  return welfare;
}

MeanFieldClassModel community_class_model(
    const trace::CommunityTraceParams& params) {
  if (params.num_communities <= 0) {
    throw std::invalid_argument(
        "community_class_model: num_communities must be > 0");
  }
  MeanFieldClassModel m;
  const auto num_classes = static_cast<std::size_t>(params.num_communities);
  m.class_sizes.assign(num_classes, 0.0);
  for (NodeId n = 0; n < params.num_nodes; ++n) {
    m.class_sizes[static_cast<std::size_t>(
        trace::community_of(n, params.num_communities))] += 1.0;
  }
  m.rates.assign(num_classes,
                 std::vector<double>(num_classes, params.inter_rate));
  for (std::size_t c = 0; c < num_classes; ++c) {
    m.rates[c][c] = params.intra_rate;
  }
  m.horizon = params.duration;
  return m;
}

std::vector<alloc::ItemCounts> counts_by_community(
    const alloc::Placement& placement, int num_communities) {
  if (num_communities <= 0) {
    throw std::invalid_argument(
        "counts_by_community: num_communities must be > 0");
  }
  std::vector<alloc::ItemCounts> out(
      static_cast<std::size_t>(num_communities));
  for (auto& c : out) c.x.assign(placement.num_items(), 0.0);
  for (alloc::ItemId item = 0; item < placement.num_items(); ++item) {
    for (NodeId s = 0; s < placement.num_servers(); ++s) {
      if (placement.has(item, s)) {
        out[static_cast<std::size_t>(trace::community_of(s, num_communities))]
            .x[item] += 1.0;
      }
    }
  }
  return out;
}

}  // namespace impatience::core
