#include <cmath>
#include <stdexcept>

#include "impatience/core/hill_climb_policy.hpp"

namespace impatience::core {

namespace {

/// Infinite deltas (first/last copy of a cost-type utility) ordered by a
/// huge finite stand-in, as in the greedy solvers.
double bounded(double delta) {
  if (std::isfinite(delta)) return delta;
  return delta > 0.0 ? 1e280 : -1e280;
}

}  // namespace

HillClimbPolicy::HillClimbPolicy(std::vector<double> demand,
                                 const utility::DelayUtility& utility,
                                 alloc::HomogeneousModel model)
    : HillClimbPolicy(demand,
                      utility::UtilitySet(utility, demand.size()), model) {}

HillClimbPolicy::HillClimbPolicy(std::vector<double> demand,
                                 utility::UtilitySet utilities,
                                 alloc::HomogeneousModel model)
    : demand_(std::move(demand)), utilities_(std::move(utilities)),
      model_(model) {
  if (demand_.empty() || utilities_.size() != demand_.size()) {
    throw std::invalid_argument(
        "HillClimbPolicy: demand/utility size mismatch");
  }
}

void HillClimbPolicy::on_initialized(std::span<const int> item_counts) {
  if (item_counts.size() != demand_.size()) {
    throw std::invalid_argument("HillClimbPolicy: item count size mismatch");
  }
  counts_.assign(item_counts.begin(), item_counts.end());
  initialized_ = true;
}

double HillClimbPolicy::add_delta(ItemId item) const {
  const double x = counts_[item];
  if (x >= static_cast<double>(model_.num_servers)) {
    return -1e300;  // cannot exceed one copy per server
  }
  return bounded(demand_[item] *
                 (alloc::item_gain(utilities_[item], model_, x + 1.0) -
                  alloc::item_gain(utilities_[item], model_, x)));
}

double HillClimbPolicy::remove_delta(ItemId item) const {
  const double x = counts_[item];
  return bounded(demand_[item] *
                 (alloc::item_gain(utilities_[item], model_, x - 1.0) -
                  alloc::item_gain(utilities_[item], model_, x)));
}

bool HillClimbPolicy::improve_node(Node& node, util::Rng& rng) {
  if (!node.is_server()) return false;
  Cache& cache = node.cache();

  // Best item to gain a replica (not already cached here).
  ItemId best_add = 0;
  double best_add_delta = -1e301;
  for (ItemId j = 0; j < demand_.size(); ++j) {
    if (cache.contains(j)) continue;
    const double delta = add_delta(j);
    if (delta > best_add_delta) {
      best_add_delta = delta;
      best_add = j;
    }
  }
  // Cheapest cached victim (sticky replicas are immovable).
  bool have_victim = false;
  ItemId best_victim = 0;
  double best_victim_delta = -1e301;  // remove_delta is <= 0; want max
  for (ItemId i : cache.items()) {
    if (cache.sticky() && *cache.sticky() == i) continue;
    const double delta = remove_delta(i);
    if (!have_victim || delta > best_victim_delta) {
      best_victim_delta = delta;
      best_victim = i;
      have_victim = true;
    }
  }
  if (!have_victim) return false;
  const double total = best_add_delta + best_victim_delta;
  if (total <= 1e-12) return false;

  cache.erase(best_victim);
  // The cache now has a free slot; insertion cannot evict.
  cache.insert_random_replace(best_add, rng);
  --counts_[best_victim];
  ++counts_[best_add];
  ++swaps_;
  return true;
}

void HillClimbPolicy::on_meeting_complete(Node& a, Node& b, util::Rng& rng) {
  if (!initialized_) {
    throw std::logic_error(
        "HillClimbPolicy: on_initialized was never invoked (run through "
        "core::simulate)");
  }
  // Alternate improvements between the two nodes until neither can move.
  bool moved = true;
  int guard = 0;
  while (moved && guard++ < 64) {
    moved = false;
    if (improve_node(a, rng)) moved = true;
    if (improve_node(b, rng)) moved = true;
  }
}

double HillClimbPolicy::tracked_welfare() const {
  alloc::ItemCounts x;
  x.x.assign(counts_.begin(), counts_.end());
  return alloc::welfare_homogeneous(x, demand_, utilities_, model_);
}

}  // namespace impatience::core
