#include <algorithm>
#include <stdexcept>

#include "impatience/core/cache.hpp"

namespace impatience::core {

Cache::Cache(int capacity) : capacity_(capacity) {
  if (capacity <= 0) {
    throw std::invalid_argument("Cache: capacity must be > 0");
  }
  items_.reserve(static_cast<std::size_t>(capacity));
}

bool Cache::contains(ItemId item) const noexcept {
  return std::find(items_.begin(), items_.end(), item) != items_.end();
}

void Cache::pin_sticky(ItemId item) {
  if (sticky_ && *sticky_ != item) {
    throw std::logic_error("Cache: a different sticky item is pinned");
  }
  if (!contains(item)) {
    if (full()) {
      throw std::logic_error("Cache: full, cannot pin sticky item");
    }
    items_.push_back(item);
    notify(item, +1);
  }
  sticky_ = item;
}

std::optional<ItemId> Cache::insert_random_replace(ItemId item,
                                                   util::Rng& rng) {
  if (contains(item)) {
    throw std::logic_error("Cache: item already present");
  }
  if (!full()) {
    items_.push_back(item);
    notify(item, +1);
    return std::nullopt;
  }
  // Choose a uniformly random victim among non-sticky slots.
  std::vector<std::size_t> victims;
  victims.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (!sticky_ || items_[i] != *sticky_) victims.push_back(i);
  }
  if (victims.empty()) {
    throw std::logic_error("Cache: full of sticky content");
  }
  const std::size_t slot = victims[rng.uniform_index(victims.size())];
  const ItemId evicted = items_[slot];
  items_[slot] = item;
  notify(evicted, -1);
  notify(item, +1);
  return evicted;
}

int Cache::crash_clear() {
  // The sticky replica models the paper's immortal origin copy (its
  // anti-absorption measure), so it survives the crash; everything else
  // is lost. Wiping it too would let items go extinct, which no policy
  // can recover from and the paper's model rules out.
  int lost = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (sticky_ && items_[i] == *sticky_) {
      items_[kept++] = items_[i];
    } else {
      notify(items_[i], -1);
      ++lost;
    }
  }
  items_.resize(kept);
  return lost;
}

void Cache::erase(ItemId item) {
  if (sticky_ && *sticky_ == item) {
    throw std::logic_error("Cache: cannot erase the sticky replica");
  }
  auto it = std::find(items_.begin(), items_.end(), item);
  if (it == items_.end()) {
    throw std::logic_error("Cache: erase of absent item");
  }
  items_.erase(it);
  notify(item, -1);
}

}  // namespace impatience::core
