// Internal simulator state shared between simulator.cpp and meeting.cpp.
// Not part of the public API.
#pragma once

#include <functional>
#include <vector>

#include "impatience/core/node.hpp"
#include "impatience/core/policy.hpp"
#include "impatience/stats/timeseries.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::core::detail {

struct SimState {
  std::vector<Node> nodes;  // indexed by trace NodeId
  const utility::UtilitySet* utilities = nullptr;
  ReplicationPolicy* policy = nullptr;
  util::Rng* rng = nullptr;
  Slot now = 0;

  double total_gain = 0.0;
  stats::BinnedSeries* observed = nullptr;
  /// When set (event kernel), gains are accumulated per bin and folded
  /// into `observed` one batch at a time instead of per fulfilment; the
  /// kernel flushes it before reading the series. The slot-stepped
  /// kernel leaves it null so its per-fulfilment adds stay bit-locked.
  stats::BinnedSeries::Batcher* observed_batch = nullptr;
  const std::function<void(ItemId, NodeId, double, double)>* on_fulfillment =
      nullptr;
  std::uint64_t fulfillments = 0;
  double delay_sum = 0.0;
  double query_sum = 0.0;

  /// Remaining item copies the current meeting may transfer (truncated
  /// exchange fault); -1 = unlimited. Matched requests beyond the budget
  /// stay pending.
  long transfer_budget = -1;
};

/// Full meeting protocol of Section 6.1: metadata exchange (query-counter
/// increments), request fulfilment with gain recording, then the policy's
/// mandate execution/routing step. Honors state.transfer_budget.
void process_meeting(SimState& state, Node& a, Node& b);

/// Matched (fulfillable) requests of this meeting across both directions
/// — the "negotiated items" a truncated exchange cuts a prefix of.
long count_fulfillable(const Node& a, const Node& b);

/// Records one observed gain, through the batcher when one is installed.
inline void record_gain(SimState& state, double time, double value) noexcept {
  if (state.observed_batch) {
    state.observed_batch->add(time, value);
  } else {
    state.observed->add(time, value);
  }
}

}  // namespace impatience::core::detail
