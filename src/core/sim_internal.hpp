// Internal simulator state shared between simulator.cpp and meeting.cpp.
// Not part of the public API.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "impatience/core/node.hpp"
#include "impatience/core/policy.hpp"
#include "impatience/stats/timeseries.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::core::detail {

struct SimState {
  std::vector<Node> nodes;  // indexed by trace NodeId
  const utility::UtilitySet* utilities = nullptr;
  ReplicationPolicy* policy = nullptr;
  util::Rng* rng = nullptr;
  Slot now = 0;

  double total_gain = 0.0;
  stats::BinnedSeries* observed = nullptr;
  /// When set (event kernel), gains are accumulated per bin and folded
  /// into `observed` one batch at a time instead of per fulfilment; the
  /// kernel flushes it before reading the series. The slot-stepped
  /// kernel leaves it null so its per-fulfilment adds stay bit-locked.
  stats::BinnedSeries::Batcher* observed_batch = nullptr;
  const std::function<void(ItemId, NodeId, double, double)>* on_fulfillment =
      nullptr;
  std::uint64_t fulfillments = 0;
  double delay_sum = 0.0;
  double query_sum = 0.0;

  /// Remaining item copies the current meeting may transfer (truncated
  /// exchange fault); -1 = unlimited. Matched requests beyond the budget
  /// stay pending.
  long transfer_budget = -1;
};

/// Full meeting protocol of Section 6.1: metadata exchange (query-counter
/// increments), request fulfilment with gain recording, then the policy's
/// mandate execution/routing step. Honors state.transfer_budget.
void process_meeting(SimState& state, Node& a, Node& b);

/// Matched (fulfillable) requests of this meeting across both directions
/// — the "negotiated items" a truncated exchange cuts a prefix of.
long count_fulfillable(const Node& a, const Node& b);

/// The read-only half of one meeting, precomputed so a node-disjoint wave
/// of meetings can be planned on worker threads (trace/partition.hpp).
/// Splitting process_meeting into plan + commit is bit-identical to the
/// fused walk because the plan holds everything the expensive scan
/// produces — matched pending indices, delays and utility gains — while
/// every mutation and every RNG draw (policy hooks, clock ticks, budget
/// accounting) happens at commit, in exact trace order. Match vectors are
/// reused across meetings; clear() keeps their capacity.
struct MeetingPlan {
  struct Match {
    std::uint32_t pending_index;  ///< index into the requester's pending()
    double delay;                 ///< (now - created) + 1, the Lemma-1 form
    double gain;                  ///< utilities[item].value(delay)
  };
  struct Direction {
    bool tick = false;  ///< requester is a client meeting a server
    std::vector<Match> matches;
  };
  Direction ab;  ///< a as requester, b as provider
  Direction ba;  ///< b as requester, a as provider

  /// Matched requests across both directions == count_fulfillable(a, b),
  /// the negotiated volume a truncated exchange cuts a prefix of.
  long total_matches() const noexcept {
    return static_cast<long>(ab.matches.size()) +
           static_cast<long>(ba.matches.size());
  }
  void clear() noexcept {
    ab.tick = ba.tick = false;
    ab.matches.clear();
    ba.matches.clear();
  }
};

/// Fills `plan` from the current state without mutating anything. Safe to
/// run concurrently for meetings that share no node: it reads only the
/// two nodes' pending lists / caches plus the shared immutable utilities,
/// and state.now (constant within a slot batch).
void plan_meeting(const SimState& state, const Node& a, const Node& b,
                  MeetingPlan& plan);

/// Applies a plan: clock ticks, pending-list compaction honoring
/// state.transfer_budget, gain/metrics accounting, policy hooks. Must run
/// on the simulation thread against the exact state the plan was computed
/// from (guaranteed inside a node-disjoint wave). Equivalent to
/// process_meeting(state, a, b) step for step.
void commit_meeting(SimState& state, Node& a, Node& b,
                    const MeetingPlan& plan);

/// Records one observed gain, through the batcher when one is installed.
inline void record_gain(SimState& state, double time, double value) noexcept {
  if (state.observed_batch) {
    state.observed_batch->add(time, value);
  } else {
    state.observed->add(time, value);
  }
}

}  // namespace impatience::core::detail
