#include <stdexcept>

#include "impatience/core/demand.hpp"

namespace impatience::core {

DemandProcess::DemandProcess(const Catalog& catalog,
                             std::vector<NodeId> clients)
    : clients_(std::move(clients)),
      item_weights_(catalog.demands()),
      total_rate_(catalog.total_demand()) {
  if (clients_.empty()) {
    throw std::invalid_argument("DemandProcess: empty client set");
  }
}

DemandProcess::DemandProcess(const Catalog& catalog,
                             std::vector<NodeId> clients,
                             std::vector<std::vector<double>> weights)
    : DemandProcess(catalog, std::move(clients)) {
  if (weights.size() != item_weights_.size()) {
    throw std::invalid_argument("DemandProcess: weights rows != items");
  }
  for (const auto& row : weights) {
    if (row.size() != clients_.size()) {
      throw std::invalid_argument("DemandProcess: weights cols != clients");
    }
  }
  node_weights_ = std::move(weights);
}

std::vector<NewRequest> DemandProcess::sample_slot(util::Rng& rng) const {
  std::vector<NewRequest> out;
  sample_slot(rng, out);
  return out;
}

void DemandProcess::sample_slot(util::Rng& rng,
                                std::vector<NewRequest>& out) const {
  out.clear();
  const auto count = rng.poisson(total_rate_);
  out.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    const auto item = static_cast<ItemId>(rng.weighted_index(item_weights_));
    NodeId node;
    if (node_weights_.empty()) {
      node = clients_[rng.uniform_index(clients_.size())];
    } else {
      node = clients_[rng.weighted_index(node_weights_[item])];
    }
    out.push_back({item, node});
  }
}

}  // namespace impatience::core
