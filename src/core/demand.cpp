#include <algorithm>
#include <bit>
#include <stdexcept>

#include "impatience/core/demand.hpp"

namespace impatience::core {

DemandProcess::DemandProcess(const Catalog& catalog,
                             std::vector<NodeId> clients)
    : clients_(std::move(clients)),
      item_weights_(catalog.demands()),
      total_rate_(catalog.total_demand()),
      item_alias_(item_weights_) {
  if (clients_.empty()) {
    throw std::invalid_argument("DemandProcess: empty client set");
  }
}

DemandProcess::DemandProcess(const Catalog& catalog,
                             std::vector<NodeId> clients,
                             std::vector<std::vector<double>> weights)
    : DemandProcess(catalog, std::move(clients)) {
  if (weights.size() != item_weights_.size()) {
    throw std::invalid_argument("DemandProcess: weights rows != items");
  }
  for (const auto& row : weights) {
    if (row.size() != clients_.size()) {
      throw std::invalid_argument("DemandProcess: weights cols != clients");
    }
  }
  node_weights_ = std::move(weights);
  node_alias_.reserve(node_weights_.size());
  for (const auto& row : node_weights_) {
    node_alias_.emplace_back(row);
  }
}

std::vector<NewRequest> DemandProcess::sample_slot(util::Rng& rng) const {
  std::vector<NewRequest> out;
  sample_slot(rng, out);
  return out;
}

void DemandProcess::sample_slot(util::Rng& rng,
                                std::vector<NewRequest>& out) const {
  out.clear();
  const auto count = rng.poisson(total_rate_);
  out.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    out.push_back(sample_request_linear(rng));
  }
}

NewRequest DemandProcess::sample_request_linear(util::Rng& rng) const {
  const auto item = static_cast<ItemId>(rng.weighted_index(item_weights_));
  NodeId node;
  if (node_weights_.empty()) {
    node = clients_[rng.uniform_index(clients_.size())];
  } else {
    node = clients_[rng.weighted_index(node_weights_[item])];
  }
  return {item, node};
}

NewRequest DemandProcess::sample_request(util::Rng& rng) const {
  const auto item = static_cast<ItemId>(item_alias_.sample(rng));
  NodeId node;
  if (node_alias_.empty()) {
    node = clients_[rng.uniform_index(clients_.size())];
  } else {
    node = clients_[node_alias_[item].sample(rng)];
  }
  return {item, node};
}

void DemandProcess::sample_gap(util::Rng& rng, Slot first_slot,
                               Slot num_slots,
                               std::vector<BatchedRequest>& out) const {
  out.clear();
  if (num_slots <= 0) return;
  const auto count =
      rng.poisson(static_cast<double>(num_slots) * total_rate_);
  out.resize(count);
  if (count == 0) return;
  // Generate the creation slots already sorted, via the order statistics
  // of iid uniforms: with E_1..E_{n+1} iid Exp(1) and S_k their prefix
  // sums, U_(k) = S_k / S_{n+1} are exactly n sorted Uniform[0,1) draws,
  // so floor(U_(k) * num_slots) are n sorted iid uniform slots. This
  // replaces the O(n log n) sort a draw-then-sort batch would need, and
  // keeps same-slot requests in draw order (prefix sums are increasing),
  // matching the slot-stepped convention. The prefix sums are staged
  // bit-cast into the 64-bit slot field, so no scratch allocation.
  double sum = 0.0;
  for (std::uint64_t k = 0; k < count; ++k) {
    sum += rng.exponential(1.0);
    out[k].slot = std::bit_cast<Slot>(sum);
  }
  sum += rng.exponential(1.0);
  const double scale = static_cast<double>(num_slots) / sum;
  for (std::uint64_t k = 0; k < count; ++k) {
    const double u = std::bit_cast<double>(out[k].slot) * scale;
    // Guard the k == count-1 edge where u can round to num_slots.
    Slot offset = static_cast<Slot>(u);
    if (offset >= num_slots) offset = num_slots - 1;
    const NewRequest req = sample_request(rng);
    out[k] = {req.item, req.node, first_slot + offset};
  }
}

}  // namespace impatience::core
