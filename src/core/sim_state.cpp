#include <stdexcept>

#include "impatience/core/sim_state.hpp"

namespace impatience::core {

SimulationState::SimulationState(NodeId num_nodes, ItemId num_items)
    : num_nodes_(num_nodes), num_items_(num_items) {
  if (num_nodes == 0) {
    throw std::invalid_argument("SimulationState: need at least one node");
  }
  if (num_items == 0) {
    throw std::invalid_argument("SimulationState: need at least one item");
  }
  pending_counts_.assign(
      static_cast<std::size_t>(num_nodes) * num_items, 0);
  query_clocks_.assign(num_nodes, 0);
  replica_counts_.assign(num_items, 0);
}

}  // namespace impatience::core
