#include <algorithm>
#include <stdexcept>

#include "impatience/core/node.hpp"
#include "impatience/core/sim_state.hpp"

namespace impatience::core {

Node::Node(NodeId id, ItemId num_items, int cache_capacity, bool is_server,
           bool is_client)
    : id_(id),
      num_items_(num_items),
      is_client_(is_client),
      mandates_(num_items),
      own_(std::make_unique<Backing>()) {
  own_->pending_count.assign(num_items, 0);
  pending_count_ = own_->pending_count.data();
  server_meetings_ = &own_->server_meetings;
  if (is_server) {
    cache_.emplace(cache_capacity);
  }
  // A node that is neither server nor client still participates as a
  // mandate relay.
}

Node::Node(SimulationState& state, NodeId id, ItemId num_items,
           int cache_capacity, bool is_server, bool is_client)
    : id_(id),
      num_items_(num_items),
      is_client_(is_client),
      mandates_(num_items) {
  if (id >= state.num_nodes() || num_items != state.num_items()) {
    throw std::invalid_argument("Node: SimulationState dimension mismatch");
  }
  pending_count_ = state.pending_counts(id);
  server_meetings_ = state.query_clock(id);
  if (is_server) {
    cache_.emplace(cache_capacity);
  }
}

Cache& Node::cache() {
  if (!cache_) {
    throw std::logic_error("Node::cache: node is not a server");
  }
  return *cache_;
}

const Cache& Node::cache() const {
  if (!cache_) {
    throw std::logic_error("Node::cache: node is not a server");
  }
  return *cache_;
}

Node::CrashLosses Node::crash(bool persist_cache) {
  CrashLosses losses;
  if (cache_ && !persist_cache) {
    losses.replicas = static_cast<std::uint64_t>(cache_->crash_clear());
  }
  losses.mandates = mandates_.drain();
  losses.requests = pending_.size();
  pending_.clear();
  std::fill(pending_count_, pending_count_ + num_items_, 0u);
  return losses;
}

void Node::create_request(ItemId item, Slot now) {
  if (!is_client_) {
    throw std::logic_error("Node::create_request: node is not a client");
  }
  pending_.push_back({item, now, *server_meetings_});
  ++pending_count_[item];
}

}  // namespace impatience::core
