#include <stdexcept>

#include "impatience/core/node.hpp"

namespace impatience::core {

Node::Node(NodeId id, ItemId num_items, int cache_capacity, bool is_server,
           bool is_client)
    : id_(id),
      is_client_(is_client),
      mandates_(num_items),
      pending_count_(num_items, 0) {
  if (is_server) {
    cache_.emplace(cache_capacity);
  }
  // A node that is neither server nor client still participates as a
  // mandate relay.
}

Cache& Node::cache() {
  if (!cache_) {
    throw std::logic_error("Node::cache: node is not a server");
  }
  return *cache_;
}

const Cache& Node::cache() const {
  if (!cache_) {
    throw std::logic_error("Node::cache: node is not a server");
  }
  return *cache_;
}

Node::CrashLosses Node::crash(bool persist_cache) {
  CrashLosses losses;
  if (cache_ && !persist_cache) {
    losses.replicas = static_cast<std::uint64_t>(cache_->crash_clear());
  }
  losses.mandates = mandates_.drain();
  losses.requests = pending_.size();
  pending_.clear();
  pending_count_.assign(pending_count_.size(), 0);
  return losses;
}

void Node::create_request(ItemId item, Slot now) {
  if (!is_client_) {
    throw std::logic_error("Node::create_request: node is not a client");
  }
  pending_.push_back({item, now, server_meetings_});
  ++pending_count_[item];
}

}  // namespace impatience::core
