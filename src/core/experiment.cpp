#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "impatience/core/experiment.hpp"

namespace impatience::core {

namespace {

/// U is either DelayUtility or UtilitySet; the alloc layer has matching
/// overloads for both.
template <typename U>
std::vector<NamedPlacement> build_competitors_impl(const Scenario& scenario,
                                                   const U& utility,
                                                   OptMode opt_mode,
                                                   util::Rng& rng) {
  const auto& demand = scenario.catalog.demands();
  const auto num_items = scenario.catalog.num_items();
  const auto num_servers = scenario.num_nodes();
  const double servers = static_cast<double>(num_servers);
  const double capacity_total = servers * scenario.capacity;

  std::vector<NamedPlacement> out;
  out.reserve(5);

  // OPT.
  if (opt_mode == OptMode::kHomogeneous) {
    alloc::HomogeneousModel model{scenario.mu, num_servers, num_servers,
                                  alloc::SystemMode::kPureP2P};
    const auto counts = alloc::homogeneous_greedy(
        demand, utility, model,
        scenario.capacity * static_cast<int>(num_servers));
    out.push_back({"OPT", alloc::place_counts(counts, num_servers,
                                              scenario.capacity, rng)});
  } else {
    const auto rates = trace::estimate_rates(scenario.trace);
    std::vector<NodeId> nodes(num_servers);
    for (NodeId n = 0; n < num_servers; ++n) nodes[n] = n;
    out.push_back({"OPT", alloc::lazy_greedy_placement(
                              rates, demand, utility, nodes, nodes,
                              num_items, scenario.capacity)});
  }

  auto place = [&](const char* name, const alloc::ItemCounts& real) {
    const auto ints = alloc::round_counts(real, static_cast<int>(servers));
    out.push_back({name, alloc::place_counts(ints, num_servers,
                                             scenario.capacity, rng)});
  };
  place("UNI", alloc::uniform_allocation(num_items, capacity_total, servers));
  place("SQRT", alloc::sqrt_allocation(demand, capacity_total, servers));
  place("PROP", alloc::prop_allocation(demand, capacity_total, servers));
  out.push_back(
      {"DOM", alloc::place_counts(
                  alloc::dom_allocation(demand, scenario.capacity, servers),
                  num_servers, scenario.capacity, rng)});
  return out;
}

/// One tuned-and-capped reaction function per item (Property 2 + the
/// stabilizers documented on QcrOptions).
std::vector<utility::ReactionFunction> build_reactions(
    const Scenario& scenario, const utility::UtilitySet& utilities,
    const QcrOptions& qcr_options) {
  const double servers = static_cast<double>(scenario.num_nodes());
  const double x_uniform =
      std::max(1.0, scenario.capacity * servers /
                        static_cast<double>(scenario.catalog.num_items()));
  std::vector<utility::ReactionFunction> reactions;
  reactions.reserve(utilities.size());
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    double scale = qcr_options.reaction_scale;
    if (qcr_options.auto_normalize_scale) {
      const double psi_uniform = utility::psi(utilities[i], scenario.mu,
                                              servers, servers / x_uniform);
      if (psi_uniform > 0.0) {
        scale *= qcr_options.target_replicas_per_fulfillment / psi_uniform;
      }
    }
    reactions.emplace_back(utilities[i], scenario.mu, servers, scale);
  }
  return reactions;
}

SimulationResult run_qcr_impl(const Scenario& scenario,
                              const utility::UtilitySet& utilities,
                              const QcrOptions& qcr_options,
                              const SimOptions& base_options,
                              util::Rng& rng) {
  SimOptions options = base_options;
  options.cache_capacity = scenario.capacity;
  options.sticky_replicas = true;
  options.initial_placement.reset();

  const double servers = static_cast<double>(scenario.num_nodes());
  const double burst_cap =
      qcr_options.max_replicas_per_fulfillment > 0.0
          ? qcr_options.max_replicas_per_fulfillment
          : static_cast<double>(scenario.capacity);
  const double counter_cap =
      qcr_options.clamp_counter_at_servers
          ? servers
          : std::numeric_limits<double>::infinity();
  const long mandate_cap =
      static_cast<long>(scenario.capacity) * scenario.num_nodes();

  auto reactions = std::make_shared<std::vector<utility::ReactionFunction>>(
      build_reactions(scenario, utilities, qcr_options));
  QcrPolicy policy(
      qcr_options.mandate_routing ? "QCR" : "QCR-noMR",
      QcrPolicy::ItemReaction(
          [reactions, burst_cap, counter_cap](ItemId item, double y) {
            return std::min((*reactions)[item](std::min(y, counter_cap)),
                            burst_cap);
          }),
      qcr_options.mandate_routing ? QcrPolicy::MandateRouting::kOn
                                  : QcrPolicy::MandateRouting::kOff,
      mandate_cap,
      qcr_options.rewriting ? QcrPolicy::Rewriting::kAllowed
                            : QcrPolicy::Rewriting::kDisallowed);
  return simulate(scenario.trace, scenario.catalog, utilities, policy,
                  options, rng);
}

}  // namespace

Scenario make_scenario(trace::ContactTrace trace, Catalog catalog,
                       int capacity) {
  const double mu = trace::estimate_rates(trace).mean_rate();
  if (!(mu > 0.0)) {
    throw std::invalid_argument("make_scenario: trace has no contacts");
  }
  return Scenario{std::move(trace), std::move(catalog), capacity, mu};
}

std::vector<NamedPlacement> build_competitors(
    const Scenario& scenario, const utility::DelayUtility& utility,
    OptMode opt_mode, util::Rng& rng) {
  return build_competitors_impl(scenario, utility, opt_mode, rng);
}

std::vector<NamedPlacement> build_competitors(
    const Scenario& scenario, const utility::UtilitySet& utilities,
    OptMode opt_mode, util::Rng& rng) {
  if (utilities.size() != scenario.catalog.num_items()) {
    throw std::invalid_argument(
        "build_competitors: utility set size != item count");
  }
  return build_competitors_impl(scenario, utilities, opt_mode, rng);
}

SimulationResult run_fixed(const Scenario& scenario,
                           const utility::DelayUtility& utility,
                           const std::string& name,
                           const alloc::Placement& placement,
                           const SimOptions& base_options, util::Rng& rng) {
  const utility::UtilitySet utilities(utility,
                                      scenario.catalog.num_items());
  return run_fixed(scenario, utilities, name, placement, base_options, rng);
}

SimulationResult run_fixed(const Scenario& scenario,
                           const utility::UtilitySet& utilities,
                           const std::string& name,
                           const alloc::Placement& placement,
                           const SimOptions& base_options, util::Rng& rng) {
  SimOptions options = base_options;
  options.cache_capacity = scenario.capacity;
  options.sticky_replicas = false;  // frozen caches cannot lose items
  options.initial_placement = placement;
  StaticPolicy policy;
  auto result = simulate(scenario.trace, scenario.catalog, utilities, policy,
                         options, rng);
  result.policy = name;
  return result;
}

SimulationResult run_qcr(const Scenario& scenario,
                         const utility::DelayUtility& utility,
                         const QcrOptions& qcr_options,
                         const SimOptions& base_options, util::Rng& rng) {
  const utility::UtilitySet utilities(utility,
                                      scenario.catalog.num_items());
  return run_qcr_impl(scenario, utilities, qcr_options, base_options, rng);
}

SimulationResult run_qcr(const Scenario& scenario,
                         const utility::UtilitySet& utilities,
                         const QcrOptions& qcr_options,
                         const SimOptions& base_options, util::Rng& rng) {
  if (utilities.size() != scenario.catalog.num_items()) {
    throw std::invalid_argument("run_qcr: utility set size != item count");
  }
  return run_qcr_impl(scenario, utilities, qcr_options, base_options, rng);
}

double normalized_loss_percent(double utility_value, double opt_value) {
  const double denom = std::abs(opt_value);
  if (denom == 0.0) {
    throw std::invalid_argument("normalized_loss_percent: |U_opt| == 0");
  }
  return 100.0 * (utility_value - opt_value) / denom;
}

std::function<double(std::span<const int>)> homogeneous_welfare_probe(
    Catalog catalog, const utility::DelayUtility& utility,
    alloc::HomogeneousModel model) {
  // The probe outlives the caller's utility reference; keep a clone.
  std::shared_ptr<const utility::DelayUtility> u = utility.clone();
  auto cat = std::make_shared<Catalog>(std::move(catalog));
  return [u, cat, model](std::span<const int> counts) {
    alloc::ItemCounts x;
    x.x.assign(counts.begin(), counts.end());
    return alloc::welfare_homogeneous(x, cat->demands(), *u, model);
  };
}

WelfareProbe::WelfareProbe(const Scenario& scenario,
                           const utility::UtilitySet& utilities)
    : rates_(trace::estimate_rates(scenario.trace)) {
  const Population pop = Population::pure_p2p(scenario.num_nodes());
  oracle_ = std::make_unique<alloc::MarginalOracle>(
      rates_, scenario.catalog.demands(), utilities, pop.servers, pop.clients);
}

}  // namespace impatience::core
