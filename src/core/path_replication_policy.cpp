#include <stdexcept>

#include "impatience/core/policy.hpp"

namespace impatience::core {

std::unique_ptr<QcrPolicy> make_passive_policy(
    double replicas_per_fulfillment, QcrPolicy::MandateRouting routing) {
  if (!(replicas_per_fulfillment > 0.0)) {
    throw std::invalid_argument("make_passive_policy: rate must be > 0");
  }
  return std::make_unique<QcrPolicy>(
      "PASSIVE",
      [replicas_per_fulfillment](double) { return replicas_per_fulfillment; },
      routing);
}

std::unique_ptr<QcrPolicy> make_path_replication_policy(
    double scale, QcrPolicy::MandateRouting routing) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("make_path_replication_policy: scale > 0");
  }
  return std::make_unique<QcrPolicy>(
      "PATH", [scale](double y) { return scale * y; }, routing);
}

}  // namespace impatience::core
