#include <algorithm>
#include <cstddef>

#include "sim_internal.hpp"

namespace impatience::core::detail {

namespace {

/// Queries the partner (query-counter increments), then fulfils every
/// pending request the partner can serve. Returns the gains recorded.
void fulfil_from(SimState& state, Node& requester, Node& provider) {
  if (!requester.is_client()) return;
  // A non-server partner can neither be queried nor fulfil anything.
  if (!provider.is_server()) return;

  // Every pending request queries the met server; the counter includes
  // the fulfilling meeting, so E[counter] = |S| / x_i. One O(1) tick of
  // the node's server-meeting clock updates the whole pending list (each
  // request holds the clock value from its creation); ticking with an
  // empty pending list is invisible, since later requests snapshot the
  // clock at creation.
  requester.note_server_meeting();
  if (requester.pending().empty()) return;
  auto& pending = requester.pending();

  // O(rho) prefilter: scan the provider's cache against the requester's
  // per-item pending counters before walking the pending list. Most
  // meetings fulfil nothing, so this skips the compaction pass entirely.
  bool any_match = false;
  for (ItemId item : provider.cache().items()) {
    if (requester.has_pending(item)) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return;

  std::size_t kept = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    PendingRequest& req = pending[k];
    if (provider.holds(req.item) && state.transfer_budget != 0) {
      if (state.transfer_budget > 0) --state.transfer_budget;
      const double delay =
          static_cast<double>(state.now - req.created) + 1.0;
      const double gain = (*state.utilities)[req.item].value(delay);
      const long queries =
          requester.server_meetings() - req.queries_at_creation;
      state.total_gain += gain;
      record_gain(state, static_cast<double>(state.now), gain);
      if (state.on_fulfillment && *state.on_fulfillment) {
        (*state.on_fulfillment)(req.item, requester.id(), delay, gain);
      }
      ++state.fulfillments;
      state.delay_sum += delay;
      state.query_sum += static_cast<double>(queries);
      requester.note_fulfilled(req.item);
      state.policy->on_fulfillment(requester, provider, req.item, queries,
                                   *state.rng);
    } else {
      pending[kept++] = req;
    }
  }
  pending.resize(kept);
}

/// Matched requests `requester` could fulfil from `provider`'s cache.
long count_fulfillable_from(const Node& requester, const Node& provider) {
  if (!requester.is_client() || !provider.is_server()) return 0;
  long matched = 0;
  for (const PendingRequest& req : requester.pending()) {
    if (provider.holds(req.item)) ++matched;
  }
  return matched;
}

}  // namespace

long count_fulfillable(const Node& a, const Node& b) {
  return count_fulfillable_from(a, b) + count_fulfillable_from(b, a);
}

void process_meeting(SimState& state, Node& a, Node& b) {
  fulfil_from(state, a, b);
  fulfil_from(state, b, a);
  state.policy->on_meeting_complete(a, b, *state.rng);
}

namespace {

/// Read-only mirror of fulfil_from's scan: which pending requests the
/// provider can serve, with the delay and gain the fused walk would
/// compute. The expressions match fulfil_from character for character so
/// the floating-point results are bit-identical.
void plan_direction(const SimState& state, const Node& requester,
                    const Node& provider, MeetingPlan::Direction& dir) {
  dir.tick = false;
  dir.matches.clear();
  if (!requester.is_client()) return;
  if (!provider.is_server()) return;
  dir.tick = true;
  const auto& pending = requester.pending();
  if (pending.empty()) return;

  // Same O(rho) prefilter as the fused walk.
  bool any_match = false;
  for (ItemId item : provider.cache().items()) {
    if (requester.has_pending(item)) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return;

  for (std::size_t k = 0; k < pending.size(); ++k) {
    const PendingRequest& req = pending[k];
    if (provider.holds(req.item)) {
      const double delay =
          static_cast<double>(state.now - req.created) + 1.0;
      const double gain = (*state.utilities)[req.item].value(delay);
      dir.matches.push_back(
          {static_cast<std::uint32_t>(k), delay, gain});
    }
  }
}

/// Mutating mirror of fulfil_from, consuming a plan: the clock tick, the
/// accounting and the policy hook run in exactly the fused walk's order,
/// and the pending list ends up in exactly the fused walk's state (a
/// stable compaction of the fulfilled entries). Instead of re-walking
/// every pending entry the way the fused loop must, the match indices
/// let the unmatched runs between fulfilments shift down as blocks —
/// the commit's cost per non-matched entry is a move, not a re-test.
/// When the transfer budget runs out mid-list, the remaining matched
/// requests stay pending (they join the tail block), exactly as the
/// fused budget condition leaves them.
void commit_direction(SimState& state, Node& requester, Node& provider,
                      const MeetingPlan::Direction& dir) {
  if (!dir.tick) return;
  requester.note_server_meeting();
  if (dir.matches.empty()) return;
  auto& pending = requester.pending();

  std::size_t kept = 0;  // write cursor: entries surviving so far
  std::size_t read = 0;  // first pending index not yet placed
  for (const MeetingPlan::Match& match : dir.matches) {
    if (state.transfer_budget == 0) break;  // rest stays pending
    if (state.transfer_budget > 0) --state.transfer_budget;
    const std::size_t k = match.pending_index;
    if (kept != read) {
      std::move(pending.begin() + static_cast<std::ptrdiff_t>(read),
                pending.begin() + static_cast<std::ptrdiff_t>(k),
                pending.begin() + static_cast<std::ptrdiff_t>(kept));
    }
    kept += k - read;
    read = k + 1;
    const PendingRequest req = pending[k];
    const long queries =
        requester.server_meetings() - req.queries_at_creation;
    state.total_gain += match.gain;
    record_gain(state, static_cast<double>(state.now), match.gain);
    if (state.on_fulfillment && *state.on_fulfillment) {
      (*state.on_fulfillment)(req.item, requester.id(), match.delay,
                              match.gain);
    }
    ++state.fulfillments;
    state.delay_sum += match.delay;
    state.query_sum += static_cast<double>(queries);
    requester.note_fulfilled(req.item);
    state.policy->on_fulfillment(requester, provider, req.item, queries,
                                 *state.rng);
  }
  if (read != pending.size()) {
    if (kept != read) {
      std::move(pending.begin() + static_cast<std::ptrdiff_t>(read),
                pending.end(),
                pending.begin() + static_cast<std::ptrdiff_t>(kept));
    }
    kept += pending.size() - read;
  }
  pending.resize(kept);
}

}  // namespace

void plan_meeting(const SimState& state, const Node& a, const Node& b,
                  MeetingPlan& plan) {
  plan_direction(state, a, b, plan.ab);
  plan_direction(state, b, a, plan.ba);
}

void commit_meeting(SimState& state, Node& a, Node& b,
                    const MeetingPlan& plan) {
  commit_direction(state, a, b, plan.ab);
  commit_direction(state, b, a, plan.ba);
  state.policy->on_meeting_complete(a, b, *state.rng);
}

}  // namespace impatience::core::detail
