#include <algorithm>

#include "sim_internal.hpp"

namespace impatience::core::detail {

namespace {

/// Queries the partner (query-counter increments), then fulfils every
/// pending request the partner can serve. Returns the gains recorded.
void fulfil_from(SimState& state, Node& requester, Node& provider) {
  if (!requester.is_client()) return;
  // A non-server partner can neither be queried nor fulfil anything.
  if (!provider.is_server()) return;

  // Every pending request queries the met server; the counter includes
  // the fulfilling meeting, so E[counter] = |S| / x_i. One O(1) tick of
  // the node's server-meeting clock updates the whole pending list (each
  // request holds the clock value from its creation); ticking with an
  // empty pending list is invisible, since later requests snapshot the
  // clock at creation.
  requester.note_server_meeting();
  if (requester.pending().empty()) return;
  auto& pending = requester.pending();

  // O(rho) prefilter: scan the provider's cache against the requester's
  // per-item pending counters before walking the pending list. Most
  // meetings fulfil nothing, so this skips the compaction pass entirely.
  bool any_match = false;
  for (ItemId item : provider.cache().items()) {
    if (requester.has_pending(item)) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return;

  std::size_t kept = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    PendingRequest& req = pending[k];
    if (provider.holds(req.item) && state.transfer_budget != 0) {
      if (state.transfer_budget > 0) --state.transfer_budget;
      const double delay =
          static_cast<double>(state.now - req.created) + 1.0;
      const double gain = (*state.utilities)[req.item].value(delay);
      const long queries =
          requester.server_meetings() - req.queries_at_creation;
      state.total_gain += gain;
      record_gain(state, static_cast<double>(state.now), gain);
      if (state.on_fulfillment && *state.on_fulfillment) {
        (*state.on_fulfillment)(req.item, requester.id(), delay, gain);
      }
      ++state.fulfillments;
      state.delay_sum += delay;
      state.query_sum += static_cast<double>(queries);
      requester.note_fulfilled(req.item);
      state.policy->on_fulfillment(requester, provider, req.item, queries,
                                   *state.rng);
    } else {
      pending[kept++] = req;
    }
  }
  pending.resize(kept);
}

/// Matched requests `requester` could fulfil from `provider`'s cache.
long count_fulfillable_from(const Node& requester, const Node& provider) {
  if (!requester.is_client() || !provider.is_server()) return 0;
  long matched = 0;
  for (const PendingRequest& req : requester.pending()) {
    if (provider.holds(req.item)) ++matched;
  }
  return matched;
}

}  // namespace

long count_fulfillable(const Node& a, const Node& b) {
  return count_fulfillable_from(a, b) + count_fulfillable_from(b, a);
}

void process_meeting(SimState& state, Node& a, Node& b) {
  fulfil_from(state, a, b);
  fulfil_from(state, b, a);
  state.policy->on_meeting_complete(a, b, *state.rng);
}

}  // namespace impatience::core::detail
