#include <algorithm>

#include "sim_internal.hpp"

namespace impatience::core::detail {

namespace {

/// Queries the partner (query-counter increments), then fulfils every
/// pending request the partner can serve. Returns the gains recorded.
void fulfil_from(SimState& state, Node& requester, Node& provider) {
  if (!requester.is_client() || requester.pending().empty()) return;

  auto& pending = requester.pending();
  // Every pending request queries the met node if it is a server; the
  // counter includes the fulfilling meeting, so E[counter] = |S| / x_i.
  if (provider.is_server()) {
    for (auto& req : pending) ++req.queries;
  }

  std::size_t kept = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    PendingRequest& req = pending[k];
    if (provider.is_server() && provider.holds(req.item)) {
      const double delay =
          static_cast<double>(state.now - req.created) + 1.0;
      const double gain = (*state.utilities)[req.item].value(delay);
      state.total_gain += gain;
      state.observed->add(static_cast<double>(state.now), gain);
      if (state.on_fulfillment && *state.on_fulfillment) {
        (*state.on_fulfillment)(req.item, requester.id(), delay, gain);
      }
      ++state.fulfillments;
      state.delay_sum += delay;
      state.query_sum += static_cast<double>(req.queries);
      state.policy->on_fulfillment(requester, provider, req.item,
                                   req.queries, *state.rng);
    } else {
      pending[kept++] = req;
    }
  }
  pending.resize(kept);
}

}  // namespace

void process_meeting(SimState& state, Node& a, Node& b) {
  fulfil_from(state, a, b);
  fulfil_from(state, b, a);
  state.policy->on_meeting_complete(a, b, *state.rng);
}

}  // namespace impatience::core::detail
