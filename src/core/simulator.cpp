#include <algorithm>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>

#include "impatience/core/sim_state.hpp"
#include "impatience/core/simulator.hpp"
#include "impatience/engine/thread_pool.hpp"
#include "impatience/trace/partition.hpp"
#include "impatience/util/alias.hpp"
#include "sim_internal.hpp"

namespace impatience::core {

const char* kernel_name(SimKernel kernel) noexcept {
  return kernel == SimKernel::event_driven ? "event" : "slot";
}

Population Population::pure_p2p(NodeId num_nodes) {
  Population p;
  p.servers.resize(num_nodes);
  std::iota(p.servers.begin(), p.servers.end(), 0);
  p.clients = p.servers;
  return p;
}

Population Population::dedicated(NodeId num_servers, NodeId num_clients) {
  Population p;
  p.servers.resize(num_servers);
  std::iota(p.servers.begin(), p.servers.end(), 0);
  p.clients.resize(num_clients);
  std::iota(p.clients.begin(), p.clients.end(), num_servers);
  return p;
}

namespace {

/// Pins `item` as the cache's sticky replica, evicting a random
/// non-sticky item if the cache is full and lacks it.
void force_pin_sticky(Cache& cache, ItemId item, util::Rng& rng) {
  if (!cache.contains(item) && cache.full()) {
    // Evict a uniformly random victim to make room (none is sticky yet).
    const auto& items = cache.items();
    cache.erase(items[rng.uniform_index(items.size())]);
  }
  cache.pin_sticky(item);
}

void fill_random(Cache& cache, ItemId num_items, util::Rng& rng) {
  // Distinct uniformly random items into the remaining slots.
  while (!cache.full() && cache.size() < static_cast<int>(num_items)) {
    const auto item = static_cast<ItemId>(rng.uniform_index(num_items));
    if (!cache.contains(item)) {
      cache.insert_random_replace(item, rng);
    }
  }
}

/// InitSampling::alias counterpart of force_pin_sticky: the eviction
/// victim comes from a uniform alias table over the cached items. Same
/// uniform law, different stream use.
void force_pin_sticky_alias(Cache& cache, ItemId item, util::Rng& rng,
                            std::vector<double>& weights,
                            util::AliasTable& table) {
  if (!cache.contains(item) && cache.full()) {
    const auto& items = cache.items();
    weights.assign(items.size(), 1.0);
    table.rebuild(weights);
    cache.erase(items[table.sample(rng)]);
  }
  cache.pin_sticky(item);
}

/// InitSampling::alias counterpart of fill_random: each slot draws from
/// an alias table over the still-absent items, so the fill needs exactly
/// one draw per slot instead of a rejection loop whose acceptance rate
/// decays as the cache approaches the catalog size. The drawn item is
/// swap-removed and the table rebuilt (O(|absent|) per slot — the fill
/// runs once per trial, so predictable cost beats the rebuild).
void fill_random_alias(Cache& cache, ItemId num_items, util::Rng& rng,
                       std::vector<double>& weights,
                       util::AliasTable& table) {
  std::vector<ItemId> absent;
  absent.reserve(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    if (!cache.contains(i)) absent.push_back(i);
  }
  while (!cache.full() && !absent.empty()) {
    weights.assign(absent.size(), 1.0);
    table.rebuild(weights);
    const std::size_t k = table.sample(rng);
    cache.insert_random_replace(absent[k], rng);
    absent[k] = absent.back();
    absent.pop_back();
  }
}

/// Change-listener context of one server cache: updates the global
/// replica counts and, when the incremental welfare probe is on, mirrors
/// the delta into the oracle's tracked placement.
struct CacheSubscriber {
  std::vector<int>* counts = nullptr;
  alloc::MarginalOracle* probe = nullptr;  // may be null
  NodeId server_index = 0;                 // oracle server row
};

/// The parallel meeting path (SimOptions::meeting_parallelism >= 1).
/// Each meeting batch is conflict-scheduled into node-disjoint antichain
/// waves interleaved with trace-order commit runs (WavePartitioner::
/// schedule): a wave's read-only plans fan out over `threads` (the
/// caller plus threads - 1 ForkJoinTeam workers), then the next commit
/// run executes on the caller's thread in exact trace order — which
/// keeps every RNG draw in the sequential order, so results are
/// bit-identical to the fused walk for any thread count. The schedule
/// guarantees every planned meeting's earlier conflicting meetings have
/// already committed, so plans read exactly the state the fused walk
/// would have seen; workers only ever run between commit runs, so plans
/// read a quiescent state and commits race with nothing.
class MeetingBatchRunner {
 public:
  MeetingBatchRunner(detail::SimState& state, NodeId num_nodes,
                     unsigned threads)
      : state_(state), partitioner_(num_nodes), threads_(threads) {
    if (threads_ > 1) {
      team_.emplace(threads_ - 1);
      plan_job_ = [this](unsigned tid) { plan_chunk(tid); };
    }
  }

  /// Processes one meeting batch; with `faults`, draws the per-meeting
  /// truncation decisions at commit exactly as the fused faulty loop
  /// does (the plan's match total is the negotiated volume).
  void run(std::span<const trace::ContactEvent> batch,
           fault::FaultPlan* faults) {
    partitioner_.schedule(batch, order_, wave_ends_, commit_ends_);
    if (plans_.size() < batch.size()) plans_.resize(batch.size());
    std::size_t wave_begin = 0;
    std::size_t cursor = 0;
    for (std::size_t w = 0; w < wave_ends_.size(); ++w) {
      plan_wave(batch, wave_begin, wave_ends_[w]);
      commit_run(batch, cursor, commit_ends_[w], faults);
      wave_begin = wave_ends_[w];
      cursor = commit_ends_[w];
    }
  }

 private:
  /// Below this wave size the fork-join barrier costs more than the
  /// plans; plan inline instead. Only affects speed — results are
  /// identical either way.
  static constexpr std::size_t kInlineWave = 4;

  void plan_one(std::span<const trace::ContactEvent> batch,
                std::size_t k) {
    const trace::ContactEvent& e = batch[k];
    detail::plan_meeting(state_, state_.nodes[e.a], state_.nodes[e.b],
                         plans_[k]);
  }

  /// Team member `tid`'s share of the current wave: a contiguous stripe
  /// of order_[wave_begin_, wave_end_).
  void plan_chunk(unsigned tid) {
    const std::size_t n = wave_end_ - wave_begin_;
    const std::size_t per = (n + threads_ - 1) / threads_;
    const std::size_t lo = wave_begin_ + tid * per;
    const std::size_t hi = std::min(wave_end_, lo + per);
    try {
      for (std::size_t k = lo; k < hi; ++k) {
        plan_one(batch_, order_[k]);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
    }
  }

  void plan_wave(std::span<const trace::ContactEvent> batch,
                 std::size_t begin, std::size_t end) {
    if (!team_ || end - begin < kInlineWave) {
      for (std::size_t k = begin; k < end; ++k) {
        plan_one(batch, order_[k]);
      }
      return;
    }
    batch_ = batch;
    wave_begin_ = begin;
    wave_end_ = end;
    team_->run(plan_job_);
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

  void commit_run(std::span<const trace::ContactEvent> batch,
                  std::size_t begin, std::size_t end,
                  fault::FaultPlan* faults) {
    for (std::size_t k = begin; k < end; ++k) {
      const trace::ContactEvent& e = batch[k];
      const detail::MeetingPlan& plan = plans_[k];
      if (faults && faults->should_truncate()) {
        const long negotiated = plan.total_matches();
        if (negotiated > 0) {
          state_.transfer_budget = faults->truncation_prefix(negotiated);
          faults->counters().fulfilments_deferred +=
              static_cast<std::uint64_t>(negotiated -
                                         state_.transfer_budget);
        }
      }
      detail::commit_meeting(state_, state_.nodes[e.a], state_.nodes[e.b],
                             plan);
      state_.transfer_budget = -1;
    }
  }

  detail::SimState& state_;
  trace::WavePartitioner partitioner_;
  unsigned threads_;
  std::optional<engine::ForkJoinTeam> team_;
  std::function<void(unsigned)> plan_job_;
  std::vector<std::uint32_t> order_;       // meetings grouped by wave
  std::vector<std::size_t> wave_ends_;
  std::vector<std::size_t> commit_ends_;
  std::vector<detail::MeetingPlan> plans_;
  // Current wave, published to the team by ForkJoinTeam::run's barrier.
  std::span<const trace::ContactEvent> batch_;
  std::size_t wave_begin_ = 0;
  std::size_t wave_end_ = 0;
  std::mutex error_mu_;
  std::exception_ptr error_;  // first planner failure, rethrown on main
};

/// Kernel body shared by the materialized and streaming entry points.
/// Both kernels pull meeting batches from `feed` one slot at a time —
/// the bounded look-ahead window — so the materialized ContactTrace
/// overloads (a MaterializedSource view) and the streaming overloads
/// run the exact same code, operation for operation.
SimulationResult simulate_impl(trace::EventSource& feed,
                               const Catalog& catalog,
                               const utility::UtilitySet& utilities,
                               ReplicationPolicy& policy,
                               const Population& population,
                               const SimOptions& options, util::Rng& rng) {
  const NodeId num_nodes = feed.num_nodes();
  const Slot duration = feed.duration();
  if (utilities.size() != catalog.num_items()) {
    throw std::invalid_argument("simulate: utility set size != item count");
  }
  if (options.cache_capacity <= 0) {
    throw std::invalid_argument("simulate: cache capacity must be > 0");
  }
  const auto num_items = catalog.num_items();
  const auto num_servers = static_cast<NodeId>(population.servers.size());
  if (num_servers == 0 || population.clients.empty()) {
    throw std::invalid_argument("simulate: empty population");
  }
  for (NodeId n : population.servers) {
    if (n >= num_nodes) {
      throw std::invalid_argument("simulate: server id outside trace");
    }
  }
  for (NodeId n : population.clients) {
    if (n >= num_nodes) {
      throw std::invalid_argument("simulate: client id outside trace");
    }
  }

  // Build nodes.
  std::vector<char> is_server(num_nodes, 0);
  std::vector<char> is_client(num_nodes, 0);
  for (NodeId n : population.servers) is_server[n] = 1;
  for (NodeId n : population.clients) is_client[n] = 1;

  // Hot per-node state (pending counters, query-counter clocks) and the
  // global replica counts live in SimulationState's flat arrays; nodes
  // are thin views into them (the SoA constructor).
  SimulationState soa(num_nodes, num_items);
  detail::SimState state;
  state.nodes.reserve(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    state.nodes.emplace_back(soa, n, num_items, options.cache_capacity,
                             is_server[n] != 0, is_client[n] != 0);
  }

  // Incremental expected-welfare probe: validated and cleared before the
  // listeners attach, so every cache change of the run — initial fill
  // included — flows into the oracle exactly once.
  if (options.welfare_probe && options.expected_welfare) {
    throw std::invalid_argument(
        "simulate: welfare_probe and expected_welfare are mutually exclusive");
  }
  alloc::MarginalOracle* probe = options.welfare_probe;
  if (probe) {
    if (probe->num_items() != num_items || probe->num_servers() != num_servers) {
      throw std::invalid_argument(
          "simulate: welfare_probe dimensions do not match the scenario");
    }
    probe->reset(
        alloc::Placement(num_items, num_servers, options.cache_capacity));
  }

  // Global replica counts, maintained incrementally by cache change
  // listeners. Attached before any content is placed so the initial
  // placement / sticky seeding / random fill are counted too; from then
  // on every insert, eviction and erase (including the ones policies
  // perform during meetings) updates `counts` in O(1) instead of the
  // per-sample full rescan of all server caches. The listener is a plain
  // function pointer + context (no std::function dispatch on the cache
  // mutation hot path); each server gets its own context so the welfare
  // probe learns which oracle row a delta belongs to.
  std::vector<int>& counts = soa.replica_counts();
  std::vector<CacheSubscriber> subscribers(num_servers);
  for (NodeId s = 0; s < num_servers; ++s) {
    subscribers[s] = {&counts, probe, s};
    state.nodes[population.servers[s]].cache().set_change_listener(
        [](void* context, ItemId item, int delta) {
          auto* sub = static_cast<CacheSubscriber*>(context);
          (*sub->counts)[item] += delta;
          if (sub->probe) {
            if (delta > 0) {
              sub->probe->add(item, sub->server_index);
            } else {
              sub->probe->remove(item, sub->server_index);
            }
          }
        },
        &subscribers[s]);
  }

  // Initial cache contents.
  if (options.initial_placement) {
    const alloc::Placement& p = *options.initial_placement;
    if (p.num_servers() != num_servers || p.num_items() != num_items ||
        p.capacity_per_server() > options.cache_capacity) {
      throw std::invalid_argument(
          "simulate: initial placement incompatible with scenario");
    }
    for (NodeId s = 0; s < num_servers; ++s) {
      Cache& cache = state.nodes[population.servers[s]].cache();
      for (ItemId i = 0; i < num_items; ++i) {
        if (p.has(i, s)) cache.insert_random_replace(i, rng);
      }
    }
  }
  const bool alias_init = options.init_sampling == InitSampling::alias;
  std::vector<double> init_weights;
  util::AliasTable init_table;
  if (options.sticky_replicas) {
    // Item i is seeded at server index (i mod |S|); at most one sticky
    // per node, so with more items than servers the surplus items go
    // unseeded (the paper's scenario has |I| = |S|).
    for (ItemId i = 0; i < num_items; ++i) {
      const NodeId seeder = population.servers[i % num_servers];
      Cache& cache = state.nodes[seeder].cache();
      if (cache.sticky()) continue;
      if (alias_init) {
        force_pin_sticky_alias(cache, i, rng, init_weights, init_table);
      } else {
        force_pin_sticky(cache, i, rng);
      }
    }
  }
  if (!options.initial_placement) {
    for (NodeId s : population.servers) {
      if (alias_init) {
        fill_random_alias(state.nodes[s].cache(), num_items, rng,
                          init_weights, init_table);
      } else {
        fill_random(state.nodes[s].cache(), num_items, rng);
      }
    }
  }

  // Demand and measurement plumbing.
  auto make_demand = [&](const Catalog& cat) {
    if (options.popularity) {
      return DemandProcess(cat, population.clients,
                           options.popularity->pi);
    }
    return DemandProcess(cat, population.clients);
  };
  DemandProcess demand = make_demand(catalog);
  for (std::size_t k = 0; k < options.demand_schedule.size(); ++k) {
    const auto& [at, cat] = options.demand_schedule[k];
    if (cat.num_items() != num_items) {
      throw std::invalid_argument(
          "simulate: demand_schedule catalog item count mismatch");
    }
    if (at < 0 || (k > 0 && at < options.demand_schedule[k - 1].first)) {
      throw std::invalid_argument(
          "simulate: demand_schedule must be sorted by slot");
    }
  }
  std::size_t next_demand_change = 0;
  stats::BinnedSeries observed(options.metrics.bin_width,
                               static_cast<double>(duration));

  state.utilities = &utilities;
  state.policy = &policy;
  state.rng = &rng;
  state.observed = &observed;
  state.on_fulfillment = &options.on_fulfillment;

  SimulationResult result;
  result.policy = policy.name();
  result.duration = duration;
  result.replica_series.resize(options.metrics.tracked_items.size());

  auto* qcr = dynamic_cast<QcrPolicy*>(&policy);
  const long mandates_before = qcr ? qcr->mandates_created() : 0;
  const long written_before = qcr ? qcr->replicas_written() : 0;

  // Fault injection (docs/robustness.md). The plan draws every decision
  // from its own stream, so the fault-free path below is untouched bit
  // for bit whenever the plan is inert.
  fault::FaultPlan fault_plan(options.faults);
  // down_until[n] > slot  <=>  node n is crashed during `slot`.
  std::vector<Slot> down_until;
  std::vector<trace::ContactEvent> delivery;
  if (fault_plan.active()) {
    down_until.assign(num_nodes, 0);
    // A slot's delivered sequence is at most every surviving meeting plus
    // one duplicate each; reserving here keeps the staging buffer from
    // reallocating inside the slot loop. Sources without a cheap bound
    // report 0 and the buffer grows on first use instead.
    delivery.reserve(2 * feed.max_slot_events_hint());
  }

  // Intra-run meeting-level parallelism (docs/perf.md §5): >= 1 switches
  // every meeting batch to the plan/commit path, bit-identical to the
  // fused walk; 0 keeps the fused walk itself (the bit-locked default —
  // same results either way, but the reference code path stays live).
  const unsigned intra_threads =
      engine::resolve_intra_threads(options.meeting_parallelism, 1);
  std::optional<MeetingBatchRunner> meeting_runner;
  if (intra_threads >= 1) {
    meeting_runner.emplace(state, num_nodes, intra_threads);
  }

  // Policies that track global state seed themselves from the initial
  // allocation (e.g. HillClimbPolicy).
  policy.on_initialized(std::span<const int>(counts));

  const bool event_kernel = options.kernel == SimKernel::event_driven;

  // Shared per-request handling: resolve an own-cache hit at the creation
  // slot, otherwise enqueue the request.
  auto admit_request = [&](ItemId item, NodeId node_id, Slot slot) {
    ++result.requests_created;
    Node& node = state.nodes[node_id];
    if (node.holds(item)) {
      // Immediate own-cache hit.
      if (!utilities[item].bounded_at_zero()) {
        throw std::logic_error(
            "simulate: immediate fulfilment with unbounded h(0+); use "
            "the dedicated-node population for this utility");
      }
      const double gain = utilities[item].value_at_zero();
      state.total_gain += gain;
      detail::record_gain(state, static_cast<double>(slot), gain);
      if (options.on_fulfillment) {
        options.on_fulfillment(item, node_id, 0.0, gain);
      }
      ++result.immediate_fulfillments;
    } else {
      node.create_request(item, slot);
    }
  };

  // Periodic metrics sampling at `slot` (after the slot's meetings).
  auto sample_metrics = [&](Slot slot) {
    if (options.expected_welfare || probe ||
        !options.metrics.tracked_items.empty()) {
      if (options.expected_welfare) {
        result.expected_series.push_back(
            {static_cast<double>(slot),
             options.expected_welfare(std::span<const int>(counts))});
      }
      if (probe) {
        result.expected_series.push_back(
            {static_cast<double>(slot), probe->welfare_cached()});
      }
      for (std::size_t k = 0; k < options.metrics.tracked_items.size();
           ++k) {
        const ItemId item = options.metrics.tracked_items[k];
        result.replica_series[k].push_back(
            {static_cast<double>(slot), static_cast<double>(counts[item])});
      }
    }
  };

  // Faulty delivery of one slot's meetings, shared by both kernels: stage
  // the slot's surviving meetings so reordering and duplication act on
  // the delivered sequence, not the trace. The body is the slot-stepped
  // fault block verbatim, so that kernel stays bit-locked.
  auto process_faulty_meetings =
      [&](Slot slot, std::span<const trace::ContactEvent> slot_events) {
        auto& counters = fault_plan.counters();
        delivery.clear();
        for (const trace::ContactEvent& e : slot_events) {
          if (down_until[e.a] > slot || down_until[e.b] > slot) {
            ++counters.meetings_skipped_down;
            continue;
          }
          if (fault_plan.drop_meeting()) continue;
          delivery.push_back(e);
          if (fault_plan.duplicate_meeting()) delivery.push_back(e);
        }
        if (delivery.size() >= 2 && fault_plan.reorder_slot()) {
          fault_plan.shuffle_delivery(delivery);
        }
        if (meeting_runner) {
          meeting_runner->run(
              std::span<const trace::ContactEvent>(delivery), &fault_plan);
          return;
        }
        for (const trace::ContactEvent& e : delivery) {
          if (fault_plan.should_truncate()) {
            // Cut the exchange after a seeded prefix of the negotiated
            // (fulfillable) items; the rest stay pending. The policy's
            // mandate-execution step still runs — truncation models a
            // cut data transfer, not a lost control channel.
            const long negotiated = detail::count_fulfillable(
                state.nodes[e.a], state.nodes[e.b]);
            if (negotiated > 0) {
              state.transfer_budget = fault_plan.truncation_prefix(negotiated);
              counters.fulfilments_deferred += static_cast<std::uint64_t>(
                  negotiated - state.transfer_budget);
            }
          }
          detail::process_meeting(state, state.nodes[e.a], state.nodes[e.b]);
          state.transfer_budget = -1;
        }
      };

  if (event_kernel) {
    // ---- event-driven kernel (next-event time advance) ----
    //
    // Nothing observable happens in a slot without a meeting, a metrics
    // sample tick, a demand switch, or a scheduled node crash: caches,
    // pending lists and replica counts only change at meetings and
    // crashes, and a request created in an empty slot just ages until
    // the next one. So the loop jumps straight between those slots and
    // draws each empty gap's demand as a single batch — Poisson(gap *
    // rate) arrivals with uniform slots in the gap (distribution-
    // identical to per-slot draws by Poisson splitting), alias-sampled
    // (item, node) pairs, own-cache hits resolved at the batched
    // creation slot in order. Fault-active runs ride the same loop: each
    // node's crash slots come from its own geometric-skip stream
    // (FaultPlan::next_node_crash) through a min-heap of scheduled
    // crashes, and per-meeting fault decisions are drawn only at slots
    // that have meetings — exactly the draws the slot-stepped loop
    // makes, minus the per-(slot, node) crash coins.
    constexpr Slot kNever = std::numeric_limits<Slot>::max();
    static_assert(trace::EventSource::kNoMoreEvents == kNever);
    const Slot sample_every = options.metrics.sample_every;
    const bool sampling_active = options.expected_welfare || probe ||
                                 !options.metrics.tracked_items.empty();
    const bool faults_on = fault_plan.active();
    std::vector<BatchedRequest> batch;

    // Observed gains are folded into the series one bin-batch at a time
    // (detail::record_gain); flushed after the loop, before rate_series.
    stats::BinnedSeries::Batcher observed_batch(observed);
    state.observed_batch = &observed_batch;

    // Scheduled crashes, ordered by (slot, node). Each node draws its
    // next crash from its private stream when the previous one fires, so
    // the heap holds at most one entry per node.
    struct ScheduledCrash {
      Slot slot;
      NodeId node;
      bool persist;
      Slot down;
    };
    auto crash_later = [](const ScheduledCrash& x, const ScheduledCrash& y) {
      return x.slot != y.slot ? x.slot > y.slot : x.node > y.node;
    };
    std::priority_queue<ScheduledCrash, std::vector<ScheduledCrash>,
                        decltype(crash_later)>
        crashes(crash_later);
    if (faults_on && options.faults.p_crash > 0.0) {
      fault_plan.prepare_node_streams(num_nodes);
      for (NodeId n = 0; n < num_nodes; ++n) {
        const auto c = fault_plan.next_node_crash(n, 0);
        if (c.slot < duration) {
          crashes.push({c.slot, n, c.persist_cache, c.downtime});
        }
      }
    }

    Slot cur = 0;
    while (cur < duration) {
      // Cooperative cancellation (the engine's deadline watchdog),
      // checked once per event step.
      if (options.cancel && options.cancel->cancelled()) {
        throw util::cancelled_error(*options.cancel,
                                    "simulate: cancelled at slot " +
                                        std::to_string(cur));
      }

      // Scheduled popularity changes due now; each switch rebuilds the
      // demand process and with it the alias tables.
      while (next_demand_change < options.demand_schedule.size() &&
             options.demand_schedule[next_demand_change].first <= cur) {
        demand =
            make_demand(options.demand_schedule[next_demand_change].second);
        ++next_demand_change;
      }
      const Slot next_switch =
          next_demand_change < options.demand_schedule.size()
              ? options.demand_schedule[next_demand_change].first
              : kNever;
      // Peek the feed: idempotent, and on a generating source it draws
      // ahead only as far as the next nonempty slot (the look-ahead
      // window) using the source's own rng, never the simulation rng.
      const Slot next_meeting = feed.next_slot();
      const Slot next_sample =
          sampling_active ? ((cur + sample_every - 1) / sample_every) *
                                sample_every
                          : kNever;
      const Slot next_crash = crashes.empty() ? kNever : crashes.top().slot;

      // The next slot where work happens *at* the slot itself, and the
      // last slot this demand batch may cover: a switch applies before
      // its own slot's demand, so the batch stops strictly before it.
      const Slot event_slot =
          std::min({next_meeting, next_sample, next_crash});
      Slot batch_end = std::min(event_slot, duration - 1);
      if (next_switch != kNever) {
        batch_end = std::min(batch_end, next_switch - 1);
      }

      // Batched demand over [cur, batch_end] (>= 1 slot by construction:
      // switches due now were applied above, so next_switch > cur). The
      // batch is admitted in two halves around the event slot's crashes
      // so the slot-stepped intra-slot order (crashes, then demand, then
      // meetings, then the sample tick) is preserved: requests created
      // before the crash slot must exist — the crash wipes them — while
      // the crash slot's own demand is suppressed at a just-downed node.
      demand.sample_gap(rng, cur, batch_end - cur + 1, batch);
      std::size_t bi = 0;
      auto admit_before = [&](Slot limit) {  // batch slots < limit
        for (; bi < batch.size() && batch[bi].slot < limit; ++bi) {
          const BatchedRequest& req = batch[bi];
          if (faults_on && down_until[req.node] > req.slot) {
            // A crashed node generates no demand while down.
            ++fault_plan.counters().requests_suppressed;
            continue;
          }
          admit_request(req.item, req.node, req.slot);
        }
      };

      if (event_slot <= batch_end) {
        admit_before(event_slot);
        while (!crashes.empty() && crashes.top().slot == event_slot) {
          const ScheduledCrash c = crashes.top();
          crashes.pop();
          auto& counters = fault_plan.counters();
          fault_plan.record_crash();
          const Node::CrashLosses losses = state.nodes[c.node].crash(c.persist);
          if (c.persist) ++counters.cold_restarts;
          counters.replicas_lost += losses.replicas;
          counters.mandates_lost += losses.mandates;
          counters.requests_lost += losses.requests;
          down_until[c.node] = event_slot + 1 + c.down;
          // The hazard resumes at the rejoin slot, matching the
          // slot-stepped loop's "no crash checks while down".
          const auto next =
              fault_plan.next_node_crash(c.node, down_until[c.node]);
          if (next.slot < duration) {
            crashes.push({next.slot, c.node, next.persist_cache,
                          next.downtime});
          }
        }
        admit_before(event_slot + 1);

        // Meetings of this slot, then the sample tick — the slot-stepped
        // intra-slot order.
        state.now = event_slot;
        std::span<const trace::ContactEvent> meetings;
        if (next_meeting == event_slot) meetings = feed.take_batch();
        if (!faults_on) {
          if (meeting_runner && !meetings.empty()) {
            meeting_runner->run(meetings, nullptr);
          } else {
            for (const trace::ContactEvent& e : meetings) {
              detail::process_meeting(state, state.nodes[e.a],
                                      state.nodes[e.b]);
            }
          }
        } else if (!meetings.empty()) {
          process_faulty_meetings(event_slot, meetings);
        }
        if (next_sample == event_slot) sample_metrics(event_slot);
        cur = event_slot + 1;
      } else {
        admit_before(batch_end + 1);
        cur = batch_end + 1;
      }
    }
    observed_batch.flush();
    state.observed_batch = nullptr;
  } else {
    // ---- slot-stepped kernel (the bit-locked Section-6.1 reference) ----
    std::vector<NewRequest> new_requests;
    for (Slot slot = 0; slot < duration; ++slot) {
      state.now = slot;

      // Cooperative cancellation (the engine's deadline watchdog).
      if (options.cancel && options.cancel->cancelled()) {
        throw util::cancelled_error(*options.cancel,
                                    "simulate: cancelled at slot " +
                                        std::to_string(slot));
      }

      // Node churn: crash checks before demand, so a node that dies in
      // this slot neither requests nor meets anyone until it rejoins.
      if (fault_plan.active()) {
        auto& counters = fault_plan.counters();
        for (NodeId n = 0; n < num_nodes; ++n) {
          if (down_until[n] > slot) continue;  // still down
          if (!fault_plan.crash_now()) continue;
          const bool persist = fault_plan.crash_persists_cache();
          const Node::CrashLosses losses = state.nodes[n].crash(persist);
          if (persist) ++counters.cold_restarts;
          counters.replicas_lost += losses.replicas;
          counters.mandates_lost += losses.mandates;
          counters.requests_lost += losses.requests;
          down_until[n] = slot + 1 + fault_plan.downtime();
        }
      }

      // Scheduled popularity changes.
      while (next_demand_change < options.demand_schedule.size() &&
             options.demand_schedule[next_demand_change].first <= slot) {
        demand =
            make_demand(options.demand_schedule[next_demand_change].second);
        ++next_demand_change;
      }

      // New demand.
      demand.sample_slot(rng, new_requests);
      for (const NewRequest& req : new_requests) {
        if (fault_plan.active() && down_until[req.node] > slot) {
          // A crashed node generates no demand while down.
          ++fault_plan.counters().requests_suppressed;
          continue;
        }
        admit_request(req.item, req.node, slot);
      }

      // Meetings. The feed hands out exactly the nonempty slot_events()
      // runs of the materialized trace, so an empty span here is the
      // same empty span trace.slot_events(slot) returned before.
      std::span<const trace::ContactEvent> meetings;
      if (feed.next_slot() == slot) meetings = feed.take_batch();
      if (!fault_plan.active()) {
        if (meeting_runner) {
          meeting_runner->run(meetings, nullptr);
        } else {
          for (const trace::ContactEvent& e : meetings) {
            detail::process_meeting(state, state.nodes[e.a],
                                    state.nodes[e.b]);
          }
        }
      } else {
        process_faulty_meetings(slot, meetings);
      }

      // Periodic sampling.
      if (slot % options.metrics.sample_every == 0) {
        sample_metrics(slot);
      }
    }
  }

  // Censor still-pending requests at the horizon.
  if (options.censor_pending_at_end) {
    for (const Node& node : state.nodes) {
      for (const PendingRequest& req : node.pending()) {
        const double age =
            static_cast<double>(duration - req.created) + 1.0;
        state.total_gain += utilities[req.item].value(age);
        ++result.censored_requests;
      }
    }
  } else {
    for (const Node& node : state.nodes) {
      result.censored_requests += node.pending().size();
    }
  }

  // Final bookkeeping.
  result.final_counts = counts;
  result.total_gain = state.total_gain;
  result.observed_series = observed.rate_series();
  result.fulfillments = state.fulfillments;
  result.mean_delay = state.fulfillments
                          ? state.delay_sum /
                                static_cast<double>(state.fulfillments)
                          : 0.0;
  result.mean_query_count =
      state.fulfillments
          ? state.query_sum / static_cast<double>(state.fulfillments)
          : 0.0;
  for (const Node& node : state.nodes) {
    result.outstanding_mandates += node.mandates().total();
  }
  if (qcr) {
    result.mandates_created = qcr->mandates_created() - mandates_before;
    result.replicas_written = qcr->replicas_written() - written_before;
  }
  result.faults = fault_plan.counters();
  return result;
}

}  // namespace

SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng) {
  trace::MaterializedSource feed(trace);
  return simulate_impl(feed, catalog, utilities, policy, population, options,
                       rng);
}

SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng) {
  const utility::UtilitySet utilities(utility, catalog.num_items());
  return simulate(trace, catalog, utilities, policy, population, options,
                  rng);
}

SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng) {
  return simulate(trace, catalog, utilities, policy,
                  Population::pure_p2p(trace.num_nodes()), options, rng);
}

SimulationResult simulate(const trace::ContactTrace& trace,
                          const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng) {
  return simulate(trace, catalog, utility, policy,
                  Population::pure_p2p(trace.num_nodes()), options, rng);
}

SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng) {
  return simulate_impl(source, catalog, utilities, policy, population,
                       options, rng);
}

SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const Population& population,
                          const SimOptions& options, util::Rng& rng) {
  const utility::UtilitySet utilities(utility, catalog.num_items());
  return simulate_impl(source, catalog, utilities, policy, population,
                       options, rng);
}

SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::UtilitySet& utilities,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng) {
  return simulate(source, catalog, utilities, policy,
                  Population::pure_p2p(source.num_nodes()), options, rng);
}

SimulationResult simulate(trace::EventSource& source, const Catalog& catalog,
                          const utility::DelayUtility& utility,
                          ReplicationPolicy& policy,
                          const SimOptions& options, util::Rng& rng) {
  return simulate(source, catalog, utility, policy,
                  Population::pure_p2p(source.num_nodes()), options, rng);
}

}  // namespace impatience::core
