#include <algorithm>
#include <stdexcept>

#include "impatience/core/mandate.hpp"

namespace impatience::core {

MandateBag::MandateBag(ItemId num_items) {
  if (num_items == 0) {
    throw std::invalid_argument("MandateBag: need at least one item");
  }
  count_.assign(num_items, 0);
  pos_.assign(num_items, kAbsent);
}

long MandateBag::count(ItemId item) const {
  if (item >= count_.size()) {
    throw std::out_of_range("MandateBag::count: bad item");
  }
  return count_[item];
}

void MandateBag::activate(ItemId item) {
  pos_[item] = static_cast<std::uint32_t>(active_.size());
  active_.push_back(item);
}

void MandateBag::deactivate(ItemId item) {
  // Swap-remove from the active list, fixing the moved item's index.
  const std::uint32_t at = pos_[item];
  const ItemId moved = active_.back();
  active_[at] = moved;
  pos_[moved] = at;
  active_.pop_back();
  pos_[item] = kAbsent;
}

void MandateBag::add(ItemId item, long n) {
  if (item >= count_.size()) {
    throw std::out_of_range("MandateBag::add: bad item");
  }
  if (n < 0) {
    throw std::invalid_argument("MandateBag::add: negative count");
  }
  if (n > 0 && count_[item] == 0) activate(item);
  count_[item] += n;
  total_ += n;
}

long MandateBag::take(ItemId item, long n) {
  if (item >= count_.size()) {
    throw std::out_of_range("MandateBag::take: bad item");
  }
  if (n < 0) {
    throw std::invalid_argument("MandateBag::take: negative count");
  }
  const long taken = std::min(n, count_[item]);
  count_[item] -= taken;
  total_ -= taken;
  if (taken > 0 && count_[item] == 0) deactivate(item);
  return taken;
}

long MandateBag::drain() {
  const long lost = total_;
  for (ItemId item : active_) {
    count_[item] = 0;
    pos_[item] = kAbsent;
  }
  active_.clear();
  total_ = 0;
  return lost;
}

std::vector<ItemId> MandateBag::active_items() const {
  std::vector<ItemId> out = active_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace impatience::core
