#include <algorithm>
#include <stdexcept>

#include "impatience/core/mandate.hpp"

namespace impatience::core {

MandateBag::MandateBag(ItemId num_items) {
  if (num_items == 0) {
    throw std::invalid_argument("MandateBag: need at least one item");
  }
  count_.assign(num_items, 0);
}

long MandateBag::count(ItemId item) const {
  if (item >= count_.size()) {
    throw std::out_of_range("MandateBag::count: bad item");
  }
  return count_[item];
}

void MandateBag::add(ItemId item, long n) {
  if (item >= count_.size()) {
    throw std::out_of_range("MandateBag::add: bad item");
  }
  if (n < 0) {
    throw std::invalid_argument("MandateBag::add: negative count");
  }
  count_[item] += n;
  total_ += n;
}

long MandateBag::take(ItemId item, long n) {
  if (item >= count_.size()) {
    throw std::out_of_range("MandateBag::take: bad item");
  }
  if (n < 0) {
    throw std::invalid_argument("MandateBag::take: negative count");
  }
  const long taken = std::min(n, count_[item]);
  count_[item] -= taken;
  total_ -= taken;
  return taken;
}

long MandateBag::drain() {
  const long lost = total_;
  count_.assign(count_.size(), 0);
  total_ = 0;
  return lost;
}

std::vector<ItemId> MandateBag::active_items() const {
  std::vector<ItemId> out;
  for (ItemId i = 0; i < count_.size(); ++i) {
    if (count_[i] > 0) out.push_back(i);
  }
  return out;
}

}  // namespace impatience::core
