#include "impatience/stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace impatience::stats {

BinnedSeries::BinnedSeries(double bin_width, double horizon)
    : bin_width_(bin_width) {
  if (bin_width <= 0.0 || horizon <= 0.0) {
    throw std::invalid_argument("BinnedSeries: width and horizon must be > 0");
  }
  const auto bins =
      static_cast<std::size_t>(std::ceil(horizon / bin_width));
  sums_.assign(std::max<std::size_t>(bins, 1), 0.0);
  counts_.assign(sums_.size(), 0);
}

std::size_t BinnedSeries::bin_index(double time) const noexcept {
  auto idx = static_cast<std::size_t>(
      std::max(0.0, std::floor(time / bin_width_)));
  return idx >= sums_.size() ? sums_.size() - 1 : idx;
}

void BinnedSeries::add(double time, double value) noexcept {
  const std::size_t idx = bin_index(time);
  sums_[idx] += value;
  ++counts_[idx];
  total_ += value;
}

std::vector<SeriesPoint> BinnedSeries::rate_series() const {
  std::vector<SeriesPoint> out;
  out.reserve(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    out.push_back({(static_cast<double>(i) + 0.5) * bin_width_,
                   sums_[i] / bin_width_});
  }
  return out;
}

std::vector<SeriesPoint> BinnedSeries::mean_series() const {
  std::vector<SeriesPoint> out;
  out.reserve(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    const double mean =
        counts_[i] ? sums_[i] / static_cast<double>(counts_[i]) : 0.0;
    out.push_back({(static_cast<double>(i) + 0.5) * bin_width_, mean});
  }
  return out;
}

}  // namespace impatience::stats
