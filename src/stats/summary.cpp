#include "impatience/stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace impatience::stats {

void Summary::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::stderr_mean() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

}  // namespace impatience::stats
