#include "impatience/stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace impatience::stats {

namespace {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("percentile: p must be in [0,1]");
  }
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& ps) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(samples, p));
  return out;
}

std::vector<double> empirical_cdf(std::vector<double> samples,
                                  const std::vector<double>& at) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(at.size());
  for (double x : at) {
    const auto it = std::upper_bound(samples.begin(), samples.end(), x);
    out.push_back(static_cast<double>(it - samples.begin()) /
                  static_cast<double>(samples.empty() ? 1 : samples.size()));
  }
  return out;
}

double median_abs_deviation(std::vector<double> samples) {
  const double med = percentile(samples, 0.5);
  for (auto& s : samples) s = std::abs(s - med);
  return percentile(std::move(samples), 0.5);
}

}  // namespace impatience::stats
