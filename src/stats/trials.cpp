#include "impatience/stats/trials.hpp"

#include <stdexcept>

#include "impatience/stats/percentile.hpp"
#include "impatience/stats/summary.hpp"

namespace impatience::stats {

void TrialAggregator::add(const std::string& series, double x, double value) {
  data_[series][x].push_back(value);
}

TrialBand TrialAggregator::band(const std::string& series, double x) const {
  const auto sit = data_.find(series);
  if (sit == data_.end()) {
    throw std::out_of_range("TrialAggregator: unknown series " + series);
  }
  const auto xit = sit->second.find(x);
  if (xit == sit->second.end()) {
    throw std::out_of_range("TrialAggregator: unknown x for " + series);
  }
  const std::vector<double>& vals = xit->second;
  Summary s;
  for (double v : vals) s.add(v);
  const auto band = percentiles(vals, {0.05, 0.95});
  return TrialBand{s.mean(), band[0], band[1], vals.size()};
}

std::vector<double> TrialAggregator::xs(const std::string& series) const {
  std::vector<double> out;
  const auto sit = data_.find(series);
  if (sit == data_.end()) return out;
  out.reserve(sit->second.size());
  for (const auto& [x, _] : sit->second) out.push_back(x);
  return out;
}

const std::vector<double>& TrialAggregator::samples(const std::string& series,
                                                    double x) const {
  const auto sit = data_.find(series);
  if (sit == data_.end()) {
    throw std::out_of_range("TrialAggregator: unknown series " + series);
  }
  const auto xit = sit->second.find(x);
  if (xit == sit->second.end()) {
    throw std::out_of_range("TrialAggregator: unknown x for " + series);
  }
  return xit->second;
}

void TrialAggregator::merge(const TrialAggregator& other) {
  for (const auto& [series, by_x] : other.data_) {
    for (const auto& [x, vals] : by_x) {
      auto& dst = data_[series][x];
      dst.insert(dst.end(), vals.begin(), vals.end());
    }
  }
}

std::vector<std::string> TrialAggregator::series_names() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

}  // namespace impatience::stats
