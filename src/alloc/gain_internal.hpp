// Internal: the per-request gain kernel shared by the naive welfare
// evaluators (welfare.cpp) and the incremental MarginalOracle
// (oracle.cpp). Keeping a single definition is what makes the oracle's
// marginals bit-identical to alloc::marginal_gain — both paths execute
// the same floating-point operations on the same inputs.
#pragma once

#include <stdexcept>

#include "impatience/utility/delay_utility.hpp"

namespace impatience::alloc::detail {

/// Expected gain of a single request given aggregate fulfilment rate M
/// (sum of holder meeting rates towards the client) and whether the
/// client itself already holds the item.
inline double request_gain(const utility::DelayUtility& u, double M,
                           bool client_holds) {
  if (u.bounded_at_zero()) {
    const double h0 = u.value_at_zero();
    if (client_holds) return h0;
    if (M <= 0.0) return u.value_at_inf();
    return h0 - u.loss_transform(M);
  }
  if (client_holds) {
    throw std::domain_error(
        "welfare: unbounded-at-zero utility with client-held replica "
        "(immediate fulfilment); the paper restricts these utilities to "
        "the dedicated-node case");
  }
  if (M <= 0.0) return u.value_at_inf();
  return u.expected_gain(M);
}

}  // namespace impatience::alloc::detail
