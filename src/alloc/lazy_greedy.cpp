#include <cmath>
#include <queue>
#include <stdexcept>

#include "impatience/alloc/solvers.hpp"

namespace impatience::alloc {

namespace {

/// Map +inf marginals (first copy under a cost-type utility) to a huge
/// finite value ordered by demand so heap ordering stays total.
double ordered(double delta, double demand) {
  if (std::isfinite(delta)) return delta;
  return delta > 0.0 ? 1e280 * (1.0 + demand) : -1e280;
}

/// Core lazy greedy over a marginal oracle.
/// Eval: double (const Placement&, ItemId, NodeId) — marginal welfare of
/// adding (item, server) to the current placement.
template <typename Eval>
Placement lazy_greedy_impl(const std::vector<double>& demand,
                           Eval&& eval_marginal, NodeId num_servers,
                           ItemId num_items, int capacity_per_server) {
  Placement placement(num_items, num_servers, capacity_per_server);

  struct Candidate {
    double bound;  // upper bound on the marginal (stale-tolerant)
    ItemId item;
    NodeId server;
    bool operator<(const Candidate& o) const { return bound < o.bound; }
  };
  std::priority_queue<Candidate> heap;
  auto eval = [&](ItemId i, NodeId s) {
    return ordered(eval_marginal(placement, i, s), demand[i]);
  };
  for (ItemId i = 0; i < num_items; ++i) {
    for (NodeId s = 0; s < num_servers; ++s) {
      heap.push({eval(i, s), i, s});
    }
  }

  const long capacity_total =
      static_cast<long>(capacity_per_server) * static_cast<long>(num_servers);
  long placed = 0;
  while (placed < capacity_total && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (placement.server_full(top.server) ||
        placement.has(top.item, top.server)) {
      continue;
    }
    // Lazy re-evaluation: by submodularity the stored bound only
    // overestimates; if it still dominates the next-best bound the move
    // is provably the argmax.
    const double fresh = eval(top.item, top.server);
    if (!heap.empty() && fresh < heap.top().bound) {
      heap.push({fresh, top.item, top.server});
      continue;
    }
    if (fresh <= 0.0) break;  // no remaining move improves welfare
    placement.add(top.item, top.server);
    ++placed;
  }
  return placement;
}

void validate(const std::vector<double>& demand,
              const std::vector<NodeId>& servers, ItemId num_items,
              int capacity_per_server) {
  if (num_items == 0 || servers.empty() || capacity_per_server <= 0) {
    throw std::invalid_argument("lazy_greedy_placement: bad parameters");
  }
  if (demand.size() != num_items) {
    throw std::invalid_argument("lazy_greedy_placement: demand size");
  }
}

}  // namespace

Placement lazy_greedy_placement(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::DelayUtility& u, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    int capacity_per_server,
    const std::optional<PopularityProfile>& popularity) {
  validate(demand, servers, num_items, capacity_per_server);
  return lazy_greedy_impl(
      demand,
      [&](const Placement& p, ItemId i, NodeId s) {
        return marginal_gain(p, rates, demand, u, servers, clients, i, s,
                             popularity);
      },
      static_cast<NodeId>(servers.size()), num_items, capacity_per_server);
}

Placement lazy_greedy_placement(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::UtilitySet& utilities, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    int capacity_per_server,
    const std::optional<PopularityProfile>& popularity) {
  validate(demand, servers, num_items, capacity_per_server);
  if (utilities.size() != num_items) {
    throw std::invalid_argument(
        "lazy_greedy_placement: utility set size != item count");
  }
  return lazy_greedy_impl(
      demand,
      [&](const Placement& p, ItemId i, NodeId s) {
        return marginal_gain(p, rates, demand, utilities, servers, clients,
                             i, s, popularity);
      },
      static_cast<NodeId>(servers.size()), num_items, capacity_per_server);
}

Placement lazy_greedy_pure_p2p(const trace::RateMatrix& rates,
                               const std::vector<double>& demand,
                               const utility::DelayUtility& u,
                               ItemId num_items, int capacity_per_server) {
  std::vector<NodeId> nodes(rates.num_nodes());
  for (NodeId n = 0; n < rates.num_nodes(); ++n) nodes[n] = n;
  return lazy_greedy_placement(rates, demand, u, nodes, nodes, num_items,
                               capacity_per_server);
}

}  // namespace impatience::alloc
