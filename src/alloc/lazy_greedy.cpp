#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>

#include "impatience/alloc/oracle.hpp"
#include "impatience/alloc/solvers.hpp"

namespace impatience::alloc {

namespace {

/// Map +inf marginals (first copy under a cost-type utility) to a huge
/// finite value ordered by demand so heap ordering stays total.
double ordered(double delta, double demand) {
  if (std::isfinite(delta)) return delta;
  return delta > 0.0 ? 1e280 * (1.0 + demand) : -1e280;
}

/// Lazy greedy over the incremental oracle. A candidate's marginal
/// depends on the placement only through its item's holder set, so each
/// heap entry records the item's revision at evaluation time: on pop, an
/// unchanged revision means a recomputation would return the same bits —
/// the stored bound IS fresh — and the re-evaluation is skipped. This
/// yields the exact heap-operation sequence (hence placement) of the
/// naive implementation, minus the redundant oracle calls.
Placement lazy_greedy_core(MarginalOracle& oracle,
                           const std::vector<double>& demand,
                           NodeId num_servers, ItemId num_items,
                           int capacity_per_server) {
  Placement placement(num_items, num_servers, capacity_per_server);

  struct Candidate {
    double bound;  // upper bound on the marginal (stale-tolerant)
    std::uint32_t revision;
    ItemId item;
    NodeId server;
    bool operator<(const Candidate& o) const { return bound < o.bound; }
  };
  std::vector<std::uint32_t> revision(num_items, 0);
  std::priority_queue<Candidate> heap;
  auto eval = [&](ItemId i, NodeId s) {
    return ordered(oracle.marginal(i, s), demand[i]);
  };
  for (ItemId i = 0; i < num_items; ++i) {
    for (NodeId s = 0; s < num_servers; ++s) {
      heap.push({eval(i, s), 0, i, s});
    }
  }

  const long capacity_total =
      static_cast<long>(capacity_per_server) * static_cast<long>(num_servers);
  long placed = 0;
  while (placed < capacity_total && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (placement.server_full(top.server) ||
        placement.has(top.item, top.server)) {
      continue;
    }
    // Lazy re-evaluation: by submodularity the stored bound only
    // overestimates; if it still dominates the next-best bound the move
    // is provably the argmax. Unchanged item revision = bound is exact.
    const double fresh = revision[top.item] == top.revision
                             ? top.bound
                             : eval(top.item, top.server);
    if (!heap.empty() && fresh < heap.top().bound) {
      heap.push({fresh, revision[top.item], top.item, top.server});
      continue;
    }
    if (fresh <= 0.0) break;  // no remaining move improves welfare
    placement.add(top.item, top.server);
    oracle.add(top.item, top.server);
    ++revision[top.item];
    ++placed;
  }
  return placement;
}

/// Reference lazy greedy over a naive marginal oracle.
/// Eval: double (const Placement&, ItemId, NodeId).
template <typename Eval>
Placement lazy_greedy_naive_impl(const std::vector<double>& demand,
                                 Eval&& eval_marginal, NodeId num_servers,
                                 ItemId num_items, int capacity_per_server) {
  Placement placement(num_items, num_servers, capacity_per_server);

  struct Candidate {
    double bound;
    ItemId item;
    NodeId server;
    bool operator<(const Candidate& o) const { return bound < o.bound; }
  };
  std::priority_queue<Candidate> heap;
  auto eval = [&](ItemId i, NodeId s) {
    return ordered(eval_marginal(placement, i, s), demand[i]);
  };
  for (ItemId i = 0; i < num_items; ++i) {
    for (NodeId s = 0; s < num_servers; ++s) {
      heap.push({eval(i, s), i, s});
    }
  }

  const long capacity_total =
      static_cast<long>(capacity_per_server) * static_cast<long>(num_servers);
  long placed = 0;
  while (placed < capacity_total && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (placement.server_full(top.server) ||
        placement.has(top.item, top.server)) {
      continue;
    }
    const double fresh = eval(top.item, top.server);
    if (!heap.empty() && fresh < heap.top().bound) {
      heap.push({fresh, top.item, top.server});
      continue;
    }
    if (fresh <= 0.0) break;
    placement.add(top.item, top.server);
    ++placed;
  }
  return placement;
}

void validate(const std::vector<double>& demand,
              const std::vector<NodeId>& servers, ItemId num_items,
              int capacity_per_server) {
  if (num_items == 0 || servers.empty() || capacity_per_server <= 0) {
    throw std::invalid_argument("lazy_greedy_placement: bad parameters");
  }
  if (demand.size() != num_items) {
    throw std::invalid_argument("lazy_greedy_placement: demand size");
  }
}

}  // namespace

Placement lazy_greedy_placement(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::DelayUtility& u, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    int capacity_per_server,
    const std::optional<PopularityProfile>& popularity) {
  validate(demand, servers, num_items, capacity_per_server);
  MarginalOracle oracle(rates, demand, u, servers, clients, num_items,
                        popularity);
  return lazy_greedy_core(oracle, demand,
                          static_cast<NodeId>(servers.size()), num_items,
                          capacity_per_server);
}

Placement lazy_greedy_placement(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::UtilitySet& utilities, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    int capacity_per_server,
    const std::optional<PopularityProfile>& popularity) {
  validate(demand, servers, num_items, capacity_per_server);
  if (utilities.size() != num_items) {
    throw std::invalid_argument(
        "lazy_greedy_placement: utility set size != item count");
  }
  MarginalOracle oracle(rates, demand, utilities, servers, clients,
                        popularity);
  return lazy_greedy_core(oracle, demand,
                          static_cast<NodeId>(servers.size()), num_items,
                          capacity_per_server);
}

Placement lazy_greedy_placement_naive(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::DelayUtility& u, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    int capacity_per_server,
    const std::optional<PopularityProfile>& popularity) {
  validate(demand, servers, num_items, capacity_per_server);
  return lazy_greedy_naive_impl(
      demand,
      [&](const Placement& p, ItemId i, NodeId s) {
        return marginal_gain(p, rates, demand, u, servers, clients, i, s,
                             popularity);
      },
      static_cast<NodeId>(servers.size()), num_items, capacity_per_server);
}

Placement lazy_greedy_placement_naive(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::UtilitySet& utilities, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    int capacity_per_server,
    const std::optional<PopularityProfile>& popularity) {
  validate(demand, servers, num_items, capacity_per_server);
  if (utilities.size() != num_items) {
    throw std::invalid_argument(
        "lazy_greedy_placement: utility set size != item count");
  }
  return lazy_greedy_naive_impl(
      demand,
      [&](const Placement& p, ItemId i, NodeId s) {
        return marginal_gain(p, rates, demand, utilities, servers, clients,
                             i, s, popularity);
      },
      static_cast<NodeId>(servers.size()), num_items, capacity_per_server);
}

Placement lazy_greedy_pure_p2p(const trace::RateMatrix& rates,
                               const std::vector<double>& demand,
                               const utility::DelayUtility& u,
                               ItemId num_items, int capacity_per_server) {
  std::vector<NodeId> nodes(rates.num_nodes());
  for (NodeId n = 0; n < rates.num_nodes(); ++n) nodes[n] = n;
  return lazy_greedy_placement(rates, demand, u, nodes, nodes, num_items,
                               capacity_per_server);
}

}  // namespace impatience::alloc
