#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "impatience/alloc/rounding.hpp"

namespace impatience::alloc {

ItemCounts round_counts(const ItemCounts& real_counts, int cap_per_item) {
  if (cap_per_item <= 0) {
    throw std::invalid_argument("round_counts: cap must be > 0");
  }
  const auto n = real_counts.x.size();
  ItemCounts out;
  out.x.assign(n, 0.0);
  std::vector<double> frac(n, 0.0);
  long floor_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = real_counts.x[i];
    if (!(v >= 0.0) || v > static_cast<double>(cap_per_item) + 1e-9) {
      throw std::invalid_argument("round_counts: count out of [0, cap]");
    }
    const double f = std::floor(std::min(v, double(cap_per_item)));
    out.x[i] = f;
    frac[i] = v - f;
    floor_total += static_cast<long>(f);
  }
  const long target = std::lround(real_counts.total());
  long remainder = target - floor_total;
  if (remainder < 0) {
    throw std::logic_error("round_counts: negative remainder");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return frac[a] > frac[b];
                   });
  for (std::size_t k = 0; k < order.size() && remainder > 0; ++k) {
    const std::size_t i = order[k];
    if (out.x[i] + 1.0 <= static_cast<double>(cap_per_item)) {
      out.x[i] += 1.0;
      --remainder;
    }
  }
  if (remainder > 0) {
    // Fractional mass sat on capped items; spread it anywhere with room.
    for (std::size_t i = 0; i < n && remainder > 0; ++i) {
      while (out.x[i] + 1.0 <= static_cast<double>(cap_per_item) &&
             remainder > 0) {
        out.x[i] += 1.0;
        --remainder;
      }
    }
  }
  if (remainder > 0) {
    throw std::invalid_argument("round_counts: total exceeds I * cap");
  }
  return out;
}

Placement place_counts(const ItemCounts& int_counts, NodeId num_servers,
                       int capacity_per_server, util::Rng& rng) {
  const auto num_items = static_cast<ItemId>(int_counts.x.size());
  Placement placement(num_items, num_servers, capacity_per_server);

  // Items in descending replica count; each takes the servers with the
  // most remaining capacity (ties shuffled) — feasible whenever
  // sum x_i <= rho |S| and x_i <= |S|.
  std::vector<ItemId> items(num_items);
  std::iota(items.begin(), items.end(), 0);
  std::stable_sort(items.begin(), items.end(), [&](ItemId a, ItemId b) {
    return int_counts.x[a] > int_counts.x[b];
  });

  std::vector<NodeId> servers(num_servers);
  std::iota(servers.begin(), servers.end(), 0);

  for (ItemId item : items) {
    const double want = int_counts.x[item];
    if (want != std::floor(want) || want < 0.0 ||
        want > static_cast<double>(num_servers)) {
      throw std::invalid_argument(
          "place_counts: counts must be integers in [0, |S|]");
    }
    const int copies = static_cast<int>(want);
    if (copies == 0) continue;
    rng.shuffle(servers);
    std::stable_sort(servers.begin(), servers.end(),
                     [&](NodeId a, NodeId b) {
                       return placement.server_load(a) <
                              placement.server_load(b);
                     });
    int placed = 0;
    for (NodeId s : servers) {
      if (placed == copies) break;
      if (!placement.server_full(s)) {
        placement.add(item, s);
        ++placed;
      }
    }
    if (placed != copies) {
      throw std::invalid_argument(
          "place_counts: infeasible counts (total exceeds rho * |S|)");
    }
  }
  return placement;
}

}  // namespace impatience::alloc
