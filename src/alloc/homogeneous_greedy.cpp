#include <cmath>
#include <queue>
#include <stdexcept>

#include "impatience/alloc/solvers.hpp"

namespace impatience::alloc {

namespace {

/// Marginal welfare of the (x+1)-th copy of an item with demand d.
/// Infinite marginals (first copy under a cost-type utility, where
/// item_gain(0) = -inf) are mapped to a huge finite value ordered by
/// demand so the greedy still prefers popular items inside that tier.
double marginal(const utility::DelayUtility& u, const HomogeneousModel& m,
                double d, int x) {
  const double before = item_gain(u, m, static_cast<double>(x));
  const double after = item_gain(u, m, static_cast<double>(x + 1));
  const double delta = d * (after - before);
  if (std::isfinite(delta)) return delta;
  if (delta > 0.0) return 1e280 * (1.0 + d);
  return -1e280;
}

/// UtilityOf: const DelayUtility& (ItemId)
template <typename UtilityOf>
ItemCounts greedy_impl(const std::vector<double>& demand,
                       UtilityOf&& utility_of, const HomogeneousModel& model,
                       int capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("homogeneous_greedy: negative capacity");
  }
  const auto num_items = demand.size();
  if (num_items == 0) {
    throw std::invalid_argument("homogeneous_greedy: no items");
  }
  ItemCounts counts;
  counts.x.assign(num_items, 0.0);

  struct Candidate {
    double delta;
    std::size_t item;
    int next_copy;  // the copy index this delta corresponds to
    bool operator<(const Candidate& other) const {
      return delta < other.delta;
    }
  };
  std::priority_queue<Candidate> heap;
  for (std::size_t i = 0; i < num_items; ++i) {
    if (model.num_servers >= 1) {
      heap.push({marginal(utility_of(static_cast<ItemId>(i)), model,
                          demand[i], 0),
                 i, 1});
    }
  }

  int placed = 0;
  std::vector<int> current(num_items, 0);
  while (placed < capacity && !heap.empty()) {
    const Candidate top = heap.top();
    heap.pop();
    if (top.next_copy != current[top.item] + 1) {
      continue;  // stale entry; a fresh one is already queued
    }
    if (top.delta <= 0.0) {
      break;  // adding more copies can only reduce welfare
    }
    current[top.item] = top.next_copy;
    counts.x[top.item] = top.next_copy;
    ++placed;
    if (top.next_copy < static_cast<int>(model.num_servers)) {
      heap.push({marginal(utility_of(static_cast<ItemId>(top.item)), model,
                          demand[top.item], top.next_copy),
                 top.item, top.next_copy + 1});
    }
  }
  return counts;
}

}  // namespace

ItemCounts homogeneous_greedy(const std::vector<double>& demand,
                              const utility::DelayUtility& u,
                              const HomogeneousModel& model, int capacity) {
  return greedy_impl(
      demand, [&u](ItemId) -> const utility::DelayUtility& { return u; },
      model, capacity);
}

ItemCounts homogeneous_greedy(const std::vector<double>& demand,
                              const utility::UtilitySet& utilities,
                              const HomogeneousModel& model, int capacity) {
  if (utilities.size() != demand.size()) {
    throw std::invalid_argument(
        "homogeneous_greedy: utility set size != item count");
  }
  return greedy_impl(
      demand,
      [&utilities](ItemId i) -> const utility::DelayUtility& {
        return utilities[i];
      },
      model, capacity);
}

}  // namespace impatience::alloc
