#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "impatience/alloc/heuristics.hpp"

namespace impatience::alloc {

ItemCounts proportional_with_cap(const std::vector<double>& weights,
                                 double capacity, double cap_per_item) {
  if (weights.empty() || !(capacity >= 0.0) || !(cap_per_item > 0.0)) {
    throw std::invalid_argument("proportional_with_cap: bad parameters");
  }
  if (capacity > cap_per_item * static_cast<double>(weights.size()) + 1e-9) {
    throw std::invalid_argument(
        "proportional_with_cap: capacity exceeds item-cap bound");
  }
  ItemCounts out;
  out.x.assign(weights.size(), 0.0);
  std::vector<char> capped(weights.size(), 0);
  double remaining = capacity;
  for (int round = 0; round < static_cast<int>(weights.size()) + 1; ++round) {
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (!capped[i]) {
        if (weights[i] < 0.0) {
          throw std::invalid_argument(
              "proportional_with_cap: negative weight");
        }
        weight_sum += weights[i];
      }
    }
    if (weight_sum <= 0.0 || remaining <= 1e-12) break;
    bool newly_capped = false;
    double used = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (capped[i]) continue;
      const double share = remaining * weights[i] / weight_sum;
      const double target = out.x[i] + share;
      if (target >= cap_per_item) {
        used += cap_per_item - out.x[i];
        out.x[i] = cap_per_item;
        capped[i] = 1;
        newly_capped = true;
      } else {
        out.x[i] = target;
        used += share;
      }
    }
    remaining -= used;
    if (!newly_capped) break;
  }
  return out;
}

ItemCounts uniform_allocation(std::size_t num_items, double capacity,
                              double cap_per_item) {
  return proportional_with_cap(std::vector<double>(num_items, 1.0), capacity,
                               cap_per_item);
}

ItemCounts sqrt_allocation(const std::vector<double>& demand, double capacity,
                           double cap_per_item) {
  std::vector<double> weights;
  weights.reserve(demand.size());
  for (double d : demand) {
    if (d < 0.0) throw std::invalid_argument("sqrt_allocation: bad demand");
    weights.push_back(std::sqrt(d));
  }
  return proportional_with_cap(weights, capacity, cap_per_item);
}

ItemCounts prop_allocation(const std::vector<double>& demand, double capacity,
                           double cap_per_item) {
  return proportional_with_cap(demand, capacity, cap_per_item);
}

ItemCounts dom_allocation(const std::vector<double>& demand, int rho,
                          double num_servers) {
  if (rho <= 0 || !(num_servers > 0.0)) {
    throw std::invalid_argument("dom_allocation: bad parameters");
  }
  if (static_cast<std::size_t>(rho) > demand.size()) {
    throw std::invalid_argument("dom_allocation: rho exceeds item count");
  }
  std::vector<std::size_t> order(demand.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return demand[a] > demand[b];
  });
  ItemCounts out;
  out.x.assign(demand.size(), 0.0);
  for (int k = 0; k < rho; ++k) out.x[order[static_cast<std::size_t>(k)]] =
      num_servers;
  return out;
}

}  // namespace impatience::alloc
