#include <algorithm>
#include <bit>
#include <stdexcept>

#include "gain_internal.hpp"
#include "impatience/alloc/oracle.hpp"
#include "impatience/utility/utility_set.hpp"

namespace impatience::alloc {

namespace {

void check_demand(std::size_t num_items, const std::vector<double>& demand) {
  if (demand.size() != num_items) {
    throw std::invalid_argument("MarginalOracle: demand size != item count");
  }
  for (double d : demand) {
    if (!(d >= 0.0)) {
      throw std::invalid_argument("MarginalOracle: demand must be non-negative");
    }
  }
}

}  // namespace

MarginalOracle::MarginalOracle(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::DelayUtility& u, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients, ItemId num_items,
    const std::optional<PopularityProfile>& popularity)
    : num_items_(num_items),
      num_servers_(static_cast<NodeId>(servers.size())),
      num_clients_(clients.size()),
      demand_(&demand) {
  if (num_items_ == 0) {
    throw std::invalid_argument("MarginalOracle: need at least one item");
  }
  check_demand(num_items_, demand);
  utility_.assign(num_items_, &u);
  memo_index_.assign(num_items_, 0);
  memos_.resize(1);
  empty_delta_.resize(1);
  empty_delta_valid_.resize(1);
  validate_and_index(rates, servers, clients, popularity);
}

MarginalOracle::MarginalOracle(
    const trace::RateMatrix& rates, const std::vector<double>& demand,
    const utility::UtilitySet& utilities, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients,
    const std::optional<PopularityProfile>& popularity)
    : num_items_(static_cast<ItemId>(utilities.size())),
      num_servers_(static_cast<NodeId>(servers.size())),
      num_clients_(clients.size()),
      demand_(&demand) {
  check_demand(num_items_, demand);
  // Behaviourally identical utilities share one transform memo.
  const auto canonical = utilities.duplicate_of();
  utility_.resize(num_items_);
  memo_index_.resize(num_items_);
  std::vector<std::size_t> slot_of(num_items_, SIZE_MAX);
  std::size_t slots = 0;
  for (ItemId i = 0; i < num_items_; ++i) {
    utility_[i] = &utilities[i];
    const std::size_t canon = canonical[i];
    if (slot_of[canon] == SIZE_MAX) slot_of[canon] = slots++;
    memo_index_[i] = slot_of[canon];
  }
  memos_.resize(slots);
  empty_delta_.resize(slots);
  empty_delta_valid_.resize(slots);
  validate_and_index(rates, servers, clients, popularity);
}

void MarginalOracle::validate_and_index(
    const trace::RateMatrix& rates, const std::vector<NodeId>& servers,
    const std::vector<NodeId>& clients,
    const std::optional<PopularityProfile>& popularity) {
  if (servers.empty()) {
    throw std::invalid_argument("MarginalOracle: empty server list");
  }
  if (clients.empty()) {
    throw std::invalid_argument("MarginalOracle: empty client list");
  }
  for (NodeId s : servers) {
    if (s >= rates.num_nodes()) {
      throw std::invalid_argument("MarginalOracle: server node id out of range");
    }
  }
  for (NodeId c : clients) {
    if (c >= rates.num_nodes()) {
      throw std::invalid_argument("MarginalOracle: client node id out of range");
    }
  }
  const std::size_t S = servers.size();
  const std::size_t C = num_clients_;
  rate_.resize(S * C);
  self_.resize(S * C);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t n = 0; n < C; ++n) {
      rate_[s * C + n] = rates.at(servers[s], clients[n]);
      self_[s * C + n] = servers[s] == clients[n] ? 1 : 0;
    }
  }
  uniform_pi_ = 1.0 / static_cast<double>(C);
  if (popularity) {
    if (popularity->pi.size() != num_items_) {
      throw std::invalid_argument(
          "MarginalOracle: popularity profile size mismatch");
    }
    pi_.resize(static_cast<std::size_t>(num_items_) * C);
    for (ItemId i = 0; i < num_items_; ++i) {
      if (popularity->pi[i].size() != C) {
        throw std::invalid_argument(
            "MarginalOracle: popularity row size != client count");
      }
      std::copy(popularity->pi[i].begin(), popularity->pi[i].end(),
                pi_.begin() + static_cast<std::size_t>(i) * C);
    }
  }
  holders_.resize(num_items_);
  M_.assign(static_cast<std::size_t>(num_items_) * C, 0.0);
  holds_.assign(static_cast<std::size_t>(num_items_) * C, 0);
  row_dirty_.assign(num_items_, 0);  // empty holder lists match the zero rows
  gain0_.assign(static_cast<std::size_t>(num_items_) * C, 0.0);
  gain0_dirty_.assign(num_items_, 1);
  item_welfare_.assign(num_items_, 0.0);
  welfare_dirty_.assign(num_items_, 1);
}

void MarginalOracle::check_ids(ItemId item, NodeId server) const {
  if (item >= num_items_) {
    throw std::out_of_range("MarginalOracle: item out of range");
  }
  if (server >= num_servers_) {
    throw std::out_of_range("MarginalOracle: server out of range");
  }
}

bool MarginalOracle::has(ItemId item, NodeId server) const {
  check_ids(item, server);
  const auto& h = holders_[item];
  return std::binary_search(h.begin(), h.end(), server);
}

void MarginalOracle::mark_dirty(ItemId item) {
  row_dirty_[item] = 1;
  gain0_dirty_[item] = 1;
  welfare_dirty_[item] = 1;
}

void MarginalOracle::sync_item(ItemId item) const {
  if (row_dirty_[item]) refresh_row(item);
}

void MarginalOracle::refresh_row(ItemId item) const {
  // Fold holder rates in ascending server order — the exact summation
  // order of the naive client_gain over Placement::holders() — so M is
  // bit-identical to what the naive evaluators compute. The recompute is
  // from scratch off the holder list, so any number of deferred
  // add/remove calls collapse into this one refresh.
  const std::size_t C = num_clients_;
  double* M = M_.data() + static_cast<std::size_t>(item) * C;
  std::uint16_t* holds = holds_.data() + static_cast<std::size_t>(item) * C;
  for (std::size_t n = 0; n < C; ++n) {
    double m = 0.0;
    std::uint16_t h = 0;
    for (NodeId s : holders_[item]) {
      const std::size_t idx = static_cast<std::size_t>(s) * C + n;
      if (self_[idx]) {
        ++h;
      } else {
        m += rate_[idx];
      }
    }
    M[n] = m;
    holds[n] = h;
  }
  row_dirty_[item] = 0;
  gain0_dirty_[item] = 1;
}

void MarginalOracle::refresh_gain0(ItemId item) const {
  const std::size_t C = num_clients_;
  const std::size_t base = static_cast<std::size_t>(item) * C;
  const utility::DelayUtility& u = *utility_[item];
  const std::size_t memo = memo_index_[item];
  const double* pi = pi_row(item);
  for (std::size_t n = 0; n < C; ++n) {
    // Clients the item is never requested from are skipped by every
    // evaluator (and must be: their gain may be undefined/throwing).
    if (pi && pi[n] == 0.0) continue;
    if (holds_[base + n] > 0) {
      gain0_[base + n] = detail::request_gain(u, M_[base + n], true);
    } else {
      gain0_[base + n] = memoized_gain(memo, u, M_[base + n]);
    }
  }
  gain0_dirty_[item] = 0;
}

double MarginalOracle::memoized_gain(std::size_t memo,
                                     const utility::DelayUtility& u,
                                     double M) const {
  const std::uint64_t key = std::bit_cast<std::uint64_t>(M);
  auto& map = memos_[memo];
  const auto it = map.find(key);
  if (it != map.end()) return it->second;
  // Compute before inserting so a throwing transform (unbounded utility)
  // never leaves a bogus cached value behind.
  const double gain = detail::request_gain(u, M, false);
  return map.emplace(key, gain).first->second;
}

double MarginalOracle::empty_delta(std::size_t memo,
                                   const utility::DelayUtility& u,
                                   NodeId server) const {
  auto& cache = empty_delta_[memo];
  auto& valid = empty_delta_valid_[memo];
  if (cache.empty()) {
    cache.assign(num_servers_, 0.0);
    valid.assign(num_servers_, 0);
  }
  if (!valid[server]) {
    // Same terms in the same client order as the generic marginal() loop
    // with M = 0 and holds = 0 everywhere, so the cached delta is
    // bit-identical to what that loop would return.
    const std::size_t C = num_clients_;
    const double* rate = rate_.data() + static_cast<std::size_t>(server) * C;
    const std::uint8_t* self =
        self_.data() + static_cast<std::size_t>(server) * C;
    double delta = 0.0;
    for (std::size_t n = 0; n < C; ++n) {
      const double gain0 = memoized_gain(memo, u, 0.0);
      const double after = self[n] ? detail::request_gain(u, 0.0, true)
                                   : memoized_gain(memo, u, rate[n]);
      delta += uniform_pi_ * (after - gain0);
    }
    cache[server] = delta;
    valid[server] = 1;
  }
  return cache[server];
}

double MarginalOracle::marginal(ItemId item, NodeId server) const {
  if (has(item, server)) {
    throw std::logic_error("MarginalOracle::marginal: replica already present");
  }
  if (holders_[item].empty() && pi_.empty()) {
    // Never reads the (possibly stale) M row: with no holders the delta
    // depends only on the rate submatrix and the utility.
    return (*demand_)[item] *
           empty_delta(memo_index_[item], *utility_[item], server);
  }
  sync_item(item);
  if (gain0_dirty_[item]) refresh_gain0(item);
  const std::size_t C = num_clients_;
  const utility::DelayUtility& u = *utility_[item];
  const std::size_t memo = memo_index_[item];
  const double* M = M_.data() + static_cast<std::size_t>(item) * C;
  const std::uint16_t* holds =
      holds_.data() + static_cast<std::size_t>(item) * C;
  const double* gain0 = gain0_.data() + static_cast<std::size_t>(item) * C;
  const double* rate = rate_.data() + static_cast<std::size_t>(server) * C;
  const std::uint8_t* self =
      self_.data() + static_cast<std::size_t>(server) * C;
  const double* pi = pi_row(item);
  double delta = 0.0;
  for (std::size_t n = 0; n < C; ++n) {
    const double p = pi ? pi[n] : uniform_pi_;
    if (p == 0.0) continue;
    double after;
    if (self[n] || holds[n] > 0) {
      after = detail::request_gain(u, M[n], true);
    } else {
      after = memoized_gain(memo, u, M[n] + rate[n]);
    }
    delta += p * (after - gain0[n]);
  }
  return (*demand_)[item] * delta;
}

void MarginalOracle::add(ItemId item, NodeId server) {
  check_ids(item, server);
  auto& h = holders_[item];
  const auto pos = std::lower_bound(h.begin(), h.end(), server);
  if (pos != h.end() && *pos == server) {
    throw std::logic_error("MarginalOracle::add: replica already present");
  }
  h.insert(pos, server);
  mark_dirty(item);
}

void MarginalOracle::remove(ItemId item, NodeId server) {
  check_ids(item, server);
  auto& h = holders_[item];
  const auto pos = std::lower_bound(h.begin(), h.end(), server);
  if (pos == h.end() || *pos != server) {
    throw std::logic_error("MarginalOracle::remove: replica absent");
  }
  h.erase(pos);
  mark_dirty(item);
}

void MarginalOracle::reset(const Placement& placement) {
  if (placement.num_items() != num_items_ ||
      placement.num_servers() != num_servers_) {
    throw std::invalid_argument(
        "MarginalOracle::reset: placement dimensions mismatch");
  }
  for (ItemId i = 0; i < num_items_; ++i) {
    holders_[i] = placement.holders(i);  // ascending by construction
    mark_dirty(i);
  }
}

double MarginalOracle::item_welfare_term(ItemId i) const {
  // The shared inner loop of welfare() and welfare_cached(): both fold
  // the exact same terms in the exact same client order, which is what
  // makes the cached total bitwise identical to the from-scratch one.
  const std::size_t C = num_clients_;
  const utility::DelayUtility& u = *utility_[i];
  const std::size_t base = static_cast<std::size_t>(i) * C;
  const double* pi = pi_row(i);
  // Row pointers hoisted out of the fold: the SoA rows are contiguous,
  // so the indexing below is a plain unit-stride walk.
  const double* M_row = M_.data() + base;
  const auto* holds_row = holds_.data() + base;
  double item_total = 0.0;
  for (std::size_t n = 0; n < C; ++n) {
    const double p = pi ? pi[n] : uniform_pi_;
    if (p == 0.0) continue;
    item_total += p * detail::request_gain(u, M_row[n], holds_row[n] > 0);
  }
  return item_total;
}

double MarginalOracle::welfare() const {
  double total = 0.0;
  for (ItemId i = 0; i < num_items_; ++i) {
    const double d = (*demand_)[i];
    if (d == 0.0) continue;
    sync_item(i);
    total += d * item_welfare_term(i);
  }
  return total;
}

double MarginalOracle::welfare_cached() const {
  double total = 0.0;
  for (ItemId i = 0; i < num_items_; ++i) {
    const double d = (*demand_)[i];
    if (d == 0.0) continue;
    if (welfare_dirty_[i]) {
      sync_item(i);
      item_welfare_[i] = item_welfare_term(i);
      welfare_dirty_[i] = 0;
    }
    total += d * item_welfare_[i];
  }
  return total;
}

}  // namespace impatience::alloc
