#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "impatience/alloc/solvers.hpp"
#include "impatience/util/math.hpp"

namespace impatience::alloc {

namespace {

/// UtilityOf: const DelayUtility& (ItemId)
template <typename UtilityOf>
ItemCounts relaxed_impl(const std::vector<double>& demand,
                        UtilityOf&& utility_of, double mu,
                        double num_servers, double capacity) {
  if (!(mu > 0.0) || !(num_servers > 0.0) || !(capacity > 0.0)) {
    throw std::invalid_argument("relaxed_optimum: bad parameters");
  }
  const auto num_items = demand.size();
  if (num_items == 0) {
    throw std::invalid_argument("relaxed_optimum: no items");
  }
  if (capacity > num_servers * static_cast<double>(num_items)) {
    throw std::invalid_argument(
        "relaxed_optimum: capacity exceeds I * |S| (infeasible bound)");
  }

  // x small enough to act as "0 copies" without leaving phi's domain.
  constexpr double kXMin = 1e-9;

  // Per-item allocation at multiplier lambda: d_i phi_i(x_i) = lambda,
  // clamped to [0, |S|].
  auto x_of_lambda = [&](std::size_t i, double lambda) {
    const double d = demand[i];
    if (d <= 0.0) return 0.0;
    const utility::DelayUtility& u = utility_of(static_cast<ItemId>(i));
    if (lambda >= d * utility::phi(u, mu, kXMin)) return 0.0;
    if (lambda <= d * utility::phi(u, mu, num_servers)) return num_servers;
    return util::invert_decreasing(
        [&](double xx) { return d * utility::phi(u, mu, xx); }, lambda,
        kXMin, num_servers);
  };
  auto total_of_lambda = [&](double lambda) {
    double total = 0.0;
    for (std::size_t i = 0; i < num_items; ++i) {
      total += x_of_lambda(i, lambda);
    }
    return total;
  };

  double lambda_hi = 0.0;     // drives every x to 0
  double lambda_lo = std::numeric_limits<double>::infinity();
  bool any_positive = false;
  for (std::size_t i = 0; i < num_items; ++i) {
    if (demand[i] <= 0.0) continue;
    any_positive = true;
    const utility::DelayUtility& u = utility_of(static_cast<ItemId>(i));
    lambda_hi =
        std::max(lambda_hi, demand[i] * utility::phi(u, mu, kXMin) * 2.0);
    lambda_lo = std::min(
        lambda_lo, demand[i] * utility::phi(u, mu, num_servers) * 0.5);
  }
  if (!any_positive) {
    throw std::invalid_argument("relaxed_optimum: all demands are zero");
  }

  if (total_of_lambda(lambda_lo) < capacity) {
    // Even the most generous multiplier cannot reach the capacity; the
    // boundary clamp x_i = |S| binds for every item (Property 1's "or"
    // branches). Return the clamped solution.
    ItemCounts out;
    out.x.assign(num_items, 0.0);
    for (std::size_t i = 0; i < num_items; ++i) {
      out.x[i] = demand[i] > 0.0 ? num_servers : 0.0;
    }
    return out;
  }

  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lambda_lo + lambda_hi);
    const double total = total_of_lambda(mid);
    if (std::abs(total - capacity) <= 1e-9 * capacity) {
      lambda_lo = lambda_hi = mid;
      break;
    }
    if (total > capacity) {
      lambda_lo = mid;
    } else {
      lambda_hi = mid;
    }
  }
  const double lambda = 0.5 * (lambda_lo + lambda_hi);

  ItemCounts out;
  out.x.reserve(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    out.x.push_back(x_of_lambda(i, lambda));
  }
  return out;
}

}  // namespace

ItemCounts relaxed_optimum(const std::vector<double>& demand,
                           const utility::DelayUtility& u, double mu,
                           double num_servers, double capacity) {
  return relaxed_impl(
      demand, [&u](ItemId) -> const utility::DelayUtility& { return u; },
      mu, num_servers, capacity);
}

ItemCounts relaxed_optimum(const std::vector<double>& demand,
                           const utility::UtilitySet& utilities, double mu,
                           double num_servers, double capacity) {
  if (utilities.size() != demand.size()) {
    throw std::invalid_argument(
        "relaxed_optimum: utility set size != item count");
  }
  return relaxed_impl(
      demand,
      [&utilities](ItemId i) -> const utility::DelayUtility& {
        return utilities[i];
      },
      mu, num_servers, capacity);
}

}  // namespace impatience::alloc
