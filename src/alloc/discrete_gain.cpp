#include "impatience/alloc/discrete_gain.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace impatience::alloc {
namespace {

void validate(const DiscreteGainModel& m) {
  if (!(m.mu >= 0.0) || !(m.mu <= 1.0)) {
    throw std::invalid_argument("DiscreteGainModel: mu must be in [0, 1]");
  }
  if (!(m.num_nodes >= 1.0)) {
    throw std::invalid_argument("DiscreteGainModel: num_nodes must be >= 1");
  }
  if (m.horizon <= 0) {
    throw std::invalid_argument("DiscreteGainModel: horizon must be > 0");
  }
  if (!(m.tail_epsilon >= 0.0)) {
    throw std::invalid_argument(
        "DiscreteGainModel: tail_epsilon must be >= 0");
  }
}

double bounded_value_at_zero(const utility::DelayUtility& u) {
  if (!u.bounded_at_zero()) {
    throw std::domain_error(
        "discrete_gain: pure P2P requires h(0+) bounded (utility '" +
        u.name() + "' diverges at zero)");
  }
  return u.value_at_zero();
}

// S(q) over precomputed h[k] (h[k] = u.value(k), valid for k in
// [1, k_stop + 1]). The censoring coefficient always uses the true
// horizon T; k_stop only bounds the loop (terms past it carry survival
// weight below the caller's eps, or exactly zero when q = 1). Also
// breaks early once (1-q)^(k-1) drops below eps.
double censored_sum(const std::vector<double>& h, double q,
                    trace::Slot horizon, trace::Slot k_stop, double eps) {
  const double T = static_cast<double>(horizon);
  const double p = 1.0 - q;
  double survive = 1.0;  // (1-q)^(k-1)
  double sum = 0.0;
  for (trace::Slot k = 1; k <= k_stop; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    sum += survive *
           (q * (T - static_cast<double>(k) + 1.0) * h[ki] + p * h[ki + 1]);
    survive *= p;
    if (survive < eps && k > 8) break;
  }
  return sum;
}

}  // namespace

double censored_geometric_gain(const utility::DelayUtility& u, double q,
                               trace::Slot horizon, double tail_epsilon) {
  if (horizon <= 0) {
    throw std::invalid_argument(
        "censored_geometric_gain: horizon must be > 0");
  }
  if (!(q >= 0.0) || !(q <= 1.0)) {
    throw std::invalid_argument(
        "censored_geometric_gain: hazard must be in [0, 1]");
  }
  // Bound how far the sum reaches before the eps cut so h is only
  // evaluated where needed: (1-q)^(k-1) >= eps  <=>
  // k <= 1 + ln(eps)/ln(1-q).
  trace::Slot k_max = horizon;
  if (q >= 1.0) {
    k_max = 1;  // deterministic fulfilment at the first opportunity
  } else if (q > 0.0 && tail_epsilon > 0.0) {
    const double lp = std::log1p(-q);
    const double reach = 1.0 + std::log(tail_epsilon) / lp;
    if (reach < static_cast<double>(horizon)) {
      k_max = std::max<trace::Slot>(static_cast<trace::Slot>(reach) + 2, 16);
      k_max = std::min(k_max, horizon);
    }
  }
  std::vector<double> h(static_cast<std::size_t>(k_max) + 2, 0.0);
  for (trace::Slot k = 1; k <= k_max + 1; ++k) {
    h[static_cast<std::size_t>(k)] = u.value(static_cast<double>(k));
  }
  return censored_sum(h, q, horizon, k_max, tail_epsilon) /
         static_cast<double>(horizon);
}

double item_gain_discrete(const utility::DelayUtility& u,
                          const DiscreteGainModel& m, double x) {
  validate(m);
  if (!(x >= 0.0)) {
    throw std::invalid_argument("item_gain_discrete: x must be >= 0");
  }
  const double h0 = bounded_value_at_zero(u);
  const double xc = std::min(x, m.num_nodes);
  const double q = 1.0 - std::pow(1.0 - m.mu, xc);
  const double immediate = xc / m.num_nodes;
  return immediate * h0 +
         (1.0 - immediate) *
             censored_geometric_gain(u, q, m.horizon, m.tail_epsilon);
}

DiscreteGainTable::DiscreteGainTable(const utility::DelayUtility& u,
                                     const DiscreteGainModel& m,
                                     long max_replicas) {
  validate(m);
  if (max_replicas < 0) {
    throw std::invalid_argument(
        "DiscreteGainTable: max_replicas must be >= 0");
  }
  const double h0 = bounded_value_at_zero(u);
  // h(k) shared across every x; the x = 0 row alone reaches k = T.
  std::vector<double> h(static_cast<std::size_t>(m.horizon) + 2, 0.0);
  for (trace::Slot k = 1; k <= m.horizon + 1; ++k) {
    h[static_cast<std::size_t>(k)] = u.value(static_cast<double>(k));
  }
  gain_.resize(static_cast<std::size_t>(max_replicas) + 1);
  double miss = 1.0;  // (1 - mu)^x, updated incrementally
  for (long x = 0; x <= max_replicas; ++x) {
    const double q = 1.0 - miss;
    const double immediate =
        std::min(static_cast<double>(x), m.num_nodes) / m.num_nodes;
    gain_[static_cast<std::size_t>(x)] =
        immediate * h0 +
        (1.0 - immediate) *
            censored_sum(h, q, m.horizon, m.horizon, m.tail_epsilon) /
            static_cast<double>(m.horizon);
    miss *= 1.0 - m.mu;
  }
}

double DiscreteGainTable::gain(double x) const {
  if (x <= 0.0) return gain_.front();
  const auto max_x = static_cast<double>(max_replicas());
  if (x >= max_x) return gain_.back();
  const double lo = std::floor(x);
  const auto k = static_cast<std::size_t>(lo);
  const double frac = x - lo;
  return gain_[k] + frac * (gain_[k + 1] - gain_[k]);
}

double DiscreteGainTable::marginal(long x) const {
  if (x < 0 || x >= max_replicas()) {
    throw std::out_of_range("DiscreteGainTable::marginal: x out of range");
  }
  const auto k = static_cast<std::size_t>(x);
  return gain_[k + 1] - gain_[k];
}

double DiscreteGainTable::welfare_rate(
    const ItemCounts& counts, const std::vector<double>& demand) const {
  if (counts.x.size() != demand.size()) {
    throw std::invalid_argument(
        "DiscreteGainTable::welfare_rate: counts/demand size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    total += demand[i] * gain(counts.x[i]);
  }
  return total;
}

double welfare_homogeneous_discrete(const ItemCounts& counts,
                                    const std::vector<double>& demand,
                                    const utility::DelayUtility& u,
                                    const DiscreteGainModel& m) {
  validate(m);
  const double h0 = bounded_value_at_zero(u);
  if (counts.x.size() != demand.size()) {
    throw std::invalid_argument(
        "welfare_homogeneous_discrete: counts/demand size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    const double xc = std::min(std::max(counts.x[i], 0.0), m.num_nodes);
    const double q = 1.0 - std::pow(1.0 - m.mu, xc);
    const double immediate = xc / m.num_nodes;
    total += demand[i] *
             (immediate * h0 +
              (1.0 - immediate) *
                  censored_geometric_gain(u, q, m.horizon, m.tail_epsilon));
  }
  return total;
}

}  // namespace impatience::alloc
