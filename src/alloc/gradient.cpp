#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "impatience/alloc/solvers.hpp"
#include "impatience/util/math.hpp"

namespace impatience::alloc {

namespace {

/// Euclidean projection onto {0 <= x_i <= hi, sum x_i = total}: shift all
/// coordinates by a common tau and clamp; tau found by bisection (the
/// clamped sum is decreasing in tau).
void project(std::vector<double>& x, double hi, double total) {
  double lo_tau = -hi, hi_tau = 0.0;
  for (double v : x) {
    lo_tau = std::min(lo_tau, v - hi);
    hi_tau = std::max(hi_tau, v);
  }
  auto clamped_sum = [&](double tau) {
    double s = 0.0;
    for (double v : x) s += std::clamp(v - tau, 0.0, hi);
    return s;
  };
  // Widen until the bracket covers `total`.
  while (clamped_sum(lo_tau) < total) lo_tau -= hi + 1.0;
  while (clamped_sum(hi_tau) > total) hi_tau += hi + 1.0;
  for (int it = 0; it < 200 && hi_tau - lo_tau > 1e-13 * (1.0 + hi); ++it) {
    const double mid = 0.5 * (lo_tau + hi_tau);
    if (clamped_sum(mid) > total) {
      lo_tau = mid;
    } else {
      hi_tau = mid;
    }
  }
  const double tau = 0.5 * (lo_tau + hi_tau);
  for (double& v : x) v = std::clamp(v - tau, 0.0, hi);
}

template <typename UtilityOf>
ItemCounts gradient_impl(const std::vector<double>& demand,
                         UtilityOf&& utility_of, double mu,
                         double num_servers, double capacity,
                         const GradientOptions& options) {
  if (!(mu > 0.0) || !(num_servers > 0.0) || !(capacity > 0.0)) {
    throw std::invalid_argument("relaxed_gradient: bad parameters");
  }
  const auto n = demand.size();
  if (n == 0) {
    throw std::invalid_argument("relaxed_gradient: no items");
  }
  if (capacity > num_servers * static_cast<double>(n)) {
    throw std::invalid_argument("relaxed_gradient: infeasible capacity");
  }
  constexpr double kXMin = 1e-9;
  constexpr double kGradCap = 1e9;

  auto welfare = [&](const std::vector<double>& x) {
    double total = 0.0;
    HomogeneousModel m{mu, static_cast<NodeId>(num_servers),
                       static_cast<NodeId>(num_servers),
                       SystemMode::kDedicated};
    for (std::size_t i = 0; i < n; ++i) {
      if (demand[i] == 0.0) continue;
      total += demand[i] * item_gain(utility_of(static_cast<ItemId>(i)), m,
                                     std::max(x[i], kXMin));
    }
    return total;
  };

  // Uniform feasible start.
  std::vector<double> x(n, capacity / static_cast<double>(n));
  project(x, num_servers, capacity);
  std::vector<double> best = x;
  double best_welfare = welfare(x);

  std::vector<double> grad(n, 0.0);
  for (int t = 0; t < options.max_iterations; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      if (demand[i] == 0.0) {
        grad[i] = 0.0;
        continue;
      }
      const double g = demand[i] * utility::phi(utility_of(
                                                    static_cast<ItemId>(i)),
                                                mu, std::max(x[i], kXMin));
      grad[i] = std::min(g, kGradCap);
    }
    // Normalize the gradient so the step size is scale-free.
    double norm = 0.0;
    for (double g : grad) norm += g * g;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    // Diminishing step on the normalized gradient: scale-free and
    // convergent for concave objectives.
    const double eta =
        options.step * capacity / std::sqrt(1.0 + static_cast<double>(t));

    std::vector<double> next = x;
    for (std::size_t i = 0; i < n; ++i) next[i] += eta * grad[i] / norm;
    project(next, num_servers, capacity);

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      delta = std::max(delta, std::abs(next[i] - x[i]));
    }
    x = std::move(next);
    const double w = welfare(x);
    if (w > best_welfare) {
      best_welfare = w;
      best = x;
    }
    if (delta < options.tolerance) break;
  }
  ItemCounts out;
  out.x = std::move(best);
  return out;
}

}  // namespace

ItemCounts relaxed_gradient(const std::vector<double>& demand,
                            const utility::DelayUtility& u, double mu,
                            double num_servers, double capacity,
                            const GradientOptions& options) {
  return gradient_impl(
      demand,
      [&u](ItemId) -> const utility::DelayUtility& { return u; }, mu,
      num_servers, capacity, options);
}

ItemCounts relaxed_gradient(const std::vector<double>& demand,
                            const utility::UtilitySet& utilities, double mu,
                            double num_servers, double capacity,
                            const GradientOptions& options) {
  if (utilities.size() != demand.size()) {
    throw std::invalid_argument(
        "relaxed_gradient: utility set size != item count");
  }
  return gradient_impl(
      demand,
      [&utilities](ItemId i) -> const utility::DelayUtility& {
        return utilities[i];
      },
      mu, num_servers, capacity, options);
}

}  // namespace impatience::alloc
