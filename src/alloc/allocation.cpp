#include <numeric>
#include <stdexcept>

#include "impatience/alloc/allocation.hpp"

namespace impatience::alloc {

double ItemCounts::total() const noexcept {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

Placement::Placement(ItemId num_items, NodeId num_servers,
                     int capacity_per_server)
    : num_items_(num_items),
      num_servers_(num_servers),
      capacity_(capacity_per_server) {
  if (num_items == 0 || num_servers == 0 || capacity_per_server <= 0) {
    throw std::invalid_argument("Placement: bad dimensions");
  }
  has_.assign(static_cast<std::size_t>(num_items) * num_servers, 0);
  load_.assign(num_servers, 0);
  count_.assign(num_items, 0);
}

bool Placement::has(ItemId item, NodeId server) const {
  if (item >= num_items_ || server >= num_servers_) {
    throw std::out_of_range("Placement::has: index out of range");
  }
  return has_[index(item, server)] != 0;
}

void Placement::add(ItemId item, NodeId server) {
  if (has(item, server)) {
    throw std::logic_error("Placement::add: replica already present");
  }
  if (server_full(server)) {
    throw std::logic_error("Placement::add: server is full");
  }
  has_[index(item, server)] = 1;
  ++load_[server];
  ++count_[item];
}

void Placement::remove(ItemId item, NodeId server) {
  if (!has(item, server)) {
    throw std::logic_error("Placement::remove: replica absent");
  }
  has_[index(item, server)] = 0;
  --load_[server];
  --count_[item];
}

int Placement::server_load(NodeId server) const {
  if (server >= num_servers_) {
    throw std::out_of_range("Placement::server_load: bad server");
  }
  return load_[server];
}

int Placement::count(ItemId item) const {
  if (item >= num_items_) {
    throw std::out_of_range("Placement::count: bad item");
  }
  return count_[item];
}

ItemCounts Placement::counts() const {
  ItemCounts out;
  out.x.reserve(num_items_);
  for (ItemId i = 0; i < num_items_; ++i) {
    out.x.push_back(static_cast<double>(count_[i]));
  }
  return out;
}

std::vector<NodeId> Placement::holders(ItemId item) const {
  std::vector<NodeId> out;
  for (NodeId s = 0; s < num_servers_; ++s) {
    if (has_[index(item, s)]) out.push_back(s);
  }
  return out;
}

}  // namespace impatience::alloc
