#include <cmath>
#include <stdexcept>

#include "gain_internal.hpp"
#include "impatience/alloc/oracle.hpp"
#include "impatience/alloc/welfare.hpp"

namespace impatience::alloc {

namespace {

using detail::request_gain;
using utility::DelayUtility;

void check_demand(std::size_t num_items, const std::vector<double>& demand) {
  if (demand.size() != num_items) {
    throw std::invalid_argument("welfare: demand size != item count");
  }
  for (double d : demand) {
    if (!(d >= 0.0)) {
      throw std::invalid_argument("welfare: demand must be non-negative");
    }
  }
}

struct HeterogeneousContext {
  const Placement& placement;
  const trace::RateMatrix& rates;
  const std::vector<NodeId>& servers;
  const std::vector<NodeId>& clients;
};

HeterogeneousContext make_context(const Placement& placement,
                                  const trace::RateMatrix& rates,
                                  const std::vector<NodeId>& servers,
                                  const std::vector<NodeId>& clients) {
  if (servers.size() != placement.num_servers()) {
    throw std::invalid_argument(
        "welfare: server list size != placement server count");
  }
  if (clients.empty()) {
    throw std::invalid_argument("welfare: empty client list");
  }
  for (NodeId s : servers) {
    if (s >= rates.num_nodes()) {
      throw std::invalid_argument("welfare: server node id out of range");
    }
  }
  for (NodeId c : clients) {
    if (c >= rates.num_nodes()) {
      throw std::invalid_argument("welfare: client node id out of range");
    }
  }
  return HeterogeneousContext{placement, rates, servers, clients};
}

/// Gain of a request for an item issued at client index n, given the
/// item's holder list.
double client_gain(const HeterogeneousContext& ctx, const DelayUtility& u,
                   const std::vector<NodeId>& holders, std::size_t n) {
  const NodeId client_node = ctx.clients[n];
  double M = 0.0;
  bool client_holds = false;
  for (NodeId s : holders) {
    const NodeId holder_node = ctx.servers[s];
    if (holder_node == client_node) {
      client_holds = true;
    } else {
      M += ctx.rates.at(holder_node, client_node);
    }
  }
  return request_gain(u, M, client_holds);
}

/// UtilityOf: const DelayUtility& (ItemId)
template <typename UtilityOf>
double welfare_homogeneous_impl(const ItemCounts& counts,
                                const std::vector<double>& demand,
                                UtilityOf&& utility_of,
                                const HomogeneousModel& m) {
  check_demand(counts.num_items(), demand);
  double total = 0.0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (demand[i] == 0.0) continue;
    total += demand[i] *
             item_gain(utility_of(static_cast<ItemId>(i)), m, counts.x[i]);
  }
  return total;
}

template <typename UtilityOf>
double marginal_gain_impl(const Placement& placement,
                          const trace::RateMatrix& rates,
                          const std::vector<double>& demand,
                          UtilityOf&& utility_of,
                          const std::vector<NodeId>& servers,
                          const std::vector<NodeId>& clients, ItemId item,
                          NodeId server,
                          const std::optional<PopularityProfile>& popularity) {
  check_demand(placement.num_items(), demand);
  const auto ctx = make_context(placement, rates, servers, clients);
  if (placement.has(item, server)) {
    throw std::logic_error("marginal_gain: replica already present");
  }
  if (popularity && popularity->pi.size() != placement.num_items()) {
    throw std::invalid_argument(
        "marginal_gain: popularity profile size mismatch");
  }
  const DelayUtility& u = utility_of(item);
  auto holders = placement.holders(item);
  const double uniform_pi = 1.0 / static_cast<double>(clients.size());
  double delta = 0.0;
  for (std::size_t n = 0; n < clients.size(); ++n) {
    const double pi = popularity ? popularity->pi[item][n] : uniform_pi;
    if (pi == 0.0) continue;
    const double before = client_gain(ctx, u, holders, n);
    holders.push_back(server);
    const double after = client_gain(ctx, u, holders, n);
    holders.pop_back();
    delta += pi * (after - before);
  }
  return demand[item] * delta;
}

void check_set_size(const utility::UtilitySet& utilities,
                    std::size_t num_items) {
  if (utilities.size() != num_items) {
    throw std::invalid_argument("welfare: utility set size != item count");
  }
}

}  // namespace

double item_gain(const DelayUtility& u, const HomogeneousModel& m, double x) {
  if (!(m.mu > 0.0) || m.num_servers == 0) {
    throw std::invalid_argument("item_gain: bad model");
  }
  if (x <= 0.0) return u.value_at_inf();
  if (m.mode == SystemMode::kDedicated) {
    return u.expected_gain(m.mu * x);
  }
  // Pure P2P, Eq. (5): h(0+) - (1 - x/N) L(mu x).
  if (!u.bounded_at_zero()) {
    throw std::domain_error(
        "item_gain: unbounded-at-zero utilities require the dedicated-node "
        "case (paper Section 3.2)");
  }
  const double n = static_cast<double>(m.num_clients);
  const double self = std::min(x / n, 1.0);
  return u.value_at_zero() - (1.0 - self) * u.loss_transform(m.mu * x);
}

double welfare_homogeneous(const ItemCounts& counts,
                           const std::vector<double>& demand,
                           const utility::DelayUtility& u,
                           const HomogeneousModel& m) {
  return welfare_homogeneous_impl(
      counts, demand, [&u](ItemId) -> const DelayUtility& { return u; }, m);
}

double welfare_homogeneous(const ItemCounts& counts,
                           const std::vector<double>& demand,
                           const utility::UtilitySet& utilities,
                           const HomogeneousModel& m) {
  check_set_size(utilities, counts.num_items());
  return welfare_homogeneous_impl(
      counts, demand,
      [&utilities](ItemId i) -> const DelayUtility& { return utilities[i]; },
      m);
}

double welfare_heterogeneous(
    const Placement& placement, const trace::RateMatrix& rates,
    const std::vector<double>& demand, const utility::DelayUtility& u,
    const std::vector<NodeId>& servers, const std::vector<NodeId>& clients,
    const std::optional<PopularityProfile>& popularity) {
  if (servers.size() != placement.num_servers()) {
    throw std::invalid_argument(
        "welfare: server list size != placement server count");
  }
  if (clients.empty()) {
    throw std::invalid_argument("welfare: empty client list");
  }
  MarginalOracle oracle(rates, demand, u, servers, clients,
                        placement.num_items(), popularity);
  oracle.reset(placement);
  return oracle.welfare();
}

double welfare_heterogeneous(
    const Placement& placement, const trace::RateMatrix& rates,
    const std::vector<double>& demand, const utility::UtilitySet& utilities,
    const std::vector<NodeId>& servers, const std::vector<NodeId>& clients,
    const std::optional<PopularityProfile>& popularity) {
  check_set_size(utilities, placement.num_items());
  if (servers.size() != placement.num_servers()) {
    throw std::invalid_argument(
        "welfare: server list size != placement server count");
  }
  if (clients.empty()) {
    throw std::invalid_argument("welfare: empty client list");
  }
  MarginalOracle oracle(rates, demand, utilities, servers, clients,
                        popularity);
  oracle.reset(placement);
  return oracle.welfare();
}

double welfare_pure_p2p(const Placement& placement,
                        const trace::RateMatrix& rates,
                        const std::vector<double>& demand,
                        const utility::DelayUtility& u) {
  std::vector<NodeId> nodes(rates.num_nodes());
  for (NodeId n = 0; n < rates.num_nodes(); ++n) nodes[n] = n;
  return welfare_heterogeneous(placement, rates, demand, u, nodes, nodes);
}

double marginal_gain(const Placement& placement,
                     const trace::RateMatrix& rates,
                     const std::vector<double>& demand,
                     const utility::DelayUtility& u,
                     const std::vector<NodeId>& servers,
                     const std::vector<NodeId>& clients, ItemId item,
                     NodeId server,
                     const std::optional<PopularityProfile>& popularity) {
  return marginal_gain_impl(
      placement, rates, demand,
      [&u](ItemId) -> const DelayUtility& { return u; }, servers, clients,
      item, server, popularity);
}

double marginal_gain(const Placement& placement,
                     const trace::RateMatrix& rates,
                     const std::vector<double>& demand,
                     const utility::UtilitySet& utilities,
                     const std::vector<NodeId>& servers,
                     const std::vector<NodeId>& clients, ItemId item,
                     NodeId server,
                     const std::optional<PopularityProfile>& popularity) {
  check_set_size(utilities, placement.num_items());
  return marginal_gain_impl(
      placement, rates, demand,
      [&utilities](ItemId i) -> const DelayUtility& { return utilities[i]; },
      servers, clients, item, server, popularity);
}

}  // namespace impatience::alloc
