#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "impatience/trace/mobility.hpp"

namespace impatience::trace {

RandomWaypointModel::RandomWaypointModel(const RandomWaypointParams& params,
                                         util::Rng& rng)
    : params_(params), rng_(&rng) {
  if (params.num_nodes == 0 || !(params.area_size > 0.0) ||
      !(params.speed_min > 0.0) || params.speed_max < params.speed_min ||
      !(params.slot_seconds > 0.0)) {
    throw std::invalid_argument("RandomWaypointModel: bad parameters");
  }
  hotspots_.reserve(static_cast<std::size_t>(std::max(0, params.num_hotspots)));
  for (int h = 0; h < params.num_hotspots; ++h) {
    hotspots_.push_back({rng.uniform(0.0, params.area_size),
                         rng.uniform(0.0, params.area_size)});
  }
  positions_.resize(params.num_nodes);
  waypoints_.resize(params.num_nodes);
  speeds_.assign(params.num_nodes, 0.0);
  pause_left_s_.assign(params.num_nodes, 0.0);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    positions_[i] = {rng.uniform(0.0, params.area_size),
                     rng.uniform(0.0, params.area_size)};
    pick_waypoint(i);
  }
}

void RandomWaypointModel::pick_waypoint(std::size_t node) {
  Position wp;
  if (!hotspots_.empty() && rng_->bernoulli(params_.hotspot_prob)) {
    const auto h = rng_->uniform_index(hotspots_.size());
    wp.x = hotspots_[h].x + rng_->normal(0.0, params_.hotspot_sigma);
    wp.y = hotspots_[h].y + rng_->normal(0.0, params_.hotspot_sigma);
    wp.x = std::clamp(wp.x, 0.0, params_.area_size);
    wp.y = std::clamp(wp.y, 0.0, params_.area_size);
  } else {
    wp = {rng_->uniform(0.0, params_.area_size),
          rng_->uniform(0.0, params_.area_size)};
  }
  waypoints_[node] = wp;
  speeds_[node] = rng_->uniform(params_.speed_min, params_.speed_max);
}

void RandomWaypointModel::step() {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    double budget_s = params_.slot_seconds;
    while (budget_s > 0.0) {
      if (pause_left_s_[i] > 0.0) {
        const double pause = std::min(pause_left_s_[i], budget_s);
        pause_left_s_[i] -= pause;
        budget_s -= pause;
        continue;
      }
      const double dx = waypoints_[i].x - positions_[i].x;
      const double dy = waypoints_[i].y - positions_[i].y;
      const double dist = std::hypot(dx, dy);
      const double reach = speeds_[i] * budget_s;
      if (reach >= dist) {
        // Arrive at the waypoint, pause, then pick the next one.
        positions_[i] = waypoints_[i];
        budget_s -= (speeds_[i] > 0.0 ? dist / speeds_[i] : budget_s);
        pause_left_s_[i] =
            params_.pause_mean_s > 0.0
                ? rng_->exponential(1.0 / params_.pause_mean_s)
                : 0.0;
        pick_waypoint(i);
      } else {
        positions_[i].x += dx / dist * reach;
        positions_[i].y += dy / dist * reach;
        budget_s = 0.0;
      }
    }
  }
}

ContactTrace generate_mobility_trace(const RandomWaypointParams& params,
                                     Slot duration, double contact_range,
                                     util::Rng& rng) {
  if (duration <= 0 || !(contact_range > 0.0)) {
    throw std::invalid_argument("generate_mobility_trace: bad parameters");
  }
  RandomWaypointModel model(params, rng);
  const NodeId n = params.num_nodes;
  const double range2 = contact_range * contact_range;
  std::vector<char> in_contact(static_cast<std::size_t>(n) * n, 0);

  // Duty cycle: per-node on/off alternation with exponential durations.
  const bool has_duty_cycle =
      params.duty_off_mean_s > 0.0 && params.duty_on_mean_s > 0.0;
  std::vector<char> on_duty(n, 1);
  std::vector<double> duty_left_s(n, 0.0);
  if (has_duty_cycle) {
    for (NodeId i = 0; i < n; ++i) {
      // Start in the stationary mix of the on/off alternation.
      const double p_on = params.duty_on_mean_s /
                          (params.duty_on_mean_s + params.duty_off_mean_s);
      on_duty[i] = rng.bernoulli(p_on) ? 1 : 0;
      duty_left_s[i] = rng.exponential(
          1.0 / (on_duty[i] ? params.duty_on_mean_s
                            : params.duty_off_mean_s));
    }
  }

  std::vector<ContactEvent> events;
  for (Slot s = 0; s < duration; ++s) {
    model.step();
    if (has_duty_cycle) {
      for (NodeId i = 0; i < n; ++i) {
        duty_left_s[i] -= params.slot_seconds;
        if (duty_left_s[i] <= 0.0) {
          on_duty[i] = on_duty[i] ? 0 : 1;
          duty_left_s[i] = rng.exponential(
              1.0 / (on_duty[i] ? params.duty_on_mean_s
                                : params.duty_off_mean_s));
        }
      }
    }
    const auto& pos = model.positions();
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
        char& state = in_contact[static_cast<std::size_t>(a) * n + b];
        if (!on_duty[a] || !on_duty[b]) {
          state = 0;  // parked vehicles make no contacts
          continue;
        }
        const double dx = pos[a].x - pos[b].x;
        const double dy = pos[a].y - pos[b].y;
        const bool close = dx * dx + dy * dy <= range2;
        if (close && !state) events.push_back({s, a, b});
        state = close ? 1 : 0;
      }
    }
  }
  return ContactTrace(n, duration, std::move(events));
}

}  // namespace impatience::trace
