#include <stdexcept>

#include "impatience/trace/generators.hpp"

namespace impatience::trace {

int community_of(NodeId node, int num_communities) {
  if (num_communities <= 0) {
    throw std::invalid_argument("community_of: need >= 1 community");
  }
  return static_cast<int>(node % static_cast<NodeId>(num_communities));
}

ContactTrace generate_community_trace(const CommunityTraceParams& params,
                                      util::Rng& rng) {
  if (params.num_nodes < 2 || params.num_communities <= 0 ||
      params.intra_rate < 0.0 || params.inter_rate < 0.0) {
    throw std::invalid_argument("generate_community_trace: bad parameters");
  }
  RateMatrix rates(params.num_nodes);
  for (NodeId a = 0; a < params.num_nodes; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < params.num_nodes; ++b) {
      const bool same = community_of(a, params.num_communities) ==
                        community_of(b, params.num_communities);
      rates.set(a, b, same ? params.intra_rate : params.inter_rate);
    }
  }
  return generate_heterogeneous(rates, params.duration, rng);
}

}  // namespace impatience::trace
