#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "impatience/trace/parsers.hpp"
#include "lenient.hpp"

namespace impatience::trace {

namespace {

struct Fix {
  double time;
  double x;
  double y;
};

constexpr double kEarthRadiusM = 6371000.0;
constexpr double kPi = 3.14159265358979323846;

}  // namespace

ContactTrace parse_gps(std::istream& in, const GpsOptions& options) {
  if (!(options.slot_seconds > 0.0) || !(options.contact_range > 0.0)) {
    throw std::runtime_error("gps parser: bad options");
  }
  detail::LenientGate gate(options.parse, "gps parser");
  std::map<long, std::vector<Fix>> fixes;
  std::string line;
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream is(line);
    long id;
    double t, x, y;
    if (!(is >> id >> t >> x >> y)) {
      gate.reject("expected 'id time x y'", line);
      continue;
    }
    if (gate.lenient() && (!detail::plausible_time(t) ||
                           !std::isfinite(x) || !std::isfinite(y))) {
      gate.reject("implausible fix", line);
      continue;
    }
    fixes[id].push_back({t, x, y});
    t0 = std::min(t0, t);
    t1 = std::max(t1, t);
  }
  if (fixes.empty()) {
    if (gate.lenient()) {
      gate.finish();
      return ContactTrace(1, 1, {});
    }
    throw std::runtime_error("gps parser: no position fixes found");
  }
  gate.finish();

  if (options.coordinates_are_latlon) {
    // Equirectangular projection about the data centroid.
    double lat_sum = 0.0;
    std::size_t count = 0;
    for (const auto& [_, fs] : fixes) {
      for (const auto& f : fs) {
        lat_sum += f.x;
        ++count;
      }
    }
    const double lat0 = lat_sum / static_cast<double>(count) * kPi / 180.0;
    for (auto& [_, fs] : fixes) {
      for (auto& f : fs) {
        const double lat = f.x * kPi / 180.0;
        const double lon = f.y * kPi / 180.0;
        f.x = kEarthRadiusM * lon * std::cos(lat0);
        f.y = kEarthRadiusM * lat;
      }
    }
  }

  for (auto& [_, fs] : fixes) {
    std::sort(fs.begin(), fs.end(),
              [](const Fix& a, const Fix& b) { return a.time < b.time; });
  }

  const double slot_s = options.slot_seconds;
  const Slot duration =
      std::max<Slot>(1, static_cast<Slot>(std::floor((t1 - t0) / slot_s)) + 1);
  const auto n = static_cast<NodeId>(fixes.size());

  // Interpolated positions per node per slot; NaN when the node has no
  // usable fix pair (off duty / gap too large).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> px(n), py(n);
  {
    NodeId node = 0;
    for (const auto& [_, fs] : fixes) {
      auto& xs = px[node];
      auto& ys = py[node];
      xs.assign(static_cast<std::size_t>(duration), nan);
      ys.assign(static_cast<std::size_t>(duration), nan);
      for (std::size_t k = 0; k + 1 < fs.size(); ++k) {
        const Fix& a = fs[k];
        const Fix& b = fs[k + 1];
        if (b.time - a.time > options.max_gap_seconds) continue;
        const auto s_first =
            static_cast<Slot>(std::ceil((a.time - t0) / slot_s));
        const auto s_last =
            static_cast<Slot>(std::floor((b.time - t0) / slot_s));
        for (Slot s = std::max<Slot>(0, s_first);
             s <= s_last && s < duration; ++s) {
          const double ts = t0 + static_cast<double>(s) * slot_s;
          const double w =
              b.time == a.time ? 0.0 : (ts - a.time) / (b.time - a.time);
          xs[static_cast<std::size_t>(s)] = a.x + w * (b.x - a.x);
          ys[static_cast<std::size_t>(s)] = a.y + w * (b.y - a.y);
        }
      }
      ++node;
    }
  }

  // Contact extraction.
  const double range2 = options.contact_range * options.contact_range;
  std::vector<ContactEvent> events;
  std::vector<char> in_contact(static_cast<std::size_t>(n) * n, 0);
  for (Slot s = 0; s < duration; ++s) {
    for (NodeId a = 0; a < n; ++a) {
      const double ax = px[a][static_cast<std::size_t>(s)];
      if (std::isnan(ax)) continue;
      const double ay = py[a][static_cast<std::size_t>(s)];
      for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
        const double bx = px[b][static_cast<std::size_t>(s)];
        if (std::isnan(bx)) continue;
        const double by = py[b][static_cast<std::size_t>(s)];
        const double dx = ax - bx;
        const double dy = ay - by;
        const bool close = dx * dx + dy * dy <= range2;
        char& state = in_contact[static_cast<std::size_t>(a) * n + b];
        if (close) {
          if (options.expansion == ContactExpansion::kEverySlot || !state) {
            events.push_back({s, a, b});
          }
          state = 1;
        } else {
          state = 0;
        }
      }
    }
  }
  return ContactTrace(n, duration, std::move(events));
}

ContactTrace parse_gps_file(const std::string& path,
                            const GpsOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("gps parser: cannot open " + path);
  }
  return parse_gps(in, options);
}

}  // namespace impatience::trace
