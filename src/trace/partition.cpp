#include <limits>
#include <stdexcept>

#include "impatience/trace/partition.hpp"

namespace impatience::trace {

WavePartitioner::WavePartitioner(NodeId num_nodes) {
  if (num_nodes == 0) {
    throw std::invalid_argument("WavePartitioner: need at least one node");
  }
  stamp_.assign(num_nodes, 0);
  last_index_.assign(num_nodes, 0);
}

void WavePartitioner::schedule(std::span<const ContactEvent> events,
                               std::vector<std::uint32_t>& order,
                               std::vector<std::size_t>& wave_ends,
                               std::vector<std::size_t>& commit_ends) {
  order.clear();
  wave_ends.clear();
  commit_ends.clear();
  const std::size_t n = events.size();
  if (n == 0) return;

  // Epoch stamps avoid clearing the per-node arrays between batches;
  // the wrap resets them once per ~2^32 calls.
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 0;
  }
  ++epoch_;

  // Pass 1 — waves and commit runs in one trace-order sweep.
  //
  // run_of_[j] is the commit run meeting j lands in. Commit runs walk
  // the batch in index order, stalling exactly at the first meeting
  // whose wave has not been planned yet, so run_of_[j] is the running
  // maximum of the wave numbers up to j. A meeting's plan is safe as
  // soon as its latest earlier conflicting meeting (lcp) has committed,
  // which happens at the end of run run_of_[lcp] — hence
  //   wave_of_[i] = run_of_[lcp(i)] + 1   (0 with no conflict).
  wave_of_.resize(n);
  run_of_.resize(n);
  std::uint32_t depth = 0;  // number of waves == number of runs
  for (std::size_t i = 0; i < n; ++i) {
    const ContactEvent& e = events[i];
    std::uint32_t wave = 0;
    if (stamp_[e.a] == epoch_) {
      wave = run_of_[last_index_[e.a]] + 1;
    }
    if (stamp_[e.b] == epoch_) {
      wave = std::max(wave, run_of_[last_index_[e.b]] + 1);
    }
    wave_of_[i] = wave;
    run_of_[i] = i == 0 ? wave : std::max(run_of_[i - 1], wave);
    depth = std::max(depth, wave + 1);
    stamp_[e.a] = epoch_;
    stamp_[e.b] = epoch_;
    last_index_[e.a] = static_cast<std::uint32_t>(i);
    last_index_[e.b] = static_cast<std::uint32_t>(i);
  }

  // Pass 2 — counting sort by wave: `order` lists each wave's meetings
  // ascending (the stable order of the sweep).
  bucket_.assign(depth + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++bucket_[wave_of_[i] + 1];
  for (std::uint32_t w = 0; w < depth; ++w) bucket_[w + 1] += bucket_[w];
  wave_ends.reserve(depth);
  for (std::uint32_t w = 0; w < depth; ++w) {
    wave_ends.push_back(bucket_[w + 1]);
  }
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[bucket_[wave_of_[i]]++] = static_cast<std::uint32_t>(i);
  }

  // Pass 3 — commit boundaries: run k ends at the first meeting of a
  // later wave (run_of_ is non-decreasing, so one forward scan).
  commit_ends.reserve(depth);
  std::size_t idx = 0;
  for (std::uint32_t k = 0; k < depth; ++k) {
    while (idx < n && run_of_[idx] <= k) ++idx;
    commit_ends.push_back(idx);
  }
}

}  // namespace impatience::trace
