#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "impatience/trace/contact.hpp"

namespace impatience::trace {

ContactTrace::ContactTrace(NodeId num_nodes, Slot duration,
                           std::vector<ContactEvent> events)
    : num_nodes_(num_nodes), duration_(duration), events_(std::move(events)) {
  if (num_nodes == 0) {
    throw std::invalid_argument("ContactTrace: need at least one node");
  }
  if (duration <= 0) {
    throw std::invalid_argument("ContactTrace: duration must be > 0");
  }
  for (auto& e : events_) {
    if (e.a > e.b) std::swap(e.a, e.b);
    if (e.slot < 0 || e.slot >= duration_) {
      throw std::invalid_argument("ContactTrace: event slot out of range");
    }
    if (e.b >= num_nodes_) {
      throw std::invalid_argument("ContactTrace: node id out of range");
    }
  }
  // Drop self-contacts.
  std::erase_if(events_, [](const ContactEvent& e) { return e.a == e.b; });
  std::sort(events_.begin(), events_.end(),
            [](const ContactEvent& x, const ContactEvent& y) {
              return std::tie(x.slot, x.a, x.b) < std::tie(y.slot, y.a, y.b);
            });
  events_.erase(std::unique(events_.begin(), events_.end()), events_.end());

  slot_begin_.assign(static_cast<std::size_t>(duration_) + 1, 0);
  std::size_t idx = 0;
  for (Slot s = 0; s <= duration_; ++s) {
    while (idx < events_.size() && events_[idx].slot < s) ++idx;
    slot_begin_[static_cast<std::size_t>(s)] = idx;
  }
  slot_begin_.back() = events_.size();
}

std::span<const ContactEvent> ContactTrace::slot_events(Slot slot) const {
  if (slot < 0 || slot >= duration_) return {};
  const std::size_t begin = slot_begin_[static_cast<std::size_t>(slot)];
  const std::size_t end = slot_begin_[static_cast<std::size_t>(slot) + 1];
  return {events_.data() + begin, end - begin};
}

ContactTrace ContactTrace::slice(Slot from, Slot to) const {
  if (from < 0 || to > duration_ || from >= to) {
    throw std::invalid_argument("ContactTrace::slice: bad range");
  }
  std::vector<ContactEvent> sub;
  for (const auto& e : events_) {
    if (e.slot >= from && e.slot < to) {
      sub.push_back({e.slot - from, e.a, e.b});
    }
  }
  return ContactTrace(num_nodes_, to - from, std::move(sub));
}

std::size_t ContactTrace::pair_count(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  std::size_t count = 0;
  for (const auto& e : events_) {
    if (e.a == a && e.b == b) ++count;
  }
  return count;
}

}  // namespace impatience::trace
