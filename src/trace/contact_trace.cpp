#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "impatience/trace/contact.hpp"
#include "impatience/trace/partition.hpp"

namespace impatience::trace {

ContactTrace::ContactTrace(NodeId num_nodes, Slot duration,
                           std::vector<ContactEvent> events)
    : num_nodes_(num_nodes), duration_(duration), events_(std::move(events)) {
  if (num_nodes == 0) {
    throw std::invalid_argument("ContactTrace: need at least one node");
  }
  if (duration <= 0) {
    throw std::invalid_argument("ContactTrace: duration must be > 0");
  }
  for (auto& e : events_) {
    if (e.a > e.b) std::swap(e.a, e.b);
    if (e.slot < 0 || e.slot >= duration_) {
      throw std::invalid_argument("ContactTrace: event slot out of range");
    }
    if (e.b >= num_nodes_) {
      throw std::invalid_argument("ContactTrace: node id out of range");
    }
  }
  // Drop self-contacts.
  std::erase_if(events_, [](const ContactEvent& e) { return e.a == e.b; });
  std::sort(events_.begin(), events_.end(),
            [](const ContactEvent& x, const ContactEvent& y) {
              return std::tie(x.slot, x.a, x.b) < std::tie(y.slot, y.a, y.b);
            });
  events_.erase(std::unique(events_.begin(), events_.end()), events_.end());

  slot_begin_.assign(static_cast<std::size_t>(duration_) + 1, 0);
  std::size_t idx = 0;
  for (Slot s = 0; s <= duration_; ++s) {
    while (idx < events_.size() && events_[idx].slot < s) ++idx;
    slot_begin_[static_cast<std::size_t>(s)] = idx;
  }
  slot_begin_.back() = events_.size();

  // Longest same-slot run (events are slot-sorted, so one linear pass).
  std::size_t run = 0;
  for (std::size_t k = 0; k < events_.size(); ++k) {
    run = (k > 0 && events_[k].slot == events_[k - 1].slot) ? run + 1 : 1;
    max_slot_events_ = std::max(max_slot_events_, run);
  }

  // Per-pair totals: one hash-map pass over the events, then sorted by
  // (a, b) so lookups can binary-search.
  std::unordered_map<std::uint64_t, std::size_t> totals;
  totals.reserve(events_.size());
  for (const auto& e : events_) {
    ++totals[(static_cast<std::uint64_t>(e.a) << 32) | e.b];
  }
  pair_counts_.reserve(totals.size());
  for (const auto& [key, count] : totals) {
    pair_counts_.push_back({static_cast<NodeId>(key >> 32),
                            static_cast<NodeId>(key & 0xffffffffu), count});
  }
  std::sort(pair_counts_.begin(), pair_counts_.end(),
            [](const PairContacts& x, const PairContacts& y) {
              return std::tie(x.a, x.b) < std::tie(y.a, y.b);
            });
}

std::size_t ContactTrace::first_event_at_or_after(Slot slot) const {
  if (slot <= 0) return 0;
  if (slot >= duration_) return events_.size();
  return slot_begin_[static_cast<std::size_t>(slot)];
}

std::span<const ContactEvent> ContactTrace::slot_events(Slot slot) const {
  if (slot < 0 || slot >= duration_) return {};
  const std::size_t begin = slot_begin_[static_cast<std::size_t>(slot)];
  const std::size_t end = slot_begin_[static_cast<std::size_t>(slot) + 1];
  return {events_.data() + begin, end - begin};
}

ContactTrace ContactTrace::slice(Slot from, Slot to) const {
  if (from < 0 || to > duration_ || from >= to) {
    throw std::invalid_argument("ContactTrace::slice: bad range");
  }
  // The events are slot-sorted, so the slice is the contiguous run
  // [slot_begin_[from], slot_begin_[to]) — no full scan.
  const std::size_t begin = slot_begin_[static_cast<std::size_t>(from)];
  const std::size_t end = slot_begin_[static_cast<std::size_t>(to)];
  std::vector<ContactEvent> sub;
  sub.reserve(end - begin);
  for (std::size_t k = begin; k < end; ++k) {
    sub.push_back({events_[k].slot - from, events_[k].a, events_[k].b});
  }
  return ContactTrace(num_nodes_, to - from, std::move(sub));
}

SlotConflictStats ContactTrace::slot_conflict_stats() const {
  SlotConflictStats stats;
  if (events_.empty()) return stats;
  WavePartitioner partitioner(num_nodes_);
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> ends;
  std::vector<std::size_t> commit_ends;
  std::vector<char> seen(num_nodes_, 0);
  std::vector<NodeId> touched;
  std::size_t total_waves = 0;
  std::size_t begin = 0;
  while (begin < events_.size()) {
    const Slot slot = events_[begin].slot;
    std::size_t end = begin;
    while (end < events_.size() && events_[end].slot == slot) ++end;
    const std::size_t meetings = end - begin;

    touched.clear();
    for (std::size_t k = begin; k < end; ++k) {
      for (NodeId n : {events_[k].a, events_[k].b}) {
        if (!seen[n]) {
          seen[n] = 1;
          touched.push_back(n);
        }
      }
    }
    for (NodeId n : touched) seen[n] = 0;

    partitioner.schedule(
        std::span<const ContactEvent>(events_.data() + begin, meetings),
        order, ends, commit_ends);

    ++stats.active_slots;
    stats.max_slot_meetings = std::max(stats.max_slot_meetings, meetings);
    stats.mean_slot_meetings += static_cast<double>(meetings);
    stats.max_distinct_nodes =
        std::max(stats.max_distinct_nodes, touched.size());
    stats.max_wave_depth = std::max(stats.max_wave_depth, ends.size());
    stats.mean_wave_depth += static_cast<double>(ends.size());
    total_waves += ends.size();
    begin = end;
  }
  const auto slots = static_cast<double>(stats.active_slots);
  stats.mean_slot_meetings /= slots;
  stats.mean_wave_depth /= slots;
  stats.mean_wave_width =
      static_cast<double>(events_.size()) / static_cast<double>(total_waves);
  return stats;
}

std::size_t ContactTrace::pair_count(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  const auto it = std::lower_bound(
      pair_counts_.begin(), pair_counts_.end(), std::make_pair(a, b),
      [](const PairContacts& p, const std::pair<NodeId, NodeId>& key) {
        return std::tie(p.a, p.b) < std::tie(key.first, key.second);
      });
  if (it == pair_counts_.end() || it->a != a || it->b != b) return 0;
  return it->count;
}

}  // namespace impatience::trace
