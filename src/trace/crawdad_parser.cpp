#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "impatience/trace/parsers.hpp"
#include "lenient.hpp"

namespace impatience::trace {

namespace {

struct RawContact {
  long node_a;
  long node_b;
  double start;
  double end;
};

std::optional<std::vector<double>> parse_numbers(const std::string& line) {
  std::vector<double> out;
  std::istringstream is(line);
  double v;
  while (is >> v) out.push_back(v);
  if (!is.eof()) return std::nullopt;
  return out;
}

}  // namespace

ContactTrace parse_crawdad(std::istream& in, const CrawdadOptions& options) {
  if (!(options.slot_seconds > 0.0)) {
    throw std::runtime_error("crawdad parser: slot_seconds must be > 0");
  }
  detail::LenientGate gate(options.parse, "crawdad parser");
  std::vector<RawContact> raw;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto nums = parse_numbers(line);
    if (!nums) {
      gate.reject("non-numeric token in line", line);
      continue;
    }
    RawContact r;
    if (nums->size() == 4) {
      r = {static_cast<long>((*nums)[0]), static_cast<long>((*nums)[1]),
           (*nums)[2], (*nums)[3]};
    } else if (nums->size() == 3) {
      r = {static_cast<long>((*nums)[1]), static_cast<long>((*nums)[2]),
           (*nums)[0], (*nums)[0]};
    } else {
      gate.reject("expected 3 or 4 columns", line);
      continue;
    }
    if (gate.lenient() && (!detail::plausible_time(r.start) ||
                           !detail::plausible_time(r.end))) {
      gate.reject("implausible timestamp", line);
      continue;
    }
    if (r.node_a < 0 || r.node_b < 0) {
      gate.reject("negative node id", line);
      continue;
    }
    if (r.end < r.start) {
      gate.reject("contact ends before start", line);
      continue;
    }
    raw.push_back(r);
  }
  if (raw.empty()) {
    if (gate.lenient()) {
      gate.finish();
      return ContactTrace(1, 1, {});
    }
    throw std::runtime_error("crawdad parser: no contact records found");
  }

  // Dense node-id remapping in first-appearance order.
  std::map<long, NodeId> ids;
  for (const auto& r : raw) {
    ids.try_emplace(r.node_a, static_cast<NodeId>(ids.size()));
    ids.try_emplace(r.node_b, static_cast<NodeId>(ids.size()));
  }

  double t0 = raw.front().start;
  double t1 = raw.front().end;
  for (const auto& r : raw) {
    t0 = std::min(t0, r.start);
    t1 = std::max(t1, r.end);
  }

  const double slot_s = options.slot_seconds;
  const Slot duration =
      std::max<Slot>(1, static_cast<Slot>(std::floor((t1 - t0) / slot_s)) + 1);

  std::vector<ContactEvent> events;
  events.reserve(raw.size());
  for (const auto& r : raw) {
    const auto a = ids.at(r.node_a);
    const auto b = ids.at(r.node_b);
    if (a == b) continue;
    const auto first = static_cast<Slot>(std::floor((r.start - t0) / slot_s));
    if (options.expansion == ContactExpansion::kOnsetOnly) {
      events.push_back({first, a, b});
    } else {
      const auto last = static_cast<Slot>(std::floor((r.end - t0) / slot_s));
      for (Slot s = first; s <= last && s < duration; ++s) {
        events.push_back({s, a, b});
      }
    }
  }
  gate.finish();
  return ContactTrace(static_cast<NodeId>(ids.size()), duration,
                      std::move(events));
}

ContactTrace parse_crawdad_file(const std::string& path,
                                const CrawdadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("crawdad parser: cannot open " + path);
  }
  return parse_crawdad(in, options);
}

}  // namespace impatience::trace
