#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "impatience/stats/summary.hpp"
#include "impatience/trace/stats.hpp"

namespace impatience::trace {

RateMatrix::RateMatrix(NodeId num_nodes, double fill) : n_(num_nodes) {
  if (num_nodes == 0) {
    throw std::invalid_argument("RateMatrix: need at least one node");
  }
  rates_.assign(static_cast<std::size_t>(n_) * n_, fill);
  for (NodeId i = 0; i < n_; ++i) {
    rates_[static_cast<std::size_t>(i) * n_ + i] = 0.0;
  }
}

double RateMatrix::at(NodeId a, NodeId b) const {
  if (a >= n_ || b >= n_) {
    throw std::out_of_range("RateMatrix::at: node id out of range");
  }
  return rates_[static_cast<std::size_t>(a) * n_ + b];
}

void RateMatrix::set(NodeId a, NodeId b, double rate) {
  if (a >= n_ || b >= n_) {
    throw std::out_of_range("RateMatrix::set: node id out of range");
  }
  if (a == b) return;  // diagonal stays zero
  if (rate < 0.0) {
    throw std::invalid_argument("RateMatrix::set: negative rate");
  }
  rates_[static_cast<std::size_t>(a) * n_ + b] = rate;
  rates_[static_cast<std::size_t>(b) * n_ + a] = rate;
}

double RateMatrix::node_rate(NodeId node) const {
  double total = 0.0;
  for (NodeId other = 0; other < n_; ++other) total += at(node, other);
  return total;
}

double RateMatrix::mean_rate() const {
  if (n_ < 2) return 0.0;
  double total = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    for (NodeId j = static_cast<NodeId>(i + 1); j < n_; ++j) {
      total += at(i, j);
    }
  }
  const double pairs = 0.5 * static_cast<double>(n_) * (n_ - 1);
  return total / pairs;
}

RateMatrix RateMatrix::homogeneous(NodeId num_nodes, double mu) {
  RateMatrix m(num_nodes, mu);
  return m;
}

RateMatrix estimate_rates(const ContactTrace& trace) {
  // The trace's pair-count index already aggregates the events, so this
  // is O(P) over the met pairs with no N^2 scratch matrix.
  RateMatrix m(trace.num_nodes());
  const auto duration = static_cast<double>(trace.duration());
  for (const auto& pc : trace.pair_counts()) {
    m.set(pc.a, pc.b, static_cast<double>(pc.count) / duration);
  }
  return m;
}

std::vector<double> inter_contact_times(const ContactTrace& trace) {
  std::map<std::pair<NodeId, NodeId>, Slot> last;
  std::vector<double> gaps;
  for (const auto& e : trace.events()) {
    const auto key = std::make_pair(e.a, e.b);
    auto it = last.find(key);
    if (it != last.end()) {
      gaps.push_back(static_cast<double>(e.slot - it->second));
      it->second = e.slot;
    } else {
      last.emplace(key, e.slot);
    }
  }
  return gaps;
}

double inter_contact_cv(const ContactTrace& trace) {
  stats::Summary s;
  for (double g : inter_contact_times(trace)) s.add(g);
  if (s.count() < 2 || s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

std::vector<std::size_t> contacts_per_slot(const ContactTrace& trace) {
  std::vector<std::size_t> out(static_cast<std::size_t>(trace.duration()), 0);
  for (const auto& e : trace.events()) {
    ++out[static_cast<std::size_t>(e.slot)];
  }
  return out;
}

ContactTrace select_most_active_nodes(const ContactTrace& trace, NodeId k) {
  if (k < 2 || k > trace.num_nodes()) {
    throw std::invalid_argument(
        "select_most_active_nodes: k must be in [2, num_nodes]");
  }
  std::vector<std::size_t> contact_count(trace.num_nodes(), 0);
  for (const auto& e : trace.events()) {
    ++contact_count[e.a];
    ++contact_count[e.b];
  }
  std::vector<NodeId> order(trace.num_nodes());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) order[n] = n;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return contact_count[a] > contact_count[b];
  });
  // Dense remap: i-th most active node -> id i.
  const NodeId kInvalid = trace.num_nodes();
  std::vector<NodeId> remap(trace.num_nodes(), kInvalid);
  for (NodeId i = 0; i < k; ++i) remap[order[i]] = i;

  std::vector<ContactEvent> kept;
  for (const auto& e : trace.events()) {
    const NodeId a = remap[e.a];
    const NodeId b = remap[e.b];
    if (a != kInvalid && b != kInvalid) {
      kept.push_back({e.slot, a, b});
    }
  }
  return ContactTrace(k, trace.duration(), std::move(kept));
}

}  // namespace impatience::trace
