#include "impatience/trace/generators.hpp"

namespace impatience::trace {

ContactTrace memoryless_equivalent(const ContactTrace& original,
                                   util::Rng& rng) {
  const RateMatrix rates = estimate_rates(original);
  return generate_heterogeneous(rates, original.duration(), rng);
}

}  // namespace impatience::trace
