#include <stdexcept>

#include "impatience/trace/generators.hpp"

namespace impatience::trace {

ContactTrace generate_poisson(const PoissonTraceParams& params,
                              util::Rng& rng) {
  if (params.mu < 0.0 || params.mu > 1.0) {
    throw std::invalid_argument("generate_poisson: mu must be in [0,1]");
  }
  RateMatrix rates = RateMatrix::homogeneous(params.num_nodes, params.mu);
  return generate_heterogeneous(rates, params.duration, rng);
}

}  // namespace impatience::trace
