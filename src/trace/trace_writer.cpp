#include <fstream>
#include <sstream>
#include <stdexcept>

#include "impatience/trace/parsers.hpp"

namespace impatience::trace {

void write_native(const ContactTrace& trace, std::ostream& out) {
  out << "# impatience-trace v1\n";
  out << "nodes " << trace.num_nodes() << " duration " << trace.duration()
      << "\n";
  for (const auto& e : trace.events()) {
    out << e.slot << ' ' << e.a << ' ' << e.b << '\n';
  }
}

void write_native_file(const ContactTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_native: cannot open " + path);
  }
  write_native(trace, out);
}

ContactTrace read_native(std::istream& in) {
  std::string line;
  NodeId nodes = 0;
  Slot duration = 0;
  bool have_header = false;
  std::vector<ContactEvent> events;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream is(line);
    if (!have_header) {
      std::string kw1, kw2;
      long n, d;
      if (!(is >> kw1 >> n >> kw2 >> d) || kw1 != "nodes" ||
          kw2 != "duration" || n <= 0 || d <= 0) {
        throw std::runtime_error(
            "read_native: expected 'nodes <N> duration <D>' header");
      }
      nodes = static_cast<NodeId>(n);
      duration = d;
      have_header = true;
      continue;
    }
    long slot, a, b;
    if (!(is >> slot >> a >> b) || a < 0 || b < 0) {
      throw std::runtime_error("read_native: bad event line: " + line);
    }
    events.push_back(
        {slot, static_cast<NodeId>(a), static_cast<NodeId>(b)});
  }
  if (!have_header) {
    throw std::runtime_error("read_native: missing header");
  }
  return ContactTrace(nodes, duration, std::move(events));
}

ContactTrace read_native_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_native: cannot open " + path);
  }
  return read_native(in);
}

}  // namespace impatience::trace
