#include <algorithm>
#include <stdexcept>

#include "impatience/trace/generators.hpp"

namespace impatience::trace {

ContactTrace generate_heterogeneous(const RateMatrix& rates, Slot duration,
                                    util::Rng& rng) {
  if (duration <= 0) {
    throw std::invalid_argument("generate_heterogeneous: duration must be > 0");
  }
  const NodeId n = rates.num_nodes();
  // Flatten the upper triangle once; skip zero-rate pairs in the slot loop.
  struct Pair {
    NodeId a, b;
    double p;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const double p = std::min(rates.at(a, b), 1.0);
      if (p > 0.0) pairs.push_back({a, b, p});
    }
  }
  std::vector<ContactEvent> events;
  for (Slot s = 0; s < duration; ++s) {
    for (const auto& pr : pairs) {
      if (rng.bernoulli(pr.p)) events.push_back({s, pr.a, pr.b});
    }
  }
  return ContactTrace(n, duration, std::move(events));
}

}  // namespace impatience::trace
