#include "impatience/trace/event_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace impatience::trace {

Slot MaterializedSource::next_slot() {
  const auto& events = trace_->events();
  if (cursor_ >= events.size()) return kNoMoreEvents;
  return events[cursor_].slot;
}

std::span<const ContactEvent> MaterializedSource::take_batch() {
  const auto& events = trace_->events();
  if (cursor_ >= events.size()) {
    throw std::logic_error("MaterializedSource: take_batch on drained source");
  }
  const Slot slot = events[cursor_].slot;
  std::size_t end = cursor_;
  while (end < events.size() && events[end].slot == slot) ++end;
  const std::span<const ContactEvent> batch(events.data() + cursor_,
                                            end - cursor_);
  cursor_ = end;
  return batch;
}

GeneratedSource::GeneratedSource(NodeId num_nodes, Slot duration,
                                 double homogeneous_mu, util::Rng rng)
    : homogeneous_mu_(homogeneous_mu),
      num_nodes_(num_nodes),
      duration_(duration),
      rng_(rng) {
  if (duration_ <= 0) {
    throw std::invalid_argument("GeneratedSource: duration must be > 0");
  }
}

GeneratedSource::GeneratedSource(const RateMatrix& rates, Slot duration,
                                 util::Rng rng)
    : GeneratedSource(rates.num_nodes(), duration, -1.0, rng) {
  // Flatten the upper triangle exactly as generate_heterogeneous does,
  // so the Bernoulli draw order (and therefore the Rng stream) matches.
  const NodeId n = rates.num_nodes();
  pairs_.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const double p = std::min(rates.at(a, b), 1.0);
      if (p > 0.0) pairs_.push_back({a, b, p});
    }
  }
}

GeneratedSource::GeneratedSource(const PoissonTraceParams& params,
                                 util::Rng rng)
    : GeneratedSource(params.num_nodes, params.duration,
                      std::min(params.mu, 1.0), rng) {
  if (params.mu < 0.0 || params.mu > 1.0) {
    throw std::invalid_argument("GeneratedSource: mu must be in [0,1]");
  }
}

GeneratedSource GeneratedSource::community(const CommunityTraceParams& params,
                                           util::Rng rng) {
  if (params.num_nodes < 2 || params.num_communities <= 0 ||
      params.intra_rate < 0.0 || params.inter_rate < 0.0) {
    throw std::invalid_argument("GeneratedSource: bad community parameters");
  }
  RateMatrix rates(params.num_nodes);
  for (NodeId a = 0; a < params.num_nodes; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < params.num_nodes; ++b) {
      const bool same = community_of(a, params.num_communities) ==
                        community_of(b, params.num_communities);
      rates.set(a, b, same ? params.intra_rate : params.inter_rate);
    }
  }
  return GeneratedSource(rates, params.duration, rng);
}

void GeneratedSource::generate_slot(Slot slot) {
  batch_.clear();
  if (homogeneous_mu_ >= 0.0) {
    // Pair-free fast path: iterate the canonical a < b order directly.
    // Zero-rate pairs draw nothing in the materialized generator (they
    // are dropped from its pair list), so mirror that here.
    if (homogeneous_mu_ <= 0.0) return;
    for (NodeId a = 0; a < num_nodes_; ++a) {
      for (NodeId b = static_cast<NodeId>(a + 1); b < num_nodes_; ++b) {
        if (rng_.bernoulli(homogeneous_mu_)) batch_.push_back({slot, a, b});
      }
    }
    return;
  }
  for (const auto& pr : pairs_) {
    if (rng_.bernoulli(pr.p)) batch_.push_back({slot, pr.a, pr.b});
  }
}

Slot GeneratedSource::next_slot() {
  if (buffer_pending_) return buffered_slot_;
  while (generated_to_ < duration_) {
    generate_slot(generated_to_);
    ++generated_to_;
    if (!batch_.empty()) {
      buffered_slot_ = batch_.front().slot;
      buffer_pending_ = true;
      return buffered_slot_;
    }
  }
  return kNoMoreEvents;
}

std::span<const ContactEvent> GeneratedSource::take_batch() {
  if (next_slot() == kNoMoreEvents) {
    throw std::logic_error("GeneratedSource: take_batch on drained source");
  }
  buffer_pending_ = false;
  return {batch_.data(), batch_.size()};
}

}  // namespace impatience::trace
