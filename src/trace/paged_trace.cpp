#include "impatience/trace/paged_trace.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace impatience::trace {
namespace {

constexpr char kMagic[8] = {'I', 'P', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Varint cursor over raw bytes — a vector the stdio path read, or a
/// window straight into the mmap'd file (in-place decode, no copy).
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_ || shift > 63) {
        throw std::runtime_error("PagedTraceReader: corrupt varint in " +
                                 path_);
      }
      const auto byte = static_cast<unsigned char>(data_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  bool done() const { return pos_ >= size_; }

 private:
  const char* data_;
  std::size_t size_;
  const std::string& path_;
  std::size_t pos_ = 0;
};

std::uint32_t read_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  unsigned char b[8];
  in.read(reinterpret_cast<char*>(b), 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

void write_paged_trace(const ContactTrace& trace, const std::string& path,
                       std::size_t events_per_page) {
  if (events_per_page == 0) {
    throw std::invalid_argument(
        "write_paged_trace: events_per_page must be > 0");
  }
  const auto& events = trace.events();
  const std::size_t num_pages =
      (events.size() + events_per_page - 1) / events_per_page;

  // Encode pages first so the index can carry byte offsets.
  std::string data;
  struct PageMeta {
    std::uint64_t offset;
    Slot first_slot;
    std::uint64_t count;
  };
  std::vector<PageMeta> index;
  index.reserve(num_pages);
  for (std::size_t p = 0; p < num_pages; ++p) {
    const std::size_t begin = p * events_per_page;
    const std::size_t end = std::min(begin + events_per_page, events.size());
    const Slot first_slot = events[begin].slot;
    index.push_back({data.size(), first_slot,
                     static_cast<std::uint64_t>(end - begin)});
    Slot prev = first_slot;
    for (std::size_t k = begin; k < end; ++k) {
      const ContactEvent& e = events[k];
      put_varint(data, static_cast<std::uint64_t>(e.slot - prev));
      put_varint(data, e.a);
      put_varint(data, static_cast<std::uint64_t>(e.b) - e.a - 1);
      prev = e.slot;
    }
  }

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put_u32(header, kVersion);
  put_u32(header, trace.num_nodes());
  put_u64(header, static_cast<std::uint64_t>(trace.duration()));
  put_u64(header, events.size());
  put_u64(header, events_per_page);
  put_u64(header, num_pages);
  for (const auto& page : index) {
    put_u64(header, page.offset);
    put_u64(header, static_cast<std::uint64_t>(page.first_slot));
    put_u64(header, page.count);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_paged_trace: cannot open " + path);
  }
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    throw std::runtime_error("write_paged_trace: write failed for " + path);
  }
}

PagedTraceReader::PagedTraceReader(const std::string& path, TraceIo io)
    : file_(path, std::ios::binary), path_(path) {
  if (!file_) {
    throw std::runtime_error("PagedTraceReader: cannot open " + path);
  }
  char magic[sizeof(kMagic)];
  file_.read(magic, sizeof(magic));
  if (!file_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("PagedTraceReader: bad magic in " + path);
  }
  const std::uint32_t version = read_u32(file_);
  if (version != kVersion) {
    throw std::runtime_error("PagedTraceReader: unsupported version in " +
                             path);
  }
  num_nodes_ = read_u32(file_);
  duration_ = static_cast<Slot>(read_u64(file_));
  num_events_ = static_cast<std::size_t>(read_u64(file_));
  read_u64(file_);  // events_per_page: advisory, unused by the reader
  const std::uint64_t num_pages = read_u64(file_);
  if (!file_ || num_nodes_ == 0 || duration_ <= 0) {
    throw std::runtime_error("PagedTraceReader: corrupt header in " + path);
  }
  page_index_.reserve(num_pages);
  std::uint64_t indexed_events = 0;
  for (std::uint64_t p = 0; p < num_pages; ++p) {
    PageInfo info;
    info.offset = read_u64(file_);
    info.first_slot = static_cast<Slot>(read_u64(file_));
    info.count = read_u64(file_);
    indexed_events += info.count;
    page_index_.push_back(info);
  }
  if (!file_ || indexed_events != num_events_) {
    throw std::runtime_error("PagedTraceReader: corrupt page index in " +
                             path);
  }
  data_begin_ = static_cast<std::uint64_t>(file_.tellg());

  if (io != TraceIo::kStdio) {
    // Map the whole file once; pages then decode in place with no
    // per-page seek+read+copy. The header was already parsed via the
    // stream so both modes share one parser.
    fd_ = ::open(path.c_str(), O_RDONLY);
    struct stat st{};
    if (fd_ >= 0 && ::fstat(fd_, &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) >= data_begin_) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd_, 0);
      if (map != MAP_FAILED) {
        map_ = static_cast<const char*>(map);
        map_size_ = static_cast<std::size_t>(st.st_size);
        mode_ = TraceIo::kMmap;
      }
    }
    if (mode_ != TraceIo::kMmap) {
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
      if (io == TraceIo::kMmap) {
        throw std::runtime_error("PagedTraceReader: cannot mmap " + path);
      }
      // kAuto: fall back to the stdio path below.
    }
  }
  if (mode_ != TraceIo::kMmap) mode_ = TraceIo::kStdio;
}

PagedTraceReader::~PagedTraceReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void PagedTraceReader::load_next_page() {
  const PageInfo& page = page_index_[next_page_];
  const std::uint64_t end_offset = next_page_ + 1 < page_index_.size()
                                       ? page_index_[next_page_ + 1].offset
                                       : std::uint64_t(-1);
  const char* data = nullptr;
  std::size_t size = 0;
  std::vector<char> bytes;
  if (mode_ == TraceIo::kMmap) {
    const std::uint64_t begin = data_begin_ + page.offset;
    const std::uint64_t end = end_offset != std::uint64_t(-1)
                                  ? data_begin_ + end_offset
                                  : map_size_;
    if (begin > end || end > map_size_) {
      throw std::runtime_error("PagedTraceReader: truncated page in " + path_);
    }
    data = map_ + begin;
    size = static_cast<std::size_t>(end - begin);
  } else {
    file_.seekg(static_cast<std::streamoff>(data_begin_ + page.offset));
    if (end_offset != std::uint64_t(-1)) {
      bytes.resize(end_offset - page.offset);
      file_.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!file_) {
        throw std::runtime_error("PagedTraceReader: truncated page in " +
                                 path_);
      }
    } else {
      // Last page: read to EOF.
      std::vector<char> chunk(64 * 1024);
      while (file_.read(chunk.data(),
                        static_cast<std::streamsize>(chunk.size())) ||
             file_.gcount() > 0) {
        bytes.insert(bytes.end(), chunk.begin(),
                     chunk.begin() + file_.gcount());
        if (file_.eof()) break;
      }
      file_.clear();
    }
    data = bytes.data();
    size = bytes.size();
  }

  // Compact already-served events before appending the new page.
  if (head_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  ByteReader reader(data, size, path_);
  Slot prev = page.first_slot;
  for (std::uint64_t k = 0; k < page.count; ++k) {
    const Slot slot = prev + static_cast<Slot>(reader.varint());
    const auto a = static_cast<NodeId>(reader.varint());
    const auto b = static_cast<NodeId>(reader.varint() + a + 1);
    if (slot < 0 || slot >= duration_ || b >= num_nodes_) {
      throw std::runtime_error("PagedTraceReader: event out of range in " +
                               path_);
    }
    buffer_.push_back({slot, a, b});
    prev = slot;
  }
  ++next_page_;
}

bool PagedTraceReader::ensure_buffered() {
  while (head_ >= buffer_.size() && next_page_ < page_index_.size()) {
    load_next_page();
  }
  return head_ < buffer_.size();
}

Slot PagedTraceReader::next_slot() {
  if (!ensure_buffered()) return kNoMoreEvents;
  return buffer_[head_].slot;
}

std::span<const ContactEvent> PagedTraceReader::take_batch() {
  if (!ensure_buffered()) {
    throw std::logic_error("PagedTraceReader: take_batch on drained source");
  }
  const Slot slot = buffer_[head_].slot;
  batch_.clear();
  while (true) {
    while (head_ < buffer_.size() && buffer_[head_].slot == slot) {
      batch_.push_back(buffer_[head_]);
      ++head_;
    }
    // A slot's events may continue on the next page.
    if (head_ >= buffer_.size() && next_page_ < page_index_.size() &&
        page_index_[next_page_].first_slot == slot) {
      load_next_page();
      continue;
    }
    break;
  }
  return {batch_.data(), batch_.size()};
}

ContactTrace read_paged_trace(const std::string& path) {
  PagedTraceReader reader(path);
  std::vector<ContactEvent> events;
  events.reserve(reader.total_events());
  while (reader.next_slot() != EventSource::kNoMoreEvents) {
    const auto batch = reader.take_batch();
    events.insert(events.end(), batch.begin(), batch.end());
  }
  return ContactTrace(reader.num_nodes(), reader.duration(),
                      std::move(events));
}

}  // namespace impatience::trace
