#include "impatience/trace/generators.hpp"

namespace impatience::trace {

ContactTrace generate_cabspotting_like(const CabspottingLikeParams& params,
                                       util::Rng& rng) {
  return generate_mobility_trace(params.mobility, params.duration,
                                 params.contact_range, rng);
}

}  // namespace impatience::trace
