#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "impatience/trace/parsers.hpp"
#include "lenient.hpp"

namespace impatience::trace {

namespace {

struct Connection {
  long a;
  long b;
  double start;
  double end;
};

}  // namespace

ContactTrace parse_one_events(std::istream& in, const OneOptions& options) {
  if (!(options.slot_seconds > 0.0)) {
    throw std::runtime_error("ONE parser: slot_seconds must be > 0");
  }
  detail::LenientGate gate(options.parse, "ONE parser");
  std::map<std::pair<long, long>, double> open;  // pair -> start time
  std::vector<Connection> connections;
  double last_time = 0.0;
  bool any = false;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream is(line);
    double time;
    std::string kind;
    if (!(is >> time >> kind)) {
      gate.reject("bad line", line);
      continue;
    }
    if (gate.lenient() && !detail::plausible_time(time)) {
      gate.reject("implausible timestamp", line);
      continue;
    }
    last_time = std::max(last_time, time);
    any = true;
    if (kind != "CONN") continue;  // other ONE event types are ignored
    long a, b;
    std::string state;
    if (!(is >> a >> b >> state) || a < 0 || b < 0) {
      gate.reject("bad CONN line", line);
      continue;
    }
    auto key = std::minmax(a, b);
    if (state == "up") {
      open.emplace(key, time);  // duplicate "up" keeps the first start
    } else if (state == "down") {
      const auto it = open.find(key);
      if (it != open.end()) {
        connections.push_back({key.first, key.second, it->second, time});
        open.erase(it);
      }
    } else {
      gate.reject("CONN state must be up/down", line);
      continue;
    }
  }
  if (!any && !gate.lenient()) {
    throw std::runtime_error("ONE parser: no events found");
  }
  // Close connections that never went down.
  for (const auto& [key, start] : open) {
    connections.push_back({key.first, key.second, start, last_time});
  }
  if (connections.empty()) {
    if (gate.lenient()) {
      gate.finish();
      return ContactTrace(1, 1, {});
    }
    throw std::runtime_error("ONE parser: no CONN events found");
  }
  gate.finish();

  // Reuse the CRAWDAD pipeline by serializing to its 4-column format.
  std::ostringstream crawdad;
  for (const auto& c : connections) {
    crawdad << c.a << ' ' << c.b << ' ' << c.start << ' ' << c.end << '\n';
  }
  std::istringstream replay(crawdad.str());
  CrawdadOptions crawdad_options;
  crawdad_options.slot_seconds = options.slot_seconds;
  crawdad_options.expansion = options.expansion;
  return parse_crawdad(replay, crawdad_options);
}

ContactTrace parse_one_events_file(const std::string& path,
                                   const OneOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ONE parser: cannot open " + path);
  }
  return parse_one_events(in, options);
}

}  // namespace impatience::trace
