// Internal helper for ParseOptions::lenient — shared by the external
// trace parsers, not part of the public API.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "impatience/trace/parsers.hpp"
#include "impatience/util/log.hpp"

namespace impatience::trace::detail {

/// Timestamp bound (seconds) a lenient parse accepts: ~115 days, far
/// beyond any real capture, tight enough that one corrupt timestamp
/// cannot demand an absurd slot range.
constexpr double kMaxLenientSeconds = 1e7;

inline bool plausible_time(double t) {
  return std::isfinite(t) && t >= -kMaxLenientSeconds &&
         t <= kMaxLenientSeconds;
}

/// Routes record-level errors: throw in strict mode, count-and-skip in
/// lenient mode (with one summary warning from finish()).
class LenientGate {
 public:
  LenientGate(const ParseOptions& options, const char* parser)
      : options_(options), parser_(parser) {}

  /// Strict: throws "<parser>: <what>[: <line>]". Lenient: counts the
  /// skip and returns (callers `continue` past the record).
  void reject(const std::string& what, const std::string& line) {
    if (options_.lenient) {
      ++skipped_;
      return;
    }
    throw std::runtime_error(std::string(parser_) + ": " + what +
                             (line.empty() ? "" : ": " + line));
  }

  bool lenient() const noexcept { return options_.lenient; }
  std::uint64_t skipped() const noexcept { return skipped_; }

  /// Publishes the skip count (report + one warning). Call on every
  /// return path, the empty-trace fallback included.
  void finish() const {
    if (options_.report) options_.report->malformed_lines = skipped_;
    if (skipped_ > 0) {
      util::log_warn(parser_, ": lenient mode skipped ", skipped_,
                     " malformed line(s)");
    }
  }

 private:
  const ParseOptions& options_;
  const char* parser_;
  std::uint64_t skipped_ = 0;
};

}  // namespace impatience::trace::detail
