#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "impatience/trace/generators.hpp"

namespace impatience::trace {

ContactTrace generate_infocom_like(const InfocomLikeParams& params,
                                   util::Rng& rng) {
  if (params.num_nodes < 2 || params.days <= 0 || params.slots_per_day <= 0 ||
      !(params.mean_pair_rate > 0.0) || !(params.burst_on_prob > 0.0) ||
      !(params.burst_off_prob > 0.0)) {
    throw std::invalid_argument("generate_infocom_like: bad parameters");
  }
  const NodeId n = params.num_nodes;
  const Slot duration = static_cast<Slot>(params.days) * params.slots_per_day;

  // Heterogeneous mean rates: lognormal with the requested mean.
  const double sigma = params.rate_lognormal_sigma;
  const double mu_ln = std::log(params.mean_pair_rate) - 0.5 * sigma * sigma;
  struct PairState {
    NodeId a, b;
    double rate;  // daytime mean contacts per slot
    bool on;
  };
  std::vector<PairState> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  // Stationary ON probability of the burst chain; contacts happen only
  // while ON, scaled by 1/pi_on so the mean rate is unchanged.
  const double pi_on = params.burst_on_prob /
                       (params.burst_on_prob + params.burst_off_prob);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const double rate = rng.lognormal(mu_ln, sigma);
      pairs.push_back({a, b, rate, rng.bernoulli(pi_on)});
    }
  }

  auto envelope = [&params](Slot slot) {
    const Slot in_day = slot % params.slots_per_day;
    const double day_frac =
        static_cast<double>(in_day) / static_cast<double>(params.slots_per_day);
    if (day_frac < 8.0 / 24.0) return params.night_activity;
    if (day_frac < 18.0 / 24.0) return params.day_activity;
    return params.evening_activity;
  };

  std::vector<ContactEvent> events;
  for (Slot s = 0; s < duration; ++s) {
    const double env = envelope(s);
    for (auto& pr : pairs) {
      // Burst chain step.
      if (pr.on) {
        if (rng.bernoulli(params.burst_off_prob)) pr.on = false;
      } else {
        if (rng.bernoulli(params.burst_on_prob)) pr.on = true;
      }
      if (!pr.on || env <= 0.0) continue;
      const double p = std::min(pr.rate * env / pi_on, 0.95);
      if (rng.bernoulli(p)) events.push_back({s, pr.a, pr.b});
    }
  }
  return ContactTrace(n, duration, std::move(events));
}

}  // namespace impatience::trace
