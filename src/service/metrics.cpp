#include "impatience/service/metrics.hpp"

#include <sstream>

#include "impatience/service/daemon.hpp"
#include "impatience/stats/percentile.hpp"

namespace impatience::service {

void ServiceMetrics::record_apply_latency(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (latencies_us_.size() >= kWindow) {
    latencies_us_.erase(latencies_us_.begin(),
                        latencies_us_.begin() + kWindow / 2);
  }
  latencies_us_.push_back(us);
}

void ServiceMetrics::record_snapshot(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshots_;
  snapshot_last_version_ = version;
}

std::uint64_t ServiceMetrics::snapshots_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

std::uint64_t ServiceMetrics::snapshot_last_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_last_version_;
}

double ServiceMetrics::apply_latency_percentile(double p) const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window = latencies_us_;
  }
  if (window.empty()) return 0.0;
  return stats::percentile(window, p);
}

std::string render_metrics(const StateStore& store,
                           const ServiceMetrics& metrics,
                           double uptime_seconds,
                           double versions_per_second,
                           const IngestCounters* ingest) {
  // One consistent read of the logical counters; the gauges derived from
  // the delay window use their own locked reads.
  const StoreCounters k = store.counters();
  const fault::FaultCounters f = store.faults();

  std::ostringstream out;
  out.precision(10);
  out << "replicationd_version " << store.version() << '\n';
  out << "replicationd_seq " << store.seq() << '\n';
  out << "replicationd_clock_slot " << store.clock() << '\n';
  out << "replicationd_uptime_seconds " << uptime_seconds << '\n';
  out << "replicationd_versions_per_second " << versions_per_second << '\n';
  out << "replicationd_events_total " << k.events_applied << '\n';
  out << "replicationd_events_malformed_total " << k.events_malformed << '\n';
  out << "replicationd_contacts_total " << k.contacts << '\n';
  out << "replicationd_requests_total " << k.requests_created << '\n';
  out << "replicationd_requests_served_total " << k.requests_served() << '\n';
  out << "replicationd_requests_immediate_total " << k.immediate_fulfillments
      << '\n';
  out << "replicationd_fulfillments_total " << k.fulfillments << '\n';
  out << "replicationd_requests_pending " << k.requests_pending << '\n';
  out << "replicationd_replicas_written_total " << k.replicas_written << '\n';
  out << "replicationd_mandates_created_total " << k.mandates_created << '\n';
  out << "replicationd_mandates_outstanding " << k.mandates_outstanding
      << '\n';
  out << "replicationd_mandates_lost_total " << f.mandates_lost << '\n';
  out << "replicationd_mandate_conservation_ok "
      << (store.mandate_conservation_ok() ? 1 : 0) << '\n';
  out << "replicationd_crashes_total " << f.crashes << '\n';
  out << "replicationd_replicas_lost_total " << f.replicas_lost << '\n';
  out << "replicationd_requests_lost_total " << f.requests_lost << '\n';
  out << "replicationd_total_gain " << k.total_gain << '\n';
  out << "replicationd_delay_slots_p50 " << store.delay_percentile(0.50)
      << '\n';
  out << "replicationd_delay_slots_p99 " << store.delay_percentile(0.99)
      << '\n';
  out << "replicationd_apply_latency_us_p50 "
      << metrics.apply_latency_percentile(0.50) << '\n';
  out << "replicationd_apply_latency_us_p99 "
      << metrics.apply_latency_percentile(0.99) << '\n';
  out << "replicationd_snapshots_total " << metrics.snapshots_total() << '\n';
  out << "replicationd_snapshot_last_version "
      << metrics.snapshot_last_version() << '\n';
  if (ingest != nullptr) {
    const auto load = [](const std::atomic<std::uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    out << "replicationd_ingest_connections_total "
        << load(ingest->connections) << '\n';
    out << "replicationd_ingest_hellos_total " << load(ingest->hellos)
        << '\n';
    out << "replicationd_ingest_frames_partial_total "
        << load(ingest->frames_partial) << '\n';
    out << "replicationd_ingest_frames_partial_discarded_total "
        << load(ingest->frames_partial_discarded) << '\n';
    out << "replicationd_ingest_events_deferred_total "
        << load(ingest->events_deferred) << '\n';
    out << "replicationd_ingest_buffer_high_water_bytes "
        << load(ingest->buffer_high_water) << '\n';
  }
  return out.str();
}

}  // namespace impatience::service
