#include "impatience/service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "impatience/engine/artifacts.hpp"
#include "impatience/service/http.hpp"
#include "impatience/service/protocol.hpp"

namespace impatience::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

class FileSource final : public LineSource {
 public:
  FileSource(const std::string& path, bool follow) : follow_(follow) {
    if (path == "-") {
      stream_ = &std::cin;
    } else {
      file_.open(path);
      if (!file_) {
        throw util::IoError("replicationd: cannot open input " + path);
      }
      stream_ = &file_;
    }
  }

  std::optional<std::string> next_line(
      const std::atomic<bool>& stop) override {
    std::string line;
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return std::nullopt;
      if (std::getline(*stream_, line)) return line;
      if (!follow_ || stream_ == &std::cin) return std::nullopt;
      // tail -f: clear the EOF condition and wait for the file to grow.
      stream_->clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

 private:
  bool follow_;
  std::ifstream file_;
  std::istream* stream_ = nullptr;
};

class SocketSource final : public LineSource {
 public:
  explicit SocketSource(std::string path) : path_(std::move(path)) {
    sockaddr_un addr{};
    if (path_.size() >= sizeof(addr.sun_path)) {
      throw util::IoError("replicationd: socket path too long: " + path_);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw util::IoError("replicationd: socket() failed: " +
                          std::string(std::strerror(errno)));
    }
    ::unlink(path_.c_str());  // stale socket from a previous run
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listen_fd_, 4) < 0) {
      const std::string what = std::strerror(errno);
      ::close(listen_fd_);
      throw util::IoError("replicationd: cannot listen on " + path_ + ": " +
                          what);
    }
  }

  ~SocketSource() override {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  std::optional<std::string> next_line(
      const std::atomic<bool>& stop) override {
    for (;;) {
      // Serve a buffered complete line first.
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (stop.load(std::memory_order_relaxed)) return std::nullopt;
      if (conn_fd_ < 0) {
        // Feeders connect sequentially: accept the next one.
        struct pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0 && errno != EINTR) return std::nullopt;
        if (ready <= 0) continue;
        conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
        continue;
      }
      struct pollfd pfd{conn_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno != EINTR) return std::nullopt;
      if (ready <= 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(conn_fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(conn_fd_);
        conn_fd_ = -1;
        continue;
      }
      if (n == 0) {
        // Feeder hung up; flush any unterminated trailing line.
        ::close(conn_fd_);
        conn_fd_ = -1;
        if (!buffer_.empty()) {
          std::string line = std::move(buffer_);
          buffer_.clear();
          return line;
        }
        continue;
      }
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  std::string path_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::string buffer_;
};

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

std::unique_ptr<LineSource> make_file_source(const std::string& path,
                                             bool follow) {
  return std::make_unique<FileSource>(path, follow);
}

std::unique_ptr<LineSource> make_socket_source(const std::string& path) {
  return std::make_unique<SocketSource>(path);
}

ReplicationDaemon::ReplicationDaemon(const DaemonConfig& config)
    : config_(config) {
  if (config_.restore && !config_.snapshot_path.empty() &&
      file_exists(config_.snapshot_path)) {
    // A SIGKILL mid-snapshot leaves a stale `<path>.tmp`; the atomic
    // rename discipline means `<path>` itself is always the last
    // consistent snapshot, so the temp file is simply ignored.
    store_ = std::make_unique<StateStore>(config_.store, config_.seed,
                                          load_image(config_.snapshot_path));
    restored_ = true;
  } else {
    store_ = std::make_unique<StateStore>(config_.store, config_.seed);
  }

  source_ = config_.socket_path.empty()
                ? make_file_source(config_.input_path, config_.follow)
                : make_socket_source(config_.socket_path);

  start_time_ = Clock::now();
  rate_time_ = start_time_;
  rate_version_ = store_->version();

  if (config_.http_port >= 0) {
    http_ = std::make_unique<HttpServer>(
        [this](const std::string& path) -> HttpResponse {
          if (path == "/metrics") {
            return {200, "text/plain; charset=utf-8", render()};
          }
          if (path == "/healthz") {
            return {200, "text/plain; charset=utf-8", "ok\n"};
          }
          if (path == "/snapshot") {
            if (config_.snapshot_path.empty()) {
              return {400, "text/plain; charset=utf-8",
                      "no --snapshot path configured\n"};
            }
            snapshot_now();
            return {200, "text/plain; charset=utf-8",
                    "ok version " +
                        std::to_string(metrics_.snapshot_last_version()) +
                        "\n"};
          }
          return {404, "text/plain; charset=utf-8", "not found\n"};
        },
        static_cast<std::uint16_t>(config_.http_port));
  }

  if (!config_.announce_path.empty()) write_announce_file();

  if (!config_.snapshot_path.empty() && config_.snapshot_interval_s > 0.0) {
    snapshot_thread_ = std::thread([this] { snapshot_loop(); });
  }
}

ReplicationDaemon::~ReplicationDaemon() {
  stop();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  if (http_) http_->stop();
}

std::uint16_t ReplicationDaemon::http_port() const noexcept {
  return http_ ? http_->port() : 0;
}

void ReplicationDaemon::stop() {
  stop_.store(true, std::memory_order_relaxed);
  snapshot_cv_.notify_all();
}

void ReplicationDaemon::run(const util::CancellationToken* token) {
  // Bridge the token into the stop flag so a cancel unblocks the source
  // polls promptly even when no frames are arriving.
  std::atomic<bool> run_done{false};
  std::thread token_watch;
  if (token) {
    token_watch = std::thread([this, token, &run_done] {
      while (!run_done.load(std::memory_order_relaxed)) {
        if (token->cancelled()) {
          stop();
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  while (!stop_.load(std::memory_order_relaxed)) {
    const auto line = source_->next_line(stop_);
    if (!line) break;  // end of stream or stop
    if (is_noise_line(*line)) continue;
    const auto event = parse_event(*line);
    if (!event) {
      store_->note_malformed();
      continue;
    }
    if (event->kind == Event::Kind::quit) break;
    const auto t0 = Clock::now();
    store_->apply(*event);
    metrics_.record_apply_latency(1e6 * seconds_since(t0, Clock::now()));
    if (config_.snapshot_every > 0 &&
        store_->seq() % config_.snapshot_every == 0) {
      snapshot_now();
    }
  }

  stop();
  run_done.store(true, std::memory_order_relaxed);
  if (token_watch.joinable()) token_watch.join();

  // Graceful exit always persists a final snapshot — including the
  // deadline path, where the state is still consistent (events are
  // applied atomically) and worth keeping.
  if (!config_.snapshot_path.empty()) snapshot_now();

  if (token && token->cancelled() &&
      token->reason() == util::CancelReason::deadline) {
    throw util::cancelled_error(*token, "replicationd: deadline exceeded");
  }
}

void ReplicationDaemon::snapshot_now() {
  if (config_.snapshot_path.empty()) return;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  // Record the version the image actually carries, not the store's
  // (possibly newer) live version.
  const StateImage image = store_->image();
  save_image(config_.snapshot_path, image);
  metrics_.record_snapshot(image.version);
}

void ReplicationDaemon::snapshot_loop() {
  const auto interval = std::chrono::duration<double>(
      config_.snapshot_interval_s);
  std::mutex wait_mu;
  std::unique_lock<std::mutex> lock(wait_mu);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (snapshot_cv_.wait_for(lock, interval) == std::cv_status::timeout &&
        !stop_.load(std::memory_order_relaxed)) {
      snapshot_now();
    }
  }
}

std::string ReplicationDaemon::render() const {
  const auto now = Clock::now();
  double rate = 0.0;
  {
    std::lock_guard<std::mutex> lock(rate_mu_);
    const std::uint64_t version = store_->version();
    const double dt = seconds_since(rate_time_, now);
    if (dt > 0.0) rate = static_cast<double>(version - rate_version_) / dt;
    rate_time_ = now;
    rate_version_ = version;
  }
  return render_metrics(*store_, metrics_, seconds_since(start_time_, now),
                        rate);
}

void ReplicationDaemon::write_announce_file() const {
  const std::uint16_t port = http_port();
  engine::atomic_write_file(
      config_.announce_path, [this, port](std::ostream& out) {
        out << "http_port " << port << '\n'
            << "socket " << config_.socket_path << '\n'
            << "pid " << ::getpid() << '\n';
      });
}

}  // namespace impatience::service
