#include "impatience/service/daemon.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "impatience/engine/artifacts.hpp"
#include "impatience/service/http.hpp"
#include "impatience/service/protocol.hpp"
#include "impatience/service/snapshot_chain.hpp"

namespace impatience::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

class FileSource final : public LineSource {
 public:
  FileSource(const std::string& path, bool follow, double poll_seconds)
      : follow_(follow), poll_seconds_(std::max(poll_seconds, 0.001)) {
    if (path == "-") {
      stream_ = &std::cin;
    } else {
      file_.open(path);
      if (!file_) {
        throw util::IoError("replicationd: cannot open input " + path);
      }
      stream_ = &file_;
    }
  }

  std::optional<std::string> next_line(
      const std::atomic<bool>& stop) override {
    std::string line;
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return std::nullopt;
      if (std::getline(*stream_, line)) return line;
      if (!follow_ || stream_ == &std::cin) return std::nullopt;
      // tail -f: clear the EOF condition and wait for the file to grow.
      // The wait is sliced so a stop request (SIGTERM under --follow)
      // unblocks within ~10 ms instead of a full poll period.
      stream_->clear();
      const auto deadline =
          Clock::now() + std::chrono::duration<double>(poll_seconds_);
      while (Clock::now() < deadline) {
        if (stop.load(std::memory_order_relaxed)) return std::nullopt;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  bool has_buffered_line() override {
    // in_avail() never blocks: it reports bytes already sitting in the
    // stream buffer. An approximation (the buffered bytes may lack a
    // newline), but getline on a regular file refills cheaply and a
    // half-line on stdin only delays the flush, never correctness.
    return stream_->good() && stream_->rdbuf()->in_avail() > 0;
  }

 private:
  bool follow_;
  double poll_seconds_;
  std::ifstream file_;
  std::istream* stream_ = nullptr;
};

/// Stream-socket line source over an already-listening fd. Everything
/// past accept() is address-family agnostic: the Unix-domain and TCP
/// factories below differ only in how they produce the listening socket.
class SocketSource final : public LineSource {
 public:
  /// Takes ownership of `listen_fd` (already bound + listening).
  /// `unlink_path`, when non-empty, is removed at destruction (the
  /// Unix-domain socket file).
  SocketSource(int listen_fd, std::string unlink_path,
               IngestCounters* counters, std::size_t buffer_bytes)
      : unlink_path_(std::move(unlink_path)),
        listen_fd_(listen_fd),
        counters_(counters),
        cap_(std::max<std::size_t>(buffer_bytes, 4096)) {}

  ~SocketSource() override {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
  }

  std::optional<std::string> next_line(
      const std::atomic<bool>& stop) override {
    for (;;) {
      // A fresh connection while a fragment is held: the first complete
      // line decides whether the fragment glues or drops (see resolve),
      // so nothing is served until that line exists.
      if (deciding_ && buffer_.find('\n') != std::string::npos) {
        resolve_fragment();
        continue;
      }
      if (!deciding_) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
          // Backpressure accounting: lines served while the buffer sits
          // at/above its cap are events the transport deferred reads for.
          if (counters_ && buffer_.size() >= cap_) {
            counters_->events_deferred.fetch_add(1,
                                                 std::memory_order_relaxed);
          }
          std::string line = buffer_.substr(0, nl);
          buffer_.erase(0, nl + 1);
          return line;
        }
      }
      if (stop.load(std::memory_order_relaxed)) return std::nullopt;
      if (conn_fd_ < 0) {
        // Feeders connect sequentially: accept the next one.
        struct pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0 && errno != EINTR) return std::nullopt;
        if (ready <= 0) continue;
        conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
        if (conn_fd_ < 0) continue;
        if (counters_) {
          counters_->connections.fetch_add(1, std::memory_order_relaxed);
        }
        deciding_ = !fragment_.empty();
        continue;
      }
      struct pollfd pfd{conn_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno != EINTR) return std::nullopt;
      if (ready <= 0) continue;
      // Drain greedily up to the cap so the buffer is what holds queued
      // frames and the cap is meaningful. The cap bounds multi-line
      // queueing only: a single unterminated line keeps reading past it
      // (else ingest would deadlock — the same unboundedness the file
      // source's getline has).
      bool have_line = buffer_.find('\n') != std::string::npos;
      while (!have_line || buffer_.size() < cap_) {
        char buf[4096];
        const ssize_t n = ::recv(conn_fd_, buf, sizeof(buf), MSG_DONTWAIT);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
            break;
          }
          close_conn();
          break;
        }
        if (n == 0) {
          close_conn();
          break;
        }
        if (std::memchr(buf, '\n', static_cast<std::size_t>(n)) != nullptr) {
          have_line = true;
        }
        buffer_.append(buf, static_cast<std::size_t>(n));
      }
      if (counters_) {
        std::uint64_t hw =
            counters_->buffer_high_water.load(std::memory_order_relaxed);
        while (hw < buffer_.size() &&
               !counters_->buffer_high_water.compare_exchange_weak(
                   hw, buffer_.size(), std::memory_order_relaxed)) {
        }
      }
    }
  }

  void reply(const std::string& line) override {
    if (conn_fd_ < 0) return;
    // Non-blocking, SIGPIPE-free: a feeder that never reads its S
    // replies must not be able to stall ingest.
    (void)::send(conn_fd_, line.data(), line.size(),
                 MSG_NOSIGNAL | MSG_DONTWAIT);
  }

  bool has_buffered_line() override {
    // Exact for sockets: a complete line is already drained into the
    // buffer (a fragment under decision is not servable yet).
    return !deciding_ && buffer_.find('\n') != std::string::npos;
  }

 private:
  void close_conn() {
    ::close(conn_fd_);
    conn_fd_ = -1;
    // A dying connection that did deliver its first complete line still
    // gets its fragment decision (the greedy drain can learn of the
    // close with complete lines already buffered).
    if (deciding_ && buffer_.find('\n') != std::string::npos) {
      resolve_fragment();
    }
    if (deciding_) {
      // Died before its first complete line: its bytes chain onto the
      // held fragment (arrival order) and the decision passes to the
      // next connection (accept re-derives deciding_ from fragment_).
      if (!buffer_.empty()) {
        fragment_ += buffer_;
        buffer_.clear();
        if (counters_) {
          counters_->frames_partial.fetch_add(1, std::memory_order_relaxed);
        }
      }
      deciding_ = false;
      return;
    }
    // Hold (never flush) the unterminated trailing line: the next
    // connection decides its fate. Complete lines stay buffered and
    // keep being served.
    const std::size_t last = buffer_.rfind('\n');
    const std::size_t tail = last == std::string::npos ? 0 : last + 1;
    if (tail < buffer_.size()) {
      fragment_ += buffer_.substr(tail);
      buffer_.erase(tail);
      if (counters_) {
        counters_->frames_partial.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void resolve_fragment() {
    const std::size_t nl = buffer_.find('\n');
    const std::string_view first(buffer_.data(), nl);
    if (classify_line(first) == LineClass::hello) {
      // A new/resuming feeder opens with a hello and will re-send the
      // cut frame itself after seeking to the acked cursor — gluing its
      // bytes onto the fragment would corrupt the stream. Drop it.
      fragment_.clear();
      if (counters_) {
        counters_->frames_partial_discarded.fetch_add(
            1, std::memory_order_relaxed);
      }
    } else {
      // A continuation feeder (no handshake): its bytes complete the
      // cut frame exactly where it left off.
      buffer_.insert(0, fragment_);
      fragment_.clear();
    }
    deciding_ = false;
  }

  std::string unlink_path_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::string buffer_;    ///< bytes from the current connection
  std::string fragment_;  ///< unterminated tail of previous connection(s)
  bool deciding_ = false;
  IngestCounters* counters_ = nullptr;
  std::size_t cap_;
};

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

std::unique_ptr<LineSource> make_file_source(const std::string& path,
                                             bool follow,
                                             double poll_seconds) {
  return std::make_unique<FileSource>(path, follow, poll_seconds);
}

std::unique_ptr<LineSource> make_socket_source(const std::string& path,
                                               IngestCounters* counters,
                                               std::size_t buffer_bytes) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw util::IoError("replicationd: socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw util::IoError("replicationd: socket() failed: " +
                        std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 4) < 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw util::IoError("replicationd: cannot listen on " + path + ": " +
                        what);
  }
  return std::make_unique<SocketSource>(fd, path, counters, buffer_bytes);
}

std::unique_ptr<LineSource> make_tcp_source(int port,
                                            IngestCounters* counters,
                                            std::size_t buffer_bytes,
                                            std::uint16_t* bound_port) {
  if (port < 0 || port > 65535) {
    throw util::IoError("replicationd: invalid TCP port " +
                        std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw util::IoError("replicationd: socket() failed: " +
                        std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: replicationd has no authentication; exposing the
  // ingest stream beyond the host is an operator decision (a tunnel),
  // not a default.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 4) < 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw util::IoError("replicationd: cannot listen on 127.0.0.1:" +
                        std::to_string(port) + ": " + what);
  }
  if (bound_port) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw util::IoError("replicationd: getsockname failed: " + what);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return std::make_unique<SocketSource>(fd, std::string(), counters,
                                        buffer_bytes);
}

ReplicationDaemon::ReplicationDaemon(const DaemonConfig& config)
    : config_(config) {
  const bool chain_avail =
      !config_.snapshot_path.empty() &&
      SnapshotChain::chain_available(config_.snapshot_path);
  if (config_.restore && !config_.snapshot_path.empty() &&
      (chain_avail || file_exists(config_.snapshot_path))) {
    // A SIGKILL mid-snapshot leaves a stale `<path>.tmp`; the atomic
    // rename discipline means `<path>` itself — or the chain manifest —
    // is always the last consistent snapshot, so the temp file is simply
    // ignored. restore_image prefers the chain, falls back to the plain
    // file.
    store_ = std::make_unique<StateStore>(
        config_.store, config_.seed,
        SnapshotChain::restore_image(config_.snapshot_path), config_.apply);
    restored_ = true;
  } else {
    store_ = std::make_unique<StateStore>(config_.store, config_.seed,
                                          config_.apply);
  }
  if (config_.snapshot_deltas && !config_.snapshot_path.empty()) {
    chain_ = std::make_unique<SnapshotChain>(SnapshotChain::Options{
        config_.snapshot_path, config_.snapshot_delta_limit});
  }

  if (!config_.socket_path.empty()) {
    source_ = make_socket_source(config_.socket_path, &ingest_,
                                 config_.ingest_buffer_bytes);
  } else if (config_.tcp_port >= 0) {
    source_ = make_tcp_source(config_.tcp_port, &ingest_,
                              config_.ingest_buffer_bytes, &tcp_port_);
  } else {
    source_ = make_file_source(config_.input_path, config_.follow,
                               config_.follow_poll_s);
  }

  start_time_ = Clock::now();
  rate_time_ = start_time_;
  rate_version_ = store_->version();

  if (config_.http_port >= 0) {
    http_ = std::make_unique<HttpServer>(
        [this](const std::string& path) -> HttpResponse {
          if (path == "/metrics") {
            return {200, "text/plain; charset=utf-8", render()};
          }
          if (path == "/healthz") {
            return {200, "text/plain; charset=utf-8", "ok\n"};
          }
          if (path == "/snapshot") {
            if (config_.snapshot_path.empty()) {
              return {400, "text/plain; charset=utf-8",
                      "no --snapshot path configured\n"};
            }
            snapshot_now();
            return {200, "text/plain; charset=utf-8",
                    "ok version " +
                        std::to_string(metrics_.snapshot_last_version()) +
                        "\n"};
          }
          return {404, "text/plain; charset=utf-8", "not found\n"};
        },
        static_cast<std::uint16_t>(config_.http_port));
  }

  if (!config_.announce_path.empty()) write_announce_file();

  if (!config_.snapshot_path.empty() && config_.snapshot_interval_s > 0.0) {
    snapshot_thread_ = std::thread([this] { snapshot_loop(); });
  }
}

ReplicationDaemon::~ReplicationDaemon() {
  stop();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  if (http_) http_->stop();
}

std::uint16_t ReplicationDaemon::http_port() const noexcept {
  return http_ ? http_->port() : 0;
}

void ReplicationDaemon::stop() {
  stop_.store(true, std::memory_order_relaxed);
  snapshot_cv_.notify_all();
}

void ReplicationDaemon::run(const util::CancellationToken* token) {
  // Bridge the token into the stop flag so a cancel unblocks the source
  // polls promptly even when no frames are arriving.
  std::atomic<bool> run_done{false};
  std::thread token_watch;
  if (token) {
    token_watch = std::thread([this, token, &run_done] {
      while (!run_done.load(std::memory_order_relaxed)) {
        if (token->cancelled()) {
          stop();
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  // Countable lines are batched so the sharded pipeline sees windows
  // worth planning: the batch grows while the source has more buffered
  // (never waiting for input), flushes through apply_batch — which is
  // byte-identical to per-line apply for any batch split — and is forced
  // down at every point the per-line loop would observe the store:
  // hello replies (the seq cursor), by-sequence snapshot boundaries, and
  // end of stream.
  std::vector<IngestLine> batch;
  const std::size_t batch_cap = std::max<std::size_t>(config_.apply.window, 1);
  const auto flush = [&] {
    if (batch.empty()) return;
    const auto t0 = Clock::now();
    store_->apply_batch(batch);
    // One sample per line, so latency percentiles stay comparable with
    // the per-line path: the batch's wall time amortized over its lines.
    metrics_.record_apply_latency(1e6 * seconds_since(t0, Clock::now()) /
                                  static_cast<double>(batch.size()));
    batch.clear();
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    const auto line = source_->next_line(stop_);
    if (!line) break;  // end of stream or stop
    Event event;
    const LineClass cls = classify_line(*line, &event);
    if (cls == LineClass::noise) continue;
    if (cls == LineClass::hello) {
      // Handshake: answer with the seq cursor (the count of countable
      // lines applied so far) so a resuming feeder can seek to seq + 1.
      // Pending lines flush first — they precede the hello in the stream
      // and must be inside the acked cursor.
      flush();
      ingest_.hellos.fetch_add(1, std::memory_order_relaxed);
      source_->reply(format_seq_reply(store_->seq()) + "\n");
      continue;
    }
    if (cls == LineClass::quit) break;
    IngestLine ingest_line;
    ingest_line.malformed = cls == LineClass::malformed;
    if (!ingest_line.malformed) ingest_line.event = event;
    batch.push_back(ingest_line);
    // Cadence keys on seq, which malformed lines advance too — the
    // by-sequence snapshot schedule must replay identically, so the
    // batch is cut exactly at the boundary.
    const bool boundary =
        config_.snapshot_every > 0 &&
        (store_->seq() + batch.size()) % config_.snapshot_every == 0;
    if (boundary || batch.size() >= batch_cap ||
        !source_->has_buffered_line()) {
      flush();
      if (boundary) snapshot_now();
    }
  }
  flush();

  stop();
  run_done.store(true, std::memory_order_relaxed);
  if (token_watch.joinable()) token_watch.join();

  // Graceful exit always persists a final snapshot — including the
  // deadline path, where the state is still consistent (events are
  // applied atomically) and worth keeping. In delta mode the chain is
  // collapsed into a single fresh base.
  if (!config_.snapshot_path.empty()) {
    if (chain_) {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      chain_->finalize(*store_);
      metrics_.record_snapshot(store_->version());
    } else {
      snapshot_now();
    }
  }

  if (token && token->cancelled() &&
      token->reason() == util::CancelReason::deadline) {
    throw util::cancelled_error(*token, "replicationd: deadline exceeded");
  }
}

void ReplicationDaemon::snapshot_now() {
  if (config_.snapshot_path.empty()) return;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (chain_) {
    // Incremental checkpoint: delta of the dirty nodes (or a fresh base
    // at the delta limit); the manifest write is the commit point.
    chain_->snapshot(*store_);
    metrics_.record_snapshot(store_->version());
    return;
  }
  // Record the version the image actually carries, not the store's
  // (possibly newer) live version.
  const StateImage image = store_->image();
  save_image(config_.snapshot_path, image);
  metrics_.record_snapshot(image.version);
}

void ReplicationDaemon::snapshot_loop() {
  const auto interval = std::chrono::duration<double>(
      config_.snapshot_interval_s);
  std::mutex wait_mu;
  std::unique_lock<std::mutex> lock(wait_mu);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (snapshot_cv_.wait_for(lock, interval) == std::cv_status::timeout &&
        !stop_.load(std::memory_order_relaxed)) {
      snapshot_now();
    }
  }
}

std::string ReplicationDaemon::render() const {
  const auto now = Clock::now();
  double rate = 0.0;
  {
    std::lock_guard<std::mutex> lock(rate_mu_);
    const std::uint64_t version = store_->version();
    const double dt = seconds_since(rate_time_, now);
    if (dt > 0.0) rate = static_cast<double>(version - rate_version_) / dt;
    rate_time_ = now;
    rate_version_ = version;
  }
  return render_metrics(*store_, metrics_, seconds_since(start_time_, now),
                        rate, &ingest_);
}

void ReplicationDaemon::write_announce_file() const {
  const std::uint16_t port = http_port();
  engine::atomic_write_file(
      config_.announce_path, [this, port](std::ostream& out) {
        out << "http_port " << port << '\n'
            << "socket " << config_.socket_path << '\n'
            << "tcp_port " << tcp_port_ << '\n'
            << "pid " << ::getpid() << '\n';
      });
}

}  // namespace impatience::service
