#include "impatience/service/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "impatience/util/errors.hpp"

namespace impatience::service {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << ' ' << status_text(response.status)
      << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  send_all(fd, out.str());
}

/// Reads until the header terminator or a small limit; a scrape request
/// is one line plus a few headers, so 8 KiB is generous.
std::string read_request(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 2000);
    if (ready <= 0) break;  // slowloris or dead peer: give up quietly
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  return request;
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler, std::uint16_t port)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw util::IoError("HttpServer: socket() failed: " +
                        std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError("HttpServer: cannot listen on 127.0.0.1:" +
                        std::to_string(port) + ": " + what);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError("HttpServer: getsockname() failed: " + what);
  }
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (!stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  } else if (thread_.joinable()) {
    thread_.join();
  }
}

void HttpServer::serve() {
  // Poll with a short timeout instead of blocking in accept(), so stop()
  // never needs to interrupt a syscall.
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  const std::string request = read_request(fd);
  std::istringstream line(request.substr(0, request.find('\n')));
  std::string method, path, proto;
  line >> method >> path >> proto;
  if (method.empty() || path.empty()) {
    send_response(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  if (method != "GET") {
    send_response(fd,
                  {405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  HttpResponse response;
  try {
    response = handler_(path);
  } catch (const std::exception& e) {
    response = {500, "text/plain; charset=utf-8",
                std::string("internal error: ") + e.what() + "\n"};
  }
  send_response(fd, response);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw util::IoError("http_get: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw util::IoError("http_get: cannot connect to 127.0.0.1:" +
                        std::to_string(port) + ": " + what);
  }
  send_all(fd, "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n");
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos) {
    throw util::IoError("http_get: malformed response");
  }
  std::istringstream status_line(response.substr(0, line_end));
  std::string proto;
  int status = 0;
  status_line >> proto >> status;
  if (status != 200) {
    throw util::IoError("http_get: " + path + " returned status " +
                        std::to_string(status));
  }
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    throw util::IoError("http_get: missing header terminator");
  }
  return response.substr(body_at + 4);
}

}  // namespace impatience::service
