#include "impatience/service/feeder.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "impatience/engine/seeding.hpp"
#include "impatience/service/protocol.hpp"

namespace impatience::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Printable, newline-free garbage alphabet. Garbage must never contain
/// '\n': an injected newline would complete a countable line and advance
/// the daemon's seq cursor, breaking the byte-identity guarantee.
constexpr char kGarbageAlphabet[] =
    "!$%&*+,-./0123456789:;<=>?@ABCDEFabcdef^_~";

void sliced_sleep(double seconds, const util::CancellationToken* token) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    if (token && token->cancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void check_probability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("ChaosNetConfig: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

void ChaosNetConfig::validate() const {
  check_probability(p_reset, "p_reset");
  check_probability(p_partial, "p_partial");
  check_probability(p_garbage, "p_garbage");
  check_probability(p_stall, "p_stall");
  if (p_stall > 0.0 && stall_max_seconds <= 0.0) {
    throw std::invalid_argument(
        "ChaosNetConfig: stall_max_seconds must be positive");
  }
  if (p_garbage > 0.0 && garbage_max_bytes == 0) {
    throw std::invalid_argument(
        "ChaosNetConfig: garbage_max_bytes must be positive");
  }
}

std::string render_feeder_metrics(const FeederReport& report) {
  std::ostringstream out;
  out << "replfeed_frames_total " << report.frames_total << '\n';
  out << "replfeed_frames_sent_total " << report.frames_sent << '\n';
  out << "replfeed_connections_total " << report.connections << '\n';
  out << "replfeed_handshakes_total " << report.handshakes << '\n';
  out << "replfeed_reconnect_backoffs_total " << report.reconnect_backoffs
      << '\n';
  out << "replfeed_last_acked_seq " << report.last_acked_seq << '\n';
  out << "replfeed_complete " << (report.complete ? 1 : 0) << '\n';
  out << "replfeed_chaos_resets_total " << report.chaos.resets << '\n';
  out << "replfeed_chaos_partial_writes_total "
      << report.chaos.partial_writes << '\n';
  out << "replfeed_chaos_garbage_bursts_total "
      << report.chaos.garbage_bursts << '\n';
  out << "replfeed_chaos_garbage_bytes_total " << report.chaos.bytes_garbage
      << '\n';
  out << "replfeed_chaos_stalls_total " << report.chaos.stalls << '\n';
  return out.str();
}

StreamFeeder::StreamFeeder(const FeederConfig& config)
    : config_(config),
      chaos_rng_(engine::child_seed(config.chaos.seed, "chaos-net")) {
  config_.chaos.validate();
  if (config_.socket_path.empty() && config_.tcp_port < 0) {
    throw std::invalid_argument(
        "replfeed: need a socket path or a TCP port");
  }
  if (config_.tcp_port > 65535) {
    throw std::invalid_argument("replfeed: TCP port out of range");
  }
  std::ifstream in(config_.input_path);
  if (!in) {
    throw util::IoError("replfeed: cannot open input " + config_.input_path);
  }
  std::string line;
  while (std::getline(in, line)) {
    const LineClass cls = classify_line(line);
    // Only countable lines occupy frame slots (frame i <-> seq i + 1);
    // noise never reaches the wire, and any H/Q in the file is dropped —
    // the feeder owns stream control itself.
    if (is_countable(cls)) frames_.push_back(line);
  }
  report_.frames_total = frames_.size();
}

FeederReport StreamFeeder::snapshot_report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return report_;
}

bool StreamFeeder::connect_once() {
  if (config_.socket_path.empty() && config_.tcp_port >= 0) {
    // TCP transport: identical protocol, different address family.
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      disconnect();
      throw util::IoError("replfeed: bad TCP host " + config_.tcp_host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      disconnect();
      return false;
    }
  } else {
    sockaddr_un addr{};
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw util::IoError("replfeed: socket path too long: " +
                          config_.socket_path);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      disconnect();
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(report_mu_);
  ++report_.connections;
  return true;
}

void StreamFeeder::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool StreamFeeder::send_all(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool StreamFeeder::handshake(std::uint64_t* acked) {
  // The handshake is chaos-exempt: H/S frames are the recovery channel,
  // and a shim that could garble them would turn every injected fault
  // into a livelock instead of a retry.
  static constexpr char kHello[] = "H\n";
  if (!send_all(kHello, 2)) return false;
  std::string buffer;
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(config_.reply_timeout_s);
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      const auto seq = parse_seq_reply(std::string_view(buffer.data(), nl));
      if (!seq) return false;
      *acked = *seq;
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report_.handshakes;
      report_.last_acked_seq = *seq;
      return true;
    }
    const auto left = deadline - Clock::now();
    if (left <= std::chrono::seconds(0)) return false;
    const int wait_ms = static_cast<int>(std::min<std::int64_t>(
        100, std::chrono::duration_cast<std::chrono::milliseconds>(left)
                 .count() +
                 1));
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0 && errno != EINTR) return false;
    if (ready <= 0) continue;
    char buf[256];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // daemon hung up mid-handshake
    buffer.append(buf, static_cast<std::size_t>(n));
  }
}

bool StreamFeeder::send_frame(std::size_t index) {
  const std::string frame = frames_[index] + "\n";

  if (config_.chaos.engaged()) {
    // Fixed draw order per frame — the injection schedule is a pure
    // function of the chaos seed, independent of what fires.
    const bool stall = chaos_rng_.bernoulli(config_.chaos.p_stall);
    const bool reset = chaos_rng_.bernoulli(config_.chaos.p_reset);
    const bool partial = chaos_rng_.bernoulli(config_.chaos.p_partial);
    const bool garbage = chaos_rng_.bernoulli(config_.chaos.p_garbage);

    if (stall) {
      const double s =
          config_.chaos.stall_max_seconds * chaos_rng_.uniform();
      {
        std::lock_guard<std::mutex> lock(report_mu_);
        ++report_.chaos.stalls;
      }
      sliced_sleep(s, nullptr);
    }
    // At most one destructive fault per frame, priority reset > partial
    // > garbage. Each ends with a reset so the daemon sees a clean
    // disconnect and the handshake path recovers.
    if (reset) {
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report_.chaos.resets;
      return false;
    }
    if (partial) {
      // A strict prefix of the frame: at least 1 byte, never the
      // terminating '\n' — the daemon must hold it as a fragment.
      const std::size_t len =
          1 + chaos_rng_.uniform_index(frame.size() - 1);
      (void)send_all(frame.data(), std::min(len, frame.size() - 1));
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report_.chaos.partial_writes;
      return false;
    }
    if (garbage) {
      const std::size_t len =
          1 + chaos_rng_.uniform_index(config_.chaos.garbage_max_bytes);
      std::string burst(len, '\0');
      for (char& c : burst) {
        c = kGarbageAlphabet[chaos_rng_.uniform_index(
            sizeof(kGarbageAlphabet) - 1)];
      }
      (void)send_all(burst.data(), burst.size());
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report_.chaos.garbage_bursts;
      report_.chaos.bytes_garbage += len;
      return false;
    }
  }

  if (!send_all(frame.data(), frame.size())) return false;
  std::lock_guard<std::mutex> lock(report_mu_);
  ++report_.frames_sent;
  return true;
}

void StreamFeeder::backoff_wait(int attempt,
                                const util::CancellationToken* token) {
  const double delay =
      util::backoff_delay(config_.backoff, config_.seed, attempt);
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    ++report_.reconnect_backoffs;
    report_.backoff_delays.push_back(delay);
  }
  if (delay > 0.0) sliced_sleep(delay, token);
}

FeederReport StreamFeeder::run(const util::CancellationToken* token) {
  const std::uint64_t total = frames_.size();
  std::uint64_t next = 0;  // frame index == seq cursor value to resume at
  int attempt = 0;
  bool connected = false;

  while (!(token && token->cancelled())) {
    if (!connected) {
      if (config_.max_attempts > 0 && attempt >= config_.max_attempts) {
        break;
      }
      if (attempt > 0) backoff_wait(attempt, token);
      if (token && token->cancelled()) break;
      if (!connect_once()) {
        ++attempt;
        continue;
      }
      std::uint64_t acked = 0;
      if (!handshake(&acked)) {
        disconnect();
        ++attempt;
        continue;
      }
      // The cursor is authoritative: resume exactly past what the
      // daemon counted (a restore from an older snapshot can move it
      // backwards — re-send, the store applies by seq exactly once).
      next = std::min(acked, total);
      attempt = 0;
      connected = true;
      continue;
    }

    if (next < total) {
      if (send_frame(next)) {
        ++next;
      } else {
        disconnect();
        connected = false;
        ++attempt;
      }
      continue;
    }

    // Every frame is in flight; confirm the daemon counted them all
    // before declaring success — tail bytes sitting in a kernel buffer
    // when the daemon dies would otherwise be silently lost.
    std::uint64_t acked = 0;
    if (!handshake(&acked)) {
      disconnect();
      connected = false;
      ++attempt;
      continue;
    }
    if (acked >= total) {
      if (config_.send_quit) (void)send_all("Q\n", 2);
      std::lock_guard<std::mutex> lock(report_mu_);
      report_.complete = true;
      break;
    }
    next = acked;  // daemon lost the tail (crash + restore) — re-send
  }

  disconnect();
  return snapshot_report();
}

}  // namespace impatience::service
