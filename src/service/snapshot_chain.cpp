#include "impatience/service/snapshot_chain.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "impatience/engine/artifacts.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::service {

namespace {

constexpr std::string_view kManifestMagic =
    "impatience.replicationd_manifest/1";

std::string chain_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string chain_basename(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

SnapshotChain::SnapshotChain(Options options)
    : options_(std::move(options)),
      dir_(chain_dir(options_.path)),
      basename_(chain_basename(options_.path)) {
  if (options_.path.empty()) {
    throw std::invalid_argument("SnapshotChain: path must not be empty");
  }
  if (options_.delta_limit == 0) {
    throw std::invalid_argument("SnapshotChain: delta_limit must be > 0");
  }
}

std::string SnapshotChain::full_path(const std::string& basename) const {
  return dir_ + basename;
}

std::uint64_t SnapshotChain::snapshot(StateStore& store) {
  if (have_chain_ && store.seq() == last_seq_) {
    // Nothing countable happened since the last element. Skipping keeps
    // file names unique per chain: re-emitting `<...>.delta.<seq>` would
    // overwrite a file whose checksum the manifest already records.
    return last_seq_;
  }
  if (!have_chain_ || deltas_since_base() >= options_.delta_limit) {
    write_base(store);
    return last_seq_;
  }
  StateDelta delta = store.take_delta();
  delta.parent_checksum = elements_.back().checksum;
  Element element;
  element.is_base = false;
  element.seq = delta.seq;
  element.file = basename_ + ".delta." + std::to_string(delta.seq);
  element.checksum = save_delta(full_path(element.file), delta);
  elements_.push_back(std::move(element));
  last_seq_ = delta.seq;
  commit_manifest();
  return last_seq_;
}

void SnapshotChain::write_base(StateStore& store) {
  std::vector<std::string> old_files;
  for (const Element& e : elements_) old_files.push_back(e.file);

  const StateImage image = store.checkpoint_image();
  Element element;
  element.is_base = true;
  element.seq = image.seq;
  element.file = basename_ + ".base." + std::to_string(image.seq);
  element.checksum = save_image(full_path(element.file), image);
  elements_.clear();
  elements_.push_back(std::move(element));
  last_seq_ = image.seq;
  have_chain_ = true;
  commit_manifest();
  // Only after the manifest points at the new base is the old chain
  // garbage; a crash before this line leaves both chains on disk and
  // the manifest decides.
  remove_stale(old_files);
}

void SnapshotChain::finalize(StateStore& store) {
  // Force a fresh base even when the last element already sits at this
  // seq: the collapsed chain must be a single file. The base file name
  // can collide with an existing `<...>.base.<seq>`; the content is a
  // deterministic function of the state, so the atomic overwrite is
  // byte-identical and the recorded checksum stays valid.
  std::vector<std::string> old_files;
  for (const Element& e : elements_) old_files.push_back(e.file);

  const StateImage image = store.checkpoint_image();
  Element element;
  element.is_base = true;
  element.seq = image.seq;
  element.file = basename_ + ".base." + std::to_string(image.seq);
  element.checksum = save_image(full_path(element.file), image);
  elements_.clear();
  elements_.push_back(std::move(element));
  last_seq_ = image.seq;
  have_chain_ = true;
  commit_manifest();
  remove_stale(old_files);
}

void SnapshotChain::commit_manifest() {
  engine::atomic_write_file(options_.path + ".manifest",
                            [this](std::ostream& out) {
                              out << kManifestMagic << '\n';
                              for (const Element& e : elements_) {
                                out << (e.is_base ? "base " : "delta ")
                                    << e.file << ' ' << e.checksum << ' '
                                    << e.seq << '\n';
                              }
                              out << "end\n";
                            });
}

void SnapshotChain::remove_stale(const std::vector<std::string>& old_files) {
  for (const std::string& file : old_files) {
    bool live = false;
    for (const Element& e : elements_) {
      if (e.file == file) {
        live = true;
        break;
      }
    }
    if (!live) std::remove(full_path(file).c_str());
  }
}

bool SnapshotChain::chain_available(const std::string& path) {
  std::ifstream in(path + ".manifest");
  return in.good();
}

StateImage SnapshotChain::restore_image(const std::string& path) {
  std::ifstream manifest(path + ".manifest");
  if (!manifest) {
    // Pre-chain snapshot layout: one full image at the plain path.
    return load_image(path);
  }
  const std::string dir = chain_dir(path);

  std::string line;
  if (!std::getline(manifest, line) || line != kManifestMagic) {
    throw util::IoError("snapshot chain: bad manifest magic: " + path +
                        ".manifest");
  }
  struct Entry {
    bool is_base;
    std::string file;
    std::uint64_t checksum;
    std::uint64_t seq;
  };
  std::vector<Entry> entries;
  bool sealed = false;
  while (std::getline(manifest, line)) {
    if (line == "end") {
      sealed = true;
      break;
    }
    std::istringstream fields(line);
    std::string kind;
    Entry entry;
    if (!(fields >> kind >> entry.file >> entry.checksum >> entry.seq) ||
        (kind != "base" && kind != "delta")) {
      throw util::IoError("snapshot chain: malformed manifest line: " + line);
    }
    entry.is_base = kind == "base";
    entries.push_back(std::move(entry));
  }
  if (!sealed) {
    throw util::IoError("snapshot chain: manifest missing end trailer (torn?)");
  }
  if (entries.empty() || !entries.front().is_base) {
    throw util::IoError("snapshot chain: manifest must start with a base");
  }

  std::uint64_t checksum = 0;
  StateImage image = load_image(dir + entries.front().file, &checksum);
  if (checksum != entries.front().checksum) {
    throw util::IoError("snapshot chain: base checksum does not match " +
                        std::string("manifest: ") + entries.front().file);
  }
  std::uint64_t parent = checksum;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    if (entry.is_base) {
      throw util::IoError("snapshot chain: manifest has a second base");
    }
    const StateDelta delta = load_delta(dir + entry.file, &checksum);
    if (checksum != entry.checksum) {
      throw util::IoError("snapshot chain: delta checksum does not match " +
                          std::string("manifest: ") + entry.file);
    }
    if (delta.parent_checksum != parent) {
      throw util::IoError("snapshot chain: broken parent link at " +
                          entry.file + " (spliced chain?)");
    }
    apply_delta(image, delta);
    parent = checksum;
  }
  return image;
}

}  // namespace impatience::service
