#include "impatience/service/apply_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace impatience::service {

void ApplyOptions::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("ApplyOptions: shards must be > 0");
  }
  if (threads == 0) {
    throw std::invalid_argument("ApplyOptions: threads must be > 0");
  }
  if (window == 0) {
    throw std::invalid_argument("ApplyOptions: window must be > 0");
  }
}

ShardWaveScheduler::ShardWaveScheduler(NodeId num_nodes, unsigned shards)
    : num_nodes_(num_nodes) {
  if (num_nodes == 0) {
    throw std::invalid_argument("ShardWaveScheduler: need at least one node");
  }
  if (shards == 0) {
    throw std::invalid_argument("ShardWaveScheduler: need at least one shard");
  }
  const unsigned clamped =
      std::min<unsigned>(shards, static_cast<unsigned>(num_nodes));
  stamp_.assign(clamped, 0);
  last_index_.assign(clamped, 0);
}

void ShardWaveScheduler::schedule(std::span<const IngestLine> lines,
                                  NodeId num_nodes,
                                  std::vector<std::uint32_t>& order,
                                  std::vector<std::size_t>& wave_ends,
                                  std::vector<std::size_t>& commit_ends) {
  order.clear();
  wave_ends.clear();
  commit_ends.clear();
  const std::size_t n = lines.size();
  if (n == 0) return;

  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 0;
  }
  ++epoch_;

  // Pass 1 — waves and commit runs, exactly WavePartitioner's sweep but
  // over the 0/1/2 shard resources a line claims. Resource-free lines
  // (clock, malformed, out-of-range) land in wave 0: they need no plan,
  // and making them barriers would serialize every window.
  wave_of_.resize(n);
  run_of_.resize(n);
  std::uint32_t depth = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const IngestLine& line = lines[i];
    unsigned r0 = 0, r1 = 0;
    int resources = 0;
    if (!line.malformed) {
      const Event& e = line.event;
      switch (e.kind) {
        case Event::Kind::contact:
          if (e.a < num_nodes && e.b < num_nodes && e.a != e.b) {
            r0 = shard_of(e.a);
            r1 = shard_of(e.b);
            resources = r0 == r1 ? 1 : 2;
          }
          break;
        case Event::Kind::request:
          // Claimed even when the item is out of range (the commit just
          // counts it malformed): over-claiming a shard is always safe,
          // and the scheduler stays ignorant of the item catalog.
          if (e.a < num_nodes) {
            r0 = shard_of(e.a);
            resources = 1;
          }
          break;
        case Event::Kind::crash:
          if (e.a < num_nodes) {
            r0 = shard_of(e.a);
            resources = 1;
          }
          break;
        case Event::Kind::clock:
        case Event::Kind::hello:
        case Event::Kind::quit:
          break;
      }
    }
    std::uint32_t wave = 0;
    if (resources >= 1 && stamp_[r0] == epoch_) {
      wave = run_of_[last_index_[r0]] + 1;
    }
    if (resources == 2 && stamp_[r1] == epoch_) {
      wave = std::max(wave, run_of_[last_index_[r1]] + 1);
    }
    wave_of_[i] = wave;
    run_of_[i] = i == 0 ? wave : std::max(run_of_[i - 1], wave);
    depth = std::max(depth, wave + 1);
    if (resources >= 1) {
      stamp_[r0] = epoch_;
      last_index_[r0] = static_cast<std::uint32_t>(i);
    }
    if (resources == 2) {
      stamp_[r1] = epoch_;
      last_index_[r1] = static_cast<std::uint32_t>(i);
    }
  }

  // Pass 2 — counting sort by wave (stable, so each wave lists lines in
  // window order).
  bucket_.assign(depth + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++bucket_[wave_of_[i] + 1];
  for (std::uint32_t w = 0; w < depth; ++w) bucket_[w + 1] += bucket_[w];
  wave_ends.reserve(depth);
  for (std::uint32_t w = 0; w < depth; ++w) {
    wave_ends.push_back(bucket_[w + 1]);
  }
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[bucket_[wave_of_[i]]++] = static_cast<std::uint32_t>(i);
  }

  // Pass 3 — commit boundaries: run k covers the window prefix whose
  // running-max wave is <= k (run_of_ is non-decreasing).
  commit_ends.reserve(depth);
  std::size_t idx = 0;
  for (std::uint32_t k = 0; k < depth; ++k) {
    while (idx < n && run_of_[idx] <= k) ++idx;
    commit_ends.push_back(idx);
  }
}

}  // namespace impatience::service
