#include "impatience/service/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <ostream>
#include <string>

#include "impatience/engine/seeding.hpp"
#include "impatience/util/rng.hpp"

namespace impatience::service {

namespace {

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the next whitespace-delimited unsigned field; advances `s`.
template <typename T>
bool parse_field(std::string_view& s, T& out) {
  s = strip(s);
  if (s.empty()) return false;
  std::size_t end = 0;
  while (end < s.size() &&
         !std::isspace(static_cast<unsigned char>(s[end]))) {
    ++end;
  }
  const auto* first = s.data();
  const auto* last = s.data() + end;
  const auto result = std::from_chars(first, last, out);
  if (result.ec != std::errc{} || result.ptr != last) return false;
  s.remove_prefix(end);
  return true;
}

bool at_end(std::string_view s) { return strip(s).empty(); }

}  // namespace

bool is_noise_line(std::string_view line) {
  const std::string_view s = strip(line);
  return s.empty() || s.front() == '#';
}

std::optional<Event> parse_event(std::string_view line) {
  std::string_view s = strip(line);
  if (s.empty() || s.front() == '#') return std::nullopt;
  const char tag = s.front();
  s.remove_prefix(1);

  Event event;
  switch (tag) {
    case 'T': {
      event.kind = Event::Kind::clock;
      if (!parse_field(s, event.slot) || event.slot < 0 || !at_end(s)) {
        return std::nullopt;
      }
      return event;
    }
    case 'C': {
      event.kind = Event::Kind::contact;
      if (!parse_field(s, event.a) || !parse_field(s, event.b) ||
          event.a == event.b || !at_end(s)) {
        return std::nullopt;
      }
      return event;
    }
    case 'R': {
      event.kind = Event::Kind::request;
      if (!parse_field(s, event.a) || !parse_field(s, event.item) ||
          !at_end(s)) {
        return std::nullopt;
      }
      return event;
    }
    case 'K': {
      event.kind = Event::Kind::crash;
      if (!parse_field(s, event.a) || !at_end(s)) return std::nullopt;
      return event;
    }
    case 'H': {
      event.kind = Event::Kind::hello;
      if (!at_end(s)) return std::nullopt;
      return event;
    }
    case 'Q': {
      event.kind = Event::Kind::quit;
      if (!at_end(s)) return std::nullopt;
      return event;
    }
    default:
      return std::nullopt;
  }
}

std::string format_event(const Event& event) {
  switch (event.kind) {
    case Event::Kind::clock:
      return "T " + std::to_string(event.slot);
    case Event::Kind::contact:
      return "C " + std::to_string(event.a) + " " + std::to_string(event.b);
    case Event::Kind::request:
      return "R " + std::to_string(event.a) + " " +
             std::to_string(event.item);
    case Event::Kind::crash:
      return "K " + std::to_string(event.a);
    case Event::Kind::hello:
      return "H";
    case Event::Kind::quit:
      return "Q";
  }
  return "#";
}

LineClass classify_line(std::string_view line, Event* event) {
  if (is_noise_line(line)) return LineClass::noise;
  const std::optional<Event> parsed = parse_event(line);
  if (!parsed) return LineClass::malformed;
  if (parsed->kind == Event::Kind::hello) return LineClass::hello;
  if (parsed->kind == Event::Kind::quit) return LineClass::quit;
  if (event) *event = *parsed;
  return LineClass::event;
}

std::string format_seq_reply(std::uint64_t seq) {
  return "S " + std::to_string(seq);
}

std::optional<std::uint64_t> parse_seq_reply(std::string_view line) {
  std::string_view s = strip(line);
  if (s.empty() || s.front() != 'S') return std::nullopt;
  s.remove_prefix(1);
  std::uint64_t seq = 0;
  if (!parse_field(s, seq) || !at_end(s)) return std::nullopt;
  return seq;
}

std::vector<Event> generate_stream(const StreamConfig& config,
                                   std::uint64_t seed) {
  util::Rng rng(engine::child_seed(seed, "service-stream"));
  std::vector<Event> events;
  events.reserve(config.events + 16);

  // Zipf item weights for the request law.
  std::vector<double> weights(config.num_items, 1.0);
  for (ItemId i = 0; i < config.num_items; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), config.zipf);
  }

  double clock = 0.0;
  Slot emitted_clock = 0;
  for (std::uint64_t n = 0; n < config.events; ++n) {
    clock += config.slots_per_event;
    const Slot now = static_cast<Slot>(clock);
    if (now > emitted_clock) {
      emitted_clock = now;
      events.push_back({Event::Kind::clock, now, 0, 0, 0});
    }
    Event event;
    if (rng.uniform() < config.request_fraction) {
      event.kind = Event::Kind::request;
      event.a = static_cast<NodeId>(rng.uniform_index(config.num_nodes));
      event.item = static_cast<ItemId>(rng.weighted_index(weights));
    } else {
      event.kind = Event::Kind::contact;
      event.a = static_cast<NodeId>(rng.uniform_index(config.num_nodes));
      event.b = static_cast<NodeId>(rng.uniform_index(config.num_nodes - 1));
      if (event.b >= event.a) ++event.b;  // uniform over b != a
    }
    events.push_back(event);
    if (config.crash_fraction > 0.0 &&
        rng.uniform() < config.crash_fraction) {
      Event crash;
      crash.kind = Event::Kind::crash;
      crash.a = static_cast<NodeId>(rng.uniform_index(config.num_nodes));
      events.push_back(crash);
    }
  }
  if (config.quit) events.push_back({Event::Kind::quit, 0, 0, 0, 0});
  return events;
}

void write_stream(std::ostream& out, const std::vector<Event>& events) {
  for (const Event& event : events) out << format_event(event) << '\n';
}

}  // namespace impatience::service
