#include "impatience/service/state_store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "impatience/engine/artifacts.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/stats/percentile.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/utility/factory.hpp"
#include "impatience/utility/reaction.hpp"

namespace impatience::service {

namespace {

/// %.17g round-trips every finite double through text exactly.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool config_equal(const StoreConfig& a, const StoreConfig& b) {
  return a.num_nodes == b.num_nodes && a.num_items == b.num_items &&
         a.cache_capacity == b.cache_capacity &&
         a.sticky_replicas == b.sticky_replicas &&
         a.utility_spec == b.utility_spec && a.mu == b.mu &&
         a.reaction_scale == b.reaction_scale &&
         a.mandate_routing == b.mandate_routing;
}

}  // namespace

void StoreConfig::validate() const {
  if (num_nodes == 0) {
    throw std::invalid_argument("StoreConfig: num_nodes must be > 0");
  }
  if (num_items == 0) {
    throw std::invalid_argument("StoreConfig: num_items must be > 0");
  }
  if (cache_capacity <= 0) {
    throw std::invalid_argument("StoreConfig: cache_capacity must be > 0");
  }
  if (!(mu > 0.0)) {
    throw std::invalid_argument("StoreConfig: mu must be > 0");
  }
  if (!(reaction_scale > 0.0)) {
    throw std::invalid_argument("StoreConfig: reaction_scale must be > 0");
  }
  if (utility_spec.empty() ||
      utility_spec.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument(
        "StoreConfig: utility_spec must be a non-empty token");
  }
}

StateStore::StateStore(const StoreConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  config_.validate();
  utility_ = utility::make_utility(config_.utility_spec);
  // Same stabilizers as core::run_qcr: clamp the counter at |S|, cap one
  // fulfilment's burst at rho, bound any node's backlog by the global
  // cache volume.
  const double servers = static_cast<double>(config_.num_nodes);
  const double burst_cap = static_cast<double>(config_.cache_capacity);
  auto reaction = std::make_shared<utility::ReactionFunction>(
      *utility_, config_.mu, servers, config_.reaction_scale);
  policy_ = std::make_unique<core::QcrPolicy>(
      "QCR-service",
      std::function<double(double)>([reaction, servers, burst_cap](double y) {
        return std::min((*reaction)(std::min(y, servers)), burst_cap);
      }),
      config_.mandate_routing ? core::QcrPolicy::MandateRouting::kOn
                              : core::QcrPolicy::MandateRouting::kOff,
      static_cast<long>(config_.cache_capacity) * config_.num_nodes);
  init_fresh();
}

StateStore::StateStore(const StoreConfig& config, std::uint64_t seed,
                       const StateImage& image)
    : StateStore(config, seed) {
  if (!config_equal(config_, image.config)) {
    throw std::invalid_argument(
        "StateStore: snapshot config does not match this scenario");
  }
  if (image.seed != seed_) {
    throw std::invalid_argument(
        "StateStore: snapshot seed " + std::to_string(image.seed) +
        " does not match --seed " + std::to_string(seed_) +
        " (replay determinism would break)");
  }
  init_from_image(image);
}

StateStore::~StateStore() {
  // Detach listeners: the nodes die with us, but be explicit about the
  // context pointer's lifetime.
  for (core::Node& node : nodes_) {
    node.cache().set_change_listener(nullptr, nullptr);
  }
}

void StateStore::init_fresh() {
  nodes_.clear();
  nodes_.reserve(config_.num_nodes);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    // Pure P2P (paper Section 3.1): every node both serves and requests.
    nodes_.emplace_back(n, config_.num_items, config_.cache_capacity,
                        /*is_server=*/true, /*is_client=*/true);
  }
  // Sticky seeders first (slot 0 of seeder i is item i), then a seeded
  // distinct-uniform fill per node. Each node gets its own child stream,
  // so the initial placement is a pure function of (config, seed).
  if (config_.sticky_replicas) {
    const NodeId seeders = std::min<NodeId>(config_.num_nodes,
                                            static_cast<NodeId>(config_.num_items));
    for (NodeId n = 0; n < seeders; ++n) {
      nodes_[n].cache().pin_sticky(static_cast<ItemId>(n));
    }
  }
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    util::Rng rng(engine::child_seed(seed_, "service-init", n));
    core::Cache& cache = nodes_[n].cache();
    // Rejection fill is fine: the catalog is small and draws are cheap.
    while (!cache.full() && cache.size() < static_cast<int>(config_.num_items)) {
      const auto item = static_cast<ItemId>(rng.uniform_index(config_.num_items));
      if (!cache.contains(item)) cache.insert_random_replace(item, rng);
    }
  }

  replica_counts_.assign(config_.num_items, 0);
  for (const core::Node& node : nodes_) {
    for (ItemId item : node.cache().items()) ++replica_counts_[item];
  }
  version_ = 0;
  version_mirror_.store(0, std::memory_order_release);
  seq_ = 0;
  clock_ = 0;
  counters_ = StoreCounters{};
  faults_ = fault::FaultCounters{};
  mandates_created_base_ = 0;
  replicas_written_base_ = 0;
  recent_delays_.clear();
  attach_listeners();
}

void StateStore::init_from_image(const StateImage& image) {
  if (image.nodes.size() != config_.num_nodes) {
    throw util::IoError("StateStore: snapshot node count mismatch");
  }
  // Rebuild every node exactly. Cache slot order is state (random
  // replacement evicts by slot index), so items are re-inserted in the
  // stored order — appends consume no RNG while the cache is not full —
  // and the sticky pin is applied afterwards, which for an already
  // present item only sets the flag without reordering.
  nodes_.clear();
  nodes_.reserve(config_.num_nodes);
  util::Rng dummy(0);  // never consumed: inserts below never evict
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    const StateImage::NodeImage& ni = image.nodes[n];
    core::Node& node = nodes_.emplace_back(
        n, config_.num_items, config_.cache_capacity,
        /*is_server=*/true, /*is_client=*/true);
    node.restore_server_meetings(ni.server_meetings);
    if (static_cast<int>(ni.cache.size()) > config_.cache_capacity) {
      throw util::IoError("StateStore: snapshot cache exceeds capacity");
    }
    for (ItemId item : ni.cache) {
      if (item >= config_.num_items || node.cache().contains(item)) {
        throw util::IoError("StateStore: snapshot cache is not a valid set");
      }
      node.cache().insert_random_replace(item, dummy);
    }
    if (ni.sticky >= 0) {
      if (ni.sticky >= static_cast<std::int64_t>(config_.num_items) ||
          !node.cache().contains(static_cast<ItemId>(ni.sticky))) {
        throw util::IoError("StateStore: snapshot sticky item not cached");
      }
      node.cache().pin_sticky(static_cast<ItemId>(ni.sticky));
    }
    for (const auto& [item, count] : ni.mandates) {
      if (item >= config_.num_items || count <= 0) {
        throw util::IoError("StateStore: snapshot mandate entry invalid");
      }
      node.mandates().add(item, count);
    }
    for (const core::PendingRequest& req : ni.pending) {
      if (req.item >= config_.num_items) {
        throw util::IoError("StateStore: snapshot pending item out of range");
      }
      // create_request snapshots the (already restored) meeting clock;
      // overwrite with the persisted creation-time values.
      node.create_request(req.item, req.created);
      node.pending().back() = req;
    }
  }

  replica_counts_.assign(config_.num_items, 0);
  for (const core::Node& node : nodes_) {
    for (ItemId item : node.cache().items()) ++replica_counts_[item];
  }
  version_ = image.version;
  version_mirror_.store(version_, std::memory_order_release);
  seq_ = image.seq;
  clock_ = image.clock;
  counters_ = image.counters;
  faults_ = image.faults;
  // The policy object is freshly constructed (its counters read 0), so
  // fold the persisted totals in as base offsets: total = base + policy.
  mandates_created_base_ = image.counters.mandates_created;
  replicas_written_base_ = image.counters.replicas_written;
  recent_delays_ = image.recent_delays;
  if (recent_delays_.size() > kDelayWindow) {
    throw util::IoError("StateStore: snapshot delay window too large");
  }
  attach_listeners();
}

void StateStore::attach_listeners() {
  for (core::Node& node : nodes_) {
    node.cache().set_change_listener(&StateStore::cache_listener, this);
  }
}

void StateStore::cache_listener(void* context, ItemId item, int delta) {
  // Always invoked with mu_ held: every cache mutation happens inside
  // apply() (policy execution, crashes) after construction.
  auto* store = static_cast<StateStore*>(context);
  store->replica_counts_[item] += delta;
  ++store->version_;
  store->version_mirror_.store(store->version_, std::memory_order_release);
}

void StateStore::bump_locked(std::uint64_t n) {
  version_ += n;
  version_mirror_.store(version_, std::memory_order_release);
}

std::uint64_t StateStore::apply(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seq_;
  // Every event draws from its own child stream, a pure function of
  // (seed, seq): replaying the stream tail after a warm restart consumes
  // identical randomness, making restore + replay bit-equal to an
  // uninterrupted run.
  util::Rng rng(engine::child_seed(seed_, "service-apply", seq_));
  switch (event.kind) {
    case Event::Kind::clock:
      apply_clock(event.slot);
      break;
    case Event::Kind::contact:
      if (event.a >= config_.num_nodes || event.b >= config_.num_nodes ||
          event.a == event.b) {
        ++counters_.events_malformed;
      } else {
        apply_contact(event.a, event.b, rng);
      }
      break;
    case Event::Kind::request:
      if (event.a >= config_.num_nodes || event.item >= config_.num_items) {
        ++counters_.events_malformed;
      } else {
        apply_request(event.a, event.item, rng);
      }
      break;
    case Event::Kind::crash:
      if (event.a >= config_.num_nodes) {
        ++counters_.events_malformed;
      } else {
        apply_crash(event.a);
      }
      break;
    case Event::Kind::hello:
    case Event::Kind::quit:
      break;  // stream control; the ingest loop reacts, the state doesn't
  }
  counters_.events_applied = seq_;
  sync_policy_counters_locked();
  bump_locked();
  return version_;
}

void StateStore::apply_clock(Slot slot) {
  // Monotonic: a stale or repeated T frame never rewinds time.
  clock_ = std::max(clock_, slot);
}

void StateStore::apply_contact(NodeId a, NodeId b, util::Rng& rng) {
  ++counters_.contacts;
  core::Node& na = nodes_[a];
  core::Node& nb = nodes_[b];
  fulfil_from(na, nb, rng);
  fulfil_from(nb, na, rng);
  policy_->on_meeting_complete(na, nb, rng);
}

void StateStore::apply_request(NodeId node_id, ItemId item, util::Rng& rng) {
  (void)rng;
  ++counters_.requests_created;
  core::Node& node = nodes_[node_id];
  if (node.holds(item)) {
    // Own-cache hit: fulfilled at zero delay, no query counter, no
    // reaction (QCR only reacts to fulfilments that cost meetings).
    const double gain = utility_->bounded_at_zero()
                            ? utility_->value_at_zero()
                            : utility_->value(1.0);
    ++counters_.immediate_fulfillments;
    counters_.total_gain += gain;
    record_delay_locked(0.0);
    return;
  }
  node.create_request(item, clock_);
  ++counters_.requests_pending;
}

void StateStore::apply_crash(NodeId node_id) {
  const core::Node::CrashLosses losses = nodes_[node_id].crash(false);
  ++faults_.crashes;
  faults_.replicas_lost += losses.replicas;
  faults_.mandates_lost += losses.mandates;
  faults_.requests_lost += losses.requests;
  counters_.requests_pending -= losses.requests;
}

void StateStore::fulfil_from(core::Node& requester, core::Node& provider,
                             util::Rng& rng) {
  // Service twin of the simulator's meeting protocol (src/core/meeting.cpp),
  // kept step-identical so the daemon's online QCR matches the offline
  // kernel: query tick first (clock semantics — the fulfilling meeting
  // counts), O(rho) prefilter, then one compaction pass.
  requester.note_server_meeting();
  if (requester.pending().empty()) return;
  auto& pending = requester.pending();

  bool any_match = false;
  for (ItemId item : provider.cache().items()) {
    if (requester.has_pending(item)) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return;

  std::size_t kept = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    core::PendingRequest& req = pending[k];
    if (provider.holds(req.item)) {
      const double delay = static_cast<double>(clock_ - req.created) + 1.0;
      const double gain = utility_->value(delay);
      const long queries =
          requester.server_meetings() - req.queries_at_creation;
      ++counters_.fulfillments;
      --counters_.requests_pending;
      counters_.total_gain += gain;
      counters_.delay_sum += delay;
      record_delay_locked(delay);
      requester.note_fulfilled(req.item);
      policy_->on_fulfillment(requester, provider, req.item, queries, rng);
    } else {
      pending[kept++] = req;
    }
  }
  pending.resize(kept);
}

void StateStore::sync_policy_counters_locked() {
  counters_.mandates_created =
      mandates_created_base_ + policy_->mandates_created();
  counters_.replicas_written =
      replicas_written_base_ + policy_->replicas_written();
  long outstanding = 0;
  for (const core::Node& node : nodes_) outstanding += node.mandates().total();
  counters_.mandates_outstanding = outstanding;
}

void StateStore::record_delay_locked(double delay) {
  if (recent_delays_.size() >= kDelayWindow) {
    // Chronological window: drop the oldest half in one move instead of
    // shifting per insert (amortized O(1), order preserved).
    recent_delays_.erase(recent_delays_.begin(),
                         recent_delays_.begin() + kDelayWindow / 2);
  }
  recent_delays_.push_back(delay);
}

std::uint64_t StateStore::apply_malformed() {
  std::lock_guard<std::mutex> lock(mu_);
  // Malformed countable lines advance seq like any other: the seq cursor
  // must be an exact position into the stream's countable lines, or a
  // reconnecting feeder could not resume from it (docs/service.md).
  ++seq_;
  ++counters_.events_malformed;
  counters_.events_applied = seq_;
  bump_locked();
  return version_;
}

StateImage StateStore::image() const {
  std::lock_guard<std::mutex> lock(mu_);
  StateImage image;
  image.config = config_;
  image.seed = seed_;
  image.version = version_;
  image.seq = seq_;
  image.clock = clock_;
  image.counters = counters_;
  image.faults = faults_;
  image.nodes.reserve(nodes_.size());
  for (const core::Node& node : nodes_) {
    StateImage::NodeImage ni;
    ni.server_meetings = node.server_meetings();
    const auto sticky = node.cache().sticky();
    ni.sticky = sticky ? static_cast<std::int64_t>(*sticky) : -1;
    ni.cache = node.cache().items();
    for (ItemId item : node.mandates().active_items()) {
      ni.mandates.emplace_back(item, node.mandates().count(item));
    }
    ni.pending = node.pending();
    image.nodes.push_back(std::move(ni));
  }
  image.recent_delays = recent_delays_;
  return image;
}

void StateStore::save_snapshot(const std::string& path) const {
  // Copy-on-read, then serialize outside the lock: the ingest path only
  // stalls for the in-memory copy, never for disk I/O.
  const StateImage snapshot = image();
  save_image(path, snapshot);
}

StoreCounters StateStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

fault::FaultCounters StateStore::faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

Slot StateStore::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

std::uint64_t StateStore::seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::vector<long> StateStore::replica_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replica_counts_;
}

double StateStore::delay_percentile(double p) const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window = recent_delays_;
  }
  if (window.empty()) return 0.0;
  return stats::percentile(window, p);
}

bool StateStore::mandate_conservation_ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.mandates_created ==
         counters_.replicas_written + counters_.mandates_outstanding +
             faults_.mandates_lost;
}

std::unique_ptr<StateStore> StateStore::restore(const StoreConfig& config,
                                                std::uint64_t seed,
                                                const std::string& path) {
  return std::make_unique<StateStore>(config, seed, load_image(path));
}

// ---------------------------------------------------------------------------
// Snapshot serialization: versioned header, ASCII lines, FNV-1a checksum
// line plus `end` trailer so truncation and torn writes are detectable.

namespace {

constexpr std::string_view kMagic = "impatience.replicationd_snapshot/1";

class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next line; throws on EOF (snapshots end with an explicit trailer).
  std::string next() {
    std::string line;
    if (!std::getline(in_, line)) {
      throw util::IoError("snapshot: truncated (unexpected end of file)");
    }
    return line;
  }

 private:
  std::istream& in_;
};

/// Tokenizing reader for one expected record line: "key v1 v2 ...".
class Record {
 public:
  Record(std::string line, std::string_view key) : stream_(std::move(line)) {
    std::string got;
    if (!(stream_ >> got) || got != key) {
      throw util::IoError("snapshot: expected '" + std::string(key) +
                          "' record, got '" + got + "'");
    }
  }

  template <typename T>
  T get(const char* what) {
    T value{};
    if (!(stream_ >> value)) {
      throw util::IoError(std::string("snapshot: bad or missing field: ") +
                          what);
    }
    return value;
  }

  /// Remainder of the line, stripped of one leading space.
  std::string rest() {
    std::string tail;
    std::getline(stream_, tail);
    if (!tail.empty() && tail.front() == ' ') tail.erase(0, 1);
    return tail;
  }

 private:
  std::istringstream stream_;
};

}  // namespace

void write_image(std::ostream& out, const StateImage& image) {
  std::ostringstream body;
  body << kMagic << '\n';
  const StoreConfig& c = image.config;
  body << "config " << c.num_nodes << ' ' << c.num_items << ' '
       << c.cache_capacity << ' ' << (c.sticky_replicas ? 1 : 0) << ' '
       << fmt_double(c.mu) << ' ' << fmt_double(c.reaction_scale) << ' '
       << (c.mandate_routing ? 1 : 0) << ' ' << c.utility_spec << '\n';
  body << "seed " << image.seed << '\n';
  body << "state " << image.version << ' ' << image.seq << ' ' << image.clock
       << '\n';
  const StoreCounters& k = image.counters;
  body << "counters " << k.events_applied << ' ' << k.events_malformed << ' '
       << k.contacts << ' ' << k.requests_created << ' '
       << k.immediate_fulfillments << ' ' << k.fulfillments << ' '
       << k.requests_pending << ' ' << k.mandates_created << ' '
       << k.replicas_written << ' ' << k.mandates_outstanding << ' '
       << fmt_double(k.total_gain) << ' ' << fmt_double(k.delay_sum) << '\n';
  const fault::FaultCounters& f = image.faults;
  body << "faults " << f.crashes << ' ' << f.replicas_lost << ' '
       << f.mandates_lost << ' ' << f.requests_lost << '\n';
  body << "nodes " << image.nodes.size() << '\n';
  for (std::size_t n = 0; n < image.nodes.size(); ++n) {
    const StateImage::NodeImage& ni = image.nodes[n];
    body << "node " << n << ' ' << ni.server_meetings << ' ' << ni.sticky
         << '\n';
    body << "cache " << ni.cache.size();
    for (ItemId item : ni.cache) body << ' ' << item;
    body << '\n';
    body << "mandates " << ni.mandates.size();
    for (const auto& [item, count] : ni.mandates) {
      body << ' ' << item << ' ' << count;
    }
    body << '\n';
    body << "pending " << ni.pending.size();
    for (const core::PendingRequest& req : ni.pending) {
      body << ' ' << req.item << ' ' << req.created << ' '
           << req.queries_at_creation;
    }
    body << '\n';
  }
  body << "delays " << image.recent_delays.size();
  for (double d : image.recent_delays) body << ' ' << fmt_double(d);
  body << '\n';

  const std::string text = body.str();
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016" PRIx64,
                engine::fnv1a64(text));
  out << text << "checksum " << checksum << '\n' << "end\n";
}

StateImage read_image(std::istream& in) {
  // Pass 1: collect the body and verify the checksum + trailer, so any
  // torn or bit-flipped file is rejected before a single field is used.
  std::string body;
  std::string line;
  bool have_checksum = false;
  std::uint64_t stored_checksum = 0;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      stored_checksum = std::stoull(line.substr(9), nullptr, 16);
      have_checksum = true;
      break;
    }
    body += line;
    body += '\n';
  }
  if (!have_checksum) {
    throw util::IoError("snapshot: missing checksum line (torn file?)");
  }
  if (engine::fnv1a64(body) != stored_checksum) {
    throw util::IoError("snapshot: checksum mismatch (corrupt file)");
  }
  if (!std::getline(in, line) || line != "end") {
    throw util::IoError("snapshot: missing end trailer");
  }

  std::istringstream text(body);
  LineReader lines(text);
  if (lines.next() != kMagic) {
    throw util::IoError("snapshot: bad magic (not a replicationd snapshot)");
  }

  StateImage image;
  {
    Record r(lines.next(), "config");
    image.config.num_nodes = r.get<NodeId>("num_nodes");
    image.config.num_items = r.get<ItemId>("num_items");
    image.config.cache_capacity = r.get<int>("cache_capacity");
    image.config.sticky_replicas = r.get<int>("sticky_replicas") != 0;
    image.config.mu = r.get<double>("mu");
    image.config.reaction_scale = r.get<double>("reaction_scale");
    image.config.mandate_routing = r.get<int>("mandate_routing") != 0;
    image.config.utility_spec = r.rest();
    image.config.validate();
  }
  {
    Record r(lines.next(), "seed");
    image.seed = r.get<std::uint64_t>("seed");
  }
  {
    Record r(lines.next(), "state");
    image.version = r.get<std::uint64_t>("version");
    image.seq = r.get<std::uint64_t>("seq");
    image.clock = r.get<Slot>("clock");
  }
  {
    Record r(lines.next(), "counters");
    StoreCounters& k = image.counters;
    k.events_applied = r.get<std::uint64_t>("events_applied");
    k.events_malformed = r.get<std::uint64_t>("events_malformed");
    k.contacts = r.get<std::uint64_t>("contacts");
    k.requests_created = r.get<std::uint64_t>("requests_created");
    k.immediate_fulfillments = r.get<std::uint64_t>("immediate_fulfillments");
    k.fulfillments = r.get<std::uint64_t>("fulfillments");
    k.requests_pending = r.get<std::uint64_t>("requests_pending");
    k.mandates_created = r.get<long>("mandates_created");
    k.replicas_written = r.get<long>("replicas_written");
    k.mandates_outstanding = r.get<long>("mandates_outstanding");
    k.total_gain = r.get<double>("total_gain");
    k.delay_sum = r.get<double>("delay_sum");
  }
  {
    Record r(lines.next(), "faults");
    image.faults.crashes = r.get<std::uint64_t>("crashes");
    image.faults.replicas_lost = r.get<std::uint64_t>("replicas_lost");
    image.faults.mandates_lost = r.get<long>("mandates_lost");
    image.faults.requests_lost = r.get<std::uint64_t>("requests_lost");
  }
  std::size_t num_nodes = 0;
  {
    Record r(lines.next(), "nodes");
    num_nodes = r.get<std::size_t>("nodes");
  }
  image.nodes.resize(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    StateImage::NodeImage& ni = image.nodes[n];
    {
      Record r(lines.next(), "node");
      if (r.get<std::size_t>("node index") != n) {
        throw util::IoError("snapshot: node records out of order");
      }
      ni.server_meetings = r.get<long>("server_meetings");
      ni.sticky = r.get<std::int64_t>("sticky");
    }
    {
      Record r(lines.next(), "cache");
      const auto count = r.get<std::size_t>("cache size");
      ni.cache.resize(count);
      for (auto& item : ni.cache) item = r.get<ItemId>("cache item");
    }
    {
      Record r(lines.next(), "mandates");
      const auto count = r.get<std::size_t>("mandate entries");
      ni.mandates.resize(count);
      for (auto& [item, cnt] : ni.mandates) {
        item = r.get<ItemId>("mandate item");
        cnt = r.get<long>("mandate count");
      }
    }
    {
      Record r(lines.next(), "pending");
      const auto count = r.get<std::size_t>("pending entries");
      ni.pending.resize(count);
      for (auto& req : ni.pending) {
        req.item = r.get<ItemId>("pending item");
        req.created = r.get<Slot>("pending created");
        req.queries_at_creation = r.get<long>("pending queries");
      }
    }
  }
  {
    Record r(lines.next(), "delays");
    const auto count = r.get<std::size_t>("delay count");
    image.recent_delays.resize(count);
    for (auto& d : image.recent_delays) d = r.get<double>("delay");
  }
  return image;
}

void save_image(const std::string& path, const StateImage& image) {
  engine::atomic_write_file(
      path, [&image](std::ostream& out) { write_image(out, image); });
}

StateImage load_image(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::IoError("snapshot: cannot open " + path);
  }
  return read_image(in);
}

}  // namespace impatience::service
