#include "impatience/service/state_store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "impatience/engine/artifacts.hpp"
#include "impatience/engine/seeding.hpp"
#include "impatience/engine/thread_pool.hpp"
#include "impatience/stats/percentile.hpp"
#include "impatience/util/errors.hpp"
#include "impatience/utility/factory.hpp"
#include "impatience/utility/reaction.hpp"

namespace impatience::service {

namespace {

/// %.17g round-trips every finite double through text exactly.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool config_equal(const StoreConfig& a, const StoreConfig& b) {
  return a.num_nodes == b.num_nodes && a.num_items == b.num_items &&
         a.cache_capacity == b.cache_capacity &&
         a.sticky_replicas == b.sticky_replicas &&
         a.utility_spec == b.utility_spec && a.mu == b.mu &&
         a.reaction_scale == b.reaction_scale &&
         a.mandate_routing == b.mandate_routing;
}

}  // namespace

void StoreConfig::validate() const {
  if (num_nodes == 0) {
    throw std::invalid_argument("StoreConfig: num_nodes must be > 0");
  }
  if (num_items == 0) {
    throw std::invalid_argument("StoreConfig: num_items must be > 0");
  }
  if (cache_capacity <= 0) {
    throw std::invalid_argument("StoreConfig: cache_capacity must be > 0");
  }
  if (!(mu > 0.0)) {
    throw std::invalid_argument("StoreConfig: mu must be > 0");
  }
  if (!(reaction_scale > 0.0)) {
    throw std::invalid_argument("StoreConfig: reaction_scale must be > 0");
  }
  if (utility_spec.empty() ||
      utility_spec.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument(
        "StoreConfig: utility_spec must be a non-empty token");
  }
}

StateStore::StateStore(const StoreConfig& config, std::uint64_t seed,
                       const ApplyOptions& options)
    : config_(config), seed_(seed), options_(options) {
  config_.validate();
  options_.validate();
  if (options_.parallel()) {
    // The scheduler and team exist only when the pipeline engages; the
    // sequential path never pays for them.
    scheduler_ = std::make_unique<ShardWaveScheduler>(config_.num_nodes,
                                                      options_.shards);
    team_ = std::make_unique<engine::ForkJoinTeam>(options_.threads - 1);
  }
  utility_ = utility::make_utility(config_.utility_spec);
  // Same stabilizers as core::run_qcr: clamp the counter at |S|, cap one
  // fulfilment's burst at rho, bound any node's backlog by the global
  // cache volume.
  const double servers = static_cast<double>(config_.num_nodes);
  const double burst_cap = static_cast<double>(config_.cache_capacity);
  auto reaction = std::make_shared<utility::ReactionFunction>(
      *utility_, config_.mu, servers, config_.reaction_scale);
  policy_ = std::make_unique<core::QcrPolicy>(
      "QCR-service",
      std::function<double(double)>([reaction, servers, burst_cap](double y) {
        return std::min((*reaction)(std::min(y, servers)), burst_cap);
      }),
      config_.mandate_routing ? core::QcrPolicy::MandateRouting::kOn
                              : core::QcrPolicy::MandateRouting::kOff,
      static_cast<long>(config_.cache_capacity) * config_.num_nodes);
  init_fresh();
}

StateStore::StateStore(const StoreConfig& config, std::uint64_t seed,
                       const StateImage& image, const ApplyOptions& options)
    : StateStore(config, seed, options) {
  if (!config_equal(config_, image.config)) {
    throw std::invalid_argument(
        "StateStore: snapshot config does not match this scenario");
  }
  if (image.seed != seed_) {
    throw std::invalid_argument(
        "StateStore: snapshot seed " + std::to_string(image.seed) +
        " does not match --seed " + std::to_string(seed_) +
        " (replay determinism would break)");
  }
  init_from_image(image);
}

StateStore::~StateStore() {
  // Detach listeners: the nodes die with us, but be explicit about the
  // context pointer's lifetime.
  for (core::Node& node : nodes_) {
    node.cache().set_change_listener(nullptr, nullptr);
  }
}

void StateStore::init_fresh() {
  nodes_.clear();
  nodes_.reserve(config_.num_nodes);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    // Pure P2P (paper Section 3.1): every node both serves and requests.
    nodes_.emplace_back(n, config_.num_items, config_.cache_capacity,
                        /*is_server=*/true, /*is_client=*/true);
  }
  // Sticky seeders first (slot 0 of seeder i is item i), then a seeded
  // distinct-uniform fill per node. Each node gets its own child stream,
  // so the initial placement is a pure function of (config, seed).
  if (config_.sticky_replicas) {
    const NodeId seeders = std::min<NodeId>(config_.num_nodes,
                                            static_cast<NodeId>(config_.num_items));
    for (NodeId n = 0; n < seeders; ++n) {
      nodes_[n].cache().pin_sticky(static_cast<ItemId>(n));
    }
  }
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    util::Rng rng(engine::child_seed(seed_, "service-init", n));
    core::Cache& cache = nodes_[n].cache();
    // Rejection fill is fine: the catalog is small and draws are cheap.
    while (!cache.full() && cache.size() < static_cast<int>(config_.num_items)) {
      const auto item = static_cast<ItemId>(rng.uniform_index(config_.num_items));
      if (!cache.contains(item)) cache.insert_random_replace(item, rng);
    }
  }

  replica_counts_.assign(config_.num_items, 0);
  for (const core::Node& node : nodes_) {
    for (ItemId item : node.cache().items()) ++replica_counts_[item];
  }
  version_ = 0;
  version_mirror_.store(0, std::memory_order_release);
  seq_ = 0;
  clock_ = 0;
  counters_ = StoreCounters{};
  faults_ = fault::FaultCounters{};
  mandates_created_base_ = 0;
  replicas_written_base_ = 0;
  recent_delays_.clear();
  dirty_.assign(config_.num_nodes, 0);
  dirty_list_.clear();
  attach_listeners();
}

void StateStore::init_from_image(const StateImage& image) {
  if (image.nodes.size() != config_.num_nodes) {
    throw util::IoError("StateStore: snapshot node count mismatch");
  }
  // Rebuild every node exactly. Cache slot order is state (random
  // replacement evicts by slot index), so items are re-inserted in the
  // stored order — appends consume no RNG while the cache is not full —
  // and the sticky pin is applied afterwards, which for an already
  // present item only sets the flag without reordering.
  nodes_.clear();
  nodes_.reserve(config_.num_nodes);
  util::Rng dummy(0);  // never consumed: inserts below never evict
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    const StateImage::NodeImage& ni = image.nodes[n];
    core::Node& node = nodes_.emplace_back(
        n, config_.num_items, config_.cache_capacity,
        /*is_server=*/true, /*is_client=*/true);
    node.restore_server_meetings(ni.server_meetings);
    if (static_cast<int>(ni.cache.size()) > config_.cache_capacity) {
      throw util::IoError("StateStore: snapshot cache exceeds capacity");
    }
    for (ItemId item : ni.cache) {
      if (item >= config_.num_items || node.cache().contains(item)) {
        throw util::IoError("StateStore: snapshot cache is not a valid set");
      }
      node.cache().insert_random_replace(item, dummy);
    }
    if (ni.sticky >= 0) {
      if (ni.sticky >= static_cast<std::int64_t>(config_.num_items) ||
          !node.cache().contains(static_cast<ItemId>(ni.sticky))) {
        throw util::IoError("StateStore: snapshot sticky item not cached");
      }
      node.cache().pin_sticky(static_cast<ItemId>(ni.sticky));
    }
    for (const auto& [item, count] : ni.mandates) {
      if (item >= config_.num_items || count <= 0) {
        throw util::IoError("StateStore: snapshot mandate entry invalid");
      }
      node.mandates().add(item, count);
    }
    for (const core::PendingRequest& req : ni.pending) {
      if (req.item >= config_.num_items) {
        throw util::IoError("StateStore: snapshot pending item out of range");
      }
      // create_request snapshots the (already restored) meeting clock;
      // overwrite with the persisted creation-time values.
      node.create_request(req.item, req.created);
      node.pending().back() = req;
    }
  }

  replica_counts_.assign(config_.num_items, 0);
  for (const core::Node& node : nodes_) {
    for (ItemId item : node.cache().items()) ++replica_counts_[item];
  }
  version_ = image.version;
  version_mirror_.store(version_, std::memory_order_release);
  seq_ = image.seq;
  clock_ = image.clock;
  counters_ = image.counters;
  faults_ = image.faults;
  // The policy object is freshly constructed (its counters read 0), so
  // fold the persisted totals in as base offsets: total = base + policy.
  mandates_created_base_ = image.counters.mandates_created;
  replicas_written_base_ = image.counters.replicas_written;
  recent_delays_ = image.recent_delays;
  if (recent_delays_.size() > kDelayWindow) {
    throw util::IoError("StateStore: snapshot delay window too large");
  }
  dirty_.assign(config_.num_nodes, 0);
  dirty_list_.clear();
  attach_listeners();
}

void StateStore::attach_listeners() {
  for (core::Node& node : nodes_) {
    node.cache().set_change_listener(&StateStore::cache_listener, this);
  }
}

void StateStore::cache_listener(void* context, ItemId item, int delta) {
  // Always invoked with mu_ held: every cache mutation happens inside
  // apply() (policy execution, crashes) after construction.
  auto* store = static_cast<StateStore*>(context);
  store->replica_counts_[item] += delta;
  ++store->version_;
  store->version_mirror_.store(store->version_, std::memory_order_release);
}

void StateStore::bump_locked(std::uint64_t n) {
  version_ += n;
  version_mirror_.store(version_, std::memory_order_release);
}

std::uint64_t StateStore::apply(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seq_;
  // Every event draws from its own child stream, a pure function of
  // (seed, seq): replaying the stream tail after a warm restart consumes
  // identical randomness, making restore + replay bit-equal to an
  // uninterrupted run.
  util::Rng rng(engine::child_seed(seed_, "service-apply", seq_));
  apply_event_locked(event, rng);
  counters_.events_applied = seq_;
  sync_policy_counters_locked();
  bump_locked();
  return version_;
}

void StateStore::apply_event_locked(const Event& event, util::Rng& rng) {
  switch (event.kind) {
    case Event::Kind::clock:
      apply_clock(event.slot);
      break;
    case Event::Kind::contact:
      if (event.a >= config_.num_nodes || event.b >= config_.num_nodes ||
          event.a == event.b) {
        ++counters_.events_malformed;
      } else {
        apply_contact(event.a, event.b, rng);
      }
      break;
    case Event::Kind::request:
      if (event.a >= config_.num_nodes || event.item >= config_.num_items) {
        ++counters_.events_malformed;
      } else {
        apply_request(event.a, event.item, rng);
      }
      break;
    case Event::Kind::crash:
      if (event.a >= config_.num_nodes) {
        ++counters_.events_malformed;
      } else {
        apply_crash(event.a);
      }
      break;
    case Event::Kind::hello:
    case Event::Kind::quit:
      break;  // stream control; the ingest loop reacts, the state doesn't
  }
}

void StateStore::apply_line_locked(const IngestLine& line) {
  ++seq_;
  if (line.malformed) {
    ++counters_.events_malformed;
  } else {
    util::Rng rng(engine::child_seed(seed_, "service-apply", seq_));
    apply_event_locked(line.event, rng);
  }
  counters_.events_applied = seq_;
  sync_policy_counters_locked();
  bump_locked();
}

std::uint64_t StateStore::apply_batch(std::span<const IngestLine> lines) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.parallel() || lines.size() < 2) {
    for (const IngestLine& line : lines) apply_line_locked(line);
    return version_;
  }
  for (std::size_t begin = 0; begin < lines.size();
       begin += options_.window) {
    apply_window_locked(lines.subspan(
        begin, std::min(options_.window, lines.size() - begin)));
  }
  return version_;
}

void StateStore::apply_window_locked(std::span<const IngestLine> lines) {
  // Schedule the window into shard-disjoint plan waves; commits walk
  // the window in original order, advancing exactly as far as the
  // planned waves cover (trace::WavePartitioner's run protocol — see
  // apply_plan.hpp for the correctness argument).
  scheduler_->schedule(lines, config_.num_nodes, order_, wave_ends_,
                       commit_ends_);
  plans_.resize(std::max(plans_.size(), lines.size()));
  const unsigned width = team_->num_workers() + 1;
  std::size_t wave_begin = 0;
  std::size_t committed = 0;
  for (std::size_t k = 0; k < wave_ends_.size(); ++k) {
    const std::size_t wave_end = wave_ends_[k];
    const std::size_t count = wave_end - wave_begin;
    if (count > 1) {
      // Strided fan-out: worker t plans order_[wave_begin + t, +width,
      // ...]. Plans only read node state; the barrier inside run()
      // orders them against the commits below.
      team_->run([&, wave_begin, wave_end](unsigned tid) {
        for (std::size_t j = wave_begin + tid; j < wave_end; j += width) {
          const std::uint32_t i = order_[j];
          plan_line(lines[i], plans_[i]);
        }
      });
    } else if (count == 1) {
      const std::uint32_t i = order_[wave_begin];
      plan_line(lines[i], plans_[i]);
    }
    for (; committed < commit_ends_[k]; ++committed) {
      commit_line_locked(lines[committed], plans_[committed]);
    }
    wave_begin = wave_end;
  }
}

void StateStore::plan_line(const IngestLine& line, ContactPlan& plan) const {
  plan.planned = false;
  if (line.malformed) return;
  const Event& e = line.event;
  if (e.kind != Event::Kind::contact || e.a >= config_.num_nodes ||
      e.b >= config_.num_nodes || e.a == e.b) {
    // Only contacts carry plannable work (the O(rho * pending) match
    // scan); requests and crashes are O(capacity) at commit.
    return;
  }
  plan.planned = true;
  plan_direction(nodes_[e.a], nodes_[e.b], plan.ab);
  plan_direction(nodes_[e.b], nodes_[e.a], plan.ba);
}

void StateStore::plan_direction(const core::Node& requester,
                                const core::Node& provider,
                                std::vector<std::uint32_t>& matches) const {
  // Read-only twin of fulfil_from's match scan: same O(rho) prefilter,
  // then the pending indices the provider can serve. Valid at commit
  // time because no line between plan and commit touches these shards
  // (direction 1's commit mutates only the requester's mandates and
  // pending — never the provider cache or the other direction's list).
  matches.clear();
  if (requester.pending().empty()) return;
  bool any_match = false;
  for (ItemId item : provider.cache().items()) {
    if (requester.has_pending(item)) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return;
  const auto& pending = requester.pending();
  for (std::size_t k = 0; k < pending.size(); ++k) {
    if (provider.holds(pending[k].item)) {
      matches.push_back(static_cast<std::uint32_t>(k));
    }
  }
}

void StateStore::commit_line_locked(const IngestLine& line,
                                    const ContactPlan& plan) {
  ++seq_;
  if (line.malformed) {
    ++counters_.events_malformed;
  } else if (plan.planned) {
    util::Rng rng(engine::child_seed(seed_, "service-apply", seq_));
    ++counters_.contacts;
    core::Node& na = nodes_[line.event.a];
    core::Node& nb = nodes_[line.event.b];
    mark_dirty_locked(line.event.a);
    mark_dirty_locked(line.event.b);
    fulfil_planned(na, nb, plan.ab, rng);
    fulfil_planned(nb, na, plan.ba, rng);
    policy_->on_meeting_complete(na, nb, rng);
  } else {
    util::Rng rng(engine::child_seed(seed_, "service-apply", seq_));
    apply_event_locked(line.event, rng);
  }
  counters_.events_applied = seq_;
  sync_policy_counters_locked();
  bump_locked();
}

void StateStore::apply_clock(Slot slot) {
  // Monotonic: a stale or repeated T frame never rewinds time.
  clock_ = std::max(clock_, slot);
}

void StateStore::apply_contact(NodeId a, NodeId b, util::Rng& rng) {
  ++counters_.contacts;
  core::Node& na = nodes_[a];
  core::Node& nb = nodes_[b];
  // Both sides mutate unconditionally (note_server_meeting ticks the
  // query counter even on a dry meeting).
  mark_dirty_locked(a);
  mark_dirty_locked(b);
  fulfil_from(na, nb, rng);
  fulfil_from(nb, na, rng);
  policy_->on_meeting_complete(na, nb, rng);
}

void StateStore::apply_request(NodeId node_id, ItemId item, util::Rng& rng) {
  (void)rng;
  ++counters_.requests_created;
  core::Node& node = nodes_[node_id];
  if (node.holds(item)) {
    // Own-cache hit: fulfilled at zero delay, no query counter, no
    // reaction (QCR only reacts to fulfilments that cost meetings).
    const double gain = utility_->bounded_at_zero()
                            ? utility_->value_at_zero()
                            : utility_->value(1.0);
    ++counters_.immediate_fulfillments;
    counters_.total_gain += gain;
    record_delay_locked(0.0);
    return;
  }
  node.create_request(item, clock_);
  mark_dirty_locked(node_id);
  ++counters_.requests_pending;
}

void StateStore::apply_crash(NodeId node_id) {
  mark_dirty_locked(node_id);
  const core::Node::CrashLosses losses = nodes_[node_id].crash(false);
  ++faults_.crashes;
  faults_.replicas_lost += losses.replicas;
  faults_.mandates_lost += losses.mandates;
  faults_.requests_lost += losses.requests;
  counters_.requests_pending -= losses.requests;
}

void StateStore::fulfil_from(core::Node& requester, core::Node& provider,
                             util::Rng& rng) {
  // Service twin of the simulator's meeting protocol (src/core/meeting.cpp),
  // kept step-identical so the daemon's online QCR matches the offline
  // kernel: query tick first (clock semantics — the fulfilling meeting
  // counts), O(rho) prefilter, then one compaction pass.
  requester.note_server_meeting();
  if (requester.pending().empty()) return;
  auto& pending = requester.pending();

  bool any_match = false;
  for (ItemId item : provider.cache().items()) {
    if (requester.has_pending(item)) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return;

  std::size_t kept = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    core::PendingRequest& req = pending[k];
    if (provider.holds(req.item)) {
      fulfil_one(requester, provider, req, rng);
    } else {
      pending[kept++] = req;
    }
  }
  pending.resize(kept);
}

void StateStore::fulfil_planned(core::Node& requester, core::Node& provider,
                                const std::vector<std::uint32_t>& matches,
                                util::Rng& rng) {
  // Commit half of the planned direction: the plan already decided
  // *which* pending indices the provider serves (bit-equal to
  // fulfil_from's holds() scan, since no committed line since the plan
  // touched either shard); delay/gain/queries are evaluated here against
  // the live clock and meeting counters, like the sequential path.
  requester.note_server_meeting();
  if (matches.empty()) return;
  auto& pending = requester.pending();
  std::size_t m = 0;
  std::size_t kept = 0;
  for (std::size_t k = 0; k < pending.size(); ++k) {
    if (m < matches.size() && matches[m] == k) {
      ++m;
      fulfil_one(requester, provider, pending[k], rng);
    } else {
      pending[kept++] = pending[k];
    }
  }
  pending.resize(kept);
}

void StateStore::fulfil_one(core::Node& requester, core::Node& provider,
                            core::PendingRequest& req, util::Rng& rng) {
  const double delay = static_cast<double>(clock_ - req.created) + 1.0;
  const double gain = utility_->value(delay);
  const long queries = requester.server_meetings() - req.queries_at_creation;
  ++counters_.fulfillments;
  --counters_.requests_pending;
  counters_.total_gain += gain;
  counters_.delay_sum += delay;
  record_delay_locked(delay);
  requester.note_fulfilled(req.item);
  policy_->on_fulfillment(requester, provider, req.item, queries, rng);
}

void StateStore::sync_policy_counters_locked() {
  counters_.mandates_created =
      mandates_created_base_ + policy_->mandates_created();
  counters_.replicas_written =
      replicas_written_base_ + policy_->replicas_written();
  // mandates_outstanding is NOT summed here: the O(nodes) sweep per
  // event would dominate the sharded pipeline. Read paths call
  // refresh_outstanding_locked() instead — externally observable
  // counters are unchanged.
}

void StateStore::refresh_outstanding_locked() const {
  long outstanding = 0;
  for (const core::Node& node : nodes_) outstanding += node.mandates().total();
  counters_.mandates_outstanding = outstanding;
}

void StateStore::mark_dirty_locked(NodeId node) {
  if (!dirty_[node]) {
    dirty_[node] = 1;
    dirty_list_.push_back(node);
  }
}

void StateStore::record_delay_locked(double delay) {
  if (recent_delays_.size() >= kDelayWindow) {
    // Chronological window: drop the oldest half in one move instead of
    // shifting per insert (amortized O(1), order preserved).
    recent_delays_.erase(recent_delays_.begin(),
                         recent_delays_.begin() + kDelayWindow / 2);
  }
  recent_delays_.push_back(delay);
}

std::uint64_t StateStore::apply_malformed() {
  std::lock_guard<std::mutex> lock(mu_);
  // Malformed countable lines advance seq like any other: the seq cursor
  // must be an exact position into the stream's countable lines, or a
  // reconnecting feeder could not resume from it (docs/service.md).
  ++seq_;
  ++counters_.events_malformed;
  counters_.events_applied = seq_;
  bump_locked();
  return version_;
}

StateImage::NodeImage StateStore::node_image_locked(NodeId n) const {
  const core::Node& node = nodes_[n];
  StateImage::NodeImage ni;
  ni.server_meetings = node.server_meetings();
  const auto sticky = node.cache().sticky();
  ni.sticky = sticky ? static_cast<std::int64_t>(*sticky) : -1;
  ni.cache = node.cache().items();
  for (ItemId item : node.mandates().active_items()) {
    ni.mandates.emplace_back(item, node.mandates().count(item));
  }
  ni.pending = node.pending();
  return ni;
}

StateImage StateStore::image() const {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_outstanding_locked();
  StateImage image;
  image.config = config_;
  image.seed = seed_;
  image.version = version_;
  image.seq = seq_;
  image.clock = clock_;
  image.counters = counters_;
  image.faults = faults_;
  image.nodes.reserve(nodes_.size());
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    image.nodes.push_back(node_image_locked(n));
  }
  image.recent_delays = recent_delays_;
  return image;
}

StateImage StateStore::checkpoint_image() {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_outstanding_locked();
  StateImage image;
  image.config = config_;
  image.seed = seed_;
  image.version = version_;
  image.seq = seq_;
  image.clock = clock_;
  image.counters = counters_;
  image.faults = faults_;
  image.nodes.reserve(nodes_.size());
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    image.nodes.push_back(node_image_locked(n));
  }
  image.recent_delays = recent_delays_;
  // Image + dirty reset under one lock: the next delta is relative to
  // exactly this image, with no apply slipping in between.
  for (NodeId n : dirty_list_) dirty_[n] = 0;
  dirty_list_.clear();
  return image;
}

StateDelta StateStore::take_delta() {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_outstanding_locked();
  StateDelta delta;
  delta.config = config_;
  delta.seed = seed_;
  delta.version = version_;
  delta.seq = seq_;
  delta.clock = clock_;
  delta.counters = counters_;
  delta.faults = faults_;
  std::sort(dirty_list_.begin(), dirty_list_.end());
  delta.nodes.reserve(dirty_list_.size());
  for (NodeId n : dirty_list_) {
    delta.nodes.emplace_back(n, node_image_locked(n));
    dirty_[n] = 0;
  }
  dirty_list_.clear();
  delta.recent_delays = recent_delays_;
  return delta;
}

std::size_t StateStore::dirty_node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_list_.size();
}

void StateStore::save_snapshot(const std::string& path) const {
  // Copy-on-read, then serialize outside the lock: the ingest path only
  // stalls for the in-memory copy, never for disk I/O.
  const StateImage snapshot = image();
  save_image(path, snapshot);
}

StoreCounters StateStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_outstanding_locked();
  return counters_;
}

fault::FaultCounters StateStore::faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

Slot StateStore::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

std::uint64_t StateStore::seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::vector<long> StateStore::replica_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replica_counts_;
}

double StateStore::delay_percentile(double p) const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window = recent_delays_;
  }
  if (window.empty()) return 0.0;
  return stats::percentile(window, p);
}

bool StateStore::mandate_conservation_ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_outstanding_locked();
  return counters_.mandates_created ==
         counters_.replicas_written + counters_.mandates_outstanding +
             faults_.mandates_lost;
}

std::unique_ptr<StateStore> StateStore::restore(const StoreConfig& config,
                                                std::uint64_t seed,
                                                const std::string& path) {
  return std::make_unique<StateStore>(config, seed, load_image(path));
}

// ---------------------------------------------------------------------------
// Snapshot serialization: versioned header, ASCII lines, FNV-1a checksum
// line plus `end` trailer so truncation and torn writes are detectable.

namespace {

constexpr std::string_view kMagic = "impatience.replicationd_snapshot/1";

class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next line; throws on EOF (snapshots end with an explicit trailer).
  std::string next() {
    std::string line;
    if (!std::getline(in_, line)) {
      throw util::IoError("snapshot: truncated (unexpected end of file)");
    }
    return line;
  }

 private:
  std::istream& in_;
};

/// Tokenizing reader for one expected record line: "key v1 v2 ...".
class Record {
 public:
  Record(std::string line, std::string_view key) : stream_(std::move(line)) {
    std::string got;
    if (!(stream_ >> got) || got != key) {
      throw util::IoError("snapshot: expected '" + std::string(key) +
                          "' record, got '" + got + "'");
    }
  }

  template <typename T>
  T get(const char* what) {
    T value{};
    if (!(stream_ >> value)) {
      throw util::IoError(std::string("snapshot: bad or missing field: ") +
                          what);
    }
    return value;
  }

  /// Remainder of the line, stripped of one leading space.
  std::string rest() {
    std::string tail;
    std::getline(stream_, tail);
    if (!tail.empty() && tail.front() == ' ') tail.erase(0, 1);
    return tail;
  }

 private:
  std::istringstream stream_;
};

}  // namespace

namespace {

constexpr std::string_view kDeltaMagic = "impatience.replicationd_delta/1";

void write_config_record(std::ostream& body, const StoreConfig& c) {
  body << "config " << c.num_nodes << ' ' << c.num_items << ' '
       << c.cache_capacity << ' ' << (c.sticky_replicas ? 1 : 0) << ' '
       << fmt_double(c.mu) << ' ' << fmt_double(c.reaction_scale) << ' '
       << (c.mandate_routing ? 1 : 0) << ' ' << c.utility_spec << '\n';
}

void write_counters_record(std::ostream& body, const StoreCounters& k) {
  body << "counters " << k.events_applied << ' ' << k.events_malformed << ' '
       << k.contacts << ' ' << k.requests_created << ' '
       << k.immediate_fulfillments << ' ' << k.fulfillments << ' '
       << k.requests_pending << ' ' << k.mandates_created << ' '
       << k.replicas_written << ' ' << k.mandates_outstanding << ' '
       << fmt_double(k.total_gain) << ' ' << fmt_double(k.delay_sum) << '\n';
}

void write_faults_record(std::ostream& body, const fault::FaultCounters& f) {
  body << "faults " << f.crashes << ' ' << f.replicas_lost << ' '
       << f.mandates_lost << ' ' << f.requests_lost << '\n';
}

void write_node_records(std::ostream& body, std::uint64_t id,
                        const StateImage::NodeImage& ni) {
  body << "node " << id << ' ' << ni.server_meetings << ' ' << ni.sticky
       << '\n';
  body << "cache " << ni.cache.size();
  for (ItemId item : ni.cache) body << ' ' << item;
  body << '\n';
  body << "mandates " << ni.mandates.size();
  for (const auto& [item, count] : ni.mandates) {
    body << ' ' << item << ' ' << count;
  }
  body << '\n';
  body << "pending " << ni.pending.size();
  for (const core::PendingRequest& req : ni.pending) {
    body << ' ' << req.item << ' ' << req.created << ' '
         << req.queries_at_creation;
  }
  body << '\n';
}

void write_delays_record(std::ostream& body, const std::vector<double>& d) {
  body << "delays " << d.size();
  for (double v : d) body << ' ' << fmt_double(v);
  body << '\n';
}

/// Appends "checksum <hex>\nend\n" and returns the body checksum.
std::uint64_t seal_body(std::ostream& out, const std::string& text) {
  const std::uint64_t sum = engine::fnv1a64(text);
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016" PRIx64, sum);
  out << text << "checksum " << checksum << '\n' << "end\n";
  return sum;
}

/// Pass 1 of every reader: collect the body, verify checksum + trailer.
/// Any torn or bit-flipped file is rejected before a field is parsed.
std::string read_checked_body(std::istream& in, std::uint64_t* checksum) {
  std::string body;
  std::string line;
  bool have_checksum = false;
  std::uint64_t stored_checksum = 0;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      stored_checksum = std::stoull(line.substr(9), nullptr, 16);
      have_checksum = true;
      break;
    }
    body += line;
    body += '\n';
  }
  if (!have_checksum) {
    throw util::IoError("snapshot: missing checksum line (torn file?)");
  }
  if (engine::fnv1a64(body) != stored_checksum) {
    throw util::IoError("snapshot: checksum mismatch (corrupt file)");
  }
  if (!std::getline(in, line) || line != "end") {
    throw util::IoError("snapshot: missing end trailer");
  }
  if (checksum) *checksum = stored_checksum;
  return body;
}

void read_config_record(LineReader& lines, StoreConfig& config) {
  Record r(lines.next(), "config");
  config.num_nodes = r.get<NodeId>("num_nodes");
  config.num_items = r.get<ItemId>("num_items");
  config.cache_capacity = r.get<int>("cache_capacity");
  config.sticky_replicas = r.get<int>("sticky_replicas") != 0;
  config.mu = r.get<double>("mu");
  config.reaction_scale = r.get<double>("reaction_scale");
  config.mandate_routing = r.get<int>("mandate_routing") != 0;
  config.utility_spec = r.rest();
  config.validate();
}

void read_counters_record(LineReader& lines, StoreCounters& k) {
  Record r(lines.next(), "counters");
  k.events_applied = r.get<std::uint64_t>("events_applied");
  k.events_malformed = r.get<std::uint64_t>("events_malformed");
  k.contacts = r.get<std::uint64_t>("contacts");
  k.requests_created = r.get<std::uint64_t>("requests_created");
  k.immediate_fulfillments = r.get<std::uint64_t>("immediate_fulfillments");
  k.fulfillments = r.get<std::uint64_t>("fulfillments");
  k.requests_pending = r.get<std::uint64_t>("requests_pending");
  k.mandates_created = r.get<long>("mandates_created");
  k.replicas_written = r.get<long>("replicas_written");
  k.mandates_outstanding = r.get<long>("mandates_outstanding");
  k.total_gain = r.get<double>("total_gain");
  k.delay_sum = r.get<double>("delay_sum");
}

void read_faults_record(LineReader& lines, fault::FaultCounters& f) {
  Record r(lines.next(), "faults");
  f.crashes = r.get<std::uint64_t>("crashes");
  f.replicas_lost = r.get<std::uint64_t>("replicas_lost");
  f.mandates_lost = r.get<long>("mandates_lost");
  f.requests_lost = r.get<std::uint64_t>("requests_lost");
}

/// Reads one node/cache/mandates/pending block; returns the node id.
std::uint64_t read_node_records(LineReader& lines,
                                StateImage::NodeImage& ni) {
  std::uint64_t id = 0;
  {
    Record r(lines.next(), "node");
    id = r.get<std::uint64_t>("node id");
    ni.server_meetings = r.get<long>("server_meetings");
    ni.sticky = r.get<std::int64_t>("sticky");
  }
  {
    Record r(lines.next(), "cache");
    const auto count = r.get<std::size_t>("cache size");
    ni.cache.resize(count);
    for (auto& item : ni.cache) item = r.get<ItemId>("cache item");
  }
  {
    Record r(lines.next(), "mandates");
    const auto count = r.get<std::size_t>("mandate entries");
    ni.mandates.resize(count);
    for (auto& [item, cnt] : ni.mandates) {
      item = r.get<ItemId>("mandate item");
      cnt = r.get<long>("mandate count");
    }
  }
  {
    Record r(lines.next(), "pending");
    const auto count = r.get<std::size_t>("pending entries");
    ni.pending.resize(count);
    for (auto& req : ni.pending) {
      req.item = r.get<ItemId>("pending item");
      req.created = r.get<Slot>("pending created");
      req.queries_at_creation = r.get<long>("pending queries");
    }
  }
  return id;
}

void read_delays_record(LineReader& lines, std::vector<double>& delays) {
  Record r(lines.next(), "delays");
  const auto count = r.get<std::size_t>("delay count");
  delays.resize(count);
  for (auto& d : delays) d = r.get<double>("delay");
}

}  // namespace

std::uint64_t write_image(std::ostream& out, const StateImage& image) {
  std::ostringstream body;
  body << kMagic << '\n';
  write_config_record(body, image.config);
  body << "seed " << image.seed << '\n';
  body << "state " << image.version << ' ' << image.seq << ' ' << image.clock
       << '\n';
  write_counters_record(body, image.counters);
  write_faults_record(body, image.faults);
  body << "nodes " << image.nodes.size() << '\n';
  for (std::size_t n = 0; n < image.nodes.size(); ++n) {
    write_node_records(body, n, image.nodes[n]);
  }
  write_delays_record(body, image.recent_delays);
  return seal_body(out, body.str());
}

StateImage read_image(std::istream& in, std::uint64_t* checksum) {
  std::istringstream text(read_checked_body(in, checksum));
  LineReader lines(text);
  if (lines.next() != kMagic) {
    throw util::IoError("snapshot: bad magic (not a replicationd snapshot)");
  }

  StateImage image;
  read_config_record(lines, image.config);
  {
    Record r(lines.next(), "seed");
    image.seed = r.get<std::uint64_t>("seed");
  }
  {
    Record r(lines.next(), "state");
    image.version = r.get<std::uint64_t>("version");
    image.seq = r.get<std::uint64_t>("seq");
    image.clock = r.get<Slot>("clock");
  }
  read_counters_record(lines, image.counters);
  read_faults_record(lines, image.faults);
  std::size_t num_nodes = 0;
  {
    Record r(lines.next(), "nodes");
    num_nodes = r.get<std::size_t>("nodes");
  }
  image.nodes.resize(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (read_node_records(lines, image.nodes[n]) != n) {
      throw util::IoError("snapshot: node records out of order");
    }
  }
  read_delays_record(lines, image.recent_delays);
  return image;
}

std::uint64_t save_image(const std::string& path, const StateImage& image) {
  std::uint64_t checksum = 0;
  engine::atomic_write_file(path, [&](std::ostream& out) {
    checksum = write_image(out, image);
  });
  return checksum;
}

StateImage load_image(const std::string& path, std::uint64_t* checksum) {
  std::ifstream in(path);
  if (!in) {
    throw util::IoError("snapshot: cannot open " + path);
  }
  return read_image(in, checksum);
}

std::uint64_t write_delta(std::ostream& out, const StateDelta& delta) {
  std::ostringstream body;
  body << kDeltaMagic << '\n';
  body << "parent " << delta.parent_checksum << '\n';
  write_config_record(body, delta.config);
  body << "seed " << delta.seed << '\n';
  body << "state " << delta.version << ' ' << delta.seq << ' ' << delta.clock
       << '\n';
  write_counters_record(body, delta.counters);
  write_faults_record(body, delta.faults);
  body << "nodes " << delta.nodes.size() << '\n';
  for (const auto& [id, ni] : delta.nodes) {
    write_node_records(body, id, ni);
  }
  write_delays_record(body, delta.recent_delays);
  return seal_body(out, body.str());
}

StateDelta read_delta(std::istream& in, std::uint64_t* checksum) {
  std::istringstream text(read_checked_body(in, checksum));
  LineReader lines(text);
  if (lines.next() != kDeltaMagic) {
    throw util::IoError("snapshot: bad magic (not a replicationd delta)");
  }

  StateDelta delta;
  {
    Record r(lines.next(), "parent");
    delta.parent_checksum = r.get<std::uint64_t>("parent checksum");
  }
  read_config_record(lines, delta.config);
  {
    Record r(lines.next(), "seed");
    delta.seed = r.get<std::uint64_t>("seed");
  }
  {
    Record r(lines.next(), "state");
    delta.version = r.get<std::uint64_t>("version");
    delta.seq = r.get<std::uint64_t>("seq");
    delta.clock = r.get<Slot>("clock");
  }
  read_counters_record(lines, delta.counters);
  read_faults_record(lines, delta.faults);
  std::size_t num_nodes = 0;
  {
    Record r(lines.next(), "nodes");
    num_nodes = r.get<std::size_t>("nodes");
  }
  delta.nodes.resize(num_nodes);
  std::uint64_t prev_id = 0;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    auto& [id, ni] = delta.nodes[n];
    const std::uint64_t got = read_node_records(lines, ni);
    if (n > 0 && got <= prev_id) {
      throw util::IoError("snapshot: delta node records not ascending");
    }
    id = static_cast<NodeId>(got);
    prev_id = got;
  }
  read_delays_record(lines, delta.recent_delays);
  return delta;
}

std::uint64_t save_delta(const std::string& path, const StateDelta& delta) {
  std::uint64_t checksum = 0;
  engine::atomic_write_file(path, [&](std::ostream& out) {
    checksum = write_delta(out, delta);
  });
  return checksum;
}

StateDelta load_delta(const std::string& path, std::uint64_t* checksum) {
  std::ifstream in(path);
  if (!in) {
    throw util::IoError("snapshot: cannot open " + path);
  }
  return read_delta(in, checksum);
}

void apply_delta(StateImage& image, const StateDelta& delta) {
  if (!config_equal(image.config, delta.config)) {
    throw util::IoError("snapshot: delta config does not match base");
  }
  if (image.seed != delta.seed) {
    throw util::IoError("snapshot: delta seed does not match base");
  }
  if (delta.seq < image.seq) {
    throw util::IoError("snapshot: delta seq regresses past base");
  }
  for (const auto& [id, ni] : delta.nodes) {
    if (id >= image.nodes.size()) {
      throw util::IoError("snapshot: delta node id out of range");
    }
  }
  image.version = delta.version;
  image.seq = delta.seq;
  image.clock = delta.clock;
  image.counters = delta.counters;
  image.faults = delta.faults;
  for (const auto& [id, ni] : delta.nodes) {
    image.nodes[id] = ni;
  }
  image.recent_delays = delta.recent_delays;
}

}  // namespace impatience::service
