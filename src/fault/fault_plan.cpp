#include <cmath>
#include <stdexcept>
#include <string_view>

#include "impatience/fault/fault.hpp"

namespace impatience::fault {

namespace {

void check_probability(double p, const char* name) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0, 1]");
  }
}

/// SplitMix64 finalizer (the same fixed constants as engine::mix64,
/// inlined because fault sits below engine in the module layering). Used
/// to derive one independent crash stream per node from the fault seed.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a of "crash-node": a fixed stream tag separating the per-node
/// crash streams from any other child stream of the same fault seed.
constexpr std::uint64_t kCrashStreamTag = [] {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : std::string_view("crash-node")) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}();

}  // namespace

bool FaultConfig::any() const noexcept {
  return p_drop > 0.0 || p_truncate > 0.0 || p_duplicate > 0.0 ||
         p_reorder > 0.0 || p_crash > 0.0;
}

void FaultConfig::validate() const {
  check_probability(p_drop, "p_drop");
  check_probability(p_truncate, "p_truncate");
  check_probability(p_duplicate, "p_duplicate");
  check_probability(p_reorder, "p_reorder");
  check_probability(p_crash, "p_crash");
  check_probability(p_persist_cache, "p_persist_cache");
  if (p_crash > 0.0 && !(mean_downtime >= 0.0)) {
    throw std::invalid_argument("FaultConfig: mean_downtime must be >= 0");
  }
}

bool FaultCounters::any() const noexcept {
  return injected_events() > 0 || meetings_skipped_down > 0 ||
         fulfilments_deferred > 0 || cold_restarts > 0 || replicas_lost > 0 ||
         mandates_lost > 0 || requests_lost > 0 || requests_suppressed > 0;
}

FaultPlan::FaultPlan(const FaultConfig& config)
    : active_(config.engaged()), config_(config), rng_(config.seed) {
  config.validate();
}

void FaultPlan::charge_budget() const {
  if (config_.max_fault_events > 0 &&
      counters_.injected_events() > config_.max_fault_events) {
    throw util::FaultBudgetError(
        "FaultPlan: injected fault events exceed max_fault_events (" +
        std::to_string(config_.max_fault_events) + ")");
  }
}

bool FaultPlan::drop_meeting() {
  if (!rng_.bernoulli(config_.p_drop)) return false;
  ++counters_.meetings_dropped;
  charge_budget();
  return true;
}

bool FaultPlan::duplicate_meeting() {
  if (!rng_.bernoulli(config_.p_duplicate)) return false;
  ++counters_.meetings_duplicated;
  charge_budget();
  return true;
}

bool FaultPlan::should_truncate() { return rng_.bernoulli(config_.p_truncate); }

long FaultPlan::truncation_prefix(long negotiated) {
  if (negotiated <= 0) {
    throw std::logic_error("FaultPlan::truncation_prefix: nothing negotiated");
  }
  ++counters_.exchanges_truncated;
  charge_budget();
  return static_cast<long>(
      rng_.uniform_index(static_cast<std::uint64_t>(negotiated)));
}

bool FaultPlan::reorder_slot() {
  if (!rng_.bernoulli(config_.p_reorder)) return false;
  ++counters_.slots_reordered;
  charge_budget();
  return true;
}

void FaultPlan::shuffle_delivery(std::vector<trace::ContactEvent>& events) {
  rng_.shuffle(events);
}

bool FaultPlan::crash_now() {
  if (!rng_.bernoulli(config_.p_crash)) return false;
  ++counters_.crashes;
  charge_budget();
  return true;
}

bool FaultPlan::crash_persists_cache() {
  return rng_.bernoulli(config_.p_persist_cache);
}

Slot FaultPlan::downtime_from(util::Rng& rng, double mean_downtime) {
  if (!(mean_downtime > 1.0)) return 1;
  // Geometric-like: 1 + Exp(1 / (mean - 1)) rounded down, so the mean is
  // about mean_downtime and every crash costs at least one slot.
  const double extra = rng.exponential(1.0 / (mean_downtime - 1.0));
  return 1 + static_cast<Slot>(std::floor(extra));
}

Slot FaultPlan::downtime() {
  return downtime_from(rng_, config_.mean_downtime);
}

void FaultPlan::prepare_node_streams(trace::NodeId num_nodes) {
  node_rng_.clear();
  node_rng_.reserve(num_nodes);
  for (trace::NodeId n = 0; n < num_nodes; ++n) {
    // Child seed = two mixing rounds over (fault seed, stream tag, node),
    // the engine::child_seed chaining scheme: a pure function of its
    // inputs, so the schedule is independent of processing order and
    // thread count.
    node_rng_.emplace_back(mix64(mix64(config_.seed ^ kCrashStreamTag) + n));
  }
}

FaultPlan::NodeCrash FaultPlan::next_node_crash(trace::NodeId n, Slot from) {
  NodeCrash crash;
  if (!(config_.p_crash > 0.0)) return crash;
  if (n >= node_rng_.size()) {
    throw std::logic_error(
        "FaultPlan::next_node_crash: prepare_node_streams not called");
  }
  util::Rng& rng = node_rng_[n];
  // Inverse-CDF geometric skip: G = floor(ln(1-U) / ln(1-p)) counts the
  // failures before the first success of a Bernoulli(p) hazard. U in
  // [0, 1) keeps log1p(-U) finite and <= 0; p == 1 gives an infinite
  // denominator and hence G == 0, the per-slot certainty.
  const double u = rng.uniform();
  const bool persist = rng.bernoulli(config_.p_persist_cache);
  const Slot down = downtime_from(rng, config_.mean_downtime);
  const double gap = std::floor(std::log1p(-u) / std::log1p(-config_.p_crash));
  // Saturate huge gaps (tiny p, U near 1) instead of overflowing Slot.
  if (gap >= static_cast<double>(kNoCrash - from)) return crash;
  crash.slot = from + static_cast<Slot>(gap);
  crash.persist_cache = persist;
  crash.downtime = down;
  return crash;
}

void FaultPlan::record_crash() {
  ++counters_.crashes;
  charge_budget();
}

}  // namespace impatience::fault
