#include <cmath>
#include <stdexcept>

#include "impatience/fault/fault.hpp"

namespace impatience::fault {

namespace {

void check_probability(double p, const char* name) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

bool FaultConfig::any() const noexcept {
  return p_drop > 0.0 || p_truncate > 0.0 || p_duplicate > 0.0 ||
         p_reorder > 0.0 || p_crash > 0.0;
}

void FaultConfig::validate() const {
  check_probability(p_drop, "p_drop");
  check_probability(p_truncate, "p_truncate");
  check_probability(p_duplicate, "p_duplicate");
  check_probability(p_reorder, "p_reorder");
  check_probability(p_crash, "p_crash");
  check_probability(p_persist_cache, "p_persist_cache");
  if (p_crash > 0.0 && !(mean_downtime >= 0.0)) {
    throw std::invalid_argument("FaultConfig: mean_downtime must be >= 0");
  }
}

bool FaultCounters::any() const noexcept {
  return injected_events() > 0 || meetings_skipped_down > 0 ||
         fulfilments_deferred > 0 || cold_restarts > 0 || replicas_lost > 0 ||
         mandates_lost > 0 || requests_lost > 0 || requests_suppressed > 0;
}

FaultPlan::FaultPlan(const FaultConfig& config)
    : active_(config.engaged()), config_(config), rng_(config.seed) {
  config.validate();
}

void FaultPlan::charge_budget() const {
  if (config_.max_fault_events > 0 &&
      counters_.injected_events() > config_.max_fault_events) {
    throw util::FaultBudgetError(
        "FaultPlan: injected fault events exceed max_fault_events (" +
        std::to_string(config_.max_fault_events) + ")");
  }
}

bool FaultPlan::drop_meeting() {
  if (!rng_.bernoulli(config_.p_drop)) return false;
  ++counters_.meetings_dropped;
  charge_budget();
  return true;
}

bool FaultPlan::duplicate_meeting() {
  if (!rng_.bernoulli(config_.p_duplicate)) return false;
  ++counters_.meetings_duplicated;
  charge_budget();
  return true;
}

bool FaultPlan::should_truncate() { return rng_.bernoulli(config_.p_truncate); }

long FaultPlan::truncation_prefix(long negotiated) {
  if (negotiated <= 0) {
    throw std::logic_error("FaultPlan::truncation_prefix: nothing negotiated");
  }
  ++counters_.exchanges_truncated;
  charge_budget();
  return static_cast<long>(
      rng_.uniform_index(static_cast<std::uint64_t>(negotiated)));
}

bool FaultPlan::reorder_slot() {
  if (!rng_.bernoulli(config_.p_reorder)) return false;
  ++counters_.slots_reordered;
  charge_budget();
  return true;
}

void FaultPlan::shuffle_delivery(std::vector<trace::ContactEvent>& events) {
  rng_.shuffle(events);
}

bool FaultPlan::crash_now() {
  if (!rng_.bernoulli(config_.p_crash)) return false;
  ++counters_.crashes;
  charge_budget();
  return true;
}

bool FaultPlan::crash_persists_cache() {
  return rng_.bernoulli(config_.p_persist_cache);
}

Slot FaultPlan::downtime() {
  if (!(config_.mean_downtime > 1.0)) return 1;
  // Geometric-like: 1 + Exp(1 / (mean - 1)) rounded down, so the mean is
  // about mean_downtime and every crash costs at least one slot.
  const double extra = rng_.exponential(1.0 / (config_.mean_downtime - 1.0));
  return 1 + static_cast<Slot>(std::floor(extra));
}

}  // namespace impatience::fault
