#include "impatience/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace impatience::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::format_double(double v, int precision) {
  std::ostringstream os;
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    os.precision(precision + 3);
  } else {
    os.precision(precision);
  }
  os << v;
  return os.str();
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto line = [&](char fill, char sep) {
    out << sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << std::string(width[c] + 2, fill) << sep;
    }
    out << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& r) {
    out << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ')
          << '|';
    }
    out << '\n';
  };
  line('-', '+');
  print_row(header_);
  line('-', '+');
  for (const auto& r : rows_) print_row(r);
  line('-', '+');
}

}  // namespace impatience::util
