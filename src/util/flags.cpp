#include "impatience/util/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace impatience::util {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Flags::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

long Flags::get_long(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stol(it->second);
}

double Flags::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Flags: bad boolean for --" + key + ": " + v);
}

}  // namespace impatience::util
