#include "impatience/util/flags.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace impatience::util {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

std::optional<double> parse_duration(const std::string& text) {
  if (text.empty()) return std::nullopt;
  // Split into number prefix and unit suffix at the first alpha char.
  std::size_t unit_at = text.size();
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::isalpha(static_cast<unsigned char>(text[i]))) {
      unit_at = i;
      break;
    }
  }
  const std::string number = text.substr(0, unit_at);
  const std::string unit = text.substr(unit_at);
  if (number.empty()) return std::nullopt;

  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != number.size()) return std::nullopt;
  if (!std::isfinite(value) || value < 0.0) return std::nullopt;

  double scale = 1.0;
  if (unit == "ms") {
    scale = 1e-3;
  } else if (unit.empty() || unit == "s") {
    scale = 1.0;
  } else if (unit == "m") {
    scale = 60.0;
  } else if (unit == "h") {
    scale = 3600.0;
  } else if (unit == "d") {
    scale = 86400.0;
  } else {
    return std::nullopt;
  }
  return value * scale;
}

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Flags::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

long Flags::get_long(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stol(it->second);
}

double Flags::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

double Flags::get_duration(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto seconds = parse_duration(it->second);
  if (!seconds) {
    throw std::invalid_argument("Flags: bad duration for --" + key + ": '" +
                                it->second +
                                "' (want e.g. 90, 250ms, 30s, 5m, 2h)");
  }
  return *seconds;
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Flags: bad boolean for --" + key + ": " + v);
}

}  // namespace impatience::util
