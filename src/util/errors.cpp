#include "impatience/util/errors.hpp"

namespace impatience::util {

const char* to_string(CancelReason reason) noexcept {
  switch (reason) {
    case CancelReason::none: return "none";
    case CancelReason::deadline: return "deadline";
    case CancelReason::shutdown: return "shutdown";
  }
  return "none";
}

CancelledError cancelled_error(const CancellationToken& token,
                               const std::string& what) {
  // A not-yet-cancelled token (defensive call) reads as a deadline: that
  // is what every pre-reason caller assumed, and classify_exception maps
  // it to the historical ErrorKind::timeout.
  const CancelReason reason = token.reason() == CancelReason::none
                                  ? CancelReason::deadline
                                  : token.reason();
  return CancelledError(what, reason);
}

}  // namespace impatience::util
