#include "impatience/util/math.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace impatience::util {

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  return detail::integrate_impl(f, a, b, tol, max_depth);
}

double integrate_to_inf(const std::function<double(double)>& f, double tol) {
  return detail::integrate_to_inf_impl(f, tol);
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double xtol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw std::invalid_argument("bisect: f(lo) and f(hi) have the same sign");
  }
  for (int i = 0; i < max_iter && (hi - lo) > xtol * std::max(1.0, std::abs(lo));
       ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double invert_decreasing(const std::function<double(double)>& g, double target,
                         double lo, double hi, double xtol) {
  assert(lo < hi);
  if (g(lo) <= target) return lo;
  if (g(hi) >= target) return hi;
  return bisect([&](double x) { return g(x) - target; }, lo, hi, xtol);
}

double gamma_fn(double x) {
  if (x <= 0.0) {
    throw std::domain_error("gamma_fn: requires x > 0");
  }
  return std::tgamma(x);
}

bool approx_equal(double a, double b, double tol) {
  return std::abs(a - b) <=
         tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace impatience::util
