#include "impatience/util/math.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace impatience::util {

namespace {

struct SimpsonEstimate {
  double value;
  double fa, fm, fb;  // endpoint and midpoint samples, reused by children
};

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  if (a == b) return 0.0;
  if (a > b) return -integrate(f, b, a, tol, max_depth);
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = simpson(fa, fm, fb, a, b);
  return adaptive(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

double integrate_to_inf(const std::function<double(double)>& f, double tol) {
  // t = u/(1-u), dt = du/(1-u)^2, u in (0,1). Sample strictly inside to
  // avoid the endpoint singularities of the substitution.
  auto g = [&f](double u) {
    const double one_minus = 1.0 - u;
    const double t = u / one_minus;
    return f(t) / (one_minus * one_minus);
  };
  constexpr double kEps = 1e-12;
  return integrate(g, kEps, 1.0 - kEps, tol);
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double xtol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw std::invalid_argument("bisect: f(lo) and f(hi) have the same sign");
  }
  for (int i = 0; i < max_iter && (hi - lo) > xtol * std::max(1.0, std::abs(lo));
       ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double invert_decreasing(const std::function<double(double)>& g, double target,
                         double lo, double hi, double xtol) {
  assert(lo < hi);
  if (g(lo) <= target) return lo;
  if (g(hi) >= target) return hi;
  return bisect([&](double x) { return g(x) - target; }, lo, hi, xtol);
}

double gamma_fn(double x) {
  if (x <= 0.0) {
    throw std::domain_error("gamma_fn: requires x > 0");
  }
  return std::tgamma(x);
}

bool approx_equal(double a, double b, double tol) {
  return std::abs(a - b) <=
         tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace impatience::util
