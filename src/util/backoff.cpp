#include "impatience/util/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "impatience/util/rng.hpp"

namespace impatience::util {

double backoff_delay(const BackoffPolicy& policy, std::uint64_t seed,
                     int attempt) noexcept {
  if (policy.base_seconds <= 0.0) return 0.0;
  const double base =
      policy.base_seconds * std::ldexp(1.0, std::min(attempt - 1, 20));
  const double capped = std::min(base, std::max(policy.max_seconds, 0.0));
  // One SplitMix64 finalization round over (seed, attempt) seeds the
  // jitter stream — the exact derivation engine::Runner has always used,
  // so extracting the helper changed no engine schedule.
  SplitMix64 mix(seed ^ (0xB0FFULL + static_cast<std::uint64_t>(attempt)));
  Rng rng(mix.next());
  return capped * (0.5 + rng.uniform());
}

}  // namespace impatience::util
