#include "impatience/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace impatience::util {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  // Knuth multiplication in chunks keeps exp() in range for large lambda.
  std::uint64_t total = 0;
  while (lambda > 30.0) {
    // Split off a Poisson(30) component.
    const double chunk = 30.0;
    const double l = std::exp(-chunk);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    total += k - 1;
    lambda -= chunk;
  }
  const double l = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > l);
  return total + k - 1;
}

double Rng::normal() noexcept {
  if (has_normal_spare_) {
    has_normal_spare_ = false;
    return normal_spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  normal_spare_ = v * factor;
  has_normal_spare_ = true;
  return u * factor;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

std::int64_t Rng::stochastic_round(double x) noexcept {
  const double f = std::floor(x);
  const double frac = x - f;
  auto base = static_cast<std::int64_t>(f);
  return base + (bernoulli(frac) ? 1 : 0);
}

}  // namespace impatience::util
