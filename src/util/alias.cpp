#include <limits>
#include <stdexcept>

#include "impatience/util/alias.hpp"

namespace impatience::util {

void AliasTable::rebuild(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) {
    throw std::invalid_argument("AliasTable: empty weight vector");
  }
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("AliasTable: too many weights");
  }
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasTable: weights sum to zero");
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's method: scale weights to mean 1, split columns into under- and
  // over-full worklists, and pair each under-full column with an
  // over-full donor.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = (weights[i] > 0.0 ? weights[i] : 0.0) * scale;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers hold (up to rounding) exactly their own mass.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

}  // namespace impatience::util
