#include "impatience/util/csv.hpp"

#include <stdexcept>

namespace impatience::util {

CsvWriter::CsvWriter(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& s) {
  const bool needs_quote =
      s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

}  // namespace impatience::util
