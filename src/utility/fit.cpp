#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "impatience/utility/fit.hpp"

namespace impatience::utility {

std::vector<double> isotonic_decreasing(const std::vector<double>& values,
                                        const std::vector<double>& weights) {
  if (values.size() != weights.size()) {
    throw std::invalid_argument("isotonic_decreasing: size mismatch");
  }
  // Pool adjacent violators for a NON-INCREASING fit: maintain a stack of
  // blocks with their weighted means; merge while a later block's mean
  // exceeds an earlier one's.
  struct Block {
    double mean;
    double weight;
    std::size_t count;
  };
  std::vector<Block> blocks;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!(weights[i] > 0.0)) {
      throw std::invalid_argument("isotonic_decreasing: weights must be > 0");
    }
    Block block{values[i], weights[i], 1};
    while (!blocks.empty() && blocks.back().mean < block.mean) {
      const Block& prev = blocks.back();
      const double w = prev.weight + block.weight;
      block = Block{(prev.mean * prev.weight + block.mean * block.weight) / w,
                    w, prev.count + block.count};
      blocks.pop_back();
    }
    blocks.push_back(block);
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& b : blocks) {
    out.insert(out.end(), b.count, b.mean);
  }
  return out;
}

TabulatedUtility fit_delay_utility(std::vector<FeedbackSample> samples,
                                   const FitOptions& options) {
  std::erase_if(samples,
                [](const FeedbackSample& s) { return !(s.delay > 0.0); });
  if (samples.size() < 2) {
    throw std::invalid_argument("fit_delay_utility: need >= 2 samples");
  }
  std::sort(samples.begin(), samples.end(),
            [](const FeedbackSample& a, const FeedbackSample& b) {
              return a.delay < b.delay;
            });
  if (samples.front().delay == samples.back().delay) {
    throw std::invalid_argument(
        "fit_delay_utility: need at least two distinct delays");
  }

  const int bins = std::clamp<int>(options.bins, 2,
                                   static_cast<int>(samples.size()));
  const std::size_t per_bin =
      (samples.size() + static_cast<std::size_t>(bins) - 1) /
      static_cast<std::size_t>(bins);

  std::vector<double> bin_delay, bin_gain, bin_weight;
  for (std::size_t start = 0; start < samples.size(); start += per_bin) {
    const std::size_t end = std::min(start + per_bin, samples.size());
    double d = 0.0, g = 0.0;
    for (std::size_t k = start; k < end; ++k) {
      d += samples[k].delay;
      g += samples[k].gain;
    }
    const auto n = static_cast<double>(end - start);
    // Merge into the previous bin if the mean delay did not advance
    // (duplicated delays), keeping the abscissae strictly increasing.
    const double mean_delay = d / n;
    if (!bin_delay.empty() && mean_delay <= bin_delay.back()) {
      const double w = bin_weight.back() + n;
      bin_gain.back() = (bin_gain.back() * bin_weight.back() + g) / w;
      bin_weight.back() = w;
    } else {
      bin_delay.push_back(mean_delay);
      bin_gain.push_back(g / n);
      bin_weight.push_back(n);
    }
  }
  if (bin_delay.size() < 2) {
    throw std::invalid_argument(
        "fit_delay_utility: delays collapse into a single bin");
  }

  const auto monotone = isotonic_decreasing(bin_gain, bin_weight);
  std::vector<TabulatedUtility::Sample> points;
  points.reserve(monotone.size());
  for (std::size_t i = 0; i < monotone.size(); ++i) {
    points.push_back({bin_delay[i], monotone[i]});
  }
  return TabulatedUtility(std::move(points));
}

}  // namespace impatience::utility
