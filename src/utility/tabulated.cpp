#include <cmath>
#include <stdexcept>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

TabulatedUtility::TabulatedUtility(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  if (samples_.size() < 2) {
    throw std::invalid_argument("TabulatedUtility: need at least 2 samples");
  }
  if (samples_.front().t < 0.0) {
    throw std::invalid_argument("TabulatedUtility: sample times must be >= 0");
  }
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (!(samples_[i].t > samples_[i - 1].t)) {
      throw std::invalid_argument(
          "TabulatedUtility: sample times must be strictly increasing");
    }
    if (samples_[i].h > samples_[i - 1].h) {
      throw std::invalid_argument(
          "TabulatedUtility: h must be non-increasing");
    }
  }
}

double TabulatedUtility::value(double t) const {
  if (t <= samples_.front().t) return samples_.front().h;
  if (t >= samples_.back().t) return samples_.back().h;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (t <= samples_[i].t) {
      const Sample& a = samples_[i - 1];
      const Sample& b = samples_[i];
      const double w = (t - a.t) / (b.t - a.t);
      return a.h + w * (b.h - a.h);
    }
  }
  return samples_.back().h;
}

double TabulatedUtility::value_at_zero() const { return samples_.front().h; }

double TabulatedUtility::value_at_inf() const { return samples_.back().h; }

double TabulatedUtility::differential(double t) const {
  if (t <= samples_.front().t || t >= samples_.back().t) return 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (t <= samples_[i].t) {
      const Sample& a = samples_[i - 1];
      const Sample& b = samples_[i];
      return (a.h - b.h) / (b.t - a.t);
    }
  }
  return 0.0;
}

namespace {

/// g(x) = 1 - (1 + x) e^{-x} = int_0^x s e^{-s} ds, evaluated without the
/// catastrophic cancellation the literal form suffers for small x (both
/// terms ~1, result ~x^2/2). Series for small x, expm1 otherwise.
double one_minus_one_plus_x_exp(double x) {
  if (x < 1e-2) {
    // g(x) = x^2/2 - x^3/3 + x^4/8 - x^5/30 + O(x^6)
    return x * x * (0.5 + x * (-1.0 / 3.0 + x * (0.125 - x / 30.0)));
  }
  return -std::expm1(-x) - x * std::exp(-x);
}

}  // namespace

double TabulatedUtility::loss_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("TabulatedUtility: M > 0");
  // c is piecewise constant; integrate e^{-Mt} exactly per segment as
  // e^{-Ma} (1 - e^{-M(b-a)}) / M, with expm1 so small M stays accurate.
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    const double c = (a.h - b.h) / (b.t - a.t);
    if (c == 0.0) continue;
    total += c * std::exp(-M * a.t) * (-std::expm1(-M * (b.t - a.t))) / M;
  }
  return total;
}

double TabulatedUtility::time_weighted_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("TabulatedUtility: M > 0");
  // Shift each segment to the origin:
  //   int_a^b t e^{-Mt} dt
  //     = e^{-Ma} [ a (1 - e^{-x}) / M + g(x) / M^2 ],   x = M (b - a),
  // with g as above. The literal antiderivative difference cancels
  // 1/M^2-magnitude terms and loses ~6 digits already at M ~ 1e-6.
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    const double c = (a.h - b.h) / (b.t - a.t);
    if (c == 0.0) continue;
    const double x = M * (b.t - a.t);
    total += c * std::exp(-M * a.t) *
             (a.t * (-std::expm1(-x)) / M +
              one_minus_one_plus_x_exp(x) / (M * M));
  }
  return total;
}

std::string TabulatedUtility::name() const {
  return "tabulated(" + std::to_string(samples_.size()) + " pts)";
}

std::string TabulatedUtility::fingerprint() const {
  std::string out = "tabulated(";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i) out += ',';
    out += detail::format_param(samples_[i].t);
    out += ':';
    out += detail::format_param(samples_[i].h);
  }
  return out + ")";
}

std::unique_ptr<DelayUtility> TabulatedUtility::clone() const {
  return std::make_unique<TabulatedUtility>(*this);
}

}  // namespace impatience::utility
