#include <cmath>
#include <stdexcept>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

TabulatedUtility::TabulatedUtility(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  if (samples_.size() < 2) {
    throw std::invalid_argument("TabulatedUtility: need at least 2 samples");
  }
  if (samples_.front().t < 0.0) {
    throw std::invalid_argument("TabulatedUtility: sample times must be >= 0");
  }
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (!(samples_[i].t > samples_[i - 1].t)) {
      throw std::invalid_argument(
          "TabulatedUtility: sample times must be strictly increasing");
    }
    if (samples_[i].h > samples_[i - 1].h) {
      throw std::invalid_argument(
          "TabulatedUtility: h must be non-increasing");
    }
  }
}

double TabulatedUtility::value(double t) const {
  if (t <= samples_.front().t) return samples_.front().h;
  if (t >= samples_.back().t) return samples_.back().h;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (t <= samples_[i].t) {
      const Sample& a = samples_[i - 1];
      const Sample& b = samples_[i];
      const double w = (t - a.t) / (b.t - a.t);
      return a.h + w * (b.h - a.h);
    }
  }
  return samples_.back().h;
}

double TabulatedUtility::value_at_zero() const { return samples_.front().h; }

double TabulatedUtility::value_at_inf() const { return samples_.back().h; }

double TabulatedUtility::differential(double t) const {
  if (t <= samples_.front().t || t >= samples_.back().t) return 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (t <= samples_[i].t) {
      const Sample& a = samples_[i - 1];
      const Sample& b = samples_[i];
      return (a.h - b.h) / (b.t - a.t);
    }
  }
  return 0.0;
}

double TabulatedUtility::loss_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("TabulatedUtility: M > 0");
  // c is piecewise constant; integrate e^{-Mt} exactly per segment.
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    const double c = (a.h - b.h) / (b.t - a.t);
    if (c == 0.0) continue;
    total += c * (std::exp(-M * a.t) - std::exp(-M * b.t)) / M;
  }
  return total;
}

double TabulatedUtility::time_weighted_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("TabulatedUtility: M > 0");
  // int_a^b t e^{-Mt} dt = (a/M + 1/M^2) e^{-Ma} - (b/M + 1/M^2) e^{-Mb}
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    const double c = (a.h - b.h) / (b.t - a.t);
    if (c == 0.0) continue;
    const double ea = std::exp(-M * a.t);
    const double eb = std::exp(-M * b.t);
    total += c * ((a.t / M + 1.0 / (M * M)) * ea -
                  (b.t / M + 1.0 / (M * M)) * eb);
  }
  return total;
}

std::string TabulatedUtility::name() const {
  return "tabulated(" + std::to_string(samples_.size()) + " pts)";
}

std::unique_ptr<DelayUtility> TabulatedUtility::clone() const {
  return std::make_unique<TabulatedUtility>(*this);
}

}  // namespace impatience::utility
