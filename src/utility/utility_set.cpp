#include <stdexcept>
#include <string>
#include <unordered_map>

#include "impatience/utility/utility_set.hpp"

namespace impatience::utility {

UtilitySet::UtilitySet(std::vector<std::unique_ptr<DelayUtility>> utilities)
    : utilities_(std::move(utilities)) {
  if (utilities_.empty()) {
    throw std::invalid_argument("UtilitySet: need at least one item");
  }
  for (const auto& u : utilities_) {
    if (!u) {
      throw std::invalid_argument("UtilitySet: null utility");
    }
  }
}

UtilitySet::UtilitySet(const DelayUtility& utility, std::size_t num_items) {
  if (num_items == 0) {
    throw std::invalid_argument("UtilitySet: need at least one item");
  }
  utilities_.reserve(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    utilities_.push_back(utility.clone());
  }
}

UtilitySet::UtilitySet(const UtilitySet& other) {
  utilities_.reserve(other.utilities_.size());
  for (const auto& u : other.utilities_) {
    utilities_.push_back(u->clone());
  }
}

UtilitySet& UtilitySet::operator=(const UtilitySet& other) {
  if (this != &other) {
    UtilitySet copy(other);
    utilities_ = std::move(copy.utilities_);
  }
  return *this;
}

const DelayUtility& UtilitySet::at(std::size_t item) const {
  if (item >= utilities_.size()) {
    throw std::out_of_range("UtilitySet::at: item out of range");
  }
  return *utilities_[item];
}

std::vector<std::size_t> UtilitySet::duplicate_of() const {
  std::vector<std::size_t> canonical(utilities_.size());
  std::unordered_map<std::string, std::size_t> first_by_fingerprint;
  first_by_fingerprint.reserve(utilities_.size());
  for (std::size_t i = 0; i < utilities_.size(); ++i) {
    const auto [it, inserted] =
        first_by_fingerprint.try_emplace(utilities_[i]->fingerprint(), i);
    canonical[i] = it->second;
  }
  return canonical;
}

bool UtilitySet::all_bounded_at_zero() const {
  for (const auto& u : utilities_) {
    if (!u->bounded_at_zero()) return false;
  }
  return true;
}

}  // namespace impatience::utility
