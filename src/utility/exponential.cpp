#include <cmath>
#include <stdexcept>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

ExponentialUtility::ExponentialUtility(double nu) : nu_(nu) {
  if (!(nu > 0.0)) {
    throw std::invalid_argument("ExponentialUtility: nu must be > 0");
  }
}

double ExponentialUtility::value(double t) const {
  return std::exp(-nu_ * t);
}

double ExponentialUtility::differential(double t) const {
  return nu_ * std::exp(-nu_ * t);
}

double ExponentialUtility::loss_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("ExponentialUtility: M > 0");
  return nu_ / (nu_ + M);
}

double ExponentialUtility::time_weighted_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("ExponentialUtility: M > 0");
  return nu_ / ((nu_ + M) * (nu_ + M));
}

std::string ExponentialUtility::name() const {
  return "exp(nu=" + detail::format_param(nu_) + ")";
}

std::unique_ptr<DelayUtility> ExponentialUtility::clone() const {
  return std::make_unique<ExponentialUtility>(*this);
}

}  // namespace impatience::utility
