#include <cmath>
#include <stdexcept>

#include "impatience/utility/discrete.hpp"

namespace impatience::utility {

namespace {

void check_args(double p, double delta) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::domain_error("discrete model: requires 0 < p <= 1");
  }
  if (!(delta > 0.0)) {
    throw std::domain_error("discrete model: requires delta > 0");
  }
}

}  // namespace

double discrete_expected_gain(const DelayUtility& u, double p, double delta,
                              double tol) {
  check_args(p, delta);
  if (p == 1.0) return u.value(delta);

  double total = 0.0;
  double weight = p;             // p (1-p)^{k-1}
  double survivor = 1.0 - p;     // (1-p)^k, mass beyond k
  const double q = 1.0 - p;
  // Track |h| growth to bound the tail: once the remaining mass times a
  // conservative tail magnitude is below tol, stop. For monotone h the
  // tail of the series lies between survivor*h(inf-direction bounds).
  for (long k = 1; k < 100000000; ++k) {
    const double h = u.value(static_cast<double>(k) * delta);
    total += weight * h;
    // Tail bound: |sum_{j>k}| <= survivor * max(|h(k delta)|-ish growth).
    // For polynomially-growing |h| the geometric factor dominates; use a
    // safety factor on the current magnitude.
    const double tail_bound =
        survivor * (std::abs(h) + 1.0) * (2.0 / p);
    if (tail_bound < tol) break;
    weight *= q;
    survivor *= q;
  }
  return total;
}

double discrete_differential(const DelayUtility& u, long k, double delta) {
  if (k < 1 || !(delta > 0.0)) {
    throw std::domain_error("discrete_differential: requires k >= 1");
  }
  return u.value(static_cast<double>(k) * delta) -
         u.value(static_cast<double>(k + 1) * delta);
}

double discrete_loss(const DelayUtility& u, double p, double delta,
                     double tol) {
  check_args(p, delta);
  if (p == 1.0) return 0.0;
  // Direct summation of sum_{k>=1} (1-p)^k dc(k delta); Lemma 1's
  // identity E[h(delta K)] = h(delta) - discrete_loss is covered by the
  // test suite rather than assumed here.
  const double q = 1.0 - p;
  double survivor = q;  // (1-p)^k
  double total = 0.0;
  for (long k = 1; k < 100000000; ++k) {
    const double dc = discrete_differential(u, k, delta);
    total += survivor * dc;
    const double tail_bound = survivor * q * (std::abs(dc) + 1.0) * (2.0 / p);
    if (tail_bound < tol) break;
    survivor *= q;
  }
  return total;
}

}  // namespace impatience::utility
