#include <cmath>
#include <stdexcept>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

StepUtility::StepUtility(double tau) : tau_(tau) {
  if (!(tau > 0.0)) {
    throw std::invalid_argument("StepUtility: tau must be > 0");
  }
}

double StepUtility::value(double t) const { return t <= tau_ ? 1.0 : 0.0; }

double StepUtility::loss_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("StepUtility: requires M > 0");
  return std::exp(-M * tau_);
}

double StepUtility::time_weighted_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("StepUtility: requires M > 0");
  return tau_ * std::exp(-M * tau_);
}

std::string StepUtility::name() const {
  return "step(tau=" + detail::format_param(tau_) + ")";
}

std::unique_ptr<DelayUtility> StepUtility::clone() const {
  return std::make_unique<StepUtility>(*this);
}

}  // namespace impatience::utility
