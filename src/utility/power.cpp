#include <cmath>
#include <limits>
#include <stdexcept>

#include "impatience/util/math.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::utility {

PowerUtility::PowerUtility(double alpha) : alpha_(alpha) {
  if (!(alpha < 2.0)) {
    throw std::invalid_argument(
        "PowerUtility: requires alpha < 2 (T(M) diverges otherwise)");
  }
  if (alpha == 1.0) {
    throw std::invalid_argument(
        "PowerUtility: alpha = 1 is the NegLogUtility limit; use that class");
  }
}

double PowerUtility::value(double t) const {
  return std::pow(t, 1.0 - alpha_) / (alpha_ - 1.0);
}

double PowerUtility::value_at_zero() const {
  // 1 < alpha < 2: t^{1-alpha} -> inf; alpha < 1: -> 0.
  return alpha_ > 1.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

double PowerUtility::value_at_inf() const {
  return alpha_ > 1.0 ? 0.0 : -std::numeric_limits<double>::infinity();
}

double PowerUtility::differential(double t) const {
  return std::pow(t, -alpha_);
}

double PowerUtility::loss_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("PowerUtility: M > 0");
  if (alpha_ >= 1.0) {
    // int e^{-Mt} t^{-alpha} dt diverges at 0; gains use expected_gain().
    return std::numeric_limits<double>::infinity();
  }
  return util::gamma_fn(1.0 - alpha_) * std::pow(M, alpha_ - 1.0);
}

double PowerUtility::time_weighted_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("PowerUtility: M > 0");
  return util::gamma_fn(2.0 - alpha_) * std::pow(M, alpha_ - 2.0);
}

double PowerUtility::expected_gain(double M) const {
  if (!(M > 0.0)) throw std::domain_error("PowerUtility: M > 0");
  // E[h(Y)] = Gamma(2-alpha)/(alpha-1) * M^{alpha-1}; valid in both
  // regimes (negative for alpha < 1, positive for 1 < alpha < 2).
  return util::gamma_fn(2.0 - alpha_) / (alpha_ - 1.0) *
         std::pow(M, alpha_ - 1.0);
}

std::string PowerUtility::name() const {
  return "power(alpha=" + detail::format_param(alpha_) + ")";
}

std::unique_ptr<DelayUtility> PowerUtility::clone() const {
  return std::make_unique<PowerUtility>(*this);
}

}  // namespace impatience::utility
