#include "impatience/utility/reaction.hpp"

#include <algorithm>
#include <stdexcept>

namespace impatience::utility {

ReactionFunction::ReactionFunction(const DelayUtility& utility, double mu,
                                   double num_servers, double scale)
    : utility_(utility.clone()),
      mu_(mu),
      num_servers_(num_servers),
      scale_(scale) {
  if (!(mu > 0.0) || !(num_servers > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument(
        "ReactionFunction: mu, |S| and scale must be > 0");
  }
}

ReactionFunction::ReactionFunction(const ReactionFunction& other)
    : utility_(other.utility_->clone()),
      mu_(other.mu_),
      num_servers_(other.num_servers_),
      scale_(other.scale_) {}

ReactionFunction& ReactionFunction::operator=(const ReactionFunction& other) {
  if (this != &other) {
    utility_ = other.utility_->clone();
    mu_ = other.mu_;
    num_servers_ = other.num_servers_;
    scale_ = other.scale_;
  }
  return *this;
}

double ReactionFunction::operator()(double y) const {
  if (!(y > 0.0)) {
    throw std::domain_error("ReactionFunction: query count must be > 0");
  }
  return scale_ * psi(*utility_, mu_, num_servers_, y);
}

std::int64_t ReactionFunction::replicas(double y, util::Rng& rng) const {
  const double v = (*this)(y);
  return std::max<std::int64_t>(0, rng.stochastic_round(v));
}

}  // namespace impatience::utility
