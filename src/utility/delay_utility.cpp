#include "impatience/utility/delay_utility.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "impatience/util/math.hpp"

namespace impatience::utility {

namespace detail {

std::string format_param(double x) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), x);
  return std::string(buf, res.ptr);
}

}  // namespace detail

std::string DelayUtility::fingerprint() const { return name(); }

namespace {
void require_positive_rate(double M) {
  if (!(M > 0.0)) {
    throw std::domain_error("delay-utility transform: requires M > 0");
  }
}
}  // namespace

double DelayUtility::loss_transform(double M) const {
  require_positive_rate(M);
  // Lambda (not std::function) so the templated quadrature inlines the
  // integrand; only the differential() call stays virtual.
  return util::integrate_to_inf(
      [this, M](double t) { return std::exp(-M * t) * differential(t); });
}

double DelayUtility::time_weighted_transform(double M) const {
  require_positive_rate(M);
  return util::integrate_to_inf(
      [this, M](double t) { return t * std::exp(-M * t) * differential(t); });
}

double DelayUtility::expected_gain(double M) const {
  require_positive_rate(M);
  const double h0 = value_at_zero();
  if (!std::isfinite(h0)) {
    // Families with unbounded h(0+) must provide the direct closed form.
    throw std::logic_error(
        "expected_gain: unbounded h(0+) requires an override (" + name() +
        ")");
  }
  return h0 - loss_transform(M);
}

bool DelayUtility::bounded_at_zero() const {
  return std::isfinite(value_at_zero());
}

double phi(const DelayUtility& u, double mu, double x) {
  if (!(mu > 0.0) || !(x > 0.0)) {
    throw std::domain_error("phi: requires mu > 0 and x > 0");
  }
  return mu * u.time_weighted_transform(mu * x);
}

double psi(const DelayUtility& u, double mu, double num_servers, double y) {
  if (!(num_servers > 0.0) || !(y > 0.0)) {
    throw std::domain_error("psi: requires |S| > 0 and y > 0");
  }
  const double x = num_servers / y;
  return x * phi(u, mu, x);
}

}  // namespace impatience::utility
