#include "impatience/utility/factory.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

namespace {

std::map<std::string, double> parse_params(const std::string& body) {
  std::map<std::string, double> out;
  std::stringstream ss(body);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("utility spec: expected key=value in '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    try {
      std::size_t used = 0;
      const double num = std::stod(val, &used);
      if (used != val.size()) throw std::invalid_argument(val);
      out[key] = num;
    } catch (const std::exception&) {
      throw std::invalid_argument("utility spec: bad number '" + val + "'");
    }
  }
  return out;
}

double take(std::map<std::string, double>& params, const std::string& key,
            double fallback) {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  const double v = it->second;
  params.erase(it);
  return v;
}

void expect_empty(const std::map<std::string, double>& params,
                  const std::string& family) {
  if (!params.empty()) {
    throw std::invalid_argument("utility spec: unknown parameter '" +
                                params.begin()->first + "' for " + family);
  }
}

}  // namespace

std::unique_ptr<DelayUtility> make_utility(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  auto params = colon == std::string::npos
                    ? std::map<std::string, double>{}
                    : parse_params(spec.substr(colon + 1));

  if (family == "step") {
    const double tau = take(params, "tau", 1.0);
    expect_empty(params, family);
    return std::make_unique<StepUtility>(tau);
  }
  if (family == "exp") {
    const double nu = take(params, "nu", 1.0);
    expect_empty(params, family);
    return std::make_unique<ExponentialUtility>(nu);
  }
  if (family == "power") {
    const double alpha = take(params, "alpha", 0.0);
    expect_empty(params, family);
    return std::make_unique<PowerUtility>(alpha);
  }
  if (family == "neglog") {
    expect_empty(params, family);
    return std::make_unique<NegLogUtility>();
  }
  throw std::invalid_argument("utility spec: unknown family '" + family +
                              "'");
}

}  // namespace impatience::utility
