#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "impatience/utility/cached_transform.hpp"

namespace impatience::utility {

namespace detail {

/// One tabulated transform: sorted log-M abscissae + values. A column
/// that failed to tabulate (threw, or hit a non-finite value) stays
/// `cached = false` and every query delegates to the base utility.
struct TransformColumn {
  bool cached = false;
  std::vector<double> logm;
  std::vector<double> value;
};

struct TransformTable {
  double log_min = 0.0;
  double log_max = 0.0;
  TransformColumn loss;
  TransformColumn time_weighted;
  TransformColumn gain;
};

namespace {

/// Bisect [lx, rx] until linear interpolation reproduces the midpoint to
/// `tol`, appending interior points in ascending order. Midpoints are
/// always kept (they are already paid for), so an accepted interval's
/// halves interpolate with roughly a quarter of the accepted deviation.
template <typename Eval>
bool refine(Eval& eval, double lx, double lv, double rx, double rv,
            double tol, int depth, std::vector<double>& xs,
            std::vector<double>& vs) {
  const double mx = 0.5 * (lx + rx);
  const double mv = eval(std::exp(mx));
  if (!std::isfinite(mv)) return false;
  const double interp = 0.5 * (lv + rv);
  if (depth > 0 && std::abs(mv - interp) > tol) {
    if (!refine(eval, lx, lv, mx, mv, tol, depth - 1, xs, vs)) return false;
    xs.push_back(mx);
    vs.push_back(mv);
    return refine(eval, mx, mv, rx, rv, tol, depth - 1, xs, vs);
  }
  xs.push_back(mx);
  vs.push_back(mv);
  return true;
}

template <typename Eval>
void build_column(Eval eval, const CachedTransformOptions& opts,
                  double log_min, double log_max, TransformColumn& col) {
  const int seeds = std::max(opts.initial_points, 2);
  // Half the requested bound drives refinement; together with the kept
  // midpoints the lookup error lands well inside abs_error.
  const double tol = 0.5 * opts.abs_error;
  std::vector<double> xs;
  std::vector<double> vs;
  try {
    double lx = log_min;
    double lv = eval(std::exp(lx));
    if (!std::isfinite(lv)) return;
    xs.push_back(lx);
    vs.push_back(lv);
    for (int i = 1; i < seeds; ++i) {
      const double rx =
          log_min + (log_max - log_min) * i / static_cast<double>(seeds - 1);
      const double rv = eval(std::exp(rx));
      if (!std::isfinite(rv)) return;
      if (!refine(eval, lx, lv, rx, rv, tol, opts.max_refine_depth, xs, vs)) {
        return;
      }
      xs.push_back(rx);
      vs.push_back(rv);
      lx = rx;
      lv = rv;
    }
  } catch (...) {
    return;  // transform undefined somewhere on the range: delegate
  }
  col.cached = true;
  col.logm = std::move(xs);
  col.value = std::move(vs);
}

/// Interpolate `col` at M, or fall back to the exact transform when the
/// column is uncached or M lies outside the tabulated range.
template <typename Exact>
double lookup(const TransformColumn& col, const TransformTable& table,
              double M, Exact&& exact) {
  if (!col.cached || !(M > 0.0) || !std::isfinite(M)) return exact(M);
  const double x = std::log(M);
  if (x < table.log_min || x > table.log_max) return exact(M);
  const auto it =
      std::upper_bound(col.logm.begin(), col.logm.end(), x);
  const std::size_t hi = std::clamp<std::size_t>(
      static_cast<std::size_t>(it - col.logm.begin()), 1,
      col.logm.size() - 1);
  const double x0 = col.logm[hi - 1];
  const double x1 = col.logm[hi];
  const double w = (x - x0) / (x1 - x0);
  return col.value[hi - 1] + w * (col.value[hi] - col.value[hi - 1]);
}

}  // namespace

}  // namespace detail

CachedTransform::CachedTransform(const DelayUtility& base,
                                 const CachedTransformOptions& options)
    : base_(base.clone()), options_(options) {
  if (!(options.m_min > 0.0) || !(options.m_max > options.m_min)) {
    throw std::invalid_argument("CachedTransform: need 0 < m_min < m_max");
  }
  if (!(options.abs_error > 0.0)) {
    throw std::invalid_argument("CachedTransform: abs_error must be > 0");
  }
  auto table = std::make_shared<detail::TransformTable>();
  table->log_min = std::log(options.m_min);
  table->log_max = std::log(options.m_max);
  const DelayUtility& u = *base_;
  detail::build_column([&u](double M) { return u.loss_transform(M); },
                       options, table->log_min, table->log_max, table->loss);
  detail::build_column(
      [&u](double M) { return u.time_weighted_transform(M); }, options,
      table->log_min, table->log_max, table->time_weighted);
  detail::build_column([&u](double M) { return u.expected_gain(M); },
                       options, table->log_min, table->log_max, table->gain);
  table_ = std::move(table);
}

CachedTransform::CachedTransform(const CachedTransform& other)
    : base_(other.base_->clone()),
      options_(other.options_),
      table_(other.table_) {}

CachedTransform::~CachedTransform() = default;

double CachedTransform::value(double t) const { return base_->value(t); }
double CachedTransform::value_at_zero() const {
  return base_->value_at_zero();
}
double CachedTransform::value_at_inf() const { return base_->value_at_inf(); }
double CachedTransform::differential(double t) const {
  return base_->differential(t);
}

double CachedTransform::loss_transform(double M) const {
  return detail::lookup(table_->loss, *table_, M,
                        [this](double m) { return base_->loss_transform(m); });
}

double CachedTransform::time_weighted_transform(double M) const {
  return detail::lookup(
      table_->time_weighted, *table_, M,
      [this](double m) { return base_->time_weighted_transform(m); });
}

double CachedTransform::expected_gain(double M) const {
  return detail::lookup(table_->gain, *table_, M,
                        [this](double m) { return base_->expected_gain(m); });
}

std::string CachedTransform::name() const {
  return "cached(" + base_->name() + ")";
}

std::string CachedTransform::fingerprint() const {
  return "cached(" + base_->fingerprint() + ";m=[" +
         detail::format_param(options_.m_min) + "," +
         detail::format_param(options_.m_max) +
         "],err=" + detail::format_param(options_.abs_error) +
         ",seed=" + std::to_string(options_.initial_points) +
         ",depth=" + std::to_string(options_.max_refine_depth) + ")";
}

std::unique_ptr<DelayUtility> CachedTransform::clone() const {
  return std::unique_ptr<DelayUtility>(new CachedTransform(*this));
}

std::size_t CachedTransform::table_points() const noexcept {
  std::size_t total = 0;
  for (const auto* col :
       {&table_->loss, &table_->time_weighted, &table_->gain}) {
    if (col->cached) total += col->logm.size();
  }
  return total;
}

UtilitySet make_cached(const UtilitySet& utilities,
                       const CachedTransformOptions& options) {
  const std::vector<std::size_t> canon = utilities.duplicate_of();
  std::vector<std::unique_ptr<DelayUtility>> canonical(utilities.size());
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    if (canon[i] == i) {
      canonical[i] = std::make_unique<CachedTransform>(utilities[i], options);
    }
  }
  std::vector<std::unique_ptr<DelayUtility>> wrapped;
  wrapped.reserve(utilities.size());
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    wrapped.push_back(canonical[canon[i]]->clone());
  }
  return UtilitySet(std::move(wrapped));
}

}  // namespace impatience::utility
