#include <cmath>
#include <stdexcept>

#include "impatience/utility/families.hpp"

namespace impatience::utility {

MixtureUtility::MixtureUtility(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("MixtureUtility: empty component list");
  }
  for (const auto& c : components_) {
    if (!(c.weight > 0.0) || !c.utility) {
      throw std::invalid_argument(
          "MixtureUtility: weights must be > 0 and utilities non-null");
    }
  }
}

MixtureUtility::MixtureUtility(const MixtureUtility& other) {
  components_.reserve(other.components_.size());
  for (const auto& c : other.components_) {
    components_.push_back({c.weight, c.utility->clone()});
  }
}

double MixtureUtility::value(double t) const {
  double total = 0.0;
  for (const auto& c : components_) total += c.weight * c.utility->value(t);
  return total;
}

double MixtureUtility::value_at_zero() const {
  double total = 0.0;
  for (const auto& c : components_) {
    total += c.weight * c.utility->value_at_zero();
  }
  return total;
}

double MixtureUtility::value_at_inf() const {
  double total = 0.0;
  for (const auto& c : components_) {
    total += c.weight * c.utility->value_at_inf();
  }
  return total;
}

double MixtureUtility::differential(double t) const {
  double total = 0.0;
  for (const auto& c : components_) {
    total += c.weight * c.utility->differential(t);
  }
  return total;
}

double MixtureUtility::loss_transform(double M) const {
  double total = 0.0;
  for (const auto& c : components_) {
    total += c.weight * c.utility->loss_transform(M);
  }
  return total;
}

double MixtureUtility::time_weighted_transform(double M) const {
  double total = 0.0;
  for (const auto& c : components_) {
    total += c.weight * c.utility->time_weighted_transform(M);
  }
  return total;
}

double MixtureUtility::expected_gain(double M) const {
  double total = 0.0;
  for (const auto& c : components_) {
    total += c.weight * c.utility->expected_gain(M);
  }
  return total;
}

std::string MixtureUtility::name() const {
  std::string out = "mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) out += '+';
    out += detail::format_param(components_[i].weight) + "*" +
           components_[i].utility->name();
  }
  return out + ")";
}

std::string MixtureUtility::fingerprint() const {
  std::string out = "mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) out += '+';
    out += detail::format_param(components_[i].weight) + "*" +
           components_[i].utility->fingerprint();
  }
  return out + ")";
}

std::unique_ptr<DelayUtility> MixtureUtility::clone() const {
  return std::make_unique<MixtureUtility>(*this);
}

}  // namespace impatience::utility
