#include <cmath>
#include <limits>
#include <stdexcept>

#include "impatience/util/math.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::utility {

double NegLogUtility::value(double t) const { return -std::log(t); }

double NegLogUtility::value_at_zero() const {
  return std::numeric_limits<double>::infinity();
}

double NegLogUtility::value_at_inf() const {
  return -std::numeric_limits<double>::infinity();
}

double NegLogUtility::differential(double t) const { return 1.0 / t; }

double NegLogUtility::loss_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("NegLogUtility: M > 0");
  // int e^{-Mt}/t dt diverges at 0; gains use expected_gain().
  return std::numeric_limits<double>::infinity();
}

double NegLogUtility::time_weighted_transform(double M) const {
  if (!(M > 0.0)) throw std::domain_error("NegLogUtility: M > 0");
  return 1.0 / M;
}

double NegLogUtility::expected_gain(double M) const {
  if (!(M > 0.0)) throw std::domain_error("NegLogUtility: M > 0");
  // E[-ln Y] for Y ~ Exp(M) is ln M + EulerGamma.
  return std::log(M) + util::kEulerGamma;
}

std::string NegLogUtility::name() const { return "neglog"; }

std::unique_ptr<DelayUtility> NegLogUtility::clone() const {
  return std::make_unique<NegLogUtility>(*this);
}

}  // namespace impatience::utility
