#include "impatience/engine/watchdog.hpp"

#include <algorithm>

namespace impatience::engine {

namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

DeadlineWatchdog::DeadlineWatchdog(double deadline_seconds)
    : default_deadline_(to_duration(deadline_seconds)) {
  thread_ = std::thread([this] { watch(); });
}

DeadlineWatchdog::~DeadlineWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::size_t DeadlineWatchdog::arm(util::CancellationToken* token,
                                  util::CancelReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  return arm_locked(token, default_deadline_, reason);
}

std::size_t DeadlineWatchdog::arm(util::CancellationToken* token,
                                  double deadline_seconds,
                                  util::CancelReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  return arm_locked(token, to_duration(deadline_seconds), reason);
}

std::size_t DeadlineWatchdog::arm_locked(util::CancellationToken* token,
                                         Clock::duration deadline,
                                         util::CancelReason reason) {
  const auto expires = Clock::now() + deadline;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].token) {
      slots_[i] = {token, expires, reason};
      cv_.notify_all();
      return i;
    }
  }
  slots_.push_back({token, expires, reason});
  cv_.notify_all();
  return slots_.size() - 1;
}

void DeadlineWatchdog::disarm(std::size_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[slot].token = nullptr;
}

void DeadlineWatchdog::watch() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    auto next = Clock::time_point::max();
    for (Slot& slot : slots_) {
      if (!slot.token) continue;
      if (slot.expires <= Clock::now()) {
        slot.token->cancel(slot.reason);
        slot.token = nullptr;  // fire once; the worker still disarms
      } else {
        next = std::min(next, slot.expires);
      }
    }
    if (next == Clock::time_point::max()) {
      cv_.wait(lock);  // nothing armed; woken by arm() or shutdown
    } else {
      cv_.wait_until(lock, next);
    }
  }
}

}  // namespace impatience::engine
