#include "impatience/engine/resume.hpp"

#include <bit>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "impatience/util/errors.hpp"

namespace impatience::engine {

namespace {

/// Undoes json_escape for the simple escapes the writer emits.
std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        // The writer only emits \u00XX for control bytes.
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(s.substr(i + 1, 4)).c_str(), nullptr,
                           16));
          i += 4;
        }
        break;
      default: out += s[i];
    }
  }
  return out;
}

/// Extracts `"key": "value"` from a single manifest line.
bool find_string_field(const std::string& line, const std::string& field,
                       std::string& out) {
  const std::string needle = '"' + field + "\": \"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  std::string raw;
  while (i < line.size()) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      raw += line[i];
      raw += line[i + 1];
      i += 2;
      continue;
    }
    if (line[i] == '"') break;
    raw += line[i++];
  }
  if (i >= line.size()) return false;  // unterminated
  out = json_unescape(raw);
  return true;
}

/// Extracts the raw token after `"key": ` (number, true/false, null).
bool find_raw_field(const std::string& line, const std::string& field,
                    std::string& out) {
  const std::string needle = '"' + field + "\": ";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  std::string token;
  while (i < line.size() && line[i] != ',' && line[i] != '}') {
    token += line[i++];
  }
  out = token;
  return !token.empty();
}

}  // namespace

std::string ResumeSet::key(std::string_view scenario, std::string_view policy,
                           int trial, double x, std::uint64_t seed) {
  std::ostringstream os;
  // x joins by bit pattern: resume must not depend on decimal formatting.
  os << scenario << '\x1f' << policy << '\x1f' << trial << '\x1f'
     << std::bit_cast<std::uint64_t>(x) << '\x1f' << seed;
  return os.str();
}

void ResumeSet::add(std::string_view scenario, std::string_view policy,
                    int trial, double x, std::uint64_t seed, double value) {
  done_[key(scenario, policy, trial, x, seed)] = value;
}

const double* ResumeSet::find(const JobSpec& spec) const {
  const auto it =
      done_.find(key(spec.scenario, spec.policy, spec.trial, spec.x,
                     spec.seed));
  return it == done_.end() ? nullptr : &it->second;
}

ResumeSet load_resume_set(const std::string& manifest_path) {
  std::ifstream in(manifest_path);
  if (!in) {
    throw util::IoError("load_resume_set: cannot open " + manifest_path);
  }
  ResumeSet set;
  std::string line;
  while (std::getline(in, line)) {
    // Job records are the only lines carrying both a seed and an ok flag
    // (the series block has neither); write_manifest emits one per line.
    std::string scenario, policy, trial_tok, x_tok, seed_tok, ok_tok,
        value_tok;
    if (!find_raw_field(line, "seed", seed_tok)) continue;
    if (!find_raw_field(line, "ok", ok_tok) || ok_tok != "true") continue;
    if (!find_string_field(line, "scenario", scenario)) continue;
    if (!find_string_field(line, "policy", policy)) continue;
    if (!find_raw_field(line, "trial", trial_tok)) continue;
    if (!find_raw_field(line, "x", x_tok)) continue;
    if (!find_raw_field(line, "value", value_tok)) continue;
    if (value_tok == "null") continue;  // non-finite value: re-run it
    set.add(scenario, policy, std::atoi(trial_tok.c_str()),
            std::strtod(x_tok.c_str(), nullptr),
            std::strtoull(seed_tok.c_str(), nullptr, 10),
            std::strtod(value_tok.c_str(), nullptr));
  }
  return set;
}

}  // namespace impatience::engine
