#include "impatience/engine/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "impatience/engine/thread_pool.hpp"

namespace impatience::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

JobResult execute(const JobSpec& spec) {
  JobResult result;
  const auto start = Clock::now();
  try {
    util::Rng rng(spec.seed);
    result.value = spec.run(rng);
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  result.wall_seconds = seconds_since(start);
  return result;
}

}  // namespace

void RunReport::merge(RunReport&& other) {
  if (jobs.empty()) {
    root_seed = other.root_seed;
    threads = other.threads;
  }
  wall_seconds += other.wall_seconds;
  failed += other.failed;
  jobs.insert(jobs.end(), std::make_move_iterator(other.jobs.begin()),
              std::make_move_iterator(other.jobs.end()));
  aggregate.merge(other.aggregate);
}

Runner::Runner(RunnerOptions options)
    : options_(options),
      threads_(ThreadPool::resolve_threads(options.threads)) {}

RunReport Runner::run(std::vector<JobSpec> jobs,
                      std::uint64_t root_seed) const {
  RunReport report;
  report.root_seed = root_seed;
  report.threads = static_cast<int>(threads_);

  const std::size_t n = jobs.size();
  std::vector<JobResult> results(n);
  std::atomic<std::size_t> done{0};
  const auto start = Clock::now();

  {
    ThreadPool pool(threads_);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        results[i] = execute(jobs[i]);
        done.fetch_add(1, std::memory_order_release);
      });
    }
    if (options_.progress) {
      const auto interval = std::chrono::milliseconds(static_cast<long>(
          options_.progress_interval_seconds > 0.0
              ? options_.progress_interval_seconds * 1000.0
              : 1000.0));
      while (!pool.wait_idle_for(interval)) {
        const std::size_t d = done.load(std::memory_order_acquire);
        const double elapsed = seconds_since(start);
        const double eta =
            d > 0 ? elapsed * static_cast<double>(n - d) /
                        static_cast<double>(d)
                  : 0.0;
        std::fprintf(stderr,
                     "[engine] %zu/%zu jobs done, elapsed %.1fs, eta %.1fs\n",
                     d, n, elapsed, eta);
      }
    }
    pool.wait_idle();
  }  // pool joins here; every result slot is written

  report.wall_seconds = seconds_since(start);

  // Merge-on-join: single-threaded from here, in submission order, so the
  // aggregate (and therefore every band) is independent of scheduling.
  report.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    JobSpec& spec = jobs[i];
    JobResult& result = results[i];
    if (result.ok) {
      report.aggregate.add(spec.policy, spec.x, result.value);
    } else {
      ++report.failed;
      std::fprintf(stderr, "[engine] job failed: %s/%s trial %d (x=%g): %s\n",
                   spec.scenario.c_str(), spec.policy.c_str(), spec.trial,
                   spec.x, result.error.c_str());
    }
    report.jobs.push_back(JobRecord{std::move(spec.scenario),
                                    std::move(spec.policy), spec.trial,
                                    spec.x, spec.seed, std::move(result)});
  }
  if (options_.progress) {
    std::fprintf(stderr,
                 "[engine] %zu jobs (%zu failed) on %u threads in %.2fs\n", n,
                 report.failed, threads_, report.wall_seconds);
  }
  return report;
}

}  // namespace impatience::engine
