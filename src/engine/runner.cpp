#include "impatience/engine/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "impatience/engine/seeding.hpp"
#include "impatience/engine/thread_pool.hpp"
#include "impatience/engine/watchdog.hpp"
#include "impatience/util/backoff.hpp"

namespace impatience::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic exponential backoff: base * 2^(attempt-1), capped, with
/// +/-50% jitter drawn from a (job seed, attempt) stream — reproducible,
/// yet decorrelated across the jobs of a batch. The delay computation is
/// the shared util::backoff_delay helper (the service-layer feeder uses
/// the same schedule); extracting it changed no engine schedule.
void backoff_sleep(const JobSpec& spec, int attempt,
                   const RunnerOptions& options) {
  const double delay = util::backoff_delay(
      {options.backoff_base_seconds, options.backoff_max_seconds}, spec.seed,
      attempt);
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

JobResult execute(const JobSpec& spec, const RunnerOptions& options,
                  DeadlineWatchdog* watchdog) {
  JobResult result;
  const auto start = Clock::now();
  const int max_attempts = std::max(1, options.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) backoff_sleep(spec, attempt - 1, options);
    result.attempts = attempt;

    util::CancellationToken token;
    std::size_t slot = 0;
    if (watchdog) slot = watchdog->arm(&token);

    bool ok = false;
    double value = 0.0;
    try {
      // Reseeded per attempt: a retried success returns the exact value a
      // first-try success would have.
      util::Rng rng(spec.seed);
      value = spec.run_cancellable ? spec.run_cancellable(rng, token)
                                   : spec.run(rng);
      ok = true;
    } catch (const std::exception& e) {
      result.error = e.what();
      result.error_kind = classify_exception(e);
    } catch (...) {
      result.error = "unknown exception";
      result.error_kind = ErrorKind::job_exception;
    }
    if (watchdog) watchdog->disarm(slot);

    if (ok && token.cancelled()) {
      // The cancellation fired while the attempt limped home: honor it
      // anyway, with the token's reason deciding the kind (deadline ->
      // timeout, graceful service-mode stop -> shutdown).
      ok = false;
      result.error_kind = error_kind_from_cancel(token.reason());
      result.error = result.error_kind == ErrorKind::shutdown
                         ? "job cancelled by shutdown"
                         : "job deadline exceeded";
    }
    if (ok) {
      result.ok = true;
      result.value = value;
      result.error.clear();
      result.error_kind = ErrorKind::none;
      break;
    }
  }
  result.quarantined = !result.ok;
  result.wall_seconds = seconds_since(start);
  return result;
}

}  // namespace

void RunReport::merge(RunReport&& other) {
  if (jobs.empty()) {
    root_seed = other.root_seed;
    threads = other.threads;
  }
  wall_seconds += other.wall_seconds;
  failed += other.failed;
  quarantined += other.quarantined;
  resumed += other.resumed;
  jobs.insert(jobs.end(), std::make_move_iterator(other.jobs.begin()),
              std::make_move_iterator(other.jobs.end()));
  aggregate.merge(other.aggregate);
}

Runner::Runner(RunnerOptions options)
    : options_(options),
      threads_(ThreadPool::resolve_threads(options.threads)) {}

RunReport Runner::run(std::vector<JobSpec> jobs, std::uint64_t root_seed,
                      const ResumeSet* resume) const {
  RunReport report;
  report.root_seed = root_seed;
  report.threads = static_cast<int>(threads_);

  const std::size_t n = jobs.size();
  std::vector<JobResult> results(n);
  std::atomic<std::size_t> done{0};
  const auto start = Clock::now();

  // Jobs a prior manifest already completed replay their recorded value
  // without executing (determinism makes both identical).
  std::vector<char> skip(n, 0);
  if (resume && !resume->empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (const double* value = resume->find(jobs[i])) {
        results[i].ok = true;
        results[i].value = *value;
        results[i].resumed = true;
        skip[i] = 1;
      }
    }
  }

  std::unique_ptr<DeadlineWatchdog> watchdog;
  if (options_.job_deadline_seconds > 0.0) {
    watchdog = std::make_unique<DeadlineWatchdog>(
        options_.job_deadline_seconds);
  }

  {
    ThreadPool pool(threads_);
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i]) {
        done.fetch_add(1, std::memory_order_release);
        continue;
      }
      pool.submit([&, i] {
        results[i] = execute(jobs[i], options_, watchdog.get());
        done.fetch_add(1, std::memory_order_release);
      });
    }
    if (options_.progress) {
      const auto interval = std::chrono::milliseconds(static_cast<long>(
          options_.progress_interval_seconds > 0.0
              ? options_.progress_interval_seconds * 1000.0
              : 1000.0));
      while (!pool.wait_idle_for(interval)) {
        const std::size_t d = done.load(std::memory_order_acquire);
        const double elapsed = seconds_since(start);
        const double eta =
            d > 0 ? elapsed * static_cast<double>(n - d) /
                        static_cast<double>(d)
                  : 0.0;
        std::fprintf(stderr,
                     "[engine] %zu/%zu jobs done, elapsed %.1fs, eta %.1fs\n",
                     d, n, elapsed, eta);
      }
    }
    pool.wait_idle();
  }  // pool joins here; every result slot is written
  watchdog.reset();

  report.wall_seconds = seconds_since(start);

  // Merge-on-join: single-threaded from here, in submission order, so the
  // aggregate (and therefore every band) is independent of scheduling.
  report.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    JobSpec& spec = jobs[i];
    JobResult& result = results[i];
    if (result.ok) {
      report.aggregate.add(spec.policy, spec.x, result.value);
      if (result.resumed) ++report.resumed;
    } else {
      ++report.failed;
      if (result.quarantined) ++report.quarantined;
      std::fprintf(
          stderr,
          "[engine] job failed: %s/%s trial %d (x=%g) after %d attempt%s "
          "[%s]: %s\n",
          spec.scenario.c_str(), spec.policy.c_str(), spec.trial, spec.x,
          result.attempts, result.attempts == 1 ? "" : "s",
          to_string(result.error_kind), result.error.c_str());
    }
    report.jobs.push_back(JobRecord{std::move(spec.scenario),
                                    std::move(spec.policy), spec.trial,
                                    spec.x, spec.seed, std::move(result)});
  }
  if (options_.progress) {
    std::fprintf(
        stderr,
        "[engine] %zu jobs (%zu failed, %zu quarantined, %zu resumed) on "
        "%u threads in %.2fs\n",
        n, report.failed, report.quarantined, report.resumed, threads_,
        report.wall_seconds);
  }
  return report;
}

}  // namespace impatience::engine
