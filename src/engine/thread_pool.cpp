#include "impatience/engine/thread_pool.hpp"

#include <utility>

namespace impatience::engine {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return idle_locked(); });
}

bool ThreadPool::wait_idle_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, timeout, [this] { return idle_locked(); });
}

unsigned ThreadPool::resolve_threads(int requested) noexcept {
  if (requested >= 1) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1u;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (idle_locked()) idle_cv_.notify_all();
    }
  }
}

}  // namespace impatience::engine
