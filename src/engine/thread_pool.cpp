#include "impatience/engine/thread_pool.hpp"

#include <utility>

namespace impatience::engine {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return idle_locked(); });
}

bool ThreadPool::wait_idle_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, timeout, [this] { return idle_locked(); });
}

unsigned ThreadPool::resolve_threads(int requested) noexcept {
  if (requested >= 1) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1u;
}

ForkJoinTeam::ForkJoinTeam(unsigned num_workers) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ForkJoinTeam::~ForkJoinTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ForkJoinTeam::run(const std::function<void(unsigned)>& job) {
  job_ = &job;
  done_.store(0, std::memory_order_relaxed);
  // The release bump publishes job_ (and everything the caller wrote
  // before run()) to workers, which acquire-load epoch_.
  epoch_.fetch_add(1, std::memory_order_release);
  // The empty critical section orders the bump before any worker can
  // fall asleep: a worker deciding to park holds mu_ while re-checking
  // epoch_, so it either sees the bump or sleeps before this lock —
  // and then the notify reaches it. (A lock-free "anyone parked?" flag
  // here would be a store-buffering race — the classic lost wakeup.)
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
  job(0);
  // Join: worker shares are the same size as ours, so they finish at
  // about the same time — spin on the done counter instead of taking a
  // condvar roundtrip, yielding only once the hot spin runs long.
  const unsigned team = num_workers();
  int spins = 0;
  while (done_.load(std::memory_order_acquire) != team) {
    if (++spins >= 4096) std::this_thread::yield();
  }
}

void ForkJoinTeam::worker_loop(unsigned tid) {
  std::uint64_t seen = 0;
  for (;;) {
    // Await the next run: spin briefly (back-to-back waves arrive within
    // microseconds), then park.
    int spins = 0;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return;
      const std::uint64_t e = epoch_.load(std::memory_order_acquire);
      if (e != seen) {
        seen = e;
        break;
      }
      ++spins;
      if (spins < 4096) continue;  // hot spin on the epoch cacheline
      if (spins < 8192) {          // polite spin before parking
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_acquire) != seen;
      });
      spins = 0;
    }
    (*job_)(tid);
    // Release pairs with the caller's acquire in run(): our writes are
    // visible before it proceeds to the commit pass.
    done_.fetch_add(1, std::memory_order_release);
  }
}

unsigned resolve_intra_threads(int requested,
                               unsigned outer_threads) noexcept {
  if (requested == 0) return 0;
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = ThreadPool::resolve_threads(-1);
  if (outer_threads < 1) outer_threads = 1;
  if (outer_threads >= hw) return 1;  // oversubscribed already
  return hw / outer_threads;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (idle_locked()) idle_cv_.notify_all();
    }
  }
}

}  // namespace impatience::engine
