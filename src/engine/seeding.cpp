#include "impatience/engine/seeding.hpp"

namespace impatience::engine {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t child_seed(std::uint64_t root, std::string_view tag,
                         std::uint64_t a, std::uint64_t b) noexcept {
  // Chain one mixing round per component. The odd constant separates the
  // root from a plain mix64 chain started at 0, and each round's output
  // feeds the next, so (tag, a, b) and (tag', a', b') collide only if the
  // whole 64-bit chain state collides.
  std::uint64_t h = mix64(root ^ 0x8f1bbcdcbfa53e0bULL);
  h = mix64(h ^ fnv1a64(tag));
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  return h;
}

}  // namespace impatience::engine
