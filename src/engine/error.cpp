#include "impatience/engine/error.hpp"

#include "impatience/util/errors.hpp"

namespace impatience::engine {

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::none: return "none";
    case ErrorKind::job_exception: return "job_exception";
    case ErrorKind::timeout: return "timeout";
    case ErrorKind::fault_budget_exceeded: return "fault_budget_exceeded";
    case ErrorKind::io: return "io";
    case ErrorKind::shutdown: return "shutdown";
  }
  return "job_exception";
}

ErrorKind error_kind_from_string(std::string_view name) noexcept {
  if (name == "none") return ErrorKind::none;
  if (name == "timeout") return ErrorKind::timeout;
  if (name == "fault_budget_exceeded") return ErrorKind::fault_budget_exceeded;
  if (name == "io") return ErrorKind::io;
  if (name == "shutdown") return ErrorKind::shutdown;
  return ErrorKind::job_exception;
}

ErrorKind classify_exception(const std::exception& e) noexcept {
  if (const auto* cancelled = dynamic_cast<const util::CancelledError*>(&e)) {
    return error_kind_from_cancel(cancelled->reason());
  }
  if (dynamic_cast<const util::FaultBudgetError*>(&e)) {
    return ErrorKind::fault_budget_exceeded;
  }
  if (dynamic_cast<const util::IoError*>(&e)) {
    return ErrorKind::io;
  }
  return ErrorKind::job_exception;
}

ErrorKind error_kind_from_cancel(util::CancelReason reason) noexcept {
  return reason == util::CancelReason::shutdown ? ErrorKind::shutdown
                                                : ErrorKind::timeout;
}

}  // namespace impatience::engine
