#include "impatience/engine/error.hpp"

#include "impatience/util/errors.hpp"

namespace impatience::engine {

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::none: return "none";
    case ErrorKind::job_exception: return "job_exception";
    case ErrorKind::timeout: return "timeout";
    case ErrorKind::fault_budget_exceeded: return "fault_budget_exceeded";
    case ErrorKind::io: return "io";
  }
  return "job_exception";
}

ErrorKind error_kind_from_string(std::string_view name) noexcept {
  if (name == "none") return ErrorKind::none;
  if (name == "timeout") return ErrorKind::timeout;
  if (name == "fault_budget_exceeded") return ErrorKind::fault_budget_exceeded;
  if (name == "io") return ErrorKind::io;
  return ErrorKind::job_exception;
}

ErrorKind classify_exception(const std::exception& e) noexcept {
  if (dynamic_cast<const util::CancelledError*>(&e)) {
    return ErrorKind::timeout;
  }
  if (dynamic_cast<const util::FaultBudgetError*>(&e)) {
    return ErrorKind::fault_budget_exceeded;
  }
  if (dynamic_cast<const util::IoError*>(&e)) {
    return ErrorKind::io;
  }
  return ErrorKind::job_exception;
}

}  // namespace impatience::engine
