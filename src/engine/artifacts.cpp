#include "impatience/engine/artifacts.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "impatience/stats/percentile.hpp"
#include "impatience/util/errors.hpp"

namespace impatience::engine {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

namespace {

std::string quoted(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

/// Wall-time percentile block (satellite: runner-throughput trajectories).
void write_wall_time_block(std::ostream& out, const RunReport& report) {
  std::vector<double> times;
  times.reserve(report.jobs.size());
  double max_t = 0.0;
  for (const auto& job : report.jobs) {
    times.push_back(job.result.wall_seconds);
    if (job.result.wall_seconds > max_t) max_t = job.result.wall_seconds;
  }
  out << "  \"job_wall_seconds\": ";
  if (times.empty()) {
    out << "null";
    return;
  }
  const auto ps = stats::percentiles(times, {0.50, 0.90, 0.99});
  out << "{\"p50\": " << json_number(ps[0]) << ", \"p90\": "
      << json_number(ps[1]) << ", \"p99\": " << json_number(ps[2])
      << ", \"max\": " << json_number(max_t) << "}";
}

}  // namespace

void write_manifest(std::ostream& out, const RunReport& report,
                    const ManifestInfo& info) {
  out << "{\n";
  out << "  \"schema\": \"impatience.run_manifest/1\",\n";
  out << "  \"generator\": " << quoted(info.generator) << ",\n";
  out << "  \"root_seed\": " << report.root_seed << ",\n";
  out << "  \"threads\": " << report.threads << ",\n";
  out << "  \"wall_seconds\": " << json_number(report.wall_seconds) << ",\n";
  out << "  \"jobs_total\": " << report.jobs.size() << ",\n";
  out << "  \"jobs_failed\": " << report.failed << ",\n";
  out << "  \"jobs_quarantined\": " << report.quarantined << ",\n";
  out << "  \"jobs_resumed\": " << report.resumed << ",\n";

  out << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : info.config) {
    if (!first) out << ", ";
    first = false;
    out << quoted(key) << ": " << quoted(value);
  }
  out << "},\n";

  // Per-(scenario, policy, x) outcome bands — the figures' mean + 5%/95%
  // envelope. Recomputed from the job records rather than the report's
  // aggregate: a merged multi-sweep report can repeat an x value in
  // different scenarios, which the (policy, x)-keyed aggregate conflates.
  std::map<std::tuple<std::string, std::string, double>, std::vector<double>>
      by_point;
  for (const auto& job : report.jobs) {
    if (job.result.ok) {
      by_point[{job.scenario, job.policy, job.x}].push_back(job.result.value);
    }
  }
  out << "  \"series\": [";
  first = true;
  for (const auto& [key, values] : by_point) {
    const auto& [scenario, policy, x] = key;
    double sum = 0.0;
    for (double v : values) sum += v;
    const auto band = stats::percentiles(values, {0.05, 0.95});
    if (!first) out << ",";
    first = false;
    out << "\n    {\"scenario\": " << quoted(scenario)
        << ", \"policy\": " << quoted(policy)
        << ", \"x\": " << json_number(x) << ", \"mean\": "
        << json_number(sum / static_cast<double>(values.size()))
        << ", \"p05\": " << json_number(band[0])
        << ", \"p95\": " << json_number(band[1])
        << ", \"trials\": " << values.size() << "}";
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"jobs\": [";
  first = true;
  for (const auto& job : report.jobs) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"scenario\": " << quoted(job.scenario)
        << ", \"policy\": " << quoted(job.policy)
        << ", \"trial\": " << job.trial << ", \"x\": " << json_number(job.x)
        << ", \"seed\": " << job.seed
        << ", \"ok\": " << (job.result.ok ? "true" : "false")
        << ", \"value\": " << json_number(job.result.value)
        << ", \"wall_seconds\": " << json_number(job.result.wall_seconds);
    if (job.result.attempts > 1) {
      out << ", \"attempts\": " << job.result.attempts;
    }
    if (job.result.resumed) out << ", \"resumed\": true";
    if (!job.result.ok) {
      out << ", \"error\": " << quoted(job.result.error)
          << ", \"error_kind\": " << quoted(to_string(job.result.error_kind));
      if (job.result.quarantined) out << ", \"quarantined\": true";
    }
    out << "}";
  }
  out << (first ? "" : "\n  ") << "],\n";

  write_wall_time_block(out, report);
  out << "\n}\n";
}

namespace {

/// Flushes the temp file's contents to stable storage before the rename
/// makes it visible; without it a power cut can publish an empty file.
void fsync_path(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw util::IoError("atomic_write_file: cannot reopen for fsync: " +
                        path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw util::IoError("atomic_write_file: fsync failed: " + path);
  }
#else
  (void)path;
#endif
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw util::IoError("atomic_write_file: cannot open " + tmp);
      }
      writer(out);
      out.flush();
      if (!out.good()) {
        throw util::IoError("atomic_write_file: write failed: " + tmp);
      }
    }
    fsync_path(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw util::IoError("atomic_write_file: rename failed: " + tmp +
                          " -> " + path);
    }
  } catch (...) {
    std::remove(tmp.c_str());  // never leave the partial temp behind
    throw;
  }
}

void write_manifest_file(const std::string& path, const RunReport& report,
                         const ManifestInfo& info) {
  atomic_write_file(path, [&](std::ostream& out) {
    write_manifest(out, report, info);
  });
}

}  // namespace impatience::engine
