#include "impatience/engine/artifacts.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "impatience/stats/percentile.hpp"

namespace impatience::engine {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

namespace {

std::string quoted(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

/// Wall-time percentile block (satellite: runner-throughput trajectories).
void write_wall_time_block(std::ostream& out, const RunReport& report) {
  std::vector<double> times;
  times.reserve(report.jobs.size());
  double max_t = 0.0;
  for (const auto& job : report.jobs) {
    times.push_back(job.result.wall_seconds);
    if (job.result.wall_seconds > max_t) max_t = job.result.wall_seconds;
  }
  out << "  \"job_wall_seconds\": ";
  if (times.empty()) {
    out << "null";
    return;
  }
  const auto ps = stats::percentiles(times, {0.50, 0.90, 0.99});
  out << "{\"p50\": " << json_number(ps[0]) << ", \"p90\": "
      << json_number(ps[1]) << ", \"p99\": " << json_number(ps[2])
      << ", \"max\": " << json_number(max_t) << "}";
}

}  // namespace

void write_manifest(std::ostream& out, const RunReport& report,
                    const ManifestInfo& info) {
  out << "{\n";
  out << "  \"schema\": \"impatience.run_manifest/1\",\n";
  out << "  \"generator\": " << quoted(info.generator) << ",\n";
  out << "  \"root_seed\": " << report.root_seed << ",\n";
  out << "  \"threads\": " << report.threads << ",\n";
  out << "  \"wall_seconds\": " << json_number(report.wall_seconds) << ",\n";
  out << "  \"jobs_total\": " << report.jobs.size() << ",\n";
  out << "  \"jobs_failed\": " << report.failed << ",\n";

  out << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : info.config) {
    if (!first) out << ", ";
    first = false;
    out << quoted(key) << ": " << quoted(value);
  }
  out << "},\n";

  // Per-(scenario, policy, x) outcome bands — the figures' mean + 5%/95%
  // envelope. Recomputed from the job records rather than the report's
  // aggregate: a merged multi-sweep report can repeat an x value in
  // different scenarios, which the (policy, x)-keyed aggregate conflates.
  std::map<std::tuple<std::string, std::string, double>, std::vector<double>>
      by_point;
  for (const auto& job : report.jobs) {
    if (job.result.ok) {
      by_point[{job.scenario, job.policy, job.x}].push_back(job.result.value);
    }
  }
  out << "  \"series\": [";
  first = true;
  for (const auto& [key, values] : by_point) {
    const auto& [scenario, policy, x] = key;
    double sum = 0.0;
    for (double v : values) sum += v;
    const auto band = stats::percentiles(values, {0.05, 0.95});
    if (!first) out << ",";
    first = false;
    out << "\n    {\"scenario\": " << quoted(scenario)
        << ", \"policy\": " << quoted(policy)
        << ", \"x\": " << json_number(x) << ", \"mean\": "
        << json_number(sum / static_cast<double>(values.size()))
        << ", \"p05\": " << json_number(band[0])
        << ", \"p95\": " << json_number(band[1])
        << ", \"trials\": " << values.size() << "}";
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"jobs\": [";
  first = true;
  for (const auto& job : report.jobs) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"scenario\": " << quoted(job.scenario)
        << ", \"policy\": " << quoted(job.policy)
        << ", \"trial\": " << job.trial << ", \"x\": " << json_number(job.x)
        << ", \"seed\": " << job.seed
        << ", \"ok\": " << (job.result.ok ? "true" : "false")
        << ", \"value\": " << json_number(job.result.value)
        << ", \"wall_seconds\": " << json_number(job.result.wall_seconds);
    if (!job.result.ok) out << ", \"error\": " << quoted(job.result.error);
    out << "}";
  }
  out << (first ? "" : "\n  ") << "],\n";

  write_wall_time_block(out, report);
  out << "\n}\n";
}

void write_manifest_file(const std::string& path, const RunReport& report,
                         const ManifestInfo& info) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_manifest_file: cannot open " + path);
  }
  write_manifest(out, report, info);
  if (!out.good()) {
    throw std::runtime_error("write_manifest_file: write failed: " + path);
  }
}

}  // namespace impatience::engine
