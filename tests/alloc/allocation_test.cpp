#include "impatience/alloc/allocation.hpp"

#include <gtest/gtest.h>

namespace impatience::alloc {
namespace {

TEST(ItemCounts, Total) {
  ItemCounts c{{1.0, 2.5, 0.0}};
  EXPECT_DOUBLE_EQ(c.total(), 3.5);
  EXPECT_EQ(c.num_items(), 3u);
}

TEST(Placement, AddRemoveQuery) {
  Placement p(3, 4, 2);
  EXPECT_FALSE(p.has(0, 1));
  p.add(0, 1);
  EXPECT_TRUE(p.has(0, 1));
  EXPECT_EQ(p.count(0), 1);
  EXPECT_EQ(p.server_load(1), 1);
  p.remove(0, 1);
  EXPECT_FALSE(p.has(0, 1));
  EXPECT_EQ(p.count(0), 0);
  EXPECT_EQ(p.server_load(1), 0);
}

TEST(Placement, CapacityEnforced) {
  Placement p(5, 2, 2);
  p.add(0, 0);
  p.add(1, 0);
  EXPECT_TRUE(p.server_full(0));
  EXPECT_THROW(p.add(2, 0), std::logic_error);
}

TEST(Placement, DuplicateReplicaRejected) {
  Placement p(2, 2, 3);
  p.add(1, 1);
  EXPECT_THROW(p.add(1, 1), std::logic_error);
}

TEST(Placement, RemoveAbsentRejected) {
  Placement p(2, 2, 3);
  EXPECT_THROW(p.remove(0, 0), std::logic_error);
}

TEST(Placement, CountsAndHolders) {
  Placement p(3, 3, 2);
  p.add(2, 0);
  p.add(2, 2);
  p.add(0, 1);
  const auto counts = p.counts();
  EXPECT_DOUBLE_EQ(counts.x[0], 1.0);
  EXPECT_DOUBLE_EQ(counts.x[1], 0.0);
  EXPECT_DOUBLE_EQ(counts.x[2], 2.0);
  const auto holders = p.holders(2);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], 0u);
  EXPECT_EQ(holders[1], 2u);
}

TEST(Placement, BoundsChecked) {
  Placement p(2, 2, 1);
  EXPECT_THROW(p.has(2, 0), std::out_of_range);
  EXPECT_THROW(p.has(0, 2), std::out_of_range);
  EXPECT_THROW(p.count(5), std::out_of_range);
  EXPECT_THROW(p.server_load(5), std::out_of_range);
}

TEST(Placement, Validation) {
  EXPECT_THROW(Placement(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(Placement(2, 0, 1), std::invalid_argument);
  EXPECT_THROW(Placement(2, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::alloc
