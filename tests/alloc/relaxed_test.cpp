// The relaxed optimum of Property 1: balance condition, capacity, and the
// closed-form power-law exponent of Fig. 2.
#include <gtest/gtest.h>

#include <cmath>

#include "impatience/alloc/solvers.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::alloc {
namespace {

using utility::ExponentialUtility;
using utility::NegLogUtility;
using utility::PowerUtility;
using utility::StepUtility;

constexpr double kMu = 0.05;
constexpr double kServers = 50.0;

std::vector<double> pareto_demand(std::size_t n, double omega) {
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = std::pow(static_cast<double>(i + 1), -omega);
  }
  return d;
}

TEST(RelaxedOptimum, CapacityIsMet) {
  const auto demand = pareto_demand(50, 1.0);
  StepUtility u(1.0);
  const auto x = relaxed_optimum(demand, u, kMu, kServers, 250.0);
  EXPECT_NEAR(x.total(), 250.0, 1e-4);
  for (double v : x.x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, kServers + 1e-9);
  }
}

TEST(RelaxedOptimum, BalanceConditionHolds) {
  // d_i phi(x_i) equal across interior items (Property 1).
  const auto demand = pareto_demand(20, 1.0);
  ExponentialUtility u(0.5);
  const auto x = relaxed_optimum(demand, u, kMu, kServers, 100.0);
  double lambda = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (x.x[i] <= 1e-6 || x.x[i] >= kServers - 1e-6) continue;
    const double v = demand[i] * utility::phi(u, kMu, x.x[i]);
    if (first) {
      lambda = v;
      first = false;
    } else {
      EXPECT_NEAR(v, lambda, 1e-5 * lambda) << "item " << i;
    }
  }
  ASSERT_FALSE(first) << "no interior items to check";
}

class PowerLawExponentTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawExponentTest,
                         ::testing::Values(-2.0, -1.0, 0.0, 0.5, 1.5));

TEST_P(PowerLawExponentTest, AllocationFollowsD1Over2MinusAlpha) {
  // Fig. 2: x_i proportional to d_i^{1/(2-alpha)} away from the bounds.
  const double alpha = GetParam();
  const auto demand = pareto_demand(30, 1.0);
  PowerUtility u(alpha);
  const auto x = relaxed_optimum(demand, u, kMu, kServers, 120.0);
  const double expo = 1.0 / (2.0 - alpha);
  // Compare ratios against the closed form for interior items.
  double ref_ratio = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (x.x[i] <= 1e-4 || x.x[i] >= kServers - 1e-4) continue;
    const double ratio = x.x[i] / std::pow(demand[i], expo);
    if (first) {
      ref_ratio = ratio;
      first = false;
    } else {
      EXPECT_NEAR(ratio, ref_ratio, 1e-3 * ref_ratio)
          << "alpha=" << alpha << " item=" << i;
    }
  }
  ASSERT_FALSE(first);
}

TEST(RelaxedOptimum, NegLogGivesProportionalAllocation) {
  const auto demand = pareto_demand(10, 1.0);
  NegLogUtility u;
  const auto x = relaxed_optimum(demand, u, kMu, kServers, 40.0);
  const double ratio0 = x.x[0] / demand[0];
  for (std::size_t i = 1; i < demand.size(); ++i) {
    EXPECT_NEAR(x.x[i] / demand[i], ratio0, 1e-4 * ratio0);
  }
}

TEST(RelaxedOptimum, MoreImpatientMeansMoreSkew) {
  // Increasing alpha concentrates the allocation on popular items.
  const auto demand = pareto_demand(20, 1.0);
  PowerUtility patient(-1.0);
  PowerUtility impatient(1.5);
  const auto xp = relaxed_optimum(demand, patient, kMu, kServers, 100.0);
  const auto xi = relaxed_optimum(demand, impatient, kMu, kServers, 100.0);
  EXPECT_GT(xi.x[0], xp.x[0]);
  EXPECT_LT(xi.x.back(), xp.x.back());
}

TEST(RelaxedOptimum, BoundaryClampAtNumServers) {
  // A single overwhelmingly popular item saturates at |S|.
  std::vector<double> demand{1000.0, 1.0, 1.0, 1.0};
  StepUtility u(5.0);
  const auto x = relaxed_optimum(demand, u, kMu, 10.0, 25.0);
  EXPECT_NEAR(x.x[0], 10.0, 1e-6);
  EXPECT_NEAR(x.total(), 25.0, 1e-4);
}

TEST(RelaxedOptimum, ZeroDemandItemsGetNothing) {
  std::vector<double> demand{1.0, 0.0, 2.0};
  ExponentialUtility u(1.0);
  const auto x = relaxed_optimum(demand, u, kMu, kServers, 10.0);
  EXPECT_DOUBLE_EQ(x.x[1], 0.0);
}

TEST(RelaxedOptimum, ImprovesOnUniformWelfare) {
  const auto demand = pareto_demand(25, 1.0);
  StepUtility u(1.0);
  const auto x = relaxed_optimum(demand, u, kMu, kServers, 125.0);
  HomogeneousModel m{kMu, 50, 50, SystemMode::kDedicated};
  ItemCounts uniform{std::vector<double>(25, 5.0)};
  EXPECT_GE(welfare_homogeneous(x, demand, u, m),
            welfare_homogeneous(uniform, demand, u, m) - 1e-9);
}

TEST(RelaxedOptimum, Validation) {
  StepUtility u(1.0);
  EXPECT_THROW(relaxed_optimum({}, u, kMu, 50.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(relaxed_optimum({1.0}, u, 0.0, 50.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(relaxed_optimum({1.0}, u, kMu, 50.0, 100.0),
               std::invalid_argument);  // capacity > I * |S|
  EXPECT_THROW(relaxed_optimum({0.0, 0.0}, u, kMu, 50.0, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::alloc
