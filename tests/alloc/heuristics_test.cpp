#include "impatience/alloc/heuristics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace impatience::alloc {
namespace {

TEST(ProportionalWithCap, BasicProportions) {
  const auto x = proportional_with_cap({1.0, 3.0}, 8.0, 100.0);
  EXPECT_NEAR(x.x[0], 2.0, 1e-12);
  EXPECT_NEAR(x.x[1], 6.0, 1e-12);
}

TEST(ProportionalWithCap, CapRedistributes) {
  // Proportional shares {8, 2} but cap 5: surplus flows to the other item.
  const auto x = proportional_with_cap({4.0, 1.0}, 10.0, 5.0);
  EXPECT_NEAR(x.x[0], 5.0, 1e-12);
  EXPECT_NEAR(x.x[1], 5.0, 1e-12);
}

TEST(ProportionalWithCap, CascadingCaps) {
  const auto x = proportional_with_cap({100.0, 10.0, 1.0}, 12.0, 5.0);
  EXPECT_NEAR(x.x[0], 5.0, 1e-9);
  EXPECT_NEAR(x.x[1], 5.0, 1e-9);
  EXPECT_NEAR(x.x[2], 2.0, 1e-9);
}

TEST(ProportionalWithCap, TotalPreserved) {
  const auto x = proportional_with_cap({5.0, 4.0, 3.0, 2.0, 1.0}, 20.0, 8.0);
  EXPECT_NEAR(x.total(), 20.0, 1e-9);
}

TEST(ProportionalWithCap, ZeroWeightGetsNothing) {
  const auto x = proportional_with_cap({1.0, 0.0, 1.0}, 4.0, 10.0);
  EXPECT_DOUBLE_EQ(x.x[1], 0.0);
  EXPECT_NEAR(x.x[0], 2.0, 1e-12);
}

TEST(ProportionalWithCap, Validation) {
  EXPECT_THROW(proportional_with_cap({}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(proportional_with_cap({1.0}, 5.0, 2.0),
               std::invalid_argument);  // capacity > n * cap
  EXPECT_THROW(proportional_with_cap({-1.0, 2.0}, 1.0, 2.0),
               std::invalid_argument);
}

TEST(Uniform, EqualShares) {
  const auto x = uniform_allocation(5, 25.0, 50.0);
  for (double v : x.x) EXPECT_NEAR(v, 5.0, 1e-12);
}

TEST(Sqrt, SquareRootProportions) {
  const auto x = sqrt_allocation({16.0, 4.0}, 6.0, 50.0);
  EXPECT_NEAR(x.x[0] / x.x[1], 2.0, 1e-9);  // sqrt(16)/sqrt(4)
  EXPECT_NEAR(x.total(), 6.0, 1e-9);
}

TEST(Prop, DemandProportions) {
  const auto x = prop_allocation({9.0, 3.0}, 8.0, 50.0);
  EXPECT_NEAR(x.x[0] / x.x[1], 3.0, 1e-9);
}

TEST(Sqrt, FlatterThanProp) {
  // SQRT must allocate relatively more to unpopular items than PROP.
  std::vector<double> demand{16.0, 1.0};
  const auto sq = sqrt_allocation(demand, 10.0, 100.0);
  const auto pr = prop_allocation(demand, 10.0, 100.0);
  EXPECT_LT(sq.x[0] / sq.x[1], pr.x[0] / pr.x[1]);
}

TEST(Dom, TopRhoItemsGetEverything) {
  const std::vector<double> demand{1.0, 5.0, 3.0, 0.5};
  const auto x = dom_allocation(demand, 2, 50.0);
  EXPECT_DOUBLE_EQ(x.x[0], 0.0);
  EXPECT_DOUBLE_EQ(x.x[1], 50.0);
  EXPECT_DOUBLE_EQ(x.x[2], 50.0);
  EXPECT_DOUBLE_EQ(x.x[3], 0.0);
}

TEST(Dom, TotalIsRhoTimesServers) {
  const std::vector<double> demand{4.0, 3.0, 2.0, 1.0};
  const auto x = dom_allocation(demand, 3, 10.0);
  EXPECT_DOUBLE_EQ(x.total(), 30.0);
}

TEST(Dom, Validation) {
  EXPECT_THROW(dom_allocation({1.0}, 0, 10.0), std::invalid_argument);
  EXPECT_THROW(dom_allocation({1.0}, 2, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace impatience::alloc
