// MarginalOracle equivalence: the incremental oracle must reproduce the
// naive alloc::marginal_gain / welfare_heterogeneous results (Lemma 1)
// and lazy_greedy_placement must equal its naive reference bit for bit.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "impatience/alloc/oracle.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/util/rng.hpp"
#include "impatience/utility/families.hpp"

namespace {

using impatience::alloc::ItemId;
using impatience::alloc::MarginalOracle;
using impatience::alloc::Placement;
using impatience::alloc::PopularityProfile;
using impatience::trace::NodeId;
namespace alloc = impatience::alloc;
namespace utility = impatience::utility;
namespace util = impatience::util;
namespace trace = impatience::trace;

struct Instance {
  trace::RateMatrix rates{2};
  std::vector<double> demand;
  std::vector<NodeId> servers;
  std::vector<NodeId> clients;
  ItemId num_items = 0;
};

/// Heterogeneous rates over `nodes` nodes; the client list overlaps the
/// server list so client-held replicas occur.
Instance random_instance(util::Rng& rng, NodeId nodes, NodeId num_servers,
                         ItemId num_items) {
  Instance inst;
  inst.rates = trace::RateMatrix(nodes);
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < nodes; ++b) {
      if (rng.bernoulli(0.85)) inst.rates.set(a, b, rng.uniform(0.005, 0.3));
    }
  }
  inst.num_items = num_items;
  inst.demand.resize(num_items);
  for (auto& d : inst.demand) d = rng.uniform(0.1, 2.0);
  for (NodeId s = 0; s < num_servers; ++s) inst.servers.push_back(s);
  // Clients: the back half of the servers plus every non-server node.
  for (NodeId n = num_servers / 2; n < nodes; ++n) inst.clients.push_back(n);
  return inst;
}

Placement random_placement(const Instance& inst, int capacity,
                           util::Rng& rng) {
  Placement p(inst.num_items,
              static_cast<NodeId>(inst.servers.size()), capacity);
  for (NodeId s = 0; s < p.num_servers(); ++s) {
    for (int k = 0; k < capacity; ++k) {
      const auto item = static_cast<ItemId>(rng.uniform_index(inst.num_items));
      if (!p.has(item, s)) p.add(item, s);
    }
  }
  return p;
}

PopularityProfile random_popularity(const Instance& inst, util::Rng& rng) {
  PopularityProfile prof;
  prof.pi.resize(inst.num_items);
  for (auto& row : prof.pi) {
    row.resize(inst.clients.size());
    double sum = 0.0;
    for (auto& w : row) {
      w = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.1, 1.0);
      sum += w;
    }
    if (sum == 0.0) {
      row[0] = 1.0;
      sum = 1.0;
    }
    for (auto& w : row) w /= sum;
  }
  return prof;
}

void expect_marginals_match(const Instance& inst, const Placement& placement,
                            const MarginalOracle& oracle,
                            const utility::DelayUtility& u,
                            const std::optional<PopularityProfile>& pop) {
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < placement.num_servers(); ++s) {
      if (placement.has(i, s)) continue;
      const double naive =
          alloc::marginal_gain(placement, inst.rates, inst.demand, u,
                               inst.servers, inst.clients, i, s, pop);
      const double fast = oracle.marginal(i, s);
      EXPECT_NEAR(fast, naive, 1e-12) << "item " << i << " server " << s;
    }
  }
}

TEST(MarginalOracleTest, MatchesNaiveOnRandomInstances) {
  const utility::StepUtility step(25.0);
  const utility::ExponentialUtility expo(0.04);
  const utility::DelayUtility* utilities[] = {&step, &expo};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    util::Rng rng(seed);
    const Instance inst = random_instance(rng, 14, 8, 12);
    const Placement placement = random_placement(inst, 3, rng);
    for (const auto* u : utilities) {
      MarginalOracle oracle(inst.rates, inst.demand, *u, inst.servers,
                            inst.clients, inst.num_items);
      oracle.reset(placement);
      expect_marginals_match(inst, placement, oracle, *u, std::nullopt);
    }
  }
}

TEST(MarginalOracleTest, MatchesNaiveWithPopularityProfile) {
  const utility::StepUtility step(40.0);
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    util::Rng rng(seed);
    const Instance inst = random_instance(rng, 12, 7, 9);
    const PopularityProfile pop = random_popularity(inst, rng);
    const Placement placement = random_placement(inst, 2, rng);
    MarginalOracle oracle(inst.rates, inst.demand, step, inst.servers,
                          inst.clients, inst.num_items, pop);
    oracle.reset(placement);
    expect_marginals_match(inst, placement, oracle, step, pop);
  }
}

TEST(MarginalOracleTest, MatchesNaivePerItemUtilities) {
  util::Rng rng(99);
  const Instance inst = random_instance(rng, 12, 6, 10);
  std::vector<std::unique_ptr<utility::DelayUtility>> items;
  for (ItemId i = 0; i < inst.num_items; ++i) {
    if (i % 2 == 0) {
      items.push_back(std::make_unique<utility::StepUtility>(15.0));
    } else {
      items.push_back(std::make_unique<utility::ExponentialUtility>(0.1));
    }
  }
  const utility::UtilitySet set(std::move(items));
  const Placement placement = random_placement(inst, 2, rng);
  MarginalOracle oracle(inst.rates, inst.demand, set, inst.servers,
                        inst.clients);
  oracle.reset(placement);
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < placement.num_servers(); ++s) {
      if (placement.has(i, s)) continue;
      const double naive =
          alloc::marginal_gain(placement, inst.rates, inst.demand, set,
                               inst.servers, inst.clients, i, s);
      EXPECT_NEAR(oracle.marginal(i, s), naive, 1e-12);
    }
  }
}

TEST(MarginalOracleTest, MatchesNaiveDistinctTabulatedCurves) {
  // Every curve has the same point count (and so the same name()); the
  // oracle must not share transform memos across them.
  util::Rng rng(7);
  const Instance inst = random_instance(rng, 10, 6, 8);
  std::vector<std::unique_ptr<utility::DelayUtility>> items;
  for (ItemId i = 0; i < inst.num_items; ++i) {
    const double deadline = 5.0 + 10.0 * static_cast<double>(i % 4);
    items.push_back(std::make_unique<utility::TabulatedUtility>(
        std::vector<utility::TabulatedUtility::Sample>{{0.0, 1.0},
                                                       {deadline, 0.0}}));
  }
  const utility::UtilitySet set(std::move(items));
  const Placement placement = random_placement(inst, 2, rng);
  MarginalOracle oracle(inst.rates, inst.demand, set, inst.servers,
                        inst.clients);
  oracle.reset(placement);
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < placement.num_servers(); ++s) {
      if (placement.has(i, s)) continue;
      const double naive =
          alloc::marginal_gain(placement, inst.rates, inst.demand, set,
                               inst.servers, inst.clients, i, s);
      EXPECT_NEAR(oracle.marginal(i, s), naive, 1e-12);
    }
  }
}

TEST(MarginalOracleTest, IncrementalAddTracksNaive) {
  // Interleave adds with marginal checks: after every mutation the
  // oracle must still agree with the naive evaluator on the updated
  // placement.
  util::Rng rng(7);
  const Instance inst = random_instance(rng, 10, 6, 8);
  const utility::ExponentialUtility u(0.08);
  Placement placement(inst.num_items, 6, 3);
  MarginalOracle oracle(inst.rates, inst.demand, u, inst.servers,
                        inst.clients, inst.num_items);
  for (int step = 0; step < 10; ++step) {
    const auto item = static_cast<ItemId>(rng.uniform_index(inst.num_items));
    const auto server = static_cast<NodeId>(rng.uniform_index(6));
    if (placement.has(item, server) || placement.server_full(server)) {
      continue;
    }
    placement.add(item, server);
    oracle.add(item, server);
    expect_marginals_match(inst, placement, oracle, u, std::nullopt);
  }
}

TEST(MarginalOracleTest, AddRemoveRoundtripRestoresMarginals) {
  util::Rng rng(21);
  const Instance inst = random_instance(rng, 10, 5, 6);
  const utility::StepUtility u(20.0);
  const Placement placement = random_placement(inst, 2, rng);
  MarginalOracle oracle(inst.rates, inst.demand, u, inst.servers,
                        inst.clients, inst.num_items);
  oracle.reset(placement);
  std::vector<double> before;
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < 5; ++s) {
      if (!placement.has(i, s)) before.push_back(oracle.marginal(i, s));
    }
  }
  // Mutate and revert.
  ItemId item = 0;
  NodeId server = 0;
  [&] {
    for (ItemId i = 0; i < inst.num_items; ++i) {
      for (NodeId s = 0; s < 5; ++s) {
        if (!placement.has(i, s)) {
          item = i;
          server = s;
          return;
        }
      }
    }
  }();
  oracle.add(item, server);
  EXPECT_TRUE(oracle.has(item, server));
  oracle.remove(item, server);
  std::size_t k = 0;
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < 5; ++s) {
      if (!placement.has(i, s)) {
        EXPECT_EQ(oracle.marginal(i, s), before[k]) << "i=" << i << " s=" << s;
        ++k;
      }
    }
  }
}

TEST(MarginalOracleTest, WelfareMatchesMarginalTelescoping) {
  // U(P) must equal U(empty) plus the sum of the marginals of the adds
  // that built P — the defining property of a marginal oracle.
  util::Rng rng(31);
  const Instance inst = random_instance(rng, 12, 7, 9);
  const utility::ExponentialUtility u(0.06);
  MarginalOracle oracle(inst.rates, inst.demand, u, inst.servers,
                        inst.clients, inst.num_items);
  double expected = oracle.welfare();
  for (int step = 0; step < 12; ++step) {
    const auto item = static_cast<ItemId>(rng.uniform_index(inst.num_items));
    const auto server = static_cast<NodeId>(rng.uniform_index(7));
    if (oracle.has(item, server)) continue;
    expected += oracle.marginal(item, server);
    oracle.add(item, server);
  }
  EXPECT_NEAR(oracle.welfare(), expected, 1e-9);
}

TEST(MarginalOracleTest, WelfareCachedBitIdenticalUnderRandomChurn) {
  // The incremental probe (welfare_cached) recomputes only the items
  // whose holder lists changed since the last sample; because clean
  // items replay their cached per-item term and dirty items re-fold in
  // the exact same order as welfare(), the two must agree bitwise — the
  // 1e-12 acceptance tolerance is a safety net, not an error budget.
  for (std::uint64_t seed = 60; seed < 63; ++seed) {
    util::Rng rng(seed);
    const Instance inst = random_instance(rng, 14, 8, 12);
    const utility::ExponentialUtility u(0.06);
    Placement placement = random_placement(inst, 3, rng);
    MarginalOracle oracle(inst.rates, inst.demand, u, inst.servers,
                          inst.clients, inst.num_items);
    oracle.reset(placement);
    EXPECT_DOUBLE_EQ(oracle.welfare_cached(), oracle.welfare());
    for (int step = 0; step < 60; ++step) {
      const auto item = static_cast<ItemId>(rng.uniform_index(inst.num_items));
      const auto server = static_cast<NodeId>(rng.uniform_index(8));
      if (oracle.has(item, server)) {
        oracle.remove(item, server);
      } else {
        oracle.add(item, server);
      }
      // Sample only every few mutations, as the simulator does, so the
      // probe accumulates multi-row dirt between reads.
      if (step % 5 == 4) {
        const double cached = oracle.welfare_cached();
        const double scratch = oracle.welfare();
        EXPECT_DOUBLE_EQ(cached, scratch);
        EXPECT_NEAR(cached, scratch, 1e-12);  // the documented bound
      }
    }
    // Interleaving marginal() reads (which sync rows on their own) must
    // not desynchronize the cached welfare terms.
    for (ItemId i = 0; i < inst.num_items; ++i) {
      if (!oracle.has(i, 0)) {
        (void)oracle.marginal(i, 0);
        break;
      }
    }
    EXPECT_DOUBLE_EQ(oracle.welfare_cached(), oracle.welfare());
  }
}

TEST(MarginalOracleTest, UnboundedUtilityThrowsLikeNaiveWhenClientHolds) {
  // Power alpha in (1, 2): h(0+) = inf. A client co-located with a holder
  // makes the request gain undefined; both evaluators must throw.
  util::Rng rng(5);
  const Instance inst = random_instance(rng, 8, 6, 4);
  const utility::PowerUtility u(1.5);
  // inst.clients starts at node 3, so server index 3 (node 3) is also a
  // client: placing there creates a client-held replica.
  Placement placement(inst.num_items, 6, 2);
  placement.add(0, 3);
  MarginalOracle oracle(inst.rates, inst.demand, u, inst.servers,
                        inst.clients, inst.num_items);
  oracle.reset(placement);
  EXPECT_THROW(alloc::marginal_gain(placement, inst.rates, inst.demand, u,
                                    inst.servers, inst.clients, 0, 1),
               std::domain_error);
  EXPECT_THROW(oracle.marginal(0, 1), std::domain_error);
}

TEST(MarginalOracleTest, ErrorCases) {
  util::Rng rng(1);
  const Instance inst = random_instance(rng, 8, 4, 3);
  const utility::StepUtility u(10.0);
  MarginalOracle oracle(inst.rates, inst.demand, u, inst.servers,
                        inst.clients, inst.num_items);
  oracle.add(0, 0);
  EXPECT_THROW(oracle.marginal(0, 0), std::logic_error);
  EXPECT_THROW(oracle.add(0, 0), std::logic_error);
  EXPECT_THROW(oracle.remove(1, 0), std::logic_error);
  EXPECT_THROW(oracle.marginal(inst.num_items, 0), std::out_of_range);
  EXPECT_THROW(oracle.marginal(0, 4), std::out_of_range);

  std::vector<double> bad_demand(inst.num_items + 1, 1.0);
  EXPECT_THROW(MarginalOracle(inst.rates, bad_demand, u, inst.servers,
                              inst.clients, inst.num_items),
               std::invalid_argument);
  Placement wrong(inst.num_items, 2, 1);
  EXPECT_THROW(oracle.reset(wrong), std::invalid_argument);
}

TEST(LazyGreedyEquivalenceTest, OraclePlacementIdenticalToNaive) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    util::Rng rng(seed + 40);
    const Instance inst = random_instance(rng, 16, 9, 14);
    const utility::StepUtility u(30.0);
    const Placement fast = alloc::lazy_greedy_placement(
        inst.rates, inst.demand, u, inst.servers, inst.clients,
        inst.num_items, 3);
    const Placement naive = alloc::lazy_greedy_placement_naive(
        inst.rates, inst.demand, u, inst.servers, inst.clients,
        inst.num_items, 3);
    ASSERT_EQ(fast.num_servers(), naive.num_servers());
    for (ItemId i = 0; i < inst.num_items; ++i) {
      for (NodeId s = 0; s < fast.num_servers(); ++s) {
        EXPECT_EQ(fast.has(i, s), naive.has(i, s))
            << "seed " << seed << " item " << i << " server " << s;
      }
    }
  }
}

TEST(LazyGreedyEquivalenceTest, PerItemUtilitiesIdenticalToNaive) {
  util::Rng rng(77);
  const Instance inst = random_instance(rng, 14, 8, 12);
  std::vector<std::unique_ptr<utility::DelayUtility>> items;
  for (ItemId i = 0; i < inst.num_items; ++i) {
    if (i % 3 == 0) {
      items.push_back(std::make_unique<utility::ExponentialUtility>(0.05));
    } else {
      items.push_back(std::make_unique<utility::StepUtility>(20.0));
    }
  }
  const utility::UtilitySet set(std::move(items));
  const Placement fast = alloc::lazy_greedy_placement(
      inst.rates, inst.demand, set, inst.servers, inst.clients,
      inst.num_items, 2);
  const Placement naive = alloc::lazy_greedy_placement_naive(
      inst.rates, inst.demand, set, inst.servers, inst.clients,
      inst.num_items, 2);
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < fast.num_servers(); ++s) {
      EXPECT_EQ(fast.has(i, s), naive.has(i, s));
    }
  }
}

TEST(LazyGreedyEquivalenceTest, PopularityProfileIdenticalToNaive) {
  util::Rng rng(55);
  const Instance inst = random_instance(rng, 12, 7, 10);
  const PopularityProfile pop = random_popularity(inst, rng);
  const utility::ExponentialUtility u(0.07);
  const Placement fast = alloc::lazy_greedy_placement(
      inst.rates, inst.demand, u, inst.servers, inst.clients,
      inst.num_items, 2, pop);
  const Placement naive = alloc::lazy_greedy_placement_naive(
      inst.rates, inst.demand, u, inst.servers, inst.clients,
      inst.num_items, 2, pop);
  for (ItemId i = 0; i < inst.num_items; ++i) {
    for (NodeId s = 0; s < fast.num_servers(); ++s) {
      EXPECT_EQ(fast.has(i, s), naive.has(i, s));
    }
  }
}

}  // namespace
