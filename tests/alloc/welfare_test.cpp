// Social-welfare evaluation against the paper's closed forms (Eqs. 2-5,
// Lemma 1) and numeric submodularity checks (Theorem 1).
#include "impatience/alloc/welfare.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "impatience/util/rng.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::alloc {
namespace {

using utility::ExponentialUtility;
using utility::NegLogUtility;
using utility::PowerUtility;
using utility::StepUtility;

constexpr double kMu = 0.05;

TEST(ItemGain, DedicatedStepMatchesEq3) {
  StepUtility u(1.0);
  HomogeneousModel m{kMu, 50, 50, SystemMode::kDedicated};
  // Eq. (3): h(0+) - L(mu x) = 1 - e^{-mu tau x}.
  for (double x : {1.0, 5.0, 20.0}) {
    EXPECT_NEAR(item_gain(u, m, x), 1.0 - std::exp(-kMu * x), 1e-12);
  }
}

TEST(ItemGain, PureP2pIncludesSelfHit) {
  StepUtility u(1.0);
  HomogeneousModel m{kMu, 50, 50, SystemMode::kPureP2P};
  // Eq. (5): 1 - (1 - x/N) e^{-mu x}.
  for (double x : {1.0, 10.0, 50.0}) {
    const double expected = 1.0 - (1.0 - x / 50.0) * std::exp(-kMu * x);
    EXPECT_NEAR(item_gain(u, m, x), expected, 1e-12);
  }
}

TEST(ItemGain, PureP2pExceedsDedicated) {
  // Self-hits can only help.
  ExponentialUtility u(0.5);
  HomogeneousModel ded{kMu, 50, 50, SystemMode::kDedicated};
  HomogeneousModel p2p{kMu, 50, 50, SystemMode::kPureP2P};
  for (double x : {1.0, 5.0, 25.0}) {
    EXPECT_GT(item_gain(u, p2p, x), item_gain(u, ded, x));
  }
}

TEST(ItemGain, ZeroCopiesGivesLimitGain) {
  StepUtility step(1.0);
  HomogeneousModel m{kMu, 50, 50, SystemMode::kDedicated};
  EXPECT_DOUBLE_EQ(item_gain(step, m, 0.0), 0.0);
  PowerUtility cost(0.0);
  EXPECT_TRUE(std::isinf(item_gain(cost, m, 0.0)));
  EXPECT_LT(item_gain(cost, m, 0.0), 0.0);
}

TEST(ItemGain, UnboundedUtilityRequiresDedicated) {
  PowerUtility critical(1.5);
  HomogeneousModel p2p{kMu, 50, 50, SystemMode::kPureP2P};
  EXPECT_THROW(item_gain(critical, p2p, 5.0), std::domain_error);
  HomogeneousModel ded{kMu, 50, 50, SystemMode::kDedicated};
  EXPECT_GT(item_gain(critical, ded, 5.0), 0.0);
}

TEST(ItemGain, ConcaveInReplicaCount) {
  // Theorem 2: diminishing returns in x.
  const StepUtility step(1.0);
  const ExponentialUtility expu(0.3);
  const PowerUtility cost(0.0);
  const utility::DelayUtility* utilities[] = {&step, &expu, &cost};
  HomogeneousModel m{kMu, 50, 50, SystemMode::kDedicated};
  for (const auto* u : utilities) {
    double prev_delta = item_gain(*u, m, 2.0) - item_gain(*u, m, 1.0);
    for (double x = 2.0; x < 40.0; x += 1.0) {
      const double delta = item_gain(*u, m, x + 1.0) - item_gain(*u, m, x);
      EXPECT_GE(delta, -1e-12) << u->name();  // monotone
      EXPECT_LE(delta, prev_delta + 1e-12) << u->name();  // concave
      prev_delta = delta;
    }
  }
}

TEST(WelfareHomogeneous, SumsDemandWeightedGains) {
  StepUtility u(1.0);
  HomogeneousModel m{kMu, 50, 50, SystemMode::kDedicated};
  ItemCounts counts{{4.0, 1.0}};
  const std::vector<double> demand{2.0, 1.0};
  const double expected =
      2.0 * item_gain(u, m, 4.0) + 1.0 * item_gain(u, m, 1.0);
  EXPECT_NEAR(welfare_homogeneous(counts, demand, u, m), expected, 1e-12);
}

TEST(WelfareHomogeneous, Validation) {
  StepUtility u(1.0);
  HomogeneousModel m{kMu, 50, 50, SystemMode::kDedicated};
  EXPECT_THROW(
      welfare_homogeneous(ItemCounts{{1.0}}, {1.0, 2.0}, u, m),
      std::invalid_argument);
  EXPECT_THROW(
      welfare_homogeneous(ItemCounts{{1.0}}, {-1.0}, u, m),
      std::invalid_argument);
}

// Heterogeneous evaluation should reduce to the homogeneous closed form
// when the rate matrix is homogeneous and clients are not servers.
TEST(WelfareHeterogeneous, MatchesHomogeneousDedicated) {
  StepUtility u(1.0);
  const trace::NodeId S = 6, C = 4;
  const auto rates = trace::RateMatrix::homogeneous(S + C, kMu);
  std::vector<trace::NodeId> servers, clients;
  for (trace::NodeId s = 0; s < S; ++s) servers.push_back(s);
  for (trace::NodeId c = S; c < S + C; ++c) clients.push_back(c);

  Placement p(2, S, 2);
  p.add(0, 0);
  p.add(0, 1);
  p.add(0, 2);
  p.add(1, 3);
  const std::vector<double> demand{3.0, 1.0};

  const double het =
      welfare_heterogeneous(p, rates, demand, u, servers, clients);
  HomogeneousModel m{kMu, S, C, SystemMode::kDedicated};
  const double hom = welfare_homogeneous(p.counts(), demand, u, m);
  EXPECT_NEAR(het, hom, 1e-12);
}

TEST(WelfareHeterogeneous, MatchesHomogeneousPureP2p) {
  ExponentialUtility u(0.4);
  const trace::NodeId N = 8;
  const auto rates = trace::RateMatrix::homogeneous(N, kMu);
  Placement p(2, N, 2);
  p.add(0, 0);
  p.add(0, 3);
  p.add(1, 5);
  const std::vector<double> demand{2.0, 1.0};

  const double het = welfare_pure_p2p(p, rates, demand, u);
  HomogeneousModel m{kMu, N, N, SystemMode::kPureP2P};
  const double hom = welfare_homogeneous(p.counts(), demand, u, m);
  EXPECT_NEAR(het, hom, 1e-12);
}

// Regression: tabulated curves share the name "tabulated(N pts)", so a
// name-keyed dedup would silently evaluate every item with the first
// item's curve. The set evaluation must match summing per-item
// single-utility evaluations.
TEST(WelfareHeterogeneous, DistinctTabulatedCurvesKeepTheirOwnUtility) {
  const utility::TabulatedUtility fast({{0.0, 1.0}, {2.0, 0.0}});
  const utility::TabulatedUtility slow({{0.0, 1.0}, {40.0, 0.0}});
  const trace::NodeId S = 3, C = 2;
  const auto rates = trace::RateMatrix::homogeneous(S + C, kMu);
  std::vector<trace::NodeId> servers{0, 1, 2};
  std::vector<trace::NodeId> clients{3, 4};
  Placement p(2, S, 2);
  p.add(0, 0);
  p.add(1, 1);
  p.add(1, 2);
  const std::vector<double> demand{1.0, 2.0};

  std::vector<std::unique_ptr<utility::DelayUtility>> us;
  us.push_back(fast.clone());
  us.push_back(slow.clone());
  const utility::UtilitySet set(std::move(us));

  const double combined =
      welfare_heterogeneous(p, rates, demand, set, servers, clients);
  const double item0 =
      welfare_heterogeneous(p, rates, {1.0, 0.0}, fast, servers, clients);
  const double item1 =
      welfare_heterogeneous(p, rates, {0.0, 2.0}, slow, servers, clients);
  EXPECT_NEAR(combined, item0 + item1, 1e-12);
  EXPECT_NE(item0, item1);  // the curves really do differ
}

TEST(WelfareHeterogeneous, EmptyClientListThrows) {
  StepUtility u(1.0);
  const auto rates = trace::RateMatrix::homogeneous(3, kMu);
  Placement p(1, 2, 1);
  EXPECT_THROW(welfare_heterogeneous(p, rates, {1.0}, u, {0, 1}, {}),
               std::invalid_argument);
}

TEST(WelfareHeterogeneous, FasterPairsRaiseWelfare) {
  StepUtility u(1.0);
  trace::RateMatrix slow = trace::RateMatrix::homogeneous(4, 0.01);
  trace::RateMatrix fast = trace::RateMatrix::homogeneous(4, 0.2);
  Placement p(1, 4, 1);
  p.add(0, 0);
  const std::vector<double> demand{1.0};
  EXPECT_GT(welfare_pure_p2p(p, fast, demand, u),
            welfare_pure_p2p(p, slow, demand, u));
}

TEST(WelfareHeterogeneous, PopularityProfileWeighting) {
  StepUtility u(1.0);
  const auto rates = trace::RateMatrix::homogeneous(3, kMu);
  std::vector<trace::NodeId> servers{0};
  std::vector<trace::NodeId> clients{1, 2};
  Placement p(1, 1, 1);
  p.add(0, 0);
  const std::vector<double> demand{1.0};
  // All demand mass on client 1 must equal the uniform case here
  // (homogeneous rates), but the API must accept the profile.
  PopularityProfile profile;
  profile.pi = {{1.0, 0.0}};
  const double skewed = welfare_heterogeneous(p, rates, demand, u, servers,
                                              clients, profile);
  const double uniform =
      welfare_heterogeneous(p, rates, demand, u, servers, clients);
  EXPECT_NEAR(skewed, uniform, 1e-12);
}

TEST(MarginalGain, MatchesWelfareDifference) {
  ExponentialUtility u(0.5);
  util::Rng rng(3);
  trace::RateMatrix rates(5);
  for (trace::NodeId a = 0; a < 5; ++a) {
    for (trace::NodeId b = a + 1; b < 5; ++b) {
      rates.set(a, b, rng.uniform(0.01, 0.2));
    }
  }
  std::vector<trace::NodeId> nodes{0, 1, 2, 3, 4};
  const std::vector<double> demand{2.0, 1.0, 0.5};
  Placement p(3, 5, 2);
  p.add(0, 0);
  p.add(1, 2);

  const double before =
      welfare_heterogeneous(p, rates, demand, u, nodes, nodes);
  const double delta =
      marginal_gain(p, rates, demand, u, nodes, nodes, 0, 3);
  Placement q = p;
  q.add(0, 3);
  const double after =
      welfare_heterogeneous(q, rates, demand, u, nodes, nodes);
  EXPECT_NEAR(delta, after - before, 1e-10);
}

TEST(MarginalGain, SubmodularInPlacement) {
  // Theorem 1: the marginal of (item, server) shrinks as the item's
  // holder set grows.
  StepUtility u(1.0);
  const auto rates = trace::RateMatrix::homogeneous(6, kMu);
  std::vector<trace::NodeId> nodes{0, 1, 2, 3, 4, 5};
  const std::vector<double> demand{1.0};
  Placement small(1, 6, 1);
  small.add(0, 0);
  Placement large = small;
  large.add(0, 1);
  large.add(0, 2);
  const double d_small =
      marginal_gain(small, rates, demand, u, nodes, nodes, 0, 5);
  const double d_large =
      marginal_gain(large, rates, demand, u, nodes, nodes, 0, 5);
  EXPECT_GE(d_small, d_large - 1e-12);
  EXPECT_GE(d_large, -1e-12);  // monotone
}

TEST(MarginalGain, RejectsExistingReplica) {
  StepUtility u(1.0);
  const auto rates = trace::RateMatrix::homogeneous(3, kMu);
  std::vector<trace::NodeId> nodes{0, 1, 2};
  Placement p(1, 3, 1);
  p.add(0, 1);
  EXPECT_THROW(marginal_gain(p, rates, {1.0}, u, nodes, nodes, 0, 1),
               std::logic_error);
}

}  // namespace
}  // namespace impatience::alloc
