// Cross-solver property sweep: for random instances and every utility
// family, the solver hierarchy must hold:
//   relaxed optimum  >=  integer greedy  >=  every heuristic
// (in dedicated-node welfare, where the relaxation is exact), rounding
// must lose little, and the greedy must dominate the heuristics in the
// homogeneous model it optimizes.
#include <gtest/gtest.h>

#include "impatience/alloc/heuristics.hpp"
#include "impatience/alloc/rounding.hpp"
#include "impatience/alloc/solvers.hpp"
#include "impatience/util/rng.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::alloc {
namespace {

constexpr double kMu = 0.05;
constexpr double kServers = 30.0;
constexpr int kRho = 4;

std::unique_ptr<utility::DelayUtility> utility_case(int which) {
  switch (which) {
    case 0: return std::make_unique<utility::StepUtility>(2.0);
    case 1: return std::make_unique<utility::StepUtility>(50.0);
    case 2: return std::make_unique<utility::ExponentialUtility>(0.1);
    case 3: return std::make_unique<utility::PowerUtility>(0.0);
    case 4: return std::make_unique<utility::PowerUtility>(-1.0);
    case 5: return std::make_unique<utility::PowerUtility>(1.5);
    case 6: return std::make_unique<utility::NegLogUtility>();
    default: return nullptr;
  }
}

std::vector<double> random_demand(util::Rng& rng, std::size_t n) {
  std::vector<double> d(n);
  for (auto& v : d) v = rng.uniform(0.01, 1.0);
  return d;
}

class SolverHierarchyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(UtilitiesAndSeeds, SolverHierarchyTest,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(11, 22)));

TEST_P(SolverHierarchyTest, RelaxedDominatesGreedyDominatesHeuristics) {
  const auto [which, seed] = GetParam();
  const auto u = utility_case(which);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const auto demand = random_demand(rng, 25);
  const int capacity = kRho * static_cast<int>(kServers);
  HomogeneousModel model{kMu, static_cast<trace::NodeId>(kServers),
                         static_cast<trace::NodeId>(kServers),
                         SystemMode::kDedicated};

  const auto relaxed =
      relaxed_optimum(demand, *u, kMu, kServers, capacity);
  const auto greedy = homogeneous_greedy(demand, *u, model, capacity);

  auto welfare_of = [&](const ItemCounts& x) {
    ItemCounts clamped = x;
    for (double& v : clamped.x) v = std::max(v, 0.0);
    return welfare_homogeneous(clamped, demand, *u, model);
  };

  const double w_relaxed = welfare_of(relaxed);
  const double w_greedy = welfare_of(greedy);
  // Relaxation upper-bounds the integer optimum...
  EXPECT_GE(w_relaxed, w_greedy - 1e-9 * std::abs(w_greedy)) << u->name();

  // ...and the integer greedy (exact over integer allocations, Theorem 2)
  // beats every heuristic once the heuristic's fractional counts are
  // rounded to the same integer feasible set.
  const double capacity_d = static_cast<double>(capacity);
  const std::vector<ItemCounts> heuristics = {
      uniform_allocation(demand.size(), capacity_d, kServers),
      sqrt_allocation(demand, capacity_d, kServers),
      prop_allocation(demand, capacity_d, kServers),
      dom_allocation(demand, kRho, kServers),
  };
  for (const auto& h : heuristics) {
    const double w_h =
        welfare_of(round_counts(h, static_cast<int>(kServers)));
    EXPECT_GE(w_greedy, w_h - 1e-7 * std::max(1.0, std::abs(w_h)))
        << u->name();
  }
}

TEST_P(SolverHierarchyTest, RoundingLosesLittle) {
  const auto [which, seed] = GetParam();
  const auto u = utility_case(which);
  util::Rng rng(static_cast<std::uint64_t>(seed) + 5);
  const auto demand = random_demand(rng, 25);
  const int capacity = kRho * static_cast<int>(kServers);
  HomogeneousModel model{kMu, static_cast<trace::NodeId>(kServers),
                         static_cast<trace::NodeId>(kServers),
                         SystemMode::kDedicated};
  const auto relaxed =
      relaxed_optimum(demand, *u, kMu, kServers, capacity);
  const auto rounded =
      round_counts(relaxed, static_cast<int>(kServers));
  // Feasibility always holds.
  EXPECT_NEAR(rounded.total(), std::round(relaxed.total()), 1e-9);
  for (double v : rounded.x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, kServers);
  }
  // "Loses little" is only well-defined when dropping an item to zero
  // copies has finite cost; utilities unbounded below (neg-log, cost
  // powers) make any zero-count rounding catastrophic — a real hazard
  // users must avoid by keeping x_i >= 1 (sticky seeds do exactly that).
  bool dropped_item = false;
  for (std::size_t i = 0; i < rounded.x.size(); ++i) {
    if (rounded.x[i] == 0.0 && relaxed.x[i] > 0.0) dropped_item = true;
  }
  if (!std::isfinite(u->value_at_inf()) && dropped_item) {
    GTEST_SKIP() << "zero-count rounding with unbounded-below utility";
  }
  const auto greedy = homogeneous_greedy(demand, *u, model, capacity);
  const double w_rounded =
      welfare_homogeneous(rounded, demand, *u, model);
  const double w_greedy =
      welfare_homogeneous(greedy, demand, *u, model);
  // Within 10% of optimal (usually far closer); sign-safe comparison.
  const double slack = 0.1 * std::max(1.0, std::abs(w_greedy));
  EXPECT_GE(w_rounded, w_greedy - slack) << u->name();
}

TEST_P(SolverHierarchyTest, PlacementMatchesCountsExactly) {
  const auto [which, seed] = GetParam();
  const auto u = utility_case(which);
  util::Rng rng(static_cast<std::uint64_t>(seed) + 9);
  const auto demand = random_demand(rng, 25);
  const int capacity = kRho * static_cast<int>(kServers);
  HomogeneousModel model{kMu, static_cast<trace::NodeId>(kServers),
                         static_cast<trace::NodeId>(kServers),
                         SystemMode::kDedicated};
  const auto greedy = homogeneous_greedy(demand, *u, model, capacity);
  const auto placement = place_counts(
      greedy, static_cast<trace::NodeId>(kServers), kRho, rng);
  const auto realized = placement.counts();
  for (std::size_t i = 0; i < demand.size(); ++i) {
    EXPECT_DOUBLE_EQ(realized.x[i], greedy.x[i]) << u->name() << " i=" << i;
  }
  for (trace::NodeId s = 0; s < static_cast<trace::NodeId>(kServers); ++s) {
    EXPECT_LE(placement.server_load(s), kRho);
  }
}

}  // namespace
}  // namespace impatience::alloc
