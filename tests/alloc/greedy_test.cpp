// Greedy solvers against brute force (Theorems 1 and 2).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "impatience/alloc/solvers.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::alloc {
namespace {

using utility::ExponentialUtility;
using utility::PowerUtility;
using utility::StepUtility;

// Brute-force optimum over integer compositions x with sum <= capacity,
// 0 <= x_i <= |S|.
double brute_force_best(const std::vector<double>& demand,
                        const utility::DelayUtility& u,
                        const HomogeneousModel& m, int capacity) {
  const auto n = demand.size();
  std::vector<double> x(n, 0.0);
  double best = -std::numeric_limits<double>::infinity();
  const int cap_item = static_cast<int>(m.num_servers);
  std::function<void(std::size_t, int)> rec = [&](std::size_t i, int left) {
    if (i == n) {
      best = std::max(best, welfare_homogeneous({x}, demand, u, m));
      return;
    }
    for (int k = 0; k <= std::min(left, cap_item); ++k) {
      x[i] = k;
      rec(i + 1, left - k);
    }
    x[i] = 0.0;
  };
  rec(0, capacity);
  return best;
}

TEST(HomogeneousGreedy, MatchesBruteForceStep) {
  const std::vector<double> demand{5.0, 2.0, 1.0};
  StepUtility u(1.0);
  HomogeneousModel m{0.2, 4, 4, SystemMode::kDedicated};
  const auto counts = homogeneous_greedy(demand, u, m, 8);
  const double greedy_welfare = welfare_homogeneous(counts, demand, u, m);
  const double best = brute_force_best(demand, u, m, 8);
  EXPECT_NEAR(greedy_welfare, best, 1e-10);
}

TEST(HomogeneousGreedy, MatchesBruteForceExponential) {
  const std::vector<double> demand{4.0, 3.0, 2.0, 1.0};
  ExponentialUtility u(0.5);
  HomogeneousModel m{0.1, 5, 5, SystemMode::kPureP2P};
  const auto counts = homogeneous_greedy(demand, u, m, 10);
  EXPECT_NEAR(welfare_homogeneous(counts, demand, u, m),
              brute_force_best(demand, u, m, 10), 1e-10);
}

TEST(HomogeneousGreedy, MatchesBruteForceCostUtility) {
  const std::vector<double> demand{3.0, 1.0};
  PowerUtility u(0.0);
  HomogeneousModel m{0.2, 4, 4, SystemMode::kDedicated};
  const auto counts = homogeneous_greedy(demand, u, m, 6);
  EXPECT_NEAR(welfare_homogeneous(counts, demand, u, m),
              brute_force_best(demand, u, m, 6), 1e-10);
}

TEST(HomogeneousGreedy, CostUtilityCoversEveryItemFirst) {
  // With h -> -inf for unserved items, every item must get one copy
  // before any second copies are placed.
  std::vector<double> demand(10);
  for (std::size_t i = 0; i < 10; ++i) {
    demand[i] = 1.0 / static_cast<double>(i + 1);
  }
  PowerUtility u(0.0);
  HomogeneousModel m{0.05, 10, 10, SystemMode::kDedicated};
  const auto counts = homogeneous_greedy(demand, u, m, 10);
  for (double x : counts.x) EXPECT_GE(x, 1.0);
}

TEST(HomogeneousGreedy, RespectsCapacityAndItemCap) {
  std::vector<double> demand{100.0, 1.0};
  StepUtility u(10.0);
  HomogeneousModel m{0.05, 3, 3, SystemMode::kDedicated};
  const auto counts = homogeneous_greedy(demand, u, m, 6);
  EXPECT_LE(counts.total(), 6.0 + 1e-12);
  for (double x : counts.x) EXPECT_LE(x, 3.0);
}

TEST(HomogeneousGreedy, SkewsTowardsPopularItems) {
  std::vector<double> demand{10.0, 1.0};
  StepUtility u(1.0);
  HomogeneousModel m{0.05, 20, 20, SystemMode::kDedicated};
  const auto counts = homogeneous_greedy(demand, u, m, 10);
  EXPECT_GT(counts.x[0], counts.x[1]);
}

TEST(HomogeneousGreedy, Validation) {
  StepUtility u(1.0);
  HomogeneousModel m{0.05, 5, 5, SystemMode::kDedicated};
  EXPECT_THROW(homogeneous_greedy({}, u, m, 5), std::invalid_argument);
  EXPECT_THROW(homogeneous_greedy({1.0}, u, m, -1), std::invalid_argument);
}

// ------------------------------------------------------- lazy greedy

// Exhaustive search over all feasible placements of a tiny instance.
double brute_force_placement_best(const trace::RateMatrix& rates,
                                  const std::vector<double>& demand,
                                  const utility::DelayUtility& u,
                                  ItemId num_items, int capacity) {
  const trace::NodeId n = rates.num_nodes();
  std::vector<trace::NodeId> nodes(n);
  for (trace::NodeId i = 0; i < n; ++i) nodes[i] = i;
  double best = -std::numeric_limits<double>::infinity();
  Placement p(num_items, n, capacity);
  std::function<void(ItemId, trace::NodeId)> rec = [&](ItemId item,
                                                       trace::NodeId server) {
    if (item == num_items) {
      best = std::max(
          best, welfare_heterogeneous(p, rates, demand, u, nodes, nodes));
      return;
    }
    const ItemId next_item = server + 1 == n ? item + 1 : item;
    const trace::NodeId next_server =
        server + 1 == n ? 0 : static_cast<trace::NodeId>(server + 1);
    // Skip this (item, server).
    rec(next_item, next_server);
    // Or place it, capacity permitting.
    if (!p.server_full(server)) {
      p.add(item, server);
      rec(next_item, next_server);
      p.remove(item, server);
    }
  };
  rec(0, 0);
  return best;
}

TEST(LazyGreedy, NearOptimalOnTinyHeterogeneousInstance) {
  trace::RateMatrix rates(3);
  rates.set(0, 1, 0.3);
  rates.set(0, 2, 0.05);
  rates.set(1, 2, 0.1);
  const std::vector<double> demand{3.0, 1.0};
  StepUtility u(1.0);
  const auto placement = lazy_greedy_pure_p2p(rates, demand, u, 2, 1);
  std::vector<trace::NodeId> nodes{0, 1, 2};
  const double greedy =
      welfare_heterogeneous(placement, rates, demand, u, nodes, nodes);
  const double best = brute_force_placement_best(rates, demand, u, 2, 1);
  // Submodular + matroid constraint: greedy within the classical bound,
  // and on instances this small it is usually exactly optimal.
  EXPECT_GE(greedy, 0.5 * best - 1e-12);
  EXPECT_LE(greedy, best + 1e-12);
  EXPECT_GT(greedy, 0.95 * best);
}

TEST(LazyGreedy, FillsCapacityWhenProfitable) {
  const auto rates = trace::RateMatrix::homogeneous(5, 0.05);
  const std::vector<double> demand{4.0, 2.0, 1.0};
  ExponentialUtility u(0.2);
  const auto placement = lazy_greedy_pure_p2p(rates, demand, u, 3, 2);
  // Exponential marginals are strictly positive: all slots used.
  int total = 0;
  for (ItemId i = 0; i < 3; ++i) total += placement.count(i);
  EXPECT_EQ(total, 10);
}

TEST(LazyGreedy, MatchesHomogeneousGreedyCounts) {
  // On a homogeneous rate matrix the placement's per-item counts must
  // maximize the homogeneous welfare, i.e. equal the Theorem-2 greedy.
  const trace::NodeId N = 8;
  const auto rates = trace::RateMatrix::homogeneous(N, 0.1);
  const std::vector<double> demand{8.0, 4.0, 2.0, 1.0};
  StepUtility u(1.0);
  const auto placement = lazy_greedy_pure_p2p(rates, demand, u, 4, 2);
  HomogeneousModel m{0.1, N, N, SystemMode::kPureP2P};
  const auto exact = homogeneous_greedy(demand, u, m,
                                        2 * static_cast<int>(N));
  EXPECT_NEAR(welfare_homogeneous(placement.counts(), demand, u, m),
              welfare_homogeneous(exact, demand, u, m), 1e-9);
}

TEST(LazyGreedy, RespectsPerServerCapacity) {
  const auto rates = trace::RateMatrix::homogeneous(4, 0.05);
  const std::vector<double> demand{5.0, 3.0, 2.0, 1.0, 0.5};
  StepUtility u(1.0);
  const auto placement = lazy_greedy_pure_p2p(rates, demand, u, 5, 2);
  for (trace::NodeId s = 0; s < 4; ++s) {
    EXPECT_LE(placement.server_load(s), 2);
  }
}

TEST(LazyGreedy, Validation) {
  const auto rates = trace::RateMatrix::homogeneous(3, 0.05);
  StepUtility u(1.0);
  EXPECT_THROW(lazy_greedy_pure_p2p(rates, {1.0}, u, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(lazy_greedy_pure_p2p(rates, {1.0, 2.0}, u, 1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::alloc
