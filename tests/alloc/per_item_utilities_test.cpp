// Per-item delay-utilities through the allocation layer: the UtilitySet
// overloads must agree with the single-utility paths when all items share
// one utility, and must make per-item trade-offs when they differ.
#include <gtest/gtest.h>

#include "impatience/alloc/solvers.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::alloc {
namespace {

using utility::DelayUtility;
using utility::ExponentialUtility;
using utility::PowerUtility;
using utility::StepUtility;
using utility::UtilitySet;

constexpr double kMu = 0.05;

TEST(PerItemWelfare, UniformSetMatchesSingleUtility) {
  StepUtility u(1.0);
  UtilitySet set(u, 3);
  HomogeneousModel m{kMu, 20, 20, SystemMode::kPureP2P};
  const ItemCounts counts{{5.0, 3.0, 1.0}};
  const std::vector<double> demand{3.0, 2.0, 1.0};
  EXPECT_NEAR(welfare_homogeneous(counts, demand, set, m),
              welfare_homogeneous(counts, demand, u, m), 1e-12);
}

TEST(PerItemWelfare, MixedSetSumsPerItemGains) {
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(1.0));
  us.push_back(std::make_unique<ExponentialUtility>(0.5));
  UtilitySet set(std::move(us));
  HomogeneousModel m{kMu, 20, 20, SystemMode::kDedicated};
  const ItemCounts counts{{4.0, 2.0}};
  const std::vector<double> demand{2.0, 1.0};
  const double expected = 2.0 * item_gain(set[0], m, 4.0) +
                          1.0 * item_gain(set[1], m, 2.0);
  EXPECT_NEAR(welfare_homogeneous(counts, demand, set, m), expected, 1e-12);
}

TEST(PerItemWelfare, HeterogeneousUniformSetMatches) {
  ExponentialUtility u(0.3);
  UtilitySet set(u, 2);
  const auto rates = trace::RateMatrix::homogeneous(5, kMu);
  std::vector<trace::NodeId> nodes{0, 1, 2, 3, 4};
  Placement p(2, 5, 2);
  p.add(0, 0);
  p.add(1, 2);
  p.add(1, 3);
  const std::vector<double> demand{2.0, 1.0};
  EXPECT_NEAR(
      welfare_heterogeneous(p, rates, demand, set, nodes, nodes),
      welfare_heterogeneous(p, rates, demand, u, nodes, nodes), 1e-12);
}

TEST(PerItemWelfare, SizeMismatchThrows) {
  StepUtility u(1.0);
  UtilitySet set(u, 2);
  HomogeneousModel m{kMu, 20, 20, SystemMode::kPureP2P};
  EXPECT_THROW(
      welfare_homogeneous(ItemCounts{{1.0, 2.0, 3.0}}, {1.0, 1.0, 1.0}, set,
                          m),
      std::invalid_argument);
}

TEST(PerItemGreedy, UniformSetMatchesSingleUtility) {
  StepUtility u(2.0);
  UtilitySet set(u, 4);
  HomogeneousModel m{kMu, 10, 10, SystemMode::kPureP2P};
  const std::vector<double> demand{4.0, 3.0, 2.0, 1.0};
  const auto a = homogeneous_greedy(demand, u, m, 12);
  const auto b = homogeneous_greedy(demand, set, m, 12);
  EXPECT_EQ(a.x, b.x);
}

TEST(PerItemGreedy, ImpatientItemsGetMoreReplicas) {
  // Same demand everywhere; one item has a much tighter deadline, so the
  // optimum gives it more replicas.
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(1.0));    // urgent
  us.push_back(std::make_unique<StepUtility>(500.0));  // relaxed
  UtilitySet set(std::move(us));
  HomogeneousModel m{kMu, 20, 20, SystemMode::kDedicated};
  const std::vector<double> demand{1.0, 1.0};
  const auto counts = homogeneous_greedy(demand, set, m, 10);
  EXPECT_GT(counts.x[0], counts.x[1]);
}

TEST(PerItemRelaxed, BalanceUsesPerItemPhi) {
  // d_i phi_i(x_i) must be equalized across interior items even when the
  // items have different utility families.
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<ExponentialUtility>(0.2));
  us.push_back(std::make_unique<ExponentialUtility>(2.0));
  us.push_back(std::make_unique<StepUtility>(5.0));
  UtilitySet set(std::move(us));
  const std::vector<double> demand{1.0, 1.0, 1.0};
  const auto x = relaxed_optimum(demand, set, kMu, 40.0, 30.0);
  EXPECT_NEAR(x.total(), 30.0, 1e-4);
  const double l0 = demand[0] * utility::phi(set[0], kMu, x.x[0]);
  const double l1 = demand[1] * utility::phi(set[1], kMu, x.x[1]);
  const double l2 = demand[2] * utility::phi(set[2], kMu, x.x[2]);
  EXPECT_NEAR(l0, l1, 1e-5 * l0);
  EXPECT_NEAR(l0, l2, 1e-5 * l0);
}

TEST(PerItemRelaxed, UniformSetMatchesSingleUtility) {
  PowerUtility u(0.0);
  UtilitySet set(u, 5);
  const std::vector<double> demand{5.0, 4.0, 3.0, 2.0, 1.0};
  const auto a = relaxed_optimum(demand, u, kMu, 30.0, 25.0);
  const auto b = relaxed_optimum(demand, set, kMu, 30.0, 25.0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(a.x[i], b.x[i], 1e-6);
  }
}

TEST(PerItemLazyGreedy, UniformSetMatchesSingleUtility) {
  const auto rates = trace::RateMatrix::homogeneous(6, kMu);
  const std::vector<double> demand{4.0, 2.0, 1.0};
  StepUtility u(2.0);
  UtilitySet set(u, 3);
  std::vector<trace::NodeId> nodes{0, 1, 2, 3, 4, 5};
  const auto a =
      lazy_greedy_placement(rates, demand, u, nodes, nodes, 3, 2);
  const auto b =
      lazy_greedy_placement(rates, demand, set, nodes, nodes, 3, 2);
  EXPECT_EQ(a.counts().x, b.counts().x);
}

TEST(PerItemLazyGreedy, SizeMismatchThrows) {
  const auto rates = trace::RateMatrix::homogeneous(3, kMu);
  StepUtility u(1.0);
  UtilitySet set(u, 2);
  std::vector<trace::NodeId> nodes{0, 1, 2};
  EXPECT_THROW(
      lazy_greedy_placement(rates, {1.0, 1.0, 1.0}, set, nodes, nodes, 3, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace impatience::alloc
