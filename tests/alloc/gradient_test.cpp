// The projected-gradient relaxed solver against the dual-bisection one
// (Theorem 2 mentions both; the objective is concave so they must agree).
#include <gtest/gtest.h>

#include <cmath>

#include "impatience/alloc/solvers.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::alloc {
namespace {

using utility::ExponentialUtility;
using utility::PowerUtility;
using utility::StepUtility;

constexpr double kMu = 0.05;

std::vector<double> pareto_demand(std::size_t n) {
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = 1.0 / static_cast<double>(i + 1);
  }
  return d;
}

double dedicated_welfare(const ItemCounts& x,
                         const std::vector<double>& demand,
                         const utility::DelayUtility& u,
                         double num_servers) {
  HomogeneousModel m{kMu, static_cast<trace::NodeId>(num_servers),
                     static_cast<trace::NodeId>(num_servers),
                     SystemMode::kDedicated};
  ItemCounts clamped = x;
  for (double& v : clamped.x) v = std::max(v, 1e-9);
  return welfare_homogeneous(clamped, demand, u, m);
}

class GradientAgreementTest : public ::testing::TestWithParam<int> {};

std::unique_ptr<utility::DelayUtility> utility_case(int which) {
  switch (which) {
    case 0: return std::make_unique<StepUtility>(5.0);
    case 1: return std::make_unique<ExponentialUtility>(0.3);
    case 2: return std::make_unique<PowerUtility>(0.0);
    case 3: return std::make_unique<PowerUtility>(1.5);
    default: return nullptr;
  }
}

INSTANTIATE_TEST_SUITE_P(Utilities, GradientAgreementTest,
                         ::testing::Range(0, 4));

TEST_P(GradientAgreementTest, MatchesDualBisectionWelfare) {
  const auto u = utility_case(GetParam());
  const auto demand = pareto_demand(20);
  const double servers = 40.0, capacity = 100.0;
  const auto dual = relaxed_optimum(demand, *u, kMu, servers, capacity);
  const auto grad = relaxed_gradient(demand, *u, kMu, servers, capacity);
  EXPECT_NEAR(grad.total(), capacity, 1e-6 * capacity);
  const double w_dual = dedicated_welfare(dual, demand, *u, servers);
  const double w_grad = dedicated_welfare(grad, demand, *u, servers);
  // Concave objective: the two solvers must land on the same value.
  EXPECT_NEAR(w_grad, w_dual, 2e-3 * std::abs(w_dual)) << u->name();
}

TEST(RelaxedGradient, RespectsBoxConstraints) {
  const std::vector<double> demand{100.0, 1.0, 1.0};
  StepUtility u(10.0);
  const auto x = relaxed_gradient(demand, u, kMu, 5.0, 12.0);
  for (double v : x.x) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 5.0 + 1e-9);
  }
  EXPECT_NEAR(x.total(), 12.0, 1e-6);
}

TEST(RelaxedGradient, PerItemUtilitySet) {
  std::vector<std::unique_ptr<utility::DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(1.0));
  us.push_back(std::make_unique<StepUtility>(100.0));
  utility::UtilitySet set(std::move(us));
  const std::vector<double> demand{1.0, 1.0};
  const auto dual = relaxed_optimum(demand, set, kMu, 30.0, 20.0);
  const auto grad = relaxed_gradient(demand, set, kMu, 30.0, 20.0);
  EXPECT_NEAR(grad.x[0], dual.x[0], 0.3);
  EXPECT_NEAR(grad.x[1], dual.x[1], 0.3);
}

TEST(RelaxedGradient, Validation) {
  StepUtility u(1.0);
  EXPECT_THROW(relaxed_gradient({}, u, kMu, 10.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(relaxed_gradient({1.0}, u, 0.0, 10.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(relaxed_gradient({1.0}, u, kMu, 10.0, 50.0),
               std::invalid_argument);
  utility::UtilitySet set(u, 2);
  EXPECT_THROW(relaxed_gradient({1.0}, set, kMu, 10.0, 5.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::alloc
