#include "impatience/alloc/rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace impatience::alloc {
namespace {

TEST(RoundCounts, PreservesIntegerInput) {
  const auto r = round_counts(ItemCounts{{3.0, 1.0, 0.0}}, 10);
  EXPECT_DOUBLE_EQ(r.x[0], 3.0);
  EXPECT_DOUBLE_EQ(r.x[1], 1.0);
  EXPECT_DOUBLE_EQ(r.x[2], 0.0);
}

TEST(RoundCounts, LargestRemainderWins) {
  // total = 4; fractional parts 0.9 and 0.1: the 0.9 one rounds up.
  const auto r = round_counts(ItemCounts{{1.9, 2.1}}, 10);
  EXPECT_DOUBLE_EQ(r.x[0], 2.0);
  EXPECT_DOUBLE_EQ(r.x[1], 2.0);
}

TEST(RoundCounts, TotalMatchesRoundedInputTotal) {
  const ItemCounts input{{1.3, 2.3, 0.4, 5.0}};  // total 9.0
  const auto r = round_counts(input, 10);
  EXPECT_DOUBLE_EQ(r.total(), 9.0);
}

TEST(RoundCounts, RespectsItemCap) {
  const auto r = round_counts(ItemCounts{{5.0, 4.6}}, 5);
  EXPECT_LE(r.x[0], 5.0);
  EXPECT_LE(r.x[1], 5.0);
  EXPECT_DOUBLE_EQ(r.total(), 10.0);
}

TEST(RoundCounts, Validation) {
  EXPECT_THROW(round_counts(ItemCounts{{-1.0}}, 5), std::invalid_argument);
  EXPECT_THROW(round_counts(ItemCounts{{6.0}}, 5), std::invalid_argument);
  EXPECT_THROW(round_counts(ItemCounts{{1.0}}, 0), std::invalid_argument);
}

TEST(PlaceCounts, ExactCountsAndCapacity) {
  util::Rng rng(1);
  const ItemCounts counts{{3.0, 2.0, 2.0, 1.0}};  // total 8 = 4 servers x 2
  const auto p = place_counts(counts, 4, 2, rng);
  for (ItemId i = 0; i < 4; ++i) {
    EXPECT_EQ(p.count(i), static_cast<int>(counts.x[i]));
  }
  for (trace::NodeId s = 0; s < 4; ++s) {
    EXPECT_LE(p.server_load(s), 2);
  }
}

TEST(PlaceCounts, DistinctServersPerItem) {
  util::Rng rng(2);
  const auto p = place_counts(ItemCounts{{4.0}}, 4, 2, rng);
  // 4 copies over 4 servers: every server holds exactly one.
  for (trace::NodeId s = 0; s < 4; ++s) {
    EXPECT_TRUE(p.has(0, s));
  }
}

TEST(PlaceCounts, TightFeasibleInstance) {
  util::Rng rng(3);
  // Full capacity: 3 servers x 2 slots, items {2, 2, 1, 1}.
  const auto p = place_counts(ItemCounts{{2.0, 2.0, 1.0, 1.0}}, 3, 2, rng);
  int total = 0;
  for (ItemId i = 0; i < 4; ++i) total += p.count(i);
  EXPECT_EQ(total, 6);
}

TEST(PlaceCounts, DomStylePlacement) {
  util::Rng rng(4);
  // Every server holds the same rho items (the DOM allocation).
  const auto p = place_counts(ItemCounts{{5.0, 5.0, 0.0}}, 5, 2, rng);
  for (trace::NodeId s = 0; s < 5; ++s) {
    EXPECT_TRUE(p.has(0, s));
    EXPECT_TRUE(p.has(1, s));
    EXPECT_FALSE(p.has(2, s));
  }
}

TEST(PlaceCounts, RandomizedButValidAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const ItemCounts counts{{3.0, 3.0, 2.0, 2.0, 2.0}};  // total 12 = 6x2
    const auto p = place_counts(counts, 6, 2, rng);
    for (ItemId i = 0; i < 5; ++i) {
      EXPECT_EQ(p.count(i), static_cast<int>(counts.x[i]));
    }
  }
}

TEST(PlaceCounts, Validation) {
  util::Rng rng(5);
  EXPECT_THROW(place_counts(ItemCounts{{1.5}}, 3, 1, rng),
               std::invalid_argument);  // non-integer
  EXPECT_THROW(place_counts(ItemCounts{{4.0}}, 3, 2, rng),
               std::invalid_argument);  // count > |S|
  EXPECT_THROW(place_counts(ItemCounts{{2.0, 2.0}}, 3, 1, rng),
               std::invalid_argument);  // total > rho |S|
}

}  // namespace
}  // namespace impatience::alloc
