// Per-item delay-utilities through the simulator and the experiment
// drivers: gains must be recorded with each item's own h_i, and the QCR
// reaction must be tuned per item.
#include <gtest/gtest.h>

#include "impatience/core/experiment.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::DelayUtility;
using utility::StepUtility;
using utility::UtilitySet;

Scenario small_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trace = trace::generate_poisson({12, 800, 0.08}, rng);
  return make_scenario(std::move(trace), Catalog::pareto(6, 1.0, 0.5), 3);
}

UtilitySet step_set(std::initializer_list<double> taus) {
  std::vector<std::unique_ptr<DelayUtility>> us;
  for (double tau : taus) us.push_back(std::make_unique<StepUtility>(tau));
  return UtilitySet(std::move(us));
}

TEST(PerItemSimulation, UniformSetMatchesSingleUtilityRun) {
  const auto s = small_scenario(1);
  StepUtility u(5.0);
  UtilitySet set(u, 6);
  auto run = [&](auto&& utility_arg) {
    StaticPolicy policy;
    alloc::Placement p(6, 12, 3);
    for (ItemId i = 0; i < 6; ++i) {
      p.add(i, static_cast<NodeId>(i));
      p.add(i, static_cast<NodeId>(i + 6));
    }
    SimOptions options;
    options.cache_capacity = 3;
    options.sticky_replicas = false;
    options.initial_placement = p;
    util::Rng rng(99);
    return simulate(s.trace, s.catalog, utility_arg, policy, options, rng);
  };
  const auto a = run(u);
  const auto b = run(set);
  EXPECT_DOUBLE_EQ(a.total_gain, b.total_gain);
  EXPECT_EQ(a.fulfillments, b.fulfillments);
}

TEST(PerItemSimulation, GainsUsePerItemUtility) {
  // Item deadlines of zero-ish vs huge: only the relaxed item can earn
  // gains from meeting fulfilments (delay >= 1 slot > tau of the urgent
  // item... so make urgent tau = 0.5: every fulfilment worth 0, immediate
  // own-cache hits worth 1).
  const auto s = small_scenario(2);
  const auto set = step_set({0.5, 1000, 1000, 1000, 1000, 1000});
  util::Rng rng(7);
  const auto result = run_qcr(s, set, QcrOptions{}, SimOptions{}, rng);
  // Total gain from meetings is bounded by fulfilments of items 1..5 and
  // all gains are 0 or 1 under step utilities.
  EXPECT_LE(result.total_gain,
            static_cast<double>(result.fulfillments +
                                result.immediate_fulfillments));
  EXPECT_GT(result.total_gain, 0.0);
}

TEST(PerItemSimulation, QcrRunsWithMixedFamilies) {
  const auto s = small_scenario(3);
  std::vector<std::unique_ptr<DelayUtility>> us;
  us.push_back(std::make_unique<StepUtility>(10.0));
  us.push_back(std::make_unique<utility::ExponentialUtility>(0.1));
  us.push_back(std::make_unique<utility::PowerUtility>(0.0));
  us.push_back(std::make_unique<StepUtility>(50.0));
  us.push_back(std::make_unique<utility::ExponentialUtility>(1.0));
  us.push_back(std::make_unique<utility::PowerUtility>(-0.5));
  UtilitySet set(std::move(us));
  util::Rng rng(11);
  const auto result = run_qcr(s, set, QcrOptions{}, SimOptions{}, rng);
  EXPECT_GT(result.fulfillments, 0u);
  EXPECT_GT(result.replicas_written, 0);
}

TEST(PerItemSimulation, CompetitorsAcceptUtilitySet) {
  const auto s = small_scenario(4);
  const auto set = step_set({1, 5, 10, 50, 100, 500});
  util::Rng rng(13);
  for (auto mode : {OptMode::kHomogeneous, OptMode::kEstimated}) {
    const auto competitors = build_competitors(s, set, mode, rng);
    ASSERT_EQ(competitors.size(), 5u);
    util::Rng run_rng(14);
    const auto result = run_fixed(s, set, "OPT", competitors[0].placement,
                                  SimOptions{}, run_rng);
    EXPECT_EQ(result.policy, "OPT");
  }
}

TEST(PerItemSimulation, PerItemOptBeatsWrongUniformOpt) {
  // Items 0..2 urgent (tau=2), items 3..5 relaxed (tau=500), equal
  // demand. An OPT computed from the true per-item utilities should beat
  // (or match) an OPT computed as if every item had tau=500.
  util::Rng rng(15);
  auto trace = trace::generate_poisson({12, 1500, 0.08}, rng);
  auto s = make_scenario(std::move(trace),
                         Catalog(std::vector<double>(6, 0.1)), 3);
  const auto truth = step_set({2, 2, 2, 500, 500, 500});
  StepUtility wrong(500.0);

  util::Rng pr1(16), pr2(16);
  const auto right_opt = build_competitors(s, truth, OptMode::kHomogeneous,
                                           pr1)[0].placement;
  const auto wrong_opt = build_competitors(s, wrong, OptMode::kHomogeneous,
                                           pr2)[0].placement;
  double u_right = 0.0, u_wrong = 0.0;
  for (int t = 0; t < 3; ++t) {
    util::Rng r1(100 + t), r2(100 + t);
    u_right += run_fixed(s, truth, "OPT", right_opt, SimOptions{}, r1)
                   .observed_utility();
    u_wrong += run_fixed(s, truth, "OPT", wrong_opt, SimOptions{}, r2)
                   .observed_utility();
  }
  EXPECT_GE(u_right, u_wrong - 0.05 * std::abs(u_wrong));
}

TEST(PerItemSimulation, SizeMismatchThrows) {
  const auto s = small_scenario(5);
  const auto set = step_set({1, 2});
  util::Rng rng(17);
  EXPECT_THROW(run_qcr(s, set, QcrOptions{}, SimOptions{}, rng),
               std::invalid_argument);
  EXPECT_THROW(build_competitors(s, set, OptMode::kHomogeneous, rng),
               std::invalid_argument);
  StaticPolicy policy;
  EXPECT_THROW(simulate(s.trace, s.catalog, set, policy, SimOptions{}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace impatience::core
