// QCR protocol mechanics: mandate creation, no-rewriting execution,
// routing rules and the sticky-seeder preference (Sections 5.1-5.3, 6.1).
#include "impatience/core/policy.hpp"

#include <gtest/gtest.h>

namespace impatience::core {
namespace {

Node make_server(NodeId id, std::initializer_list<ItemId> items,
                 int capacity = 5) {
  Node n(id, 10, capacity, true, true);
  util::Rng rng(id + 100);
  for (ItemId i : items) n.cache().insert_random_replace(i, rng);
  return n;
}

TEST(QcrPolicy, FulfillmentCreatesReactionMandates) {
  QcrPolicy policy("QCR", [](double y) { return y; },
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {});
  Node b = make_server(1, {3});
  util::Rng rng(1);
  policy.on_fulfillment(a, b, 3, 4, rng);
  EXPECT_EQ(a.mandates().count(3), 4);
  EXPECT_EQ(policy.mandates_created(), 4);
}

TEST(QcrPolicy, StochasticRoundingOfFractionalReaction) {
  QcrPolicy policy("QCR", [](double) { return 0.5; },
                   QcrPolicy::MandateRouting::kOn);
  util::Rng rng(2);
  long total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Node a = make_server(0, {});
    Node b = make_server(1, {3});
    policy.on_fulfillment(a, b, 3, 1, rng);
    total += a.mandates().count(3);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 0.5, 0.02);
}

TEST(QcrPolicy, ZeroQueryCountCreatesNothing) {
  // Immediate self-fulfilment involves no meeting: no mandates.
  QcrPolicy policy("QCR", [](double) { return 5.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {});
  Node b = make_server(1, {3});
  util::Rng rng(3);
  policy.on_fulfillment(a, b, 3, 0, rng);
  EXPECT_EQ(a.mandates().total(), 0);
}

TEST(QcrPolicy, ExecutionCopiesToLackingNode) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node holder = make_server(0, {3});
  Node lacking = make_server(1, {});
  holder.mandates().add(3, 1);
  util::Rng rng(4);
  policy.on_meeting_complete(holder, lacking, rng);
  EXPECT_TRUE(lacking.holds(3));
  EXPECT_EQ(holder.mandates().count(3) + lacking.mandates().count(3), 0);
  EXPECT_EQ(policy.replicas_written(), 1);
}

TEST(QcrPolicy, NoRewritingWhenBothHold) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {3});
  Node b = make_server(1, {3});
  a.mandates().add(3, 2);
  util::Rng rng(5);
  policy.on_meeting_complete(a, b, rng);
  // Mandates retained (split between the two holders), no execution.
  EXPECT_EQ(policy.replicas_written(), 0);
  EXPECT_EQ(a.mandates().count(3) + b.mandates().count(3), 2);
  EXPECT_EQ(a.mandates().count(3), 1);
}

TEST(QcrPolicy, NoExecutionWhenNeitherHolds) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {});
  Node b = make_server(1, {});
  a.mandates().add(3, 3);
  util::Rng rng(6);
  policy.on_meeting_complete(a, b, rng);
  EXPECT_EQ(policy.replicas_written(), 0);
  // Even split when neither holds the item.
  EXPECT_EQ(a.mandates().count(3) + b.mandates().count(3), 3);
  EXPECT_GE(a.mandates().count(3), 1);
  EXPECT_GE(b.mandates().count(3), 1);
}

TEST(QcrPolicy, AtMostOneExecutionPerItemPerMeeting) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node holder = make_server(0, {3});
  Node lacking = make_server(1, {});
  holder.mandates().add(3, 5);
  util::Rng rng(7);
  policy.on_meeting_complete(holder, lacking, rng);
  EXPECT_EQ(policy.replicas_written(), 1);
  // Remaining 4 mandates split between two holders.
  EXPECT_EQ(holder.mandates().count(3) + lacking.mandates().count(3), 4);
}

TEST(QcrPolicy, MandateAtNonHolderCannotExecute) {
  // A mandate replicates the holder's copy; sitting at a node without the
  // replica it is inert — this is the stall mandate routing repairs.
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOff);
  Node holder = make_server(0, {4});
  Node carrier = make_server(1, {});
  carrier.mandates().add(4, 4);
  util::Rng rng(8);
  policy.on_meeting_complete(holder, carrier, rng);
  EXPECT_EQ(policy.replicas_written(), 0);
  EXPECT_FALSE(carrier.holds(4));
  EXPECT_EQ(carrier.mandates().count(4), 4);  // no routing: stays put
}

TEST(QcrPolicy, RoutingMovesMandatesToHolder) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node holder = make_server(0, {4});
  Node carrier = make_server(1, {});
  carrier.mandates().add(4, 4);
  util::Rng rng(8);
  policy.on_meeting_complete(holder, carrier, rng);
  // Nothing executes this meeting (the holder had no mandates at
  // execution time), but all mandates are routed to the holder so the
  // next meeting can execute them.
  EXPECT_EQ(policy.replicas_written(), 0);
  EXPECT_EQ(holder.mandates().count(4), 4);
  EXPECT_EQ(carrier.mandates().count(4), 0);

  // Second meeting with a lacking node: now it executes.
  Node other = make_server(2, {});
  policy.on_meeting_complete(holder, other, rng);
  EXPECT_EQ(policy.replicas_written(), 1);
  EXPECT_TRUE(other.holds(4));
}

TEST(QcrPolicy, RoutingOffLeavesMandatesInPlace) {
  QcrPolicy policy("QCR-noMR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOff);
  Node a = make_server(0, {});
  Node b = make_server(1, {});
  a.mandates().add(3, 4);
  util::Rng rng(9);
  policy.on_meeting_complete(a, b, rng);
  EXPECT_EQ(a.mandates().count(3), 4);
  EXPECT_EQ(b.mandates().count(3), 0);
}

TEST(QcrPolicy, StickySeederGetsTwoThirds) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  util::Rng rng(10);
  double to_sticky = 0.0, total = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    Node seeder(0, 10, 5, true, true);
    seeder.cache().pin_sticky(4);
    Node other = make_server(1, {4});
    other.mandates().add(4, 3);
    policy.on_meeting_complete(seeder, other, rng);
    to_sticky += static_cast<double>(seeder.mandates().count(4));
    total += 3.0;
  }
  EXPECT_NEAR(to_sticky / total, 2.0 / 3.0, 0.03);
}

TEST(QcrPolicy, StickySeederGetsAllWhenPartnerLacksItem) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node seeder(0, 10, 5, true, true);
  seeder.cache().pin_sticky(4);
  Node other = make_server(1, {});
  other.mandates().add(4, 3);
  util::Rng rng(11);
  policy.on_meeting_complete(seeder, other, rng);
  // The mandates sat at the non-holder, so nothing executes; the sticky
  // seeder receives all of them ("all of them if the item has been erased
  // on this node", Section 6.1).
  EXPECT_EQ(policy.replicas_written(), 0);
  EXPECT_EQ(seeder.mandates().count(4), 3);
  EXPECT_EQ(other.mandates().count(4), 0);
}

TEST(QcrPolicy, MandateConservationAcrossMeetings) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {1, 2});
  Node b = make_server(1, {2});
  a.mandates().add(1, 3);
  b.mandates().add(2, 5);
  const long before = a.mandates().total() + b.mandates().total();
  util::Rng rng(12);
  policy.on_meeting_complete(a, b, rng);
  const long after = a.mandates().total() + b.mandates().total();
  EXPECT_EQ(before - after, policy.replicas_written());
}

TEST(QcrPolicy, ClientOnlyNodeCannotReceiveReplica) {
  QcrPolicy policy("QCR", [](double) { return 1.0; },
                   QcrPolicy::MandateRouting::kOn);
  Node holder = make_server(0, {3});
  Node client(1, 10, 5, false, true);
  holder.mandates().add(3, 2);
  util::Rng rng(13);
  policy.on_meeting_complete(holder, client, rng);
  EXPECT_EQ(policy.replicas_written(), 0);
  // Routing still prefers the holder.
  EXPECT_EQ(holder.mandates().count(3), 2);
}

TEST(QcrPolicy, NullReactionRejected) {
  EXPECT_THROW(QcrPolicy("bad", std::function<double(double)>(),
                         QcrPolicy::MandateRouting::kOn),
               std::invalid_argument);
  EXPECT_THROW(QcrPolicy("bad", QcrPolicy::ItemReaction(),
                         QcrPolicy::MandateRouting::kOn),
               std::invalid_argument);
}

TEST(QcrPolicy, PerItemReaction) {
  // Item 1 replicates three per fulfilment, item 2 one.
  QcrPolicy policy("QCR",
                   QcrPolicy::ItemReaction([](ItemId item, double) {
                     return item == 1 ? 3.0 : 1.0;
                   }),
                   QcrPolicy::MandateRouting::kOn);
  Node a = make_server(0, {});
  Node b = make_server(1, {1, 2});
  util::Rng rng(17);
  policy.on_fulfillment(a, b, 1, 4, rng);
  policy.on_fulfillment(a, b, 2, 4, rng);
  EXPECT_EQ(a.mandates().count(1), 3);
  EXPECT_EQ(a.mandates().count(2), 1);
}

TEST(QcrPolicy, MandateCapSaturates) {
  QcrPolicy policy("QCR", [](double) { return 100.0; },
                   QcrPolicy::MandateRouting::kOn, /*cap=*/10);
  Node a = make_server(0, {});
  Node b = make_server(1, {3});
  util::Rng rng(18);
  policy.on_fulfillment(a, b, 3, 4, rng);
  EXPECT_EQ(a.mandates().count(3), 10);
  policy.on_fulfillment(a, b, 3, 4, rng);
  EXPECT_EQ(a.mandates().count(3), 10);  // saturated, no growth
  EXPECT_EQ(policy.mandates_created(), 10);
}

TEST(QcrPolicy, BadMandateCapRejected) {
  EXPECT_THROW(QcrPolicy("bad", [](double) { return 1.0; },
                         QcrPolicy::MandateRouting::kOn, 0),
               std::invalid_argument);
}

TEST(PassivePolicy, ConstantReaction) {
  auto policy = make_passive_policy(2.0);
  Node a = make_server(0, {});
  Node b = make_server(1, {3});
  util::Rng rng(14);
  policy->on_fulfillment(a, b, 3, 9, rng);
  EXPECT_EQ(a.mandates().count(3), 2);  // independent of the counter
  EXPECT_EQ(policy->name(), "PASSIVE");
}

TEST(PathReplicationPolicy, LinearReaction) {
  auto policy = make_path_replication_policy(1.0);
  Node a = make_server(0, {});
  Node b = make_server(1, {3});
  util::Rng rng(15);
  policy->on_fulfillment(a, b, 3, 7, rng);
  EXPECT_EQ(a.mandates().count(3), 7);
}

TEST(PolicyFactories, Validation) {
  EXPECT_THROW(make_passive_policy(0.0), std::invalid_argument);
  EXPECT_THROW(make_path_replication_policy(-1.0), std::invalid_argument);
}

TEST(StaticPolicy, DoesNothing) {
  StaticPolicy policy;
  Node a = make_server(0, {1});
  Node b = make_server(1, {});
  a.mandates().add(1, 2);
  util::Rng rng(16);
  policy.on_fulfillment(a, b, 1, 3, rng);
  policy.on_meeting_complete(a, b, rng);
  EXPECT_FALSE(b.holds(1));
  EXPECT_EQ(a.mandates().count(1), 2);
}

}  // namespace
}  // namespace impatience::core
