// Per-node popularity profiles pi_{i,n} (Section 3.3) through the demand
// process, the simulator and the Lemma-1 greedy.
#include <gtest/gtest.h>

#include "impatience/core/experiment.hpp"
#include "impatience/trace/generators.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::StepUtility;

TEST(Popularity, SimulatorRoutesDemandToProfiledNodes) {
  // All demand for item 0 comes from node 0; a trace where node 0 only
  // ever meets node 1 (which holds item 0) must fulfil everything there.
  std::vector<trace::ContactEvent> events;
  for (trace::Slot s = 0; s < 200; s += 2) events.push_back({s, 0, 1});
  trace::ContactTrace t(3, 200, std::move(events));
  Catalog catalog({0.2, 0.2});

  alloc::PopularityProfile profile;
  profile.pi = {{1.0, 0.0, 0.0},   // item 0: only node 0 asks
                {0.0, 0.0, 1.0}};  // item 1: only node 2 asks (isolated!)
  SimOptions options;
  options.cache_capacity = 2;
  options.sticky_replicas = false;
  options.censor_pending_at_end = false;
  alloc::Placement p(2, 3, 2);
  p.add(0, 1);  // node 1 serves item 0
  p.add(1, 1);  // ... and would serve item 1, but node 2 never meets it
  options.initial_placement = p;
  options.popularity = profile;

  StaticPolicy policy;
  StepUtility u(1000.0);
  util::Rng rng(1);
  const auto result = simulate(t, catalog, u, policy, options, rng);
  // Node 2's item-1 requests can never be fulfilled; node 0's item-0
  // requests all can.
  EXPECT_GT(result.fulfillments, 0u);
  EXPECT_EQ(result.censored_requests + result.fulfillments +
                result.immediate_fulfillments,
            result.requests_created);
  EXPECT_GT(result.censored_requests, 0u);
}

TEST(Popularity, ProfileSizeMismatchThrows) {
  util::Rng rng(2);
  const auto t = trace::generate_poisson({4, 100, 0.1}, rng);
  Catalog catalog({1.0, 1.0});
  SimOptions options;
  options.cache_capacity = 1;
  alloc::PopularityProfile profile;
  profile.pi = {{1.0, 0.0, 0.0, 0.0}};  // one row, two items
  options.popularity = profile;
  StaticPolicy policy;
  StepUtility u(5.0);
  EXPECT_THROW(simulate(t, catalog, u, policy, options, rng),
               std::invalid_argument);
}

TEST(Popularity, GreedyPlacesReplicasNearDemand) {
  // Two communities with rare cross-contact; item 0 demanded only in
  // community 0, item 1 only in community 1. The popularity-aware greedy
  // must place each item's replicas inside the demanding community.
  util::Rng rng(3);
  trace::CommunityTraceParams params;
  params.num_nodes = 10;
  params.duration = 4000;
  params.num_communities = 2;
  params.intra_rate = 0.15;
  params.inter_rate = 0.001;
  const auto t = generate_community_trace(params, rng);
  const auto rates = trace::estimate_rates(t);

  std::vector<trace::NodeId> nodes(10);
  for (trace::NodeId n = 0; n < 10; ++n) nodes[n] = n;
  const std::vector<double> demand{1.0, 1.0};
  alloc::PopularityProfile profile;
  profile.pi.assign(2, std::vector<double>(10, 0.0));
  for (trace::NodeId n = 0; n < 10; ++n) {
    profile.pi[trace::community_of(n, 2)][n] = 0.2;  // 5 nodes x 0.2
  }
  StepUtility u(5.0);
  const auto placement = alloc::lazy_greedy_placement(
      rates, demand, u, nodes, nodes, 2, 1, profile);
  // Count copies of each item inside each community.
  int item0_in_c0 = 0, item1_in_c1 = 0, misplaced = 0;
  for (trace::NodeId s = 0; s < 10; ++s) {
    const int community = trace::community_of(s, 2);
    if (placement.has(0, s)) {
      (community == 0 ? item0_in_c0 : misplaced)++;
    }
    if (placement.has(1, s)) {
      (community == 1 ? item1_in_c1 : misplaced)++;
    }
  }
  EXPECT_GT(item0_in_c0, 0);
  EXPECT_GT(item1_in_c1, 0);
  EXPECT_GT(item0_in_c0 + item1_in_c1, 3 * std::max(misplaced, 1) - 3);
  // The popularity-aware placement must beat the uniform-profile one on
  // the profiled welfare.
  const auto blind = alloc::lazy_greedy_placement(rates, demand, u, nodes,
                                                  nodes, 2, 1);
  const double aware_w = alloc::welfare_heterogeneous(
      placement, rates, demand, u, nodes, nodes, profile);
  const double blind_w = alloc::welfare_heterogeneous(
      blind, rates, demand, u, nodes, nodes, profile);
  EXPECT_GE(aware_w, blind_w - 1e-9);
}

TEST(Popularity, MarginalGainProfileMismatchThrows) {
  const auto rates = trace::RateMatrix::homogeneous(3, 0.05);
  std::vector<trace::NodeId> nodes{0, 1, 2};
  alloc::Placement p(2, 3, 1);
  StepUtility u(5.0);
  alloc::PopularityProfile bad;
  bad.pi = {{0.5, 0.5, 0.0}};  // one row, two items
  EXPECT_THROW(alloc::marginal_gain(p, rates, {1.0, 1.0}, u, nodes, nodes,
                                    0, 0, bad),
               std::invalid_argument);
}

TEST(Popularity, QcrServesClusteredDemand) {
  // Clustered demand + community mobility: QCR should still fulfil the
  // bulk of requests (replicas drift into the demanding communities).
  util::Rng rng(4);
  trace::CommunityTraceParams params;
  params.num_nodes = 20;
  params.duration = 3000;
  params.num_communities = 2;
  params.intra_rate = 0.1;
  params.inter_rate = 0.002;
  auto t = generate_community_trace(params, rng);
  auto scenario =
      make_scenario(std::move(t), Catalog::pareto(10, 1.0, 0.5), 3);

  alloc::PopularityProfile profile;
  profile.pi.assign(10, std::vector<double>(20, 0.0));
  for (ItemId i = 0; i < 10; ++i) {
    // Item i demanded only by community (i % 2).
    for (trace::NodeId n = 0; n < 20; ++n) {
      if (trace::community_of(n, 2) == static_cast<int>(i % 2)) {
        profile.pi[i][n] = 0.1;
      }
    }
  }
  SimOptions options;
  options.popularity = profile;
  StepUtility u(50.0);
  util::Rng run_rng(5);
  const auto result = run_qcr(scenario, u, QcrOptions{}, options, run_rng);
  ASSERT_GT(result.requests_created, 100u);
  const double served =
      static_cast<double>(result.fulfillments +
                          result.immediate_fulfillments) /
      static_cast<double>(result.requests_created);
  EXPECT_GT(served, 0.9);
}

}  // namespace
}  // namespace impatience::core
