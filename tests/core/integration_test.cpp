// End-to-end behaviour of the full stack: QCR must drive the global cache
// near the optimal allocation (Fig. 3/4), mandate routing must matter, and
// the observed utility must track the analytic expectation.
#include <gtest/gtest.h>

#include <numeric>

#include "impatience/core/experiment.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::PowerUtility;
using utility::StepUtility;

Scenario medium_scenario(std::uint64_t seed, trace::NodeId n = 25,
                         Slot duration = 2500, double mu = 0.05,
                         ItemId items = 25) {
  util::Rng rng(seed);
  auto trace = trace::generate_poisson({n, duration, mu}, rng);
  return make_scenario(std::move(trace), Catalog::pareto(items, 1.0, 0.5),
                       3);
}

double mean_observed(const Scenario& s, const utility::DelayUtility& u,
                     const std::string& which, int trials,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    util::Rng trial_rng = rng.split();
    if (which == "QCR") {
      total += run_qcr(s, u, QcrOptions{}, SimOptions{}, trial_rng)
                   .observed_utility();
    } else if (which == "QCR-noMR") {
      QcrOptions opts;
      opts.mandate_routing = false;
      total += run_qcr(s, u, opts, SimOptions{}, trial_rng)
                   .observed_utility();
    } else {
      util::Rng place_rng = rng.split();
      const auto set =
          build_competitors(s, u, OptMode::kHomogeneous, place_rng);
      for (const auto& [name, placement] : set) {
        if (name == which) {
          total += run_fixed(s, u, name, placement, SimOptions{}, trial_rng)
                       .observed_utility();
          break;
        }
      }
    }
  }
  return total / trials;
}

TEST(Integration, QcrApproachesOptimalStepUtility) {
  const auto s = medium_scenario(1);
  StepUtility u(10.0);
  const double u_opt = mean_observed(s, u, "OPT", 3, 100);
  const double u_qcr = mean_observed(s, u, "QCR", 3, 200);
  const double u_uni = mean_observed(s, u, "UNI", 3, 300);
  ASSERT_GT(u_opt, 0.0);
  // QCR within 20% of OPT (paper: within a few % for step utilities).
  EXPECT_GT(u_qcr, 0.8 * u_opt);
  // ... and it must not be beaten badly by the naive baseline.
  EXPECT_GT(u_qcr, 0.9 * u_uni);
}

TEST(Integration, QcrNearOptimalForCostUtility) {
  const auto s = medium_scenario(2);
  PowerUtility u(0.0);  // h(t) = -t, the Fig. 3 setting
  const double u_opt = mean_observed(s, u, "OPT", 3, 400);
  const double u_qcr = mean_observed(s, u, "QCR", 3, 500);
  const double u_dom = mean_observed(s, u, "DOM", 3, 600);
  ASSERT_LT(u_opt, 0.0);
  // Normalized loss (more negative = worse). QCR close to OPT; DOM far.
  const double qcr_loss = normalized_loss_percent(u_qcr, u_opt);
  const double dom_loss = normalized_loss_percent(u_dom, u_opt);
  EXPECT_GT(qcr_loss, -60.0);
  EXPECT_LT(dom_loss, -100.0);
  EXPECT_GT(qcr_loss, dom_loss);
}

TEST(Integration, MandateRoutingPreventsDivergence) {
  // Fig. 3: without mandate routing the allocation drifts and utility
  // degrades substantially for cost-type utilities.
  const auto s = medium_scenario(3, 25, 4000);
  PowerUtility u(0.0);
  const double with_mr = mean_observed(s, u, "QCR", 3, 700);
  const double without_mr = mean_observed(s, u, "QCR-noMR", 3, 800);
  EXPECT_GT(with_mr, without_mr);
}

TEST(Integration, QcrReplicaCountsTrackRelaxedOptimum) {
  const auto s = medium_scenario(4, 25, 4000);
  StepUtility u(10.0);
  util::Rng rng(900);
  const auto result = run_qcr(s, u, QcrOptions{}, SimOptions{}, rng);

  const auto target = alloc::relaxed_optimum(
      s.catalog.demands(), u, s.mu, 25.0, 3.0 * 25.0);
  // Popular items should hold more replicas, and the most popular item's
  // count should be in the right ballpark of the relaxed optimum.
  EXPECT_GT(result.final_counts[0], result.final_counts[20]);
  EXPECT_NEAR(static_cast<double>(result.final_counts[0]), target.x[0],
              0.5 * target.x[0] + 3.0);
}

TEST(Integration, ObservedUtilityTracksAnalyticWelfareForOpt) {
  // For a frozen OPT allocation under homogeneous contacts, the realized
  // gain rate must approach the closed-form welfare U(x).
  const auto s = medium_scenario(5, 25, 4000);
  StepUtility u(10.0);
  util::Rng rng(1000);
  const auto set = build_competitors(s, u, OptMode::kHomogeneous, rng);
  alloc::HomogeneousModel model{s.mu, 25, 25, alloc::SystemMode::kPureP2P};
  const double analytic = alloc::welfare_homogeneous(
      set[0].placement.counts(), s.catalog.demands(), u, model);
  double observed = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    util::Rng trial_rng = rng.split();
    observed += run_fixed(s, u, "OPT", set[0].placement, SimOptions{},
                          trial_rng)
                    .observed_utility();
  }
  observed /= trials;
  EXPECT_NEAR(observed, analytic, 0.15 * std::abs(analytic));
}

TEST(Integration, QcrCompetitiveOnBurstyTrace) {
  // The Section 6.3 claim in miniature: on a diurnal, bursty,
  // heterogeneous trace, QCR (local information only) stays within a
  // moderate factor of the memoryless-approximate OPT.
  util::Rng rng(2200);
  trace::InfocomLikeParams params;
  params.num_nodes = 25;
  params.days = 2;
  auto trace = trace::generate_infocom_like(params, rng);
  auto s = make_scenario(std::move(trace), Catalog::pareto(20, 1.0, 0.5), 3);
  StepUtility u(120.0);

  double u_opt = 0.0, u_qcr = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    util::Rng pr = rng.split();
    const auto set = build_competitors(s, u, OptMode::kEstimated, pr);
    util::Rng r1 = rng.split(), r2 = rng.split();
    u_opt += run_fixed(s, u, "OPT", set[0].placement, SimOptions{}, r1)
                 .observed_utility();
    u_qcr += run_qcr(s, u, QcrOptions{}, SimOptions{}, r2)
                 .observed_utility();
  }
  u_opt /= trials;
  u_qcr /= trials;
  ASSERT_GT(u_opt, 0.0);
  // Paper: QCR "generally lying within 15% of OPT" on Infocom; allow
  // slack for the small instance and short horizon.
  EXPECT_GT(u_qcr, 0.6 * u_opt);
}

TEST(Integration, HeterogeneousOptBeatsHomogeneousOptOnSkewedTrace) {
  // On a strongly heterogeneous trace, placing replicas on well-connected
  // nodes (Lemma-1 greedy) should not lose to the rate-blind placement.
  util::Rng rng(1100);
  trace::InfocomLikeParams params;
  params.num_nodes = 20;
  params.days = 2;
  auto trace = trace::generate_infocom_like(params, rng);
  auto s = make_scenario(std::move(trace), Catalog::pareto(15, 1.0, 0.5), 3);
  StepUtility u(30.0);

  util::Rng build_rng(1200);
  const auto hom = build_competitors(s, u, OptMode::kHomogeneous, build_rng);
  const auto het = build_competitors(s, u, OptMode::kEstimated, build_rng);

  double u_hom = 0.0, u_het = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    util::Rng r1 = build_rng.split();
    util::Rng r2 = build_rng.split();
    u_hom += run_fixed(s, u, "OPT", hom[0].placement, SimOptions{}, r1)
                 .observed_utility();
    u_het += run_fixed(s, u, "OPT", het[0].placement, SimOptions{}, r2)
                 .observed_utility();
  }
  // Allow statistical slack but the heterogeneous OPT must be at least
  // competitive.
  EXPECT_GT(u_het, 0.85 * u_hom);
}

}  // namespace
}  // namespace impatience::core
