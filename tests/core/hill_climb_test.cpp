// The Section-4.1 hill climber: local cache swaps with full knowledge
// must climb monotonically to the optimal homogeneous allocation.
#include "impatience/core/hill_climb_policy.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "impatience/alloc/solvers.hpp"
#include "impatience/core/experiment.hpp"
#include "impatience/utility/families.hpp"

namespace impatience::core {
namespace {

using utility::StepUtility;

TEST(HillClimb, RequiresInitialization) {
  StepUtility u(5.0);
  alloc::HomogeneousModel model{0.05, 10, 10, alloc::SystemMode::kPureP2P};
  HillClimbPolicy policy({1.0, 1.0}, u, model);
  Node a(0, 2, 3, true, true);
  Node b(1, 2, 3, true, true);
  util::Rng rng(1);
  EXPECT_THROW(policy.on_meeting_complete(a, b, rng), std::logic_error);
}

TEST(HillClimb, SizeMismatchRejected) {
  StepUtility u(5.0);
  alloc::HomogeneousModel model{0.05, 10, 10, alloc::SystemMode::kPureP2P};
  EXPECT_THROW(
      HillClimbPolicy({1.0, 2.0}, utility::UtilitySet(u, 3), model),
      std::invalid_argument);
  HillClimbPolicy policy({1.0, 2.0}, u, model);
  const std::vector<int> wrong{1, 2, 3};
  EXPECT_THROW(policy.on_initialized(std::span<const int>(wrong)),
               std::invalid_argument);
}

TEST(HillClimb, SwapImprovesTrackedWelfare) {
  StepUtility u(5.0);
  alloc::HomogeneousModel model{0.1, 2, 2, alloc::SystemMode::kPureP2P};
  const std::vector<double> demand{10.0, 0.1, 0.1};
  HillClimbPolicy policy(demand, u, model);

  // Both nodes carry the unpopular items; the popular one has 0 copies.
  Node a(0, 3, 1, true, true);
  Node b(1, 3, 1, true, true);
  util::Rng rng(2);
  a.cache().insert_random_replace(1, rng);
  b.cache().insert_random_replace(2, rng);
  const std::vector<int> counts{0, 1, 1};
  policy.on_initialized(std::span<const int>(counts));
  const double before = policy.tracked_welfare();
  policy.on_meeting_complete(a, b, rng);
  EXPECT_GT(policy.swaps(), 0);
  EXPECT_GT(policy.tracked_welfare(), before);
  // The popular item must now be cached somewhere.
  EXPECT_TRUE(a.holds(0) || b.holds(0));
}

TEST(HillClimb, StickyReplicasAreImmovable) {
  StepUtility u(5.0);
  alloc::HomogeneousModel model{0.1, 2, 2, alloc::SystemMode::kPureP2P};
  const std::vector<double> demand{10.0, 0.001};
  HillClimbPolicy policy(demand, u, model);
  Node a(0, 2, 1, true, true);
  Node b(1, 2, 1, true, true);
  a.cache().pin_sticky(1);  // unpopular but pinned
  b.cache().pin_sticky(1);
  const std::vector<int> counts{0, 2};
  policy.on_initialized(std::span<const int>(counts));
  util::Rng rng(3);
  policy.on_meeting_complete(a, b, rng);
  EXPECT_EQ(policy.swaps(), 0);
  EXPECT_TRUE(a.holds(1));
  EXPECT_TRUE(b.holds(1));
}

TEST(HillClimb, ConvergesToGreedyOptimum) {
  // Full simulation: starting from a random allocation, hill climbing
  // must reach the Theorem-2 greedy optimum's welfare.
  util::Rng rng(4);
  const trace::NodeId n = 20;
  auto trace = trace::generate_poisson({n, 1500, 0.06}, rng);
  auto scenario = make_scenario(std::move(trace),
                                Catalog::pareto(20, 1.0, 0.5), 3);
  StepUtility u(8.0);
  alloc::HomogeneousModel model{scenario.mu, n, n,
                                alloc::SystemMode::kPureP2P};

  HillClimbPolicy policy(scenario.catalog.demands(), u, model);
  SimOptions options;
  options.cache_capacity = 3;
  options.sticky_replicas = false;
  util::Rng run_rng(5);
  const auto result = simulate(scenario.trace, scenario.catalog, u, policy,
                               options, run_rng);

  const auto opt_counts = alloc::homogeneous_greedy(
      scenario.catalog.demands(), u, model, 3 * static_cast<int>(n));
  const double opt_welfare = alloc::welfare_homogeneous(
      opt_counts, scenario.catalog.demands(), u, model);
  alloc::ItemCounts final_x;
  final_x.x.assign(result.final_counts.begin(), result.final_counts.end());
  const double hill_welfare = alloc::welfare_homogeneous(
      final_x, scenario.catalog.demands(), u, model);
  EXPECT_GT(policy.swaps(), 0);
  EXPECT_GT(hill_welfare, 0.98 * opt_welfare);
  EXPECT_NEAR(policy.tracked_welfare(), hill_welfare, 1e-9);
}

TEST(HillClimb, TrackedCountsStayConsistentWithCaches) {
  util::Rng rng(6);
  auto trace = trace::generate_poisson({10, 500, 0.1}, rng);
  auto scenario = make_scenario(std::move(trace),
                                Catalog::pareto(8, 1.0, 0.5), 2);
  StepUtility u(5.0);
  alloc::HomogeneousModel model{scenario.mu, 10, 10,
                                alloc::SystemMode::kPureP2P};
  HillClimbPolicy policy(scenario.catalog.demands(), u, model);
  SimOptions options;
  options.cache_capacity = 2;
  options.sticky_replicas = false;
  util::Rng run_rng(7);
  const auto result = simulate(scenario.trace, scenario.catalog, u, policy,
                               options, run_rng);
  alloc::ItemCounts final_x;
  final_x.x.assign(result.final_counts.begin(), result.final_counts.end());
  EXPECT_NEAR(policy.tracked_welfare(),
              alloc::welfare_homogeneous(final_x,
                                         scenario.catalog.demands(), u,
                                         model),
              1e-9);
}

}  // namespace
}  // namespace impatience::core
